// lejit::plan unit + property tests (DESIGN.md §11).
//
// The load-bearing claims under test:
//   1. partition() is a true partition: every rule in exactly one cluster
//      (or constant_rules), clusters variable-disjoint, field_cluster
//      consistent with cluster membership.
//   2. Digit-mask tables agree with brute-force enumeration of the feasible
//      set — always/never bits are solver-verified facts, not heuristics.
//   3. The serialized artifact round-trips losslessly, rejects malformed
//      input, and a tampered fingerprint is refused by the decoder.
//   4. A starved compile budget degrades to *unverified* rows and an
//      inactive plan — never to wrong masks.
//   5. Decoding with a plan (fresh or cluster-merged) is bit-identical to
//      decoding without one, while actually serving table hits and sliced
//      queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "core/transition.hpp"
#include "lm/ngram.hpp"
#include "plan/plan.hpp"
#include "rules/miner.hpp"
#include "rules/rule.hpp"
#include "smt/formula.hpp"
#include "telemetry/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lejit::plan {
namespace {

using core::DecodeResult;
using core::DecoderConfig;
using core::GuidanceMode;
using core::GuidedDecoder;
using telemetry::Window;

// Shared fixture (mirrors test_solver_cache.cpp): a synthetic fleet, a
// trained n-gram over its rows, and a mined rule set.
struct Env {
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  std::vector<Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
  rules::RuleSet mined;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 12, .windows_per_rack = 50, .seed = 55});
    out.split = telemetry::split_by_rack(out.dataset, 2, 3);
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.split.train);
    out.test = telemetry::all_windows(out.split.test);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    out.mined =
        rules::mine_rules(out.train, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

rules::Rule make_rule(std::string description, smt::Formula f) {
  rules::Rule r;
  r.description = std::move(description);
  r.kind = rules::RuleKind::kManual;
  r.formula = std::move(f);
  return r;
}

telemetry::RowLayout two_field_layout() {
  telemetry::RowLayout layout;
  layout.fields.push_back({"T=", "x", 99, false});
  layout.fields.push_back({" E=", "y", 99, false});
  layout.suffix = "\n";
  return layout;
}

// --- partition structure -----------------------------------------------------

TEST(PlanPartition, IsAPartitionAndVariableDisjoint) {
  const DecodePlan p = partition(env().mined, env().layout);
  ASSERT_EQ(p.num_fields, env().layout.num_fields());
  ASSERT_EQ(p.num_rules, env().mined.size());

  // Every rule lands in exactly one cluster or in constant_rules.
  std::vector<int> owner(env().mined.size(), -1);
  for (std::size_t c = 0; c < p.clusters.size(); ++c)
    for (const std::size_t r : p.clusters[c].rules) {
      ASSERT_LT(r, owner.size());
      EXPECT_EQ(owner[r], -1) << "rule " << r << " in two clusters";
      owner[r] = static_cast<int>(c);
    }
  for (const std::size_t r : p.constant_rules) {
    EXPECT_EQ(owner[r], -1);
    owner[r] = static_cast<int>(p.clusters.size());
  }
  for (std::size_t r = 0; r < owner.size(); ++r)
    EXPECT_NE(owner[r], -1) << "rule " << r << " unassigned";

  // Clusters are variable-disjoint and consistent with field_cluster.
  std::set<int> seen_fields;
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    for (const int f : p.clusters[c].fields) {
      EXPECT_TRUE(seen_fields.insert(f).second)
          << "field " << f << " in two clusters";
      ASSERT_GE(f, 0);
      ASSERT_LT(f, p.num_fields);
      EXPECT_EQ(p.field_cluster[static_cast<std::size_t>(f)],
                static_cast<int>(c));
    }
  }
  for (int f = 0; f < p.num_fields; ++f) {
    if (!seen_fields.count(f)) {
      EXPECT_EQ(p.field_cluster[static_cast<std::size_t>(f)], -1);
    }
  }

  // A rule's referenced fields all live in its cluster.
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    for (const std::size_t r : p.clusters[c].rules) {
      for (const int f :
           rules::referenced_fields(env().mined.rules[r].formula)) {
        if (f >= 0 && f < p.num_fields) {
          EXPECT_EQ(p.field_cluster[static_cast<std::size_t>(f)],
                    static_cast<int>(c));
        }
      }
    }
  }
}

// --- digit tables vs. brute force --------------------------------------------

// Reachable full values of `p` under the transition system: p terminated
// as-is, or any syntactically legal digit extension, recursively. Mirrors
// prefix_completion_formula's semantics with plain set arithmetic.
void reachable_values(const core::DigitPrefix& p, int max_digits,
                      std::set<smt::Int>* out) {
  if (!p.empty()) out->insert(p.value);
  if (p.empty() || p.can_extend(max_digits))
    for (int d = 0; d <= 9; ++d) {
      const core::DigitPrefix np = p.extended(d);
      if (core::prefix_syntactically_ok(np, max_digits))
        reachable_values(np, max_digits, out);
    }
}

bool completable(const core::DigitPrefix& p, int max_digits,
                 const std::set<smt::Int>& feasible) {
  std::set<smt::Int> reach;
  reachable_values(p, max_digits, &reach);
  for (const smt::Int v : reach)
    if (feasible.count(v)) return true;
  return false;
}

// Re-derives the table for one field from its known feasible value set and
// requires every verified row's bits to match exactly.
void expect_table_matches(const DigitTable& table, smt::Int max_value,
                          const std::set<smt::Int>& feasible) {
  const int m = core::digits_for(max_value);
  ASSERT_EQ(table.max_digits, m);
  std::vector<core::DigitPrefix> level = {core::DigitPrefix{}};
  for (int k = 0; k <= m; ++k) {
    std::uint16_t always = 0;
    std::uint16_t never = 0;
    if (k >= 1 && !level.empty()) {
      std::size_t sat = 0;
      for (const auto& p : level)
        if (feasible.count(p.value)) ++sat;
      if (sat == level.size()) always |= 1u << kTerminatorBit;
      if (sat == 0) never |= 1u << kTerminatorBit;
    }
    std::vector<core::DigitPrefix> next_level;
    if (k < m)
      for (int d = 0; d <= 9; ++d) {
        std::size_t extendable = 0;
        std::size_t sat = 0;
        for (const auto& p : level) {
          if (!p.can_extend(m)) continue;
          const core::DigitPrefix np = p.extended(d);
          if (!core::prefix_syntactically_ok(np, m)) continue;
          ++extendable;
          if (completable(np, m, feasible)) {
            ++sat;
            next_level.push_back(np);
          }
        }
        if (extendable > 0 && sat == extendable) always |= 1u << d;
        if (extendable > 0 && sat == 0) never |= 1u << d;
      }
    if (table.row_verified(k)) {
      EXPECT_EQ(table.always[static_cast<std::size_t>(k)], always)
          << "always row " << k;
      EXPECT_EQ(table.never[static_cast<std::size_t>(k)], never)
          << "never row " << k;
    }
    level = std::move(next_level);
  }
}

TEST(PlanTables, MatchBruteForceEnumeration) {
  // x constrained to {7} ∪ [17, 42] (a hull with a hole — exactly what
  // interval reasoning alone gets wrong); y entirely unconstrained.
  const telemetry::RowLayout layout = two_field_layout();
  rules::RuleSet set;
  const smt::VarId x{0};
  set.rules.push_back(make_rule(
      "x in {7} u [17,42]",
      smt::lor(smt::land(smt::ge(smt::LinExpr(x), smt::LinExpr(smt::Int{17})),
                         smt::le(smt::LinExpr(x), smt::LinExpr(smt::Int{42}))),
               smt::eq(smt::LinExpr(x), smt::LinExpr(smt::Int{7})))));

  const DecodePlan p = compile(set, layout);
  ASSERT_TRUE(p.active());
  ASSERT_EQ(p.tables.size(), 2u);
  ASSERT_EQ(p.field_cluster[0], 0);
  ASSERT_EQ(p.field_cluster[1], -1);  // no rule references y

  std::set<smt::Int> x_feasible;
  x_feasible.insert(7);
  for (smt::Int v = 17; v <= 42; ++v) x_feasible.insert(v);
  std::set<smt::Int> y_feasible;
  for (smt::Int v = 0; v <= 99; ++v) y_feasible.insert(v);

  // Everything fit the default budget, so every row must be verified.
  for (const DigitTable& t : p.tables)
    for (int k = 0; k <= t.max_digits; ++k)
      EXPECT_TRUE(t.row_verified(k));
  expect_table_matches(p.tables[0], 99, x_feasible);
  expect_table_matches(p.tables[1], 99, y_feasible);
}

TEST(PlanTables, MinedRuleSetRowsVerifyUnderDefaultBudget) {
  const DecodePlan p = compile(env().mined, env().layout);
  ASSERT_TRUE(p.active());
  ASSERT_EQ(p.tables.size(), static_cast<std::size_t>(p.num_fields));
  // Row 0 is the cheapest claim (10 completion checks); it must verify for
  // every field under the default budget on this schema.
  for (const DigitTable& t : p.tables) EXPECT_TRUE(t.row_verified(0));
}

// --- serialization ------------------------------------------------------------

TEST(PlanSerialization, RoundTripsLosslessly) {
  const DecodePlan p = compile(env().mined, env().layout);
  const DecodePlan q = from_json(to_json(p));
  EXPECT_EQ(q.fingerprint, p.fingerprint);
  EXPECT_EQ(q.num_fields, p.num_fields);
  EXPECT_EQ(q.num_rules, p.num_rules);
  EXPECT_EQ(q.satisfiable, p.satisfiable);
  EXPECT_EQ(q.partition_verified, p.partition_verified);
  EXPECT_EQ(q.field_cluster, p.field_cluster);
  ASSERT_EQ(q.clusters.size(), p.clusters.size());
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    EXPECT_EQ(q.clusters[c].rules, p.clusters[c].rules);
    EXPECT_EQ(q.clusters[c].fields, p.clusters[c].fields);
    EXPECT_EQ(q.clusters[c].satisfiable, p.clusters[c].satisfiable);
  }
  EXPECT_EQ(q.constant_rules, p.constant_rules);
  ASSERT_EQ(q.tables.size(), p.tables.size());
  for (std::size_t f = 0; f < p.tables.size(); ++f) {
    EXPECT_EQ(q.tables[f].max_digits, p.tables[f].max_digits);
    EXPECT_EQ(q.tables[f].always, p.tables[f].always);
    EXPECT_EQ(q.tables[f].never, p.tables[f].never);
    EXPECT_EQ(q.tables[f].verified, p.tables[f].verified);
  }
  // And a second trip through text is a fixed point.
  EXPECT_EQ(to_json(q), to_json(p));
}

TEST(PlanSerialization, MalformedInputThrows) {
  EXPECT_THROW(from_json(""), util::RuntimeError);
  EXPECT_THROW(from_json("{"), util::RuntimeError);
  EXPECT_THROW(from_json("[1,2,3]"), util::RuntimeError);
  EXPECT_THROW(from_json("{\"version\": 999}"), util::RuntimeError);
}

TEST(PlanSerialization, StaleFingerprintRejectedByDecoder) {
  DecodePlan p = compile(env().mined, env().layout);
  p.fingerprint ^= 1;  // tamper
  DecoderConfig config{.mode = GuidanceMode::kFull};
  config.plan = std::move(p);
  EXPECT_THROW(GuidedDecoder(*env().model, env().tokenizer, env().layout,
                             env().mined, std::move(config)),
               util::RuntimeError);
  // A plan compiled for a *different rule set* is equally stale.
  DecoderConfig config2{.mode = GuidanceMode::kFull};
  config2.plan = compile(env().manual, env().layout);
  EXPECT_THROW(GuidedDecoder(*env().model, env().tokenizer, env().layout,
                             env().mined, std::move(config2)),
               util::RuntimeError);
}

// --- budget degradation -------------------------------------------------------

TEST(PlanBudget, StarvedCompileDegradesToInactiveNeverWrong) {
  Config starved;
  starved.check_max_nodes = 1;  // every check returns kUnknown
  const DecodePlan p = compile(env().mined, env().layout, starved);
  EXPECT_FALSE(p.partition_verified);
  EXPECT_FALSE(p.active());
  // An inactive plan loads fine and rides along inert: decode behavior and
  // text match a plan-free decoder exactly, with zero plan stats.
  DecoderConfig with_plan{.mode = GuidanceMode::kFull};
  with_plan.plan = p;
  GuidedDecoder a(*env().model, env().tokenizer, env().layout, env().mined,
                  std::move(with_plan));
  GuidedDecoder b(*env().model, env().tokenizer, env().layout, env().mined,
                  DecoderConfig{.mode = GuidanceMode::kFull});
  for (int seed = 0; seed < 6; ++seed) {
    util::Rng ra(static_cast<std::uint64_t>(seed));
    util::Rng rb(static_cast<std::uint64_t>(seed));
    const DecodeResult rap = a.generate(ra);
    const DecodeResult rbp = b.generate(rb);
    EXPECT_EQ(rap.text, rbp.text) << "seed " << seed;
    EXPECT_EQ(rap.stats.plan_table_hits, 0);
    EXPECT_EQ(rap.stats.plan_sliced_queries, 0);
  }
}

// --- decode equivalence -------------------------------------------------------

void expect_identical_rows(GuidedDecoder& planned, GuidedDecoder& plain,
                           int seed, std::string_view prompt,
                           DecodeResult* planned_out = nullptr) {
  util::Rng a(static_cast<std::uint64_t>(seed));
  util::Rng b(static_cast<std::uint64_t>(seed));
  const DecodeResult rp = planned.generate(a, prompt);
  const DecodeResult rq = plain.generate(b, prompt);
  ASSERT_EQ(rp.text, rq.text) << "seed " << seed;
  EXPECT_EQ(rp.ok, rq.ok) << "seed " << seed;
  EXPECT_EQ(rp.reason, rq.reason) << "seed " << seed;
  EXPECT_EQ(rp.recoveries, rq.recoveries) << "seed " << seed;
  EXPECT_EQ(rp.stats.interventions, rq.stats.interventions) << "seed " << seed;
  EXPECT_EQ(rp.stats.masked_steps, rq.stats.masked_steps) << "seed " << seed;
  EXPECT_EQ(rq.stats.plan_table_hits, 0);
  EXPECT_EQ(rq.stats.plan_sliced_queries, 0);
  if (planned_out) *planned_out = rp;
}

TEST(PlanDecode, BitIdenticalWithAndWithoutPlan) {
  DecoderConfig planned_cfg{.mode = GuidanceMode::kFull};
  planned_cfg.compile_plan = true;
  GuidedDecoder planned(*env().model, env().tokenizer, env().layout,
                        env().mined, std::move(planned_cfg));
  GuidedDecoder plain(*env().model, env().tokenizer, env().layout,
                      env().mined, DecoderConfig{.mode = GuidanceMode::kFull});
  ASSERT_TRUE(planned.decode_plan().has_value());
  ASSERT_TRUE(planned.decode_plan()->active());

  std::int64_t table_hits = 0;
  std::int64_t sliced = 0;
  DecodeResult rp;
  for (int seed = 0; seed < 12; ++seed) {  // synthesis: empty prompt
    expect_identical_rows(planned, plain, seed, {}, &rp);
    table_hits += rp.stats.plan_table_hits;
    sliced += rp.stats.plan_sliced_queries;
  }
  for (int seed = 0; seed < 12; ++seed) {  // imputation: coarse prompt
    const Window& truth =
        env().test[static_cast<std::size_t>(seed) % env().test.size()];
    expect_identical_rows(planned, plain, 500 + seed,
                          telemetry::imputation_prompt(truth), &rp);
    table_hits += rp.stats.plan_table_hits;
    sliced += rp.stats.plan_sliced_queries;
  }
  // The equivalence is only meaningful if the plan actually answered.
  EXPECT_GT(table_hits, 0);
  EXPECT_GT(sliced, 0);
}

TEST(PlanDecode, BitIdenticalWithCacheDisabled) {
  DecoderConfig planned_cfg{.mode = GuidanceMode::kFull};
  planned_cfg.compile_plan = true;
  planned_cfg.cache = false;
  GuidedDecoder planned(*env().model, env().tokenizer, env().layout,
                        env().mined, std::move(planned_cfg));
  DecoderConfig plain_cfg{.mode = GuidanceMode::kFull};
  plain_cfg.cache = false;
  GuidedDecoder plain(*env().model, env().tokenizer, env().layout,
                      env().mined, std::move(plain_cfg));
  for (int seed = 0; seed < 6; ++seed)
    expect_identical_rows(planned, plain, 40 + seed, {});
  for (int seed = 0; seed < 6; ++seed) {
    const Window& truth =
        env().test[static_cast<std::size_t>(seed) % env().test.size()];
    expect_identical_rows(planned, plain, 540 + seed,
                          telemetry::imputation_prompt(truth));
  }
}

TEST(PlanDecode, MergedClustersNeverChangeVerdicts) {
  // Two independent single-field rules on the telemetry layout: x-style
  // bound on field 0 and on field 1 → two clusters. Coarsening the
  // partition (merging them) must not change a single decoded character:
  // a merged cluster just asserts more rules per query.
  rules::RuleSet set;
  const smt::VarId f0{0};
  const smt::VarId f1{1};
  const auto& fields = env().layout.fields;
  set.rules.push_back(make_rule(
      "f0 bounded", smt::le(smt::LinExpr(f0),
                            smt::LinExpr(fields[0].max_value / 2))));
  set.rules.push_back(make_rule(
      "f1 bounded", smt::le(smt::LinExpr(f1),
                            smt::LinExpr(fields[1].max_value / 2))));

  DecodePlan fine = compile(set, env().layout);
  ASSERT_TRUE(fine.active());
  ASSERT_EQ(fine.clusters.size(), 2u);
  DecodePlan coarse = merge_clusters(fine, 0, 1);
  ASSERT_EQ(coarse.clusters.size(), 1u);
  ASSERT_TRUE(coarse.active());

  DecoderConfig fine_cfg{.mode = GuidanceMode::kFull};
  fine_cfg.plan = std::move(fine);
  DecoderConfig coarse_cfg{.mode = GuidanceMode::kFull};
  coarse_cfg.plan = std::move(coarse);
  GuidedDecoder dec_fine(*env().model, env().tokenizer, env().layout, set,
                         std::move(fine_cfg));
  GuidedDecoder dec_coarse(*env().model, env().tokenizer, env().layout, set,
                           std::move(coarse_cfg));
  GuidedDecoder dec_plain(*env().model, env().tokenizer, env().layout, set,
                          DecoderConfig{.mode = GuidanceMode::kFull});
  for (int seed = 0; seed < 8; ++seed) {
    util::Rng ra(static_cast<std::uint64_t>(seed));
    util::Rng rb(static_cast<std::uint64_t>(seed));
    util::Rng rc(static_cast<std::uint64_t>(seed));
    const DecodeResult rf = dec_fine.generate(ra);
    const DecodeResult rc_ = dec_coarse.generate(rb);
    const DecodeResult rp = dec_plain.generate(rc);
    EXPECT_EQ(rf.text, rp.text) << "seed " << seed;
    EXPECT_EQ(rc_.text, rp.text) << "seed " << seed;
  }
}

TEST(PlanDecode, LoadedArtifactMatchesCompiledPlan) {
  // plan → JSON → plan → decoder must behave exactly like compile-in-place.
  const DecodePlan compiled = compile(env().mined, env().layout);
  DecoderConfig loaded_cfg{.mode = GuidanceMode::kFull};
  loaded_cfg.plan = from_json(to_json(compiled));
  DecoderConfig direct_cfg{.mode = GuidanceMode::kFull};
  direct_cfg.plan = compiled;
  GuidedDecoder loaded(*env().model, env().tokenizer, env().layout,
                       env().mined, std::move(loaded_cfg));
  GuidedDecoder direct(*env().model, env().tokenizer, env().layout,
                       env().mined, std::move(direct_cfg));
  for (int seed = 0; seed < 6; ++seed) {
    util::Rng ra(static_cast<std::uint64_t>(seed));
    util::Rng rb(static_cast<std::uint64_t>(seed));
    EXPECT_EQ(loaded.generate(ra).text, direct.generate(rb).text)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace lejit::plan
