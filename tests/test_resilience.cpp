// Decoder resilience (kUnknown policies, budgets, dead-end recovery) and
// batch per-row fault isolation. DESIGN.md §8 is the narrative version.
#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/decoder.hpp"
#include "fault/fault.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::core {
namespace {

using telemetry::Window;

// Shared fixture (mirrors test_core_decoder.cpp): a synthetic fleet, a
// trained n-gram over its rows, and the manual rule set.
struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 10, .windows_per_rack = 40, .seed = 77});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.dataset);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    return out;
  }();
  return e;
}

DecoderConfig starved_config(UnknownPolicy policy) {
  DecoderConfig config{.mode = GuidanceMode::kFull};
  config.solver.max_nodes = 1;  // every real check gives up immediately
  config.resilience.on_unknown = policy;
  return config;
}

// --- kUnknown policies -------------------------------------------------------

TEST(UnknownPolicy, InfeasibleReadingStarvesTheMaskToEmpty) {
  // Force *every* check inconclusive (a node budget of 1 is not enough:
  // propagation alone often decides a check at the root node).
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    starved_config(UnknownPolicy::kInfeasible));
  util::Rng rng(1);
  const DecodeResult r = dec.generate(rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, FailReason::kEmptyMask);
  EXPECT_FALSE(r.fail_detail.empty());
  EXPECT_GT(r.stats.unknown_checks, 0);
  EXPECT_EQ(r.stats.escalations, 0);
}

TEST(UnknownPolicy, FeasibleReadingKeepsDecodingThroughUnknowns) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    starved_config(UnknownPolicy::kFeasible));
  util::Rng rng(2);
  const DecodeResult r = dec.generate(rng);
  // Every check is inconclusive, so guidance degrades to syntax-only — the
  // row still completes and parses (compliance is no longer guaranteed).
  EXPECT_TRUE(r.ok) << r.fail_detail;
  EXPECT_EQ(r.reason, FailReason::kNone);
  EXPECT_GT(r.stats.unknown_checks, 0);
}

TEST(UnknownPolicy, EscalationBuysADefinitiveAnswer) {
  DecoderConfig config = starved_config(UnknownPolicy::kEscalate);
  config.resilience.escalation_factor = 1'000'000;
  config.resilience.max_escalations = 1;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  util::Rng rng(3);
  const DecodeResult r = dec.generate(rng);
  ASSERT_TRUE(r.ok) << r.fail_detail;
  EXPECT_TRUE(rules::violated_rules(env().manual, *r.window).empty())
      << r.text;
  EXPECT_GT(r.stats.unknown_checks, 0);
  EXPECT_GT(r.stats.escalations, 0);
}

TEST(UnknownPolicy, ExhaustedEscalationFallsBackToInfeasible) {
  // Injection defeats every escalation round, not just the base budget.
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  DecoderConfig config = starved_config(UnknownPolicy::kEscalate);
  config.resilience.max_escalations = 2;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  util::Rng rng(4);
  const DecodeResult r = dec.generate(rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, FailReason::kEmptyMask);
  EXPECT_GT(r.stats.escalations, 0);
}

TEST(UnknownPolicy, InjectedUnknownsPropagateIntoDecodeStats) {
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(5);
  const DecodeResult r = dec.generate(rng);  // kFeasible-free default: escalate
  EXPECT_GT(r.stats.unknown_checks, 0);
  EXPECT_GT(fault::Injector::instance().counts().unknowns, 0);
}

// --- per-row budgets ---------------------------------------------------------

TEST(RowBudget, NodeCeilingAbortsWithBudgetExhausted) {
  DecoderConfig config{.mode = GuidanceMode::kFull};
  config.resilience.row_max_nodes = 1;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  util::Rng rng(6);
  const DecodeResult r = dec.generate(rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, FailReason::kBudgetExhausted);
  EXPECT_NE(r.fail_detail.find("node budget"), std::string::npos)
      << r.fail_detail;
}

TEST(RowBudget, DeadlineCeilingAbortsWithBudgetExhausted) {
  // Stall every LM forward 2 ms against a 1 ms row deadline: the ceiling
  // trips at the next step boundary regardless of machine speed.
  fault::Plan plan;
  plan.site(fault::Site::kLmForward) =
      fault::SiteConfig{.p_delay = 1.0, .delay_us = 2000};
  const fault::ScopedPlan scoped{plan};

  DecoderConfig config{.mode = GuidanceMode::kFull};
  config.resilience.row_deadline_ms = 1;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  util::Rng rng(7);
  const DecodeResult r = dec.generate(rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, FailReason::kBudgetExhausted);
  EXPECT_NE(r.fail_detail.find("deadline"), std::string::npos)
      << r.fail_detail;
}

// --- dead-end recovery -------------------------------------------------------

// The engineered hole from test_core_decoder.cpp: rules carve
// {0..10} ∪ {30..40} for I0, and a memorizing LM always writes I0 = 15.
struct Hole {
  rules::RuleSet rules;
  Window row;
  std::unique_ptr<lm::NgramModel> memorizer;
};

Hole make_hole() {
  Hole h;
  const smt::VarId i0{rules::field_index(env().layout, "I0")};
  h.rules.rules.push_back(rules::Rule{
      .description = "I0 in {0..10} u {30..40}",
      .kind = rules::RuleKind::kManual,
      .formula = smt::land(
          smt::lor(smt::le(smt::LinExpr(i0), smt::LinExpr(10)),
                   smt::ge(smt::LinExpr(i0), smt::LinExpr(30))),
          smt::le(smt::LinExpr(i0), smt::LinExpr(40))),
      .uses_fine = true,
  });
  h.row = env().train.front();
  h.row.fine.assign(h.row.fine.size(), 15);
  h.row.total = 15 * static_cast<smt::Int>(h.row.fine.size());
  h.row.ecn = 0;
  h.row.rtx = 0;
  h.row.egress = 10;
  h.memorizer = std::make_unique<lm::NgramModel>(
      env().tokenizer.vocab_size(), lm::NgramConfig{.order = 8});
  for (int i = 0; i < 50; ++i)
    h.memorizer->observe(
        env().tokenizer.encode(telemetry::window_to_row(h.row)));
  return h;
}

TEST(DeadEndRecovery, RecoversTheEngineeredHoleUnderHullGuidance) {
  const Hole h = make_hole();
  DecoderConfig config{.mode = GuidanceMode::kHull,
                       .sampler = {.temperature = 0.0}};
  config.resilience.retry_budget = 3;
  GuidedDecoder dec(*h.memorizer, env().tokenizer, env().layout, h.rules,
                    config);
  util::Rng rng(32);
  const DecodeResult r =
      dec.generate(rng, telemetry::imputation_prompt(h.row));
  ASSERT_TRUE(r.ok) << "reason: " << fail_reason_name(r.reason) << " — "
                    << r.fail_detail;
  EXPECT_FALSE(r.dead_end);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_TRUE(rules::violated_rules(h.rules, *r.window).empty()) << r.text;
  const smt::Int i0_value = r.window->fine[0];
  EXPECT_TRUE((i0_value >= 0 && i0_value <= 10) ||
              (i0_value >= 30 && i0_value <= 40))
      << "I0 = " << i0_value;
}

TEST(DeadEndRecovery, ZeroRetryBudgetPreservesFailStop) {
  const Hole h = make_hole();
  GuidedDecoder dec(*h.memorizer, env().tokenizer, env().layout, h.rules,
                    DecoderConfig{.mode = GuidanceMode::kHull,
                                  .sampler = {.temperature = 0.0}});
  util::Rng rng(32);
  const DecodeResult r =
      dec.generate(rng, telemetry::imputation_prompt(h.row));
  EXPECT_TRUE(r.dead_end);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, FailReason::kDeadEnd);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_NE(r.fail_detail.find("I0"), std::string::npos) << r.fail_detail;
}

TEST(DeadEndRecovery, ExhaustedRetriesReportTheFinalFailure) {
  const Hole h = make_hole();
  DecoderConfig config{.mode = GuidanceMode::kHull,
                       .sampler = {.temperature = 0.0}};
  config.resilience.retry_budget = 1;
  config.resilience.escalate_guidance = false;  // greedy re-walks the hole
  GuidedDecoder dec(*h.memorizer, env().tokenizer, env().layout, h.rules,
                    config);
  util::Rng rng(32);
  const DecodeResult r =
      dec.generate(rng, telemetry::imputation_prompt(h.row));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason, FailReason::kNone);
  EXPECT_EQ(r.recoveries, 1);
}

TEST(DeadEndRecovery, FailReasonNamesAreStable) {
  EXPECT_EQ(fail_reason_name(FailReason::kNone), "none");
  EXPECT_EQ(fail_reason_name(FailReason::kInfeasiblePrompt),
            "infeasible_prompt");
  EXPECT_EQ(fail_reason_name(FailReason::kDeadEnd), "dead_end");
  EXPECT_EQ(fail_reason_name(FailReason::kEmptyMask), "empty_mask");
  EXPECT_EQ(fail_reason_name(FailReason::kBudgetExhausted),
            "budget_exhausted");
  EXPECT_EQ(fail_reason_name(FailReason::kFault), "fault");
}

// --- batch per-row fault isolation ------------------------------------------

DecoderFactory factory() {
  return [] {
    return std::make_unique<GuidedDecoder>(
        *env().model, env().tokenizer, env().layout, env().manual,
        DecoderConfig{.mode = GuidanceMode::kFull});
  };
}

TEST(BatchIsolation, RetriedRowRecoversAndTheBatchIsClean) {
  fault::Plan plan;
  plan.fail_rows = {{2, 1}};  // row 2 fails attempt 0 only
  const fault::ScopedPlan scoped{plan};

  BatchConfig config{.threads = 2, .seed = 9};
  config.row_retries = 1;
  const BatchReport report = synthesize_batch(factory(), 6, config);
  EXPECT_EQ(report.results.size(), 6u);
  EXPECT_EQ(report.degraded_rows, 0u);
  EXPECT_EQ(report.row_retries, 1u);
  EXPECT_TRUE(report.results[2].ok) << report.results[2].fail_detail;
  EXPECT_EQ(report.ok, 6u);
}

TEST(BatchIsolation, ExhaustedRetriesDegradeTheRowNotTheBatch) {
  fault::Plan plan;
  plan.fail_rows = {{2, 99}};  // row 2 fails every attempt
  const fault::ScopedPlan scoped{plan};

  BatchConfig config{.threads = 2, .seed = 9};
  config.row_retries = 1;
  const BatchReport report = synthesize_batch(factory(), 6, config);
  EXPECT_EQ(report.degraded_rows, 1u);
  EXPECT_EQ(report.row_retries, 1u);
  const DecodeResult& degraded = report.results[2];
  EXPECT_FALSE(degraded.ok);
  EXPECT_EQ(degraded.reason, FailReason::kFault);
  EXPECT_NE(degraded.fail_detail.find("row 2"), std::string::npos)
      << degraded.fail_detail;
  EXPECT_EQ(report.ok, 5u);
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(report.results[i].ok) << "row " << i;
  }
}

TEST(BatchIsolation, FailFastModeStillAbortsTheWholeBatch) {
  fault::Plan plan;
  plan.fail_rows = {{1, 99}};
  const fault::ScopedPlan scoped{plan};

  BatchConfig config{.threads = 1, .seed = 9};
  config.isolate_rows = false;
  try {
    synthesize_batch(factory(), 4, config);
    FAIL() << "expected the batch to abort";
  } catch (const util::RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos)
        << e.what();
  }
}

TEST(BatchIsolation, EveryWorkerSetupFailureIsCollected) {
  const DecoderFactory exploding = []() -> std::unique_ptr<GuidedDecoder> {
    throw util::RuntimeError("factory exploded");
  };
  try {
    synthesize_batch(exploding, 9, BatchConfig{.threads = 3, .seed = 1});
    FAIL() << "expected the batch to abort";
  } catch (const util::RuntimeError& e) {
    const std::string what = e.what();
    std::size_t mentions = 0;
    for (std::size_t pos = what.find("worker setup");
         pos != std::string::npos; pos = what.find("worker setup", pos + 1))
      ++mentions;
    EXPECT_EQ(mentions, 3u) << what;
    EXPECT_NE(what.find("3 failure(s)"), std::string::npos) << what;
  }
}

TEST(BatchIsolation, IsolationDefaultsPreserveDeterminism) {
  // Attempt 0 must reproduce the pre-isolation RNG stream: two runs at
  // different thread counts, one with isolation off, all bit-identical.
  const BatchReport a =
      synthesize_batch(factory(), 5, BatchConfig{.threads = 1, .seed = 4});
  const BatchReport b =
      synthesize_batch(factory(), 5, BatchConfig{.threads = 4, .seed = 4});
  BatchConfig no_isolation{.threads = 2, .seed = 4};
  no_isolation.isolate_rows = false;
  const BatchReport c = synthesize_batch(factory(), 5, no_isolation);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.results[i].text, b.results[i].text) << i;
    EXPECT_EQ(a.results[i].text, c.results[i].text) << i;
  }
}

}  // namespace
}  // namespace lejit::core
