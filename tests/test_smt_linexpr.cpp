#include <gtest/gtest.h>

#include "smt/linexpr.hpp"

namespace lejit::smt {
namespace {

TEST(LinExpr, ConstantOnly) {
  const LinExpr e(7);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 7);
  EXPECT_TRUE(e.terms().empty());
}

TEST(LinExpr, SingleVariable) {
  const VarId x{0};
  const LinExpr e(x);
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].first, x);
  EXPECT_EQ(e.terms()[0].second, 1);
}

TEST(LinExpr, TermBuilder) {
  const VarId x{2};
  const LinExpr e = LinExpr::term(5, x);
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].second, 5);
}

TEST(LinExpr, ZeroCoefficientTermIsDropped) {
  const VarId x{1};
  EXPECT_TRUE(LinExpr::term(0, x).is_constant());
}

TEST(LinExpr, AdditionMergesTerms) {
  const VarId x{0}, y{1};
  const LinExpr e = LinExpr(x) + LinExpr(y) + LinExpr(x) + LinExpr(3);
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].second, 2);  // 2*x
  EXPECT_EQ(e.terms()[1].second, 1);  // 1*y
  EXPECT_EQ(e.constant(), 3);
}

TEST(LinExpr, SubtractionCancelsToConstant) {
  const VarId x{0};
  const LinExpr e = LinExpr(x) + LinExpr(4) - LinExpr(x);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 4);
}

TEST(LinExpr, ScalarMultiplication) {
  const VarId x{0};
  const LinExpr e = 3 * (LinExpr(x) + LinExpr(2));
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].second, 3);
  EXPECT_EQ(e.constant(), 6);
}

TEST(LinExpr, UnaryNegation) {
  const VarId x{0};
  const LinExpr e = -(LinExpr(x) - LinExpr(5));
  EXPECT_EQ(e.terms()[0].second, -1);
  EXPECT_EQ(e.constant(), 5);
}

TEST(LinExpr, EvalUnderAssignment) {
  const VarId x{0}, y{1};
  const LinExpr e = 2 * LinExpr(x) - 3 * LinExpr(y) + LinExpr(1);
  const std::vector<Int> assignment{4, 2};
  EXPECT_EQ(e.eval(assignment), 2 * 4 - 3 * 2 + 1);
}

TEST(LinExpr, EvalRejectsShortAssignment) {
  const VarId y{5};
  const LinExpr e(y);
  const std::vector<Int> assignment{1, 2};
  EXPECT_THROW(e.eval(assignment), util::PreconditionError);
}

TEST(SaturatingArithmetic, AddSaturatesAtBothEnds) {
  EXPECT_EQ(sat_add(kIntInf, kIntInf), kIntInf);
  EXPECT_EQ(sat_add(-kIntInf, -kIntInf), -kIntInf);
  EXPECT_EQ(sat_add(5, 7), 12);
}

TEST(SaturatingArithmetic, MulSaturates) {
  EXPECT_EQ(sat_mul(kIntInf, 2), kIntInf);
  EXPECT_EQ(sat_mul(kIntInf, -2), -kIntInf);
  EXPECT_EQ(sat_mul(-3, 7), -21);
  EXPECT_EQ(sat_mul(0, kIntInf), 0);
}

TEST(Interval, BasicPredicates) {
  const Interval iv{2, 5};
  EXPECT_FALSE(iv.is_empty());
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_EQ(iv.width(), 4);
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_EQ(Interval::empty().width(), 0);
  EXPECT_TRUE((Interval{3, 3}).is_singleton());
}

}  // namespace
}  // namespace lejit::smt
