#include <gtest/gtest.h>

#include <optional>

#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace lejit::smt {
namespace {

TEST(Solver, TrivialSatAndModel) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(ge(LinExpr(x), LinExpr(3)));
  s.add(le(LinExpr(x), LinExpr(5)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_GE(s.model_value(x), 3);
  EXPECT_LE(s.model_value(x), 5);
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(ge(LinExpr(x), LinExpr(7)));
  s.add(le(LinExpr(x), LinExpr(3)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

TEST(Solver, EmptyDomainRejectedAtDeclaration) {
  Solver s;
  EXPECT_THROW(s.add_var("x", 5, 4), util::PreconditionError);
}

TEST(Solver, ModelWithoutSatCheckIsAnError) {
  Solver s;
  s.add_var("x", 0, 1);
  EXPECT_THROW(s.model(), util::PreconditionError);
}

TEST(Solver, LinearCouplingPropagates) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  const VarId y = s.add_var("y", 0, 100);
  s.add(eq(LinExpr(x) + LinExpr(y), LinExpr(10)));
  s.add(ge(LinExpr(x), LinExpr(8)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_EQ(s.model_value(x) + s.model_value(y), 10);
  EXPECT_GE(s.model_value(x), 8);
}

TEST(Solver, SumEqualityOverManyVariables) {
  Solver s;
  std::vector<VarId> vars;
  LinExpr sum;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(s.add_var("v" + std::to_string(i), 0, 60));
    sum += LinExpr(vars.back());
  }
  s.add(eq(sum, LinExpr(123)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  Int total = 0;
  for (const VarId v : vars) total += s.model_value(v);
  EXPECT_EQ(total, 123);
}

TEST(Solver, DisjunctionForcesCaseSplit) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  // x <= 10 OR x >= 90, and x >= 20 → only the right branch survives.
  s.add(lor(le(LinExpr(x), LinExpr(10)), ge(LinExpr(x), LinExpr(90))));
  s.add(ge(LinExpr(x), LinExpr(20)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_GE(s.model_value(x), 90);
}

TEST(Solver, ImplicationActivation) {
  Solver s;
  const VarId cong = s.add_var("cong", 0, 100);
  const VarId peak = s.add_var("peak", 0, 60);
  s.add(implies(gt(LinExpr(cong), LinExpr(0)), ge(LinExpr(peak), LinExpr(30))));
  s.add(eq(LinExpr(cong), LinExpr(8)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_GE(s.model_value(peak), 30);
}

TEST(Solver, ImplicationDeactivatedWhenAntecedentFalse) {
  Solver s;
  const VarId cong = s.add_var("cong", 0, 100);
  const VarId peak = s.add_var("peak", 0, 60);
  s.add(implies(gt(LinExpr(cong), LinExpr(0)), ge(LinExpr(peak), LinExpr(30))));
  s.add(eq(LinExpr(cong), LinExpr(0)));
  s.add(le(LinExpr(peak), LinExpr(5)));
  EXPECT_EQ(s.check(), CheckResult::kSat);
}

TEST(Solver, NotEqualCarvesHole) {
  Solver s;
  const VarId x = s.add_var("x", 3, 3);
  s.add(ne(LinExpr(x), LinExpr(3)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

TEST(Solver, PushPopRestoresAssertions) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(ge(LinExpr(x), LinExpr(2)));
  s.push();
  s.add(le(LinExpr(x), LinExpr(1)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  EXPECT_EQ(s.check(), CheckResult::kSat);
  EXPECT_EQ(s.num_assertions(), 1u);
}

TEST(Solver, NestedScopes) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  s.push();
  s.add(ge(LinExpr(x), LinExpr(10)));
  s.push();
  s.add(le(LinExpr(x), LinExpr(5)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
  s.pop();
  EXPECT_EQ(s.check(), CheckResult::kSat);
  s.pop();
  EXPECT_EQ(s.num_assertions(), 0u);
  EXPECT_THROW(s.pop(), util::PreconditionError);
}

TEST(Solver, CheckAssumingDoesNotPersist) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  const Formula assume = ge(LinExpr(x), LinExpr(11) - LinExpr(1));
  const std::vector<Formula> as{le(LinExpr(x), LinExpr(3)), ge(LinExpr(x), LinExpr(4))};
  EXPECT_EQ(s.check_assuming(as), CheckResult::kUnsat);
  EXPECT_EQ(s.check(), CheckResult::kSat);
  (void)assume;
}

TEST(Solver, FeasibleIntervalSimple) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  s.add(ge(LinExpr(x), LinExpr(17)));
  s.add(le(LinExpr(x), LinExpr(42)));
  EXPECT_EQ(s.feasible_interval(x), (Interval{17, 42}));
}

TEST(Solver, FeasibleIntervalEmptyOnUnsat) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(gt(LinExpr(x), LinExpr(20)));
  EXPECT_TRUE(s.feasible_interval(x).is_empty());
}

TEST(Solver, FeasibleIntervalSpansHoles) {
  // Feasible set {0..10} ∪ {30..40}: the interval hull is [0,40] (min/max
  // are exact; holes are handled by per-value sat checks at a higher layer).
  Solver s;
  const VarId x = s.add_var("x", 0, 60);
  s.add(lor(le(LinExpr(x), LinExpr(10)), ge(LinExpr(x), LinExpr(30))));
  s.add(le(LinExpr(x), LinExpr(40)));
  EXPECT_EQ(s.feasible_interval(x), (Interval{0, 40}));
}

// The paper's Fig. 1 worked example: T=5, BW=60, TotalIngress=100,
// Congestion=8, with I0..I2 already generated as 20, 15, 25. The remaining
// feasible set for I3 is {0..10} ∪ {30..40} — non-convex because R3's burst
// implication must be met by I3 or I4 while R2 fixes I3+I4=40.
class Fig1Example : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int t = 0; t < 5; ++t)
      vars.push_back(solver.add_var("I" + std::to_string(t), 0, kBw));  // R1
    LinExpr sum;
    for (const VarId v : vars) sum += LinExpr(v);
    solver.add(eq(sum, LinExpr(kTotal)));  // R2
    solver.add(implies(gt(LinExpr(kCong), LinExpr(0)),
                       max_ge(vars, LinExpr(kBw / 2))));  // R3
    solver.push();
    solver.add(eq(LinExpr(vars[0]), LinExpr(20)));
    solver.add(eq(LinExpr(vars[1]), LinExpr(15)));
    solver.add(eq(LinExpr(vars[2]), LinExpr(25)));
  }

  static constexpr Int kBw = 60;
  static constexpr Int kTotal = 100;
  static constexpr Int kCong = 8;
  Solver solver;
  std::vector<VarId> vars;
};

TEST_F(Fig1Example, HullOfI3IsZeroToForty) {
  EXPECT_EQ(solver.feasible_interval(vars[3]), (Interval{0, 40}));
}

TEST_F(Fig1Example, MiddleOfTheHoleIsInfeasible) {
  for (const Int bad : {11, 20, 29}) {
    const Formula pin = eq(LinExpr(vars[3]), LinExpr(bad));
    EXPECT_EQ(solver.check_assuming(std::span(&pin, 1)), CheckResult::kUnsat)
        << "I3 = " << bad << " should be infeasible";
  }
}

TEST_F(Fig1Example, EdgesOfBothComponentsAreFeasible) {
  for (const Int good : {0, 10, 30, 39, 40}) {
    const Formula pin = eq(LinExpr(vars[3]), LinExpr(good));
    EXPECT_EQ(solver.check_assuming(std::span(&pin, 1)), CheckResult::kSat)
        << "I3 = " << good << " should be feasible";
  }
}

TEST_F(Fig1Example, PaperValueThirtyNineForcesI4ToOne) {
  solver.add(eq(LinExpr(vars[3]), LinExpr(39)));
  EXPECT_EQ(solver.feasible_interval(vars[4]), (Interval{1, 1}));
}

TEST_F(Fig1Example, ViolatingPrefixSeventyIsImpossible) {
  // The vanilla LLM in Fig. 1a emits I3 = 70 > BW; under the rules the value
  // is outside the variable's domain, so pinning it is unsatisfiable.
  const Formula pin = ge(LinExpr(vars[3]), LinExpr(70));
  EXPECT_EQ(solver.check_assuming(std::span(&pin, 1)), CheckResult::kUnsat);
}

TEST_F(Fig1Example, PopRestoresUnconstrainedWindow) {
  solver.pop();
  EXPECT_EQ(solver.feasible_interval(vars[3]), (Interval{0, kBw}));
}

TEST(Solver, MinimizeFindsOptimum) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  const VarId y = s.add_var("y", 0, 100);
  s.add(ge(LinExpr(x) + LinExpr(y), LinExpr(10)));
  s.add(ge(LinExpr(x), LinExpr(3)));
  const auto best = s.minimize(LinExpr(x) + 2 * LinExpr(y));
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->proven_optimal);
  // Optimum: push x as high as useful: x=10,y=0 → cost 10.
  EXPECT_EQ(best->cost, 10);
}

TEST(Solver, MinimizeOnUnsatReturnsNullopt) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(gt(LinExpr(x), LinExpr(99)));
  EXPECT_EQ(s.minimize(LinExpr(x)), std::nullopt);
}

TEST(Solver, NodeBudgetYieldsUnknown) {
  Solver s(SolverConfig{.max_nodes = 1, .max_propagation_rounds = 1});
  std::vector<VarId> vars;
  for (int i = 0; i < 8; ++i)
    vars.push_back(s.add_var("v" + std::to_string(i), 0, 1'000'000));
  LinExpr sum;
  for (const VarId v : vars) sum += LinExpr(v);
  // A constraint needing real search under a starved budget.
  s.add(lor(eq(sum, LinExpr(999)), eq(sum, LinExpr(1'000'001))));
  s.add(ne(LinExpr(vars[0]) - LinExpr(vars[1]), LinExpr(0)));
  const CheckResult r = s.check();
  EXPECT_TRUE(r == CheckResult::kUnknown || r == CheckResult::kSat);
  if (r == CheckResult::kUnknown) {
    EXPECT_GE(s.stats().unknowns, 1);
  }
}

TEST(Solver, StatsAccumulate) {
  Solver s;
  const VarId x = s.add_var("x", 0, 10);
  s.add(ge(LinExpr(x), LinExpr(5)));
  (void)s.check();
  (void)s.check();
  EXPECT_EQ(s.stats().checks, 2);
  EXPECT_GE(s.stats().nodes, 2);
  s.reset_stats();
  EXPECT_EQ(s.stats().checks, 0);
}

// ---------------------------------------------------------------------------
// Property: solver agrees with a brute-force oracle on random problems over
// small domains. This is the main correctness argument for minismt.
// ---------------------------------------------------------------------------

Formula random_formula(util::Rng& rng, const std::vector<VarId>& vars,
                       int depth) {
  if (depth == 0 || rng.bernoulli(0.45)) {
    LinExpr e(rng.uniform_int(-6, 6));
    const int nterms = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < nterms; ++i) {
      const VarId v = vars[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<Int>(vars.size()) - 1))];
      e += LinExpr::term(rng.uniform_int(-3, 3), v);
    }
    switch (rng.uniform_int(0, 2)) {
      case 0: return le(e, LinExpr(0));
      case 1: return eq(e, LinExpr(0));
      default: return ne(e, LinExpr(0));
    }
  }
  std::vector<Formula> children;
  const int arity = static_cast<int>(rng.uniform_int(2, 3));
  for (int i = 0; i < arity; ++i)
    children.push_back(random_formula(rng, vars, depth - 1));
  switch (rng.uniform_int(0, 3)) {
    case 0: return land(std::move(children));
    case 1: return lor(std::move(children));
    case 2: return implies(children[0], children[1]);
    default: return lnot(children[0]);
  }
}

struct OracleCase {
  int seed;
  int nvars;
  Int domain_hi;
};

class SolverOracleProperty : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SolverOracleProperty, AgreesWithBruteForce) {
  const OracleCase param = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(param.seed) * 7919 + 13);

  for (int trial = 0; trial < 12; ++trial) {
    Solver s;
    std::vector<VarId> vars;
    for (int i = 0; i < param.nvars; ++i)
      vars.push_back(s.add_var("v" + std::to_string(i), 0, param.domain_hi));
    std::vector<Formula> formulas;
    const int nf = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < nf; ++i) {
      Formula f = random_formula(rng, vars, 2);
      formulas.push_back(f);
      s.add(std::move(f));
    }

    // Brute force: enumerate the full grid.
    bool oracle_sat = false;
    std::vector<Int> a(static_cast<std::size_t>(param.nvars), 0);
    std::vector<std::vector<Int>> sat_points;
    const auto enumerate = [&](auto&& self, int idx) -> void {
      if (idx == param.nvars) {
        bool ok = true;
        for (const auto& f : formulas) {
          if (!f->eval(a)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          oracle_sat = true;
          sat_points.push_back(a);
        }
        return;
      }
      for (Int v = 0; v <= param.domain_hi; ++v) {
        a[static_cast<std::size_t>(idx)] = v;
        self(self, idx + 1);
      }
    };
    enumerate(enumerate, 0);

    const CheckResult r = s.check();
    ASSERT_NE(r, CheckResult::kUnknown) << "budget too small for tiny case";
    EXPECT_EQ(r == CheckResult::kSat, oracle_sat) << "trial " << trial;

    if (r == CheckResult::kSat) {
      // The returned model must actually satisfy every formula.
      const std::vector<Int>& m = s.model();
      for (const auto& f : formulas) EXPECT_TRUE(f->eval(m));
    }

    if (oracle_sat) {
      // feasible_interval must match the oracle's min/max for each var.
      for (int vi = 0; vi < param.nvars; ++vi) {
        Int mn = param.domain_hi + 1, mx = -1;
        for (const auto& p : sat_points) {
          mn = std::min(mn, p[static_cast<std::size_t>(vi)]);
          mx = std::max(mx, p[static_cast<std::size_t>(vi)]);
        }
        EXPECT_EQ(s.feasible_interval(vars[static_cast<std::size_t>(vi)]),
                  (Interval{mn, mx}))
            << "var " << vi << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverOracleProperty,
    ::testing::Values(OracleCase{1, 2, 6}, OracleCase{2, 2, 6},
                      OracleCase{3, 3, 4}, OracleCase{4, 3, 4},
                      OracleCase{5, 3, 5}, OracleCase{6, 4, 3},
                      OracleCase{7, 4, 3}, OracleCase{8, 2, 12},
                      OracleCase{9, 3, 6}, OracleCase{10, 4, 4}));

// Property: minimize() agrees with brute force on random problems.
class MinimizeOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeOracleProperty, AgreesWithBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (int trial = 0; trial < 8; ++trial) {
    constexpr int kVars = 3;
    constexpr Int kHi = 5;
    Solver s;
    std::vector<VarId> vars;
    for (int i = 0; i < kVars; ++i)
      vars.push_back(s.add_var("v" + std::to_string(i), 0, kHi));
    std::vector<Formula> formulas;
    for (int i = 0; i < 2; ++i) {
      Formula f = random_formula(rng, vars, 1);
      formulas.push_back(f);
      s.add(std::move(f));
    }
    LinExpr cost(rng.uniform_int(-3, 3));
    for (const VarId v : vars) cost += LinExpr::term(rng.uniform_int(-2, 2), v);

    std::optional<Int> oracle_best;
    std::vector<Int> a(kVars, 0);
    for (a[0] = 0; a[0] <= kHi; ++a[0])
      for (a[1] = 0; a[1] <= kHi; ++a[1])
        for (a[2] = 0; a[2] <= kHi; ++a[2]) {
          bool ok = true;
          for (const auto& f : formulas)
            if (!f->eval(a)) { ok = false; break; }
          if (!ok) continue;
          const Int c = cost.eval(a);
          if (!oracle_best || c < *oracle_best) oracle_best = c;
        }

    const auto best = s.minimize(cost);
    ASSERT_EQ(best.has_value(), oracle_best.has_value()) << "trial " << trial;
    if (best) {
      EXPECT_TRUE(best->proven_optimal);
      EXPECT_EQ(best->cost, *oracle_best) << "trial " << trial;
      for (const auto& f : formulas) EXPECT_TRUE(f->eval(best->model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeOracleProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace lejit::smt
