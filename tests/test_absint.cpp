// lejit::absint — the product domain (interval × congruence × known-bits),
// its reduced-product normalization, the NNF transfer functions, the rule-set
// fixpoint, the differential soundness harness, and the decoder prefilter's
// bit-identity gate (DESIGN.md §16).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "absint/absint.hpp"
#include "absint/diff.hpp"
#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "rules/miner.hpp"
#include "rules/parser.hpp"
#include "smt/backend.hpp"
#include "smt/solver.hpp"
#include "telemetry/generator.hpp"
#include "util/rng.hpp"

namespace lejit::absint {
namespace {

using smt::Int;
using smt::LinExpr;
using smt::VarId;

telemetry::RowLayout small_layout(std::vector<Int> maxima) {
  telemetry::RowLayout layout;
  for (std::size_t i = 0; i < maxima.size(); ++i) {
    telemetry::FieldSpec spec;
    spec.name = "f" + std::to_string(i);
    spec.max_value = maxima[i];
    layout.fields.push_back(spec);
  }
  return layout;
}

rules::RuleSet make_set(std::vector<smt::Formula> formulas) {
  rules::RuleSet set;
  for (auto& f : formulas) {
    rules::Rule r;
    r.description = "test rule";
    r.formula = std::move(f);
    set.rules.push_back(std::move(r));
  }
  return set;
}

// --- domain components -------------------------------------------------------

TEST(AbsintDomain, KnownBitsMatchSearchIsExact) {
  // mask 0b101, value 0b100: admitted values have bit2=1, bit0=0.
  const KnownBits kb{0b101, 0b100};
  EXPECT_EQ(least_match_at_least(0, kb).value_or(-1), 4);
  EXPECT_EQ(least_match_at_least(5, kb).value_or(-1), 6);
  EXPECT_EQ(least_match_at_least(7, kb).value_or(-1), 12);
  EXPECT_EQ(greatest_match_at_most(15, kb).value_or(-1), 14);
  EXPECT_EQ(greatest_match_at_most(3, kb).value_or(-1), -1);
  // Brute-force agreement over a small window.
  for (Int lo = 0; lo < 64; ++lo) {
    Int expect = -1;
    for (Int v = lo; v < 256; ++v) {
      if (kb.admits(v)) {
        expect = v;
        break;
      }
    }
    EXPECT_EQ(least_match_at_least(lo, kb).value_or(-1), expect) << lo;
  }
}

TEST(AbsintDomain, NormalizeReducesComponentsAgainstEachOther) {
  // Congruence shaves endpoints: [1, 10] with v ≡ 0 (mod 4) → [4, 8].
  AbsVal a = AbsVal::top(1, 10);
  a.cong = Congruence{4, 0};
  normalize(a);
  EXPECT_EQ(a.range.lo, 4);
  EXPECT_EQ(a.range.hi, 8);
  // Power-of-two congruence becomes known low bits.
  EXPECT_TRUE(a.bits.mask & 0b11u);
  EXPECT_EQ(a.bits.value & 0b11u, 0u);

  // A singleton interval fixes every bit and stays consistent.
  AbsVal s = AbsVal::top(13, 13);
  normalize(s);
  EXPECT_TRUE(s.admits(13));
  EXPECT_FALSE(s.admits(12));
  EXPECT_EQ(s.bits.value, 13u);

  // Contradiction between components collapses to bottom.
  AbsVal c = AbsVal::top(3, 3);
  c.cong = Congruence{2, 0};  // 3 is odd
  normalize(c);
  EXPECT_TRUE(c.is_bottom());
}

TEST(AbsintDomain, MeetAndJoinRespectGamma) {
  AbsVal even = AbsVal::top(0, 100);
  even.cong = Congruence{2, 0};
  AbsVal mult3 = AbsVal::top(30, 90);
  mult3.cong = Congruence{3, 0};
  const AbsVal both = meet(even, mult3);
  EXPECT_TRUE(both.admits(30));
  EXPECT_TRUE(both.admits(66));
  EXPECT_FALSE(both.admits(32));  // not ≡ 0 (mod 6)
  EXPECT_FALSE(both.admits(20));  // outside [30, 90]

  const AbsVal either = join(even, mult3);
  EXPECT_TRUE(either.admits(30));
  EXPECT_TRUE(either.admits(4));
  EXPECT_TRUE(either.admits(93) || !mult3.admits(93));
}

TEST(AbsintDomain, IntervalAndCompletionQueriesRefuteSoundly) {
  AbsVal a = AbsVal::top(100, 399);
  a.cong = Congruence{10, 5};  // last digit 5
  normalize(a);
  EXPECT_TRUE(interval_admitted(a, 0, 150));
  EXPECT_FALSE(interval_admitted(a, 0, 99));
  EXPECT_FALSE(interval_admitted(a, 106, 114));  // no ≡5 value inside

  // Prefix "1" (1 digit, max 3 digits): completions {1} ∪ [10,19] ∪ [100,199].
  EXPECT_TRUE(completion_admitted(a, 1, 1, 3));
  // Prefix "4": completions {4} ∪ [40,49] ∪ [400,499] — all outside [100,399].
  EXPECT_FALSE(completion_admitted(a, 4, 1, 3));
  // Prefix "40": {40} ∪ [400,409] — refuted.
  EXPECT_FALSE(completion_admitted(a, 40, 2, 3));
  // "0" cannot extend: only the value 0 itself.
  EXPECT_FALSE(completion_admitted(a, 0, 1, 3));
  // Empty prefix admits anything while non-bottom.
  EXPECT_TRUE(completion_admitted(a, 0, 0, 3));
  EXPECT_FALSE(completion_admitted(AbsVal::bottom(), 0, 0, 3));
}

// --- transfer functions ------------------------------------------------------

TEST(AbsintTransfer, LePropagatesIntervalBothWays) {
  const auto layout = small_layout({100, 100});
  // f0 + f1 <= 30 and f0 >= 25  ⇒  f1 <= 5.
  const auto set = make_set({
      smt::le(LinExpr(VarId{0}) + LinExpr(VarId{1}), LinExpr(30)),
      smt::ge(LinExpr(VarId{0}), LinExpr(25)),
  });
  const Analysis a = analyze(set, layout);
  ASSERT_FALSE(a.infeasible);
  EXPECT_EQ(a.field(0).range.lo, 25);
  EXPECT_EQ(a.field(0).range.hi, 30);
  EXPECT_EQ(a.field(1).range.hi, 5);
  EXPECT_TRUE(a.converged);
}

TEST(AbsintTransfer, EqDerivesCongruences) {
  const auto layout = small_layout({1000, 400});
  // f0 == 2 * f1  ⇒  f0 even (and f0 <= 800).
  const auto set = make_set({
      smt::eq(LinExpr(VarId{0}), LinExpr::term(2, VarId{1})),
  });
  const Analysis a = analyze(set, layout);
  ASSERT_FALSE(a.infeasible);
  EXPECT_FALSE(a.field(0).admits(3));
  EXPECT_TRUE(a.field(0).admits(4));
  EXPECT_EQ(a.field(0).range.hi, 800);
}

TEST(AbsintTransfer, EqWithPinnedVarsSolvesExactly) {
  const auto layout = small_layout({100, 100, 100});
  // f0 + f1 + f2 == 60, f1 == 10, f2 == 20  ⇒  f0 == 30.
  const auto set = make_set({
      smt::eq(LinExpr(VarId{0}) + LinExpr(VarId{1}) + LinExpr(VarId{2}),
              LinExpr(60)),
      smt::eq(LinExpr(VarId{1}), LinExpr(10)),
      smt::eq(LinExpr(VarId{2}), LinExpr(20)),
  });
  const Analysis a = analyze(set, layout);
  ASSERT_FALSE(a.infeasible);
  EXPECT_EQ(a.field(0).range, (smt::Interval{30, 30}));
}

TEST(AbsintTransfer, DivisibilityContradictionIsBottom) {
  const auto layout = small_layout({100});
  // 2 * f0 == 7 has no integer solution.
  const auto set = make_set({
      smt::eq(LinExpr::term(2, VarId{0}), LinExpr(7)),
  });
  const Analysis a = analyze(set, layout);
  EXPECT_TRUE(a.infeasible);
}

TEST(AbsintTransfer, DisjunctionJoinsBranches) {
  const auto layout = small_layout({100});
  // f0 <= 10 OR f0 >= 90: hull [0, 100], but meet with f0 == 50 is bottom.
  const auto disj = smt::lor(smt::le(LinExpr(VarId{0}), LinExpr(10)),
                             smt::ge(LinExpr(VarId{0}), LinExpr(90)));
  {
    const Analysis a = analyze(make_set({disj}), layout);
    ASSERT_FALSE(a.infeasible);
    EXPECT_EQ(a.field(0).range.lo, 0);
    EXPECT_EQ(a.field(0).range.hi, 100);
  }
  {
    const Analysis a = analyze(
        make_set({disj, smt::eq(LinExpr(VarId{0}), LinExpr(50))}), layout);
    EXPECT_TRUE(a.infeasible);
  }
}

TEST(AbsintTransfer, NeShavesEndpoints) {
  const auto layout = small_layout({10});
  const auto set = make_set({
      smt::ne(LinExpr(VarId{0}), LinExpr(0)),
      smt::ne(LinExpr(VarId{0}), LinExpr(10)),
  });
  const Analysis a = analyze(set, layout);
  ASSERT_FALSE(a.infeasible);
  EXPECT_EQ(a.field(0).range, (smt::Interval{1, 9}));
}

TEST(AbsintTransfer, ImplicationChainsReachFixpoint) {
  const auto l = telemetry::telemetry_row_layout(telemetry::Limits{});
  const auto parsed = rules::parse_rules(
      "total <= 300\n"
      "total >= 100\n"
      "sum(fine) == total\n",
      l);
  ASSERT_TRUE(parsed.ok());
  const Analysis a = analyze(parsed.rules, l);
  ASSERT_FALSE(a.infeasible);
  EXPECT_EQ(a.field(0).range.lo, 100);
  EXPECT_EQ(a.field(0).range.hi, 300);
}

// --- soundness property vs the solver ---------------------------------------

// Random rule sets: every solver model must be admitted by the fixpoint
// state, and an abstractly infeasible set must be unsat. (The heavy 1000-
// query version with prefix/interval queries runs as `lejit_cli absint-diff`
// under the `diff` ctest label; this is the fast in-binary property.)
TEST(AbsintSoundness, SolverModelsAreAlwaysAdmitted) {
  std::mt19937_64 rng(20260808);
  const auto uniform = [&](Int lo, Int hi) {
    return std::uniform_int_distribution<Int>(lo, hi)(rng);
  };
  for (int round = 0; round < 60; ++round) {
    const int nv = static_cast<int>(uniform(2, 4));
    std::vector<Int> maxima;
    for (int i = 0; i < nv; ++i) maxima.push_back(uniform(5, 200));
    const auto layout = small_layout(maxima);
    std::vector<smt::Formula> formulas;
    const int nrules = static_cast<int>(uniform(1, 3));
    for (int r = 0; r < nrules; ++r) {
      const auto expr = [&] {
        LinExpr e;
        const int nterms = static_cast<int>(uniform(1, 3));
        for (int t = 0; t < nterms; ++t) {
          Int c = uniform(-3, 3);
          if (c == 0) c = 1;
          e += LinExpr::term(c, VarId{static_cast<int>(uniform(0, nv - 1))});
        }
        return e;
      };
      switch (uniform(0, 3)) {
        case 0: formulas.push_back(smt::le(expr(), LinExpr(uniform(-20, 200)))); break;
        case 1: formulas.push_back(smt::ge(expr(), LinExpr(uniform(-20, 60)))); break;
        case 2: formulas.push_back(smt::eq(expr(), LinExpr(uniform(0, 100)))); break;
        default:
          formulas.push_back(smt::lor(smt::le(expr(), LinExpr(uniform(0, 40))),
                                      smt::ge(expr(), LinExpr(uniform(40, 90)))));
      }
    }
    const auto set = make_set(std::move(formulas));
    const Analysis a = analyze(set, layout);

    smt::Solver solver;
    rules::declare_fields(solver, layout);
    rules::assert_rules(solver, set);
    const smt::CheckResult r = solver.check();
    if (a.infeasible) {
      EXPECT_EQ(r, smt::CheckResult::kUnsat) << "round " << round;
      continue;
    }
    if (r != smt::CheckResult::kSat) continue;
    for (int i = 0; i < nv; ++i) {
      const smt::Int v = solver.model_value(VarId{i});
      EXPECT_TRUE(a.field(i).admits(v))
          << "round " << round << " field " << i << " value " << v;
    }
  }
}

// --- differential harness ----------------------------------------------------

TEST(AbsintDiff, CleanDomainPassesAgainstMinismt) {
  diff::Config config;
  config.queries = 400;
  config.seed = 3;
  const diff::Report report = diff::run(
      config, [] { return std::make_unique<smt::MinismtBackend>(); });
  EXPECT_TRUE(report.ok()) << diff::to_text(report);
  EXPECT_GT(report.refutations, 0);
  EXPECT_EQ(report.mismatches, 0);
}

TEST(AbsintDiff, InjectedUnsoundDomainIsCaught) {
  // The deliberately broken ≤ transfer function must be detected, and the
  // repro must carry a usable transcript.
  diff::Config config;
  config.queries = 1000;
  config.seed = 3;
  config.domain.test_unsound_tighten = true;
  const diff::Report report = diff::run(
      config, [] { return std::make_unique<smt::MinismtBackend>(); });
  EXPECT_GT(report.mismatches, 0) << diff::to_text(report);
  EXPECT_NE(report.first_mismatch.find("(check-sat)"), std::string::npos);
  EXPECT_NE(report.first_mismatch.find("declare"), std::string::npos);
}

// --- decoder prefilter: bit-identity + effectiveness -------------------------

struct DecEnv {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet mined;
};

const DecEnv& dec_env() {
  static const DecEnv e = [] {
    DecEnv out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 10, .windows_per_rack = 40, .seed = 77});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    const auto windows = telemetry::all_windows(out.dataset);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const auto& w : windows)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.mined = rules::mine_rules(windows, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

core::DecoderConfig with_absint(bool on, bool cache) {
  core::DecoderConfig config{.mode = core::GuidanceMode::kFull};
  config.cache = cache;
  config.absint = on;
  return config;
}

// The acceptance gate: 64 seeded rows, absint prefilter on vs off, both
// cache settings — every observable of the decode must be identical, and the
// prefilter must actually have fired.
TEST(AbsintPrefilter, SixtyFourSeededRowsAreBitIdentical) {
  for (const bool cache : {true, false}) {
    core::GuidedDecoder with(*dec_env().model, dec_env().tokenizer,
                             dec_env().layout, dec_env().mined,
                             with_absint(true, cache));
    core::GuidedDecoder without(*dec_env().model, dec_env().tokenizer,
                                dec_env().layout, dec_env().mined,
                                with_absint(false, cache));
    std::int64_t hits = 0;
    std::int64_t checks = 0;
    for (int seed = 0; seed < 32; ++seed) {
      util::Rng a(static_cast<std::uint64_t>(seed));
      util::Rng b(static_cast<std::uint64_t>(seed));
      const core::DecodeResult ra = with.generate(a);
      const core::DecodeResult rb = without.generate(b);
      ASSERT_EQ(ra.text, rb.text) << "cache " << cache << " seed " << seed;
      EXPECT_EQ(ra.ok, rb.ok);
      EXPECT_EQ(ra.recoveries, rb.recoveries);
      EXPECT_EQ(ra.stats.interventions, rb.stats.interventions);
      hits += ra.stats.absint_hits;
      checks += ra.stats.absint_checks;
      EXPECT_EQ(rb.stats.absint_checks, 0);
    }
    EXPECT_GT(checks, 0) << "cache " << cache;
    EXPECT_GT(hits, 0) << "cache " << cache;
  }
}

// An absint-infeasible rule set must fail the decode the same way the
// solver-driven path does (never crash, never emit a row).
TEST(AbsintPrefilter, InfeasibleRuleSetStillFailsCleanly) {
  const auto l = dec_env().layout;
  const auto parsed = rules::parse_rules(
      "total >= 10\n"
      "total <= 5\n",
      l);
  ASSERT_TRUE(parsed.ok());
  core::GuidedDecoder dec(*dec_env().model, dec_env().tokenizer, l,
                          parsed.rules, with_absint(true, true));
  util::Rng rng(1);
  const core::DecodeResult r = dec.generate(rng);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace lejit::absint
