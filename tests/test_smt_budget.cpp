#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "obs/timer.hpp"
#include "smt/solver.hpp"

namespace lejit::smt {
namespace {

// Pigeonhole: 4 all-different variables over a 3-value domain. UNSAT, and
// bounds propagation alone cannot see it — the proof needs real search,
// which makes the instance a reliable budget burner.
Solver pigeonhole(SolverConfig config = {}) {
  Solver s(config);
  std::vector<VarId> v;
  for (int i = 0; i < 4; ++i)
    v.push_back(s.add_var("p" + std::to_string(i), 0, 2));
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      s.add(ne(LinExpr(v[i]), LinExpr(v[j])));
  return s;
}

// All-different permutation of {0..5}: SAT, with a weighted cost whose
// optimality proof must refute many near-optimal assignments.
struct Permutation {
  Solver solver;
  LinExpr cost;
};
Permutation permutation(SolverConfig config = {}) {
  Permutation p{Solver(config), LinExpr()};
  std::vector<VarId> v;
  for (int i = 0; i < 6; ++i)
    v.push_back(p.solver.add_var("q" + std::to_string(i), 0, 5));
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      p.solver.add(ne(LinExpr(v[i]), LinExpr(v[j])));
  for (int i = 0; i < 6; ++i)
    p.cost = p.cost + static_cast<Int>(i + 1) * LinExpr(v[static_cast<std::size_t>(i)]);
  return p;
}

TEST(SolverBudget, DefaultBudgetIsUnlimited) {
  EXPECT_TRUE(Budget{}.unlimited());
  EXPECT_FALSE(Budget{.max_nodes = 10}.unlimited());
  EXPECT_FALSE(Budget{.deadline_ns = 1}.unlimited());
}

TEST(SolverBudget, DeadlineInMsIsAbsolute) {
  const std::int64_t before = obs::now_ns();
  const Budget b = Budget::deadline_in_ms(1000);
  EXPECT_GE(b.deadline_ns, before + 900'000'000);
  EXPECT_EQ(b.max_nodes, 0);
}

TEST(SolverBudget, TightNodeBudgetYieldsUnknown) {
  Solver s = pigeonhole();
  EXPECT_EQ(s.check(Budget{.max_nodes = 1}), CheckResult::kUnknown);
  EXPECT_EQ(s.stats().unknowns, 1);
  EXPECT_EQ(s.stats().node_exhaustions, 1);
  EXPECT_EQ(s.stats().deadline_exhaustions, 0);
}

TEST(SolverBudget, BudgetOverridesConfigCapInBothDirections) {
  // Config cap so small every unaided check gives up …
  Solver s = pigeonhole(SolverConfig{.max_nodes = 1});
  EXPECT_EQ(s.check(), CheckResult::kUnknown);
  // … yet a looser per-query budget still proves UNSAT (this is what the
  // decoder's escalation path relies on) …
  EXPECT_EQ(s.check(Budget{.max_nodes = 1'000'000}), CheckResult::kUnsat);
  // … and the config default still applies when the budget leaves it alone.
  EXPECT_EQ(s.check(Budget{}), CheckResult::kUnknown);
}

TEST(SolverBudget, ExpiredDeadlineYieldsUnknown) {
  Solver s = pigeonhole();
  // An already-passed absolute deadline: the first search node trips it.
  EXPECT_EQ(s.check(Budget{.deadline_ns = 1}), CheckResult::kUnknown);
  EXPECT_EQ(s.stats().deadline_exhaustions, 1);
  EXPECT_EQ(s.stats().node_exhaustions, 0);
  // A generous deadline changes nothing about the verdict.
  EXPECT_EQ(s.check(Budget::deadline_in_ms(60'000)), CheckResult::kUnsat);
}

TEST(SolverBudget, TryFeasibleIntervalGivesUpGracefully) {
  Permutation p = permutation();
  const VarId q0{0};
  const std::optional<Interval> starved =
      p.solver.try_feasible_interval(q0, {}, Budget{.max_nodes = 1});
  EXPECT_FALSE(starved.has_value());

  const std::optional<Interval> exact = p.solver.try_feasible_interval(q0);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(*exact, p.solver.feasible_interval(q0));
  EXPECT_EQ(exact->lo, 0);
  EXPECT_EQ(exact->hi, 5);
}

TEST(SolverBudget, FeasibleIntervalStillThrowsOnExhaustion) {
  Permutation p = permutation(SolverConfig{.max_nodes = 1});
  EXPECT_THROW(p.solver.feasible_interval(VarId{0}), util::RuntimeError);
}

TEST(SolverBudget, MinimizeIsBestEffortWhenBudgetRunsOutMidOptimization) {
  // Generous solver: the certified optimum to compare against.
  Permutation free = permutation();
  const auto optimal = free.solver.minimize(free.cost);
  ASSERT_TRUE(optimal.has_value());
  ASSERT_TRUE(optimal->proven_optimal);

  // Starved solver: enough nodes to find *a* permutation, not enough to
  // refute every cheaper cost bound. minimize must still return a feasible
  // model and admit the lost certificate instead of throwing.
  Permutation starved = permutation(SolverConfig{.max_nodes = 40});
  const auto best_effort = starved.solver.minimize(starved.cost);
  ASSERT_TRUE(best_effort.has_value());
  EXPECT_FALSE(best_effort->proven_optimal);
  EXPECT_GE(best_effort->cost, optimal->cost);
  EXPECT_EQ(best_effort->cost, starved.cost.eval(best_effort->model));
  // The model is a real all-different assignment, not budget debris.
  std::vector<bool> seen(6, false);
  for (const Int value : best_effort->model) {
    ASSERT_GE(value, 0);
    ASSERT_LE(value, 5);
    EXPECT_FALSE(seen[static_cast<std::size_t>(value)]);
    seen[static_cast<std::size_t>(value)] = true;
  }
}

TEST(SolverBudget, MinimizeThrowsWhenEvenTheFirstCheckStarves) {
  Permutation starved = permutation(SolverConfig{.max_nodes = 1});
  EXPECT_THROW(starved.solver.minimize(starved.cost), util::RuntimeError);
}

TEST(SolverBudget, InjectedUnknownLooksLikeBudgetExhaustionToCallers) {
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  Solver s = pigeonhole();
  EXPECT_EQ(s.check(), CheckResult::kUnknown);
  EXPECT_EQ(s.stats().unknowns, 1);
  EXPECT_EQ(s.stats().injected_unknowns, 1);
  EXPECT_EQ(s.stats().node_exhaustions, 0);
  EXPECT_FALSE(s.try_feasible_interval(VarId{0}).has_value());
}

}  // namespace
}  // namespace lejit::smt
