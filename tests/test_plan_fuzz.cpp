// Fail-closed fuzzing of the decode-plan loader (plan::from_json).
//
// A plan artifact is an on-disk input crossing a trust boundary: it may come
// from another machine, an older build, or an attacker-adjacent CI cache.
// The loader's contract is *clean rejection* — util::RuntimeError with a
// message, never UB, OOM, or a silently wrong plan. These tests run in the
// stress binary so the `stress` ctest label exercises them under ASan+UBSan
// (tools/run_stress_sanitized.sh), where the historical failure modes
// (float-cast overflow on absurd numbers, count-driven allocations) actually
// trip.
//
// Three corpora:
//   1. Truncations: every strict prefix of a valid artifact.
//   2. Seeded single-byte/single-bit corruptions of a valid artifact. A
//      mutation may land in an ignorable spot (whitespace, a digit inside a
//      range-valid number) and still parse — that is fine; what is not fine
//      is any escape other than util::RuntimeError.
//   3. Hand-written absurdities: counts near integer limits, 1e300 where an
//      int belongs, deep nesting, wrong types, duplicate/missing members.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "plan/plan.hpp"
#include "rules/rule.hpp"
#include "smt/formula.hpp"
#include "telemetry/text.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lejit::plan {
namespace {

telemetry::RowLayout two_field_layout() {
  telemetry::RowLayout layout;
  layout.fields.push_back({"T=", "x", 99, false});
  layout.fields.push_back({" E=", "y", 99, false});
  layout.suffix = "\n";
  return layout;
}

std::string valid_artifact() {
  rules::RuleSet set;
  const smt::VarId x{0};
  rules::Rule r;
  r.description = "x <= 50";
  r.kind = rules::RuleKind::kManual;
  r.formula = smt::le(smt::LinExpr(x), smt::LinExpr(smt::Int{50}));
  set.rules.push_back(std::move(r));
  return to_json(compile(set, two_field_layout()));
}

// The only acceptable outcomes: a parsed plan or util::RuntimeError. Any
// other exception, or a sanitizer report, fails the test.
void expect_clean(const std::string& doc) {
  try {
    const DecodePlan p = from_json(doc);
    (void)p;
  } catch (const util::RuntimeError&) {
    // clean rejection
  }
}

TEST(PlanFuzz, EveryTruncationRejectsCleanly) {
  const std::string doc = valid_artifact();
  ASSERT_GT(doc.size(), 2u);
  for (std::size_t n = 0; n < doc.size(); ++n)
    expect_clean(doc.substr(0, n));
}

TEST(PlanFuzz, SeededByteCorruptionsNeverEscape) {
  const std::string doc = valid_artifact();
  util::Rng rng(0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 4000; ++i) {
    std::string mutated = doc;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    expect_clean(mutated);
  }
}

TEST(PlanFuzz, SeededBitFlipsNeverEscape) {
  const std::string doc = valid_artifact();
  util::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    std::string mutated = doc;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ (1 << rng.uniform_int(0, 7)));
    expect_clean(mutated);
  }
}

TEST(PlanFuzz, SeededSpliceCorruptionsNeverEscape) {
  // Deletions and duplications shift structure boundaries — a different
  // failure surface than in-place flips (unbalanced containers, severed
  // strings, doubled keys).
  const std::string doc = valid_artifact();
  util::Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = doc;
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(doc.size()) - 1));
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, 16));
    if (rng.bernoulli(0.5))
      mutated.erase(a, len);
    else
      mutated.insert(a, doc.substr(a, len));
    expect_clean(mutated);
  }
}

// A malformed document must throw, specifically — these inputs make claims
// a correct loader can never accept.
void expect_rejected(const std::string& doc) {
  EXPECT_THROW((void)from_json(doc), util::RuntimeError) << doc;
}

std::string with_field(const std::string& key, const std::string& json_value) {
  // A minimal otherwise-valid artifact with one member replaced.
  std::string doc =
      "{\"schema_version\": 1, \"fingerprint\": \"0000000000000000\", "
      "\"num_fields\": 0, \"num_rules\": 0, \"satisfiable\": \"unknown\", "
      "\"partition_verified\": false, \"solver_checks\": 0, "
      "\"field_cluster\": [], \"constant_rules\": [], \"clusters\": [], "
      "\"tables\": []}";
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = doc.find(needle);
  EXPECT_NE(at, std::string::npos) << key;
  const std::size_t value_at = at + needle.size();
  std::size_t end = doc.find_first_of(",}", value_at);
  if (doc[value_at] == '[') end = doc.find(']', value_at) + 1;
  return doc.substr(0, value_at) + json_value + doc.substr(end);
}

TEST(PlanFuzz, AbsurdCountsRejectWithoutAllocating) {
  // Billions of fields, tables, or digits: the loader must bound-check the
  // counts before trusting them, not resize first and die on OOM.
  expect_rejected(with_field("num_fields", "1000000000"));
  expect_rejected(with_field("num_fields", "-1"));
  expect_rejected(with_field("num_rules", "99999999999999"));
  expect_rejected(with_field("num_rules", "-5"));
  expect_rejected(
      "{\"schema_version\": 1, \"fingerprint\": \"0000000000000000\", "
      "\"num_fields\": 1, \"num_rules\": 0, \"satisfiable\": \"sat\", "
      "\"partition_verified\": false, \"solver_checks\": 0, "
      "\"field_cluster\": [-1], \"constant_rules\": [], \"clusters\": [], "
      "\"tables\": [{\"field\": 0, \"max_digits\": 1000000, \"always\": [], "
      "\"never\": [], \"verified\": []}]}");
}

TEST(PlanFuzz, HugeAndNonIntegralNumbersReject) {
  // 1e300 is finite but far outside int64 — the exact input that turns a
  // bare static_cast into float-cast-overflow UB.
  expect_rejected(with_field("solver_checks", "1e300"));
  expect_rejected(with_field("solver_checks", "-1e300"));
  expect_rejected(with_field("num_fields", "1e300"));
  expect_rejected(with_field("solver_checks", "1e999"));  // parses to inf
  expect_rejected(with_field("solver_checks", "3.5"));    // non-integral
  expect_rejected(with_field("num_fields", "9223372036854775807"));
}

TEST(PlanFuzz, WrongTypesAndMissingMembersReject) {
  expect_rejected(with_field("fingerprint", "12345"));       // number, not hex string
  expect_rejected(with_field("fingerprint", "\"xyz\""));     // non-hex
  expect_rejected(with_field("satisfiable", "\"maybe\""));   // unknown verdict
  expect_rejected(with_field("partition_verified", "\"yes\""));
  expect_rejected(with_field("field_cluster", "{}"));
  expect_rejected(with_field("clusters", "[{}]"));           // cluster w/o members
  expect_rejected(with_field("schema_version", "999"));
  expect_rejected("{}");
  expect_rejected("");
  expect_rejected("null");
  expect_rejected("[1,2,3]");
}

TEST(PlanFuzz, DeepNestingIsBounded) {
  // The JSON parser's recursion must be depth-capped, not stack-limited.
  std::string deep(100000, '[');
  expect_rejected(deep);
  expect_rejected(with_field("field_cluster", std::string(5000, '[')));
}

TEST(PlanFuzz, ContradictoryTableClaimsReject) {
  expect_rejected(
      "{\"schema_version\": 1, \"fingerprint\": \"0000000000000000\", "
      "\"num_fields\": 1, \"num_rules\": 0, \"satisfiable\": \"sat\", "
      "\"partition_verified\": false, \"solver_checks\": 0, "
      "\"field_cluster\": [-1], \"constant_rules\": [], \"clusters\": [], "
      "\"tables\": [{\"field\": 0, \"max_digits\": 1, \"always\": [1, 0], "
      "\"never\": [1, 0], \"verified\": [1, 1]}]}");
}

}  // namespace
}  // namespace lejit::plan
