#include <gtest/gtest.h>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::core {
namespace {

using telemetry::Window;

// Shared fixture: a synthetic fleet, a trained n-gram LM over its row text,
// and mined + manual rule sets.
struct Env {
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  std::vector<Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
  rules::RuleSet mined;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 18, .windows_per_rack = 60, .seed = 21});
    out.split = telemetry::split_by_rack(out.dataset, 3, 5);
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.split.train);
    out.test = telemetry::all_windows(out.split.test);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    out.mined =
        rules::mine_rules(out.train, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

TEST(GuidedDecoder, RejectsMismatchedTokenizer) {
  const lm::CharTokenizer small("0123456789");
  const lm::NgramModel model(small.vocab_size());
  EXPECT_THROW(GuidedDecoder(model, small, env().layout, env().manual),
               util::PreconditionError);
}

TEST(GuidedDecoder, SyntaxModeAlwaysParses) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout,
                    rules::RuleSet{},
                    DecoderConfig{.mode = GuidanceMode::kSyntax});
  util::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const DecodeResult r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << r.text;
    ASSERT_TRUE(r.window.has_value());
    EXPECT_EQ(r.stats.solver_checks, 0) << "grammar mode must not call the solver";
  }
}

TEST(GuidedDecoder, FullModeCompliesWithManualRules) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(2);
  for (int i = 0; i < 25; ++i) {
    const DecodeResult r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_TRUE(rules::violated_rules(env().manual, *r.window).empty())
        << "violating row: " << r.text;
  }
}

TEST(GuidedDecoder, FullModeCompliesWithHundredsOfMinedRules) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().mined,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const DecodeResult r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_TRUE(rules::violated_rules(env().mined, *r.window).empty())
        << "violating row: " << r.text;
  }
}

TEST(GuidedDecoder, ImputationPreservesThePrompt) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(4);
  for (int i = 0; i < 15; ++i) {
    const Window& truth = env().test[static_cast<std::size_t>(i * 7)];
    const std::string prompt = telemetry::imputation_prompt(truth);
    const DecodeResult r = dec.generate(rng, prompt);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.text.starts_with(prompt));
    EXPECT_EQ(r.window->total, truth.total);
    EXPECT_EQ(r.window->ecn, truth.ecn);
    EXPECT_EQ(r.window->conn, truth.conn);
  }
}

TEST(GuidedDecoder, ImputedWindowsSatisfyAllRulesGivenFeasiblePrompts) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().mined,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(5);
  int feasible = 0, infeasible = 0;
  for (int i = 0; i < 12; ++i) {
    const Window& truth = env().test[static_cast<std::size_t>(i * 11)];
    const DecodeResult r =
        dec.generate(rng, telemetry::imputation_prompt(truth));
    if (r.infeasible_prompt) {
      ++infeasible;
      continue;
    }
    ++feasible;
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(rules::violated_rules(env().mined, *r.window).empty())
        << r.text;
  }
  EXPECT_GT(feasible, infeasible)
      << "slack-mined rules should admit most unseen prompts";
}

TEST(GuidedDecoder, SumRuleOftenForcesTheFinalValue) {
  // With the exact-accounting rule active, the last fine slot is uniquely
  // determined (paper Fig. 1b, step 5): verify via the imputation path that
  // the produced window satisfies the sum exactly.
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const Window& truth = env().test[static_cast<std::size_t>(i)];
    const DecodeResult r =
        dec.generate(rng, telemetry::imputation_prompt(truth));
    ASSERT_TRUE(r.ok);
    smt::Int sum = 0;
    for (const auto v : r.window->fine) sum += v;
    EXPECT_EQ(sum, truth.total);
  }
}

TEST(GuidedDecoder, StatsAreCoherent) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(7);
  const DecodeResult r = dec.generate(rng);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.stats.chars, 0);
  EXPECT_GT(r.stats.lm_calls, 0);
  EXPECT_GT(r.stats.solver_checks, 0);
  EXPECT_GE(r.stats.masked_steps, r.stats.interventions);
  EXPECT_GE(r.stats.removed_mass, 0.0);
  EXPECT_LE(r.stats.mean_removed_mass(), 1.0);
}

TEST(GuidedDecoder, MinimallyInvasiveOnAWellTrainedModel) {
  // The n-gram has memorized mostly-compliant rows, so LeJIT should rarely
  // have to remove much probability mass (the paper's §3 argument).
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(8);
  double removed = 0.0;
  std::int64_t steps = 0;
  for (int i = 0; i < 20; ++i) {
    const DecodeResult r = dec.generate(rng);
    removed += r.stats.removed_mass;
    steps += r.stats.masked_steps;
  }
  ASSERT_GT(steps, 0);
  EXPECT_LT(removed / static_cast<double>(steps), 0.35)
      << "guidance should prune a minority of the LM's probability mass";
}

TEST(GuidedDecoder, UnguidedModeNeverTouchesTheSolver) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kNone});
  util::Rng rng(9);
  const DecodeResult r = dec.generate(rng);
  EXPECT_EQ(r.stats.solver_checks, 0);
  // A 6-gram over this tiny grammar emits parseable rows most of the time,
  // but nothing enforces it — ok may legitimately be false.
}

TEST(GuidedDecoder, UnguidedModeRespectsTokenCap) {
  // An untrained model babbles; the cap must bound the row length.
  const lm::NgramModel fresh(env().tokenizer.vocab_size());
  GuidedDecoder dec(fresh, env().tokenizer, env().layout, rules::RuleSet{},
                    DecoderConfig{.mode = GuidanceMode::kNone,
                                  .max_free_tokens = 40});
  util::Rng rng(10);
  const DecodeResult r = dec.generate(rng);
  EXPECT_LE(r.stats.chars, 40);
}

TEST(GuidedDecoder, InfeasiblePromptIsReportedNotGenerated) {
  // A prompt with ecn > 0 but total = 0 contradicts the burst implication
  // (no fine value can reach BW/2 when they must all be 0).
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(11);
  const DecodeResult r = dec.generate(rng, "T=0 E=12 R=0 C=50 G=0|");
  EXPECT_TRUE(r.infeasible_prompt);
  EXPECT_FALSE(r.ok);
}

// --- hull-only guidance (the "no exact look-ahead" ablation) -----------------

TEST(HullGuidance, CompliantOrDeadEndNeverViolating) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kHull});
  util::Rng rng(31);
  int ok_count = 0, dead_ends = 0;
  for (int i = 0; i < 25; ++i) {
    const DecodeResult r = dec.generate(rng);
    if (r.dead_end) {
      ++dead_ends;
      EXPECT_FALSE(r.ok);
      continue;
    }
    ASSERT_TRUE(r.ok) << r.text;
    ++ok_count;
    EXPECT_TRUE(rules::violated_rules(env().manual, *r.window).empty())
        << "hull guidance must still be sound on completed rows: " << r.text;
  }
  EXPECT_GT(ok_count, 0);
  (void)dead_ends;  // may legitimately be zero on easy rule sets
}

TEST(HullGuidance, DeadEndsInAnEngineeredHole) {
  // Rules carve {0..10} ∪ {30..40} for I0; the hull [0,40] cannot see the
  // hole. An LM trained to always write I0 = 15 walks straight into it.
  rules::RuleSet holey;
  const smt::VarId i0{rules::field_index(env().layout, "I0")};
  holey.rules.push_back(rules::Rule{
      .description = "I0 in {0..10} u {30..40}",
      .kind = rules::RuleKind::kManual,
      .formula = smt::land(
          smt::lor(smt::le(smt::LinExpr(i0), smt::LinExpr(10)),
                   smt::ge(smt::LinExpr(i0), smt::LinExpr(30))),
          smt::le(smt::LinExpr(i0), smt::LinExpr(40))),
      .uses_fine = true,
  });

  // Deterministic LM: memorizes one row whose I0 is 15 (inside the hole).
  telemetry::Window w = env().train.front();
  w.fine.assign(w.fine.size(), 15);
  w.total = 15 * static_cast<smt::Int>(w.fine.size());
  w.ecn = 0;
  w.rtx = 0;
  w.egress = 10;
  lm::NgramModel memorizer(env().tokenizer.vocab_size(),
                           lm::NgramConfig{.order = 8});
  for (int i = 0; i < 50; ++i)
    memorizer.observe(env().tokenizer.encode(telemetry::window_to_row(w)));

  const lm::SamplerConfig greedy{.temperature = 0.0};
  util::Rng rng(32);

  GuidedDecoder hull(memorizer, env().tokenizer, env().layout, holey,
                     DecoderConfig{.mode = GuidanceMode::kHull,
                                   .sampler = greedy});
  const DecodeResult hull_result =
      hull.generate(rng, telemetry::imputation_prompt(w));
  EXPECT_TRUE(hull_result.dead_end)
      << "hull masking cannot see the hole: " << hull_result.text;

  GuidedDecoder full(memorizer, env().tokenizer, env().layout, holey,
                     DecoderConfig{.mode = GuidanceMode::kFull,
                                   .sampler = greedy});
  const DecodeResult full_result =
      full.generate(rng, telemetry::imputation_prompt(w));
  ASSERT_TRUE(full_result.ok) << "exact look-ahead never dead-ends";
  EXPECT_TRUE(rules::violated_rules(holey, *full_result.window).empty());
  const smt::Int i0_value = full_result.window->fine[0];
  EXPECT_TRUE((i0_value >= 0 && i0_value <= 10) ||
              (i0_value >= 30 && i0_value <= 40))
      << "I0 = " << i0_value;
}

TEST(HullGuidance, FullModeNeverDeadEnds) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().mined,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(33);
  for (int i = 0; i < 10; ++i) {
    const DecodeResult r = dec.generate(rng);
    EXPECT_FALSE(r.dead_end);
    EXPECT_TRUE(r.ok);
  }
}

TEST(GuidedDecoder, GeneratorIsDeterministicGivenSeed) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng a(12), b(12);
  EXPECT_EQ(dec.generate(a).text, dec.generate(b).text);
}

TEST(GuidedDecoder, SolverScopesAreBalancedAcrossCalls) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().mined,
                    DecoderConfig{.mode = GuidanceMode::kFull});
  util::Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const DecodeResult r = dec.generate(rng);
    ASSERT_TRUE(r.ok || r.infeasible_prompt);
  }
  // If scopes leaked, mined-rule compliance would silently tighten across
  // calls until everything became infeasible — five successful rows above is
  // the behavioural check; this is the structural one:
  const DecodeResult r = dec.generate(rng);
  EXPECT_TRUE(r.ok);
}

}  // namespace
}  // namespace lejit::core
