// Fault-injection stress tests (ctest label `stress`; also run under
// ASan+UBSan by tools/run_stress_sanitized.sh).
//
// The headline scenario is ISSUE acceptance: with injection forcing a
// double-digit percentage of solver checks to kUnknown and one scripted
// batch-row failure, a 32-row batch must complete with every non-faulted
// row valid, dead-end recovery must save a kHull row, and the obs counters
// must agree with the injector's own ground-truth counts.
//
// Determinism note (DESIGN.md §8.5): probabilistic decisions are keyed by a
// per-site call counter, so under a thread pool *which* check is faulted is
// schedule-dependent while rates and totals are not. Tests that pin exact
// per-row outcomes therefore run the batch on one thread (fully
// deterministic); the multithreaded storm asserts aggregates only.
#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/decoder.hpp"
#include "fault/fault.hpp"
#include "lm/ngram.hpp"
#include "obs/metrics.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::core {
namespace {

using telemetry::Window;

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  std::vector<Window> windows;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 8, .windows_per_rack = 30, .seed = 5});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.windows = telemetry::all_windows(out.dataset);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.windows)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    return out;
  }();
  return e;
}

// Resilient decoder factory: escalate unknowns, recover dead ends.
DecoderFactory resilient_factory() {
  return [] {
    DecoderConfig config{.mode = GuidanceMode::kFull};
    config.resilience.on_unknown = UnknownPolicy::kEscalate;
    config.resilience.escalation_factor = 8;
    config.resilience.max_escalations = 4;
    config.resilience.retry_budget = 2;
    return std::make_unique<GuidedDecoder>(*env().model, env().tokenizer,
                                           env().layout, env().manual,
                                           config);
  };
}

std::int64_t counter_value(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

TEST(ResilienceStress, AcceptanceBatchSurvivesUnknownStormAndRowFault) {
  obs::set_metrics_enabled(true);
  const std::int64_t unknowns_before = counter_value("fault.injected_unknowns");
  const std::int64_t row_faults_before =
      counter_value("fault.injected_row_faults");
  const std::int64_t degraded_before = counter_value("batch.degraded_rows");
  const std::int64_t smt_unknowns_before = counter_value("smt.unknowns");

  fault::Plan plan;
  plan.seed = 11;
  plan.site(fault::Site::kSolverCheck).p_unknown = 0.15;  // ≥10% of checks
  plan.fail_rows = {{5, 99}};  // row 5 dies on every attempt → degraded

  fault::Counts injected;
  BatchReport report;
  {
    const fault::ScopedPlan scoped{plan};
    std::vector<Window> prompts(env().windows.begin(),
                                env().windows.begin() + 32);
    BatchConfig config{.threads = 1, .seed = 13};  // exact determinism
    config.row_retries = 1;
    report = impute_batch(resilient_factory(), prompts, config);
    injected = fault::Injector::instance().counts();
  }

  // The batch completed, and only the scripted row degraded.
  ASSERT_EQ(report.results.size(), 32u);
  EXPECT_EQ(report.degraded_rows, 1u);
  EXPECT_EQ(report.results[5].reason, FailReason::kFault);
  EXPECT_FALSE(report.results[5].ok);
  EXPECT_EQ(report.row_retries, 1u);  // the scripted row's one retry

  // Every non-faulted row completed and violates nothing.
  std::int64_t unknown_checks = 0;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    if (i == 5) continue;
    const DecodeResult& r = report.results[i];
    ASSERT_TRUE(r.ok) << "row " << i << ": "
                      << fail_reason_name(r.reason) << " — " << r.fail_detail;
    EXPECT_TRUE(rules::violated_rules(env().manual, *r.window).empty())
        << "row " << i << ": " << r.text;
    unknown_checks += r.stats.unknown_checks;
  }

  // The storm actually happened: a sizeable fraction of checks was forced
  // inconclusive, and the decoders saw (some of) them.
  EXPECT_GT(injected.calls, 500);
  EXPECT_GE(injected.unknowns * 10, injected.calls)
      << "plan promises ≥10% forced unknowns";
  EXPECT_GT(unknown_checks, 0);
  EXPECT_EQ(injected.row_faults, 2);  // row 5: attempts 0 and 1

  // Observability agrees with the injector's ground truth.
  EXPECT_EQ(counter_value("fault.injected_unknowns") - unknowns_before,
            injected.unknowns);
  EXPECT_EQ(counter_value("fault.injected_row_faults") - row_faults_before,
            injected.row_faults);
  EXPECT_EQ(counter_value("batch.degraded_rows") - degraded_before, 1);
  // Injected unknowns surface through the normal smt.unknowns counter too
  // (organic budget exhaustion could add more, never less).
  EXPECT_GE(counter_value("smt.unknowns") - smt_unknowns_before,
            injected.unknowns);
}

TEST(ResilienceStress, HullRowRecoversFromADeadEndUnderInjection) {
  obs::set_metrics_enabled(true);
  // Engineered hole: I0 feasible in {0..10} ∪ {30..40}, LM memorized 15.
  rules::RuleSet holey;
  const smt::VarId i0{rules::field_index(env().layout, "I0")};
  holey.rules.push_back(rules::Rule{
      .description = "I0 in {0..10} u {30..40}",
      .kind = rules::RuleKind::kManual,
      .formula = smt::land(
          smt::lor(smt::le(smt::LinExpr(i0), smt::LinExpr(10)),
                   smt::ge(smt::LinExpr(i0), smt::LinExpr(30))),
          smt::le(smt::LinExpr(i0), smt::LinExpr(40))),
      .uses_fine = true,
  });
  Window row = env().windows.front();
  row.fine.assign(row.fine.size(), 15);
  row.total = 15 * static_cast<smt::Int>(row.fine.size());
  row.ecn = 0;
  row.rtx = 0;
  row.egress = 10;
  lm::NgramModel memorizer(env().tokenizer.vocab_size(),
                           lm::NgramConfig{.order = 8});
  for (int i = 0; i < 50; ++i)
    memorizer.observe(env().tokenizer.encode(telemetry::window_to_row(row)));

  // A mild unknown storm on top — the kEscalate policy must absorb it.
  fault::Plan plan;
  plan.seed = 3;
  plan.site(fault::Site::kSolverCheck).p_unknown = 0.1;
  const fault::ScopedPlan scoped{plan};

  DecoderConfig config{.mode = GuidanceMode::kHull,
                       .sampler = {.temperature = 0.0}};
  config.resilience.retry_budget = 3;
  config.resilience.max_escalations = 6;
  GuidedDecoder dec(memorizer, env().tokenizer, env().layout, holey, config);
  util::Rng rng(32);
  const DecodeResult r = dec.generate(rng, telemetry::imputation_prompt(row));
  ASSERT_TRUE(r.ok) << fail_reason_name(r.reason) << " — " << r.fail_detail;
  EXPECT_GE(r.recoveries, 1) << "the hole must have forced a recovery";
  EXPECT_TRUE(rules::violated_rules(holey, *r.window).empty()) << r.text;
}

TEST(ResilienceStress, MultithreadedStormAssertsAggregatesOnly) {
  obs::set_metrics_enabled(true);
  const std::int64_t unknowns_before = counter_value("fault.injected_unknowns");
  const std::int64_t throws_before = counter_value("fault.injected_throws");

  fault::Plan plan;
  plan.seed = 17;
  plan.site(fault::Site::kSolverCheck).p_unknown = 0.12;
  plan.site(fault::Site::kLmForward).p_throw = 0.02;  // real row faults
  plan.fail_rows = {{3, 99}};

  fault::Counts injected;
  BatchReport report;
  {
    const fault::ScopedPlan scoped{plan};
    BatchConfig config{.threads = 4, .seed = 23};
    config.row_retries = 2;
    report = synthesize_batch(resilient_factory(), 32, config);
    injected = fault::Injector::instance().counts();
  }

  ASSERT_EQ(report.results.size(), 32u);
  // The scripted row always degrades; LM throws may degrade a few more, but
  // the batch itself never dies and the ledger stays consistent.
  EXPECT_GE(report.degraded_rows, 1u);
  EXPECT_FALSE(report.results[3].ok);
  EXPECT_EQ(report.results[3].reason, FailReason::kFault);
  std::size_t ok = 0, faulted = 0;
  for (const DecodeResult& r : report.results) {
    if (r.ok) {
      ++ok;
      EXPECT_TRUE(rules::violated_rules(env().manual, *r.window).empty())
          << r.text;
    } else {
      // Which rows fault is schedule-dependent; that they carry a reason
      // and never a violating window is not.
      EXPECT_NE(r.reason, FailReason::kNone) << r.fail_detail;
      if (r.reason == FailReason::kFault) ++faulted;
    }
  }
  EXPECT_EQ(faulted, report.degraded_rows);
  EXPECT_GT(ok, 16u) << "the storm must not drown the majority of rows";
  EXPECT_GE(report.row_retries, 1u);

  // Counter/ground-truth agreement holds regardless of schedule.
  EXPECT_EQ(counter_value("fault.injected_unknowns") - unknowns_before,
            injected.unknowns);
  EXPECT_EQ(counter_value("fault.injected_throws") - throws_before,
            injected.throws);
  EXPECT_GT(injected.unknowns, 0);
}

}  // namespace
}  // namespace lejit::core
