// Serve / shared-model concurrency stress (ctest label `stress`; the CI
// tsan job runs this binary under ThreadSanitizer via the stress-tsan
// preset).
//
// Two hazards are pinned here:
//   1. Sharing ONE Transformer instance across batch worker threads races
//      its internal KV cache. The ReentrancyGuard on Transformer::logits()
//      must catch that misuse deterministically — abort with a message
//      naming the fix — instead of silently corrupting decoded text.
//   2. The serve runtime (queue + rendezvous batcher + session pool) must
//      stay data-race-free and bit-identical to sequential decode under
//      maximum contention: more runnable session threads than cores,
//      repeated run() reuse, sessions retiring at different times.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/decoder.hpp"
#include "rules/miner.hpp"
#include "serve/serve.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

namespace lejit::serve {
namespace {

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::Transformer> model;
  rules::RuleSet mined;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 4, .windows_per_rack = 12, .seed = 31});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    util::Rng rng(8);
    out.model = std::make_unique<lm::Transformer>(
        lm::TransformerConfig{.vocab_size = out.tokenizer.vocab_size(),
                              .d_model = 16,
                              .n_layers = 2,
                              .n_heads = 2,
                              .d_ff = 24,
                              .max_seq = 48},
        rng);
    const auto windows = telemetry::all_windows(out.dataset);
    out.mined =
        rules::mine_rules(windows, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

core::DecoderConfig full_config() {
  return core::DecoderConfig{.mode = core::GuidanceMode::kFull};
}

// Hazard 1: a DecoderFactory that closes over ONE shared Transformer hands
// the same internal KV cache to every batch worker. The guard must turn
// that race into a deterministic abort pointing at TransformerSession.
TEST(ServeStressDeathTest, SharedTransformerAcrossBatchWorkersAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const core::DecoderFactory shared_model_factory = [] {
    return std::make_unique<core::GuidedDecoder>(
        *env().model, env().tokenizer, env().layout, env().mined,
        full_config());
  };
  EXPECT_DEATH(
      {
        // Plenty of rows on several threads: each decode step calls
        // logits(), so overlapping entry is immediate and the guard fires
        // long before the batch completes.
        (void)core::synthesize_batch(shared_model_factory, 32,
                                     core::BatchConfig{.threads = 4});
      },
      "entered concurrently");
}

// The supported spellings of the same workload must NOT die: one decoder
// per thread via TransformerSession (its own KV cache view), or the serve
// runtime (which routes forwards through the Batcher, never the internal
// cache).
TEST(ServeStress, PerThreadSessionsDecodeTheSharedModelSafely) {
  // The factory runs concurrently on the worker threads, so the session
  // pool keeping the borrowed LanguageModels alive needs its own lock.
  std::mutex mu;
  std::vector<std::unique_ptr<lm::TransformerSession>> sessions;
  const core::DecoderFactory session_factory = [&] {
    auto session = std::make_unique<lm::TransformerSession>(*env().model);
    lm::TransformerSession& view = *session;
    {
      const std::lock_guard<std::mutex> lock(mu);
      sessions.push_back(std::move(session));
    }
    return std::make_unique<core::GuidedDecoder>(
        view, env().tokenizer, env().layout, env().mined, full_config());
  };
  const core::BatchReport report = core::synthesize_batch(
      session_factory, 24, core::BatchConfig{.threads = 4, .seed = 6});
  ASSERT_EQ(report.results.size(), 24u);
  EXPECT_EQ(report.ok, 24u);
  EXPECT_EQ(report.degraded_rows, 0u);
}

// Hazard 2: oversubscribed serve under tsan. 16 session threads on a small
// machine, two back-to-back runs reusing the same pool, output compared to
// the sequential oracle both times.
TEST(ServeStress, OversubscribedServerStaysBitIdenticalAcrossRuns) {
  const std::vector<std::string> prompts(48, std::string());

  core::GuidedDecoder reference(*env().model, env().tokenizer, env().layout,
                                env().mined, full_config());
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    util::Rng rng = core::row_rng(19, i, 0);
    expected.push_back(reference.generate(rng, prompts[i]).text);
  }

  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(),
                ServeConfig{.workers = 4, .batch = 4, .queue_capacity = 8,
                            .seed = 19});
  for (int run = 0; run < 2; ++run) {
    const auto results = server.run(prompts);
    ASSERT_EQ(results.size(), expected.size()) << "run " << run;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(results[i].text, expected[i])
          << "run " << run << " row " << i;
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rows, 96u);
  EXPECT_EQ(stats.degraded_rows, 0u);
}

}  // namespace
}  // namespace lejit::serve
