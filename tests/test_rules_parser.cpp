#include <gtest/gtest.h>

#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "rules/parser.hpp"
#include "telemetry/generator.hpp"
#include "smt/solver.hpp"

namespace lejit::rules {
namespace {

const telemetry::RowLayout& layout() {
  static const telemetry::RowLayout l =
      telemetry::telemetry_row_layout(telemetry::Limits{});
  return l;
}

telemetry::Window window(telemetry::Int total, telemetry::Int ecn,
                         telemetry::Int rtx, telemetry::Int conn,
                         telemetry::Int egress,
                         std::vector<telemetry::Int> fine) {
  telemetry::Window w;
  w.total = total;
  w.ecn = ecn;
  w.rtx = rtx;
  w.conn = conn;
  w.egress = egress;
  w.fine = std::move(fine);
  return w;
}

TEST(RuleParser, SimpleComparison) {
  const auto parsed = parse_rules("egress <= total", layout());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.rules.size(), 1u);
  EXPECT_FALSE(parsed.rules.rules[0].uses_fine);
  const auto v1 = violated_rules(parsed.rules, window(100, 0, 0, 5, 80, {20, 20, 20, 20, 20}));
  EXPECT_TRUE(v1.empty());
  const auto v2 = violated_rules(parsed.rules, window(100, 0, 0, 5, 150, {20, 20, 20, 20, 20}));
  EXPECT_EQ(v2.size(), 1u);
}

TEST(RuleParser, ThePaperRuleSet) {
  const auto parsed = parse_rules(
      "# R2 and R3 from the paper's Fig. 1 (R1 is the field domain)\n"
      "sum(I) == total\n"
      "ecn > 0 => max(I) >= 48\n",
      layout());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.rules.size(), 2u);
  EXPECT_TRUE(parsed.rules.rules[0].uses_fine);
  EXPECT_TRUE(parsed.rules.rules[1].uses_fine);

  // Compliant: sums match, burst present with ecn > 0.
  EXPECT_TRUE(violated_rules(parsed.rules,
                             window(100, 5, 0, 10, 50, {10, 10, 50, 20, 10}))
                  .empty());
  // Sum broken.
  EXPECT_EQ(violated_rules(parsed.rules,
                           window(100, 0, 0, 10, 50, {10, 10, 10, 10, 10}))
                .size(),
            1u);
  // ecn > 0 but no burst.
  EXPECT_EQ(violated_rules(parsed.rules,
                           window(100, 5, 0, 10, 50, {20, 20, 20, 20, 20}))
                .size(),
            1u);
}

TEST(RuleParser, LinearArithmetic) {
  const auto parsed =
      parse_rules("2*rtx + 5 <= ecn + 40\n3*I0 - I1 >= 0", layout());
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty()
                                   ? ""
                                   : parsed.errors[0].message);
  ASSERT_EQ(parsed.rules.size(), 2u);
  EXPECT_TRUE(parsed.rules.rules[1].uses_fine);
  EXPECT_TRUE(violated_rules(parsed.rules,
                             window(0, 40, 10, 1, 0, {10, 30, 0, 0, 0}))
                  .empty());
  EXPECT_EQ(violated_rules(parsed.rules,
                           window(0, 40, 10, 1, 0, {10, 31, 0, 0, 0}))
                .size(),
            1u);
}

TEST(RuleParser, MinAndFlippedAggregates) {
  const auto parsed = parse_rules(
      "min(I) >= 1\n"
      "10 <= max(I)\n",  // flipped: aggregate on the right
      layout());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {1, 2, 3, 4, 15}))
                  .empty());
  EXPECT_EQ(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {0, 2, 3, 4, 15}))
                .size(),
            1u);
  EXPECT_EQ(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {1, 2, 3, 4, 9}))
                .size(),
            1u);
}

TEST(RuleParser, AggregateEquality) {
  const auto parsed = parse_rules("max(I) == 50", layout());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {1, 50, 3, 4, 5}))
                  .empty());
  EXPECT_FALSE(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {1, 49, 3, 4, 5}))
                   .empty());
  EXPECT_FALSE(violated_rules(parsed.rules, window(0, 0, 0, 1, 0, {1, 51, 3, 4, 5}))
                   .empty());
}

TEST(RuleParser, CommentsAndBlankLinesSkipped) {
  const auto parsed = parse_rules(
      "\n   \n# a comment\negress <= total   # trailing comment\n\n",
      layout());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.rules.size(), 1u);
}

TEST(RuleParser, ErrorsAreReportedWithLineNumbers) {
  const auto parsed = parse_rules(
      "egress <= total\n"
      "bogus_field > 3\n"
      "ecn >\n"
      "max(I) ~ 5\n"
      "max(I) <= min(I)\n",
      layout());
  EXPECT_EQ(parsed.rules.size(), 1u);  // only the first line parses
  ASSERT_EQ(parsed.errors.size(), 4u);
  EXPECT_EQ(parsed.errors[0].line, 2u);
  EXPECT_NE(parsed.errors[0].message.find("bogus_field"), std::string::npos);
  EXPECT_EQ(parsed.errors[1].line, 3u);
  EXPECT_EQ(parsed.errors[2].line, 4u);
  EXPECT_EQ(parsed.errors[3].line, 5u);
  EXPECT_NE(parsed.errors[3].message.find("both sides"), std::string::npos);
}

TEST(RuleParser, ParsedRulesWorkInsideTheSolver) {
  const auto parsed = parse_rules(
      "sum(I) == total\n"
      "ecn > 0 => max(I) >= 48\n"
      "egress <= total\n",
      layout());
  ASSERT_TRUE(parsed.ok());

  smt::Solver solver;
  declare_fields(solver, layout());
  assert_rules(solver, parsed.rules);
  EXPECT_EQ(solver.check(), smt::CheckResult::kSat);

  // Pin a congested window with a total too small for any burst: UNSAT.
  solver.add(smt::eq(smt::LinExpr(smt::VarId{field_index(layout(), "total")}),
                     smt::LinExpr(10)));
  solver.add(smt::eq(smt::LinExpr(smt::VarId{field_index(layout(), "ecn")}),
                     smt::LinExpr(3)));
  EXPECT_EQ(solver.check(), smt::CheckResult::kUnsat);
}

TEST(RuleParser, MinedRulesRoundTripThroughText) {
  // Mine → serialize → parse must preserve semantics: both rule sets agree
  // on which windows violate, window by window.
  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 8, .windows_per_rack = 30,
                                 .seed = 55});
  const auto train = telemetry::all_windows(dataset);
  const auto mined =
      mine_rules(train, layout(), dataset.limits).rules;
  ASSERT_GT(mined.size(), 50u);

  const auto reparsed = parse_rules(mined.to_text(), layout());
  ASSERT_TRUE(reparsed.ok())
      << "line " << (reparsed.errors.empty() ? 0 : reparsed.errors[0].line)
      << ": "
      << (reparsed.errors.empty() ? "" : reparsed.errors[0].message);
  ASSERT_EQ(reparsed.rules.size(), mined.size());

  util::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    // Mix of real and perturbed windows so both outcomes occur.
    telemetry::Window w = train[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<telemetry::Int>(train.size()) - 1))];
    if (trial % 2 == 1) {
      w.fine[0] = rng.uniform_int(0, 200);
      w.ecn = rng.uniform_int(0, 255);
    }
    EXPECT_EQ(violated_rules(mined, w), violated_rules(reparsed.rules, w))
        << "trial " << trial;
  }
}

TEST(RuleParser, RoundTripDescriptionIsTheSourceLine) {
  const auto parsed = parse_rules("ecn > 0 => max(I) >= 48", layout());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.rules.rules[0].description, "ecn > 0 => max(I) >= 48");
}

}  // namespace
}  // namespace lejit::rules
