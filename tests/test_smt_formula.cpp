#include <gtest/gtest.h>

#include "smt/formula.hpp"
#include "util/rng.hpp"

namespace lejit::smt {
namespace {

TEST(Formula, ConstantFolding) {
  EXPECT_EQ(le(LinExpr(1), LinExpr(2))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(le(LinExpr(3), LinExpr(2))->kind(), FormulaKind::kFalse);
  EXPECT_EQ(eq(LinExpr(2), LinExpr(2))->kind(), FormulaKind::kTrue);
  EXPECT_EQ(ne(LinExpr(2), LinExpr(2))->kind(), FormulaKind::kFalse);
}

TEST(Formula, ConnectiveSimplification) {
  const VarId x{0};
  const Formula atom = ge(LinExpr(x), LinExpr(1));
  EXPECT_EQ(land(atom, make_false())->kind(), FormulaKind::kFalse);
  EXPECT_EQ(lor(atom, make_true())->kind(), FormulaKind::kTrue);
  // Identity elements vanish; single operand is returned unwrapped.
  EXPECT_EQ(land(atom, make_true()).get(), atom.get());
  EXPECT_EQ(lor(atom, make_false()).get(), atom.get());
  EXPECT_EQ(land(std::vector<Formula>{})->kind(), FormulaKind::kTrue);
  EXPECT_EQ(lor(std::vector<Formula>{})->kind(), FormulaKind::kFalse);
}

TEST(Formula, NestedConnectivesFlatten) {
  const VarId x{0}, y{1};
  const Formula a = ge(LinExpr(x), LinExpr(1));
  const Formula b = ge(LinExpr(y), LinExpr(1));
  const Formula c = le(LinExpr(x), LinExpr(5));
  const Formula f = land(land(a, b), c);
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->children().size(), 3u);
}

TEST(Formula, EvalComparisons) {
  const VarId x{0};
  const std::vector<Int> a3{3};
  EXPECT_TRUE(le(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_FALSE(lt(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_TRUE(ge(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_FALSE(gt(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_TRUE(eq(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_FALSE(ne(LinExpr(x), LinExpr(3))->eval(a3));
  EXPECT_TRUE(between(LinExpr(x), LinExpr(1), LinExpr(5))->eval(a3));
  EXPECT_FALSE(between(LinExpr(x), LinExpr(4), LinExpr(5))->eval(a3));
}

TEST(Formula, ImpliesAndIff) {
  const VarId x{0}, y{1};
  const Formula f = implies(gt(LinExpr(x), LinExpr(0)), gt(LinExpr(y), LinExpr(0)));
  EXPECT_TRUE(f->eval({0, 0}));   // antecedent false
  EXPECT_TRUE(f->eval({1, 1}));   // both true
  EXPECT_FALSE(f->eval({1, 0}));  // antecedent true, consequent false

  const Formula g = iff(gt(LinExpr(x), LinExpr(0)), gt(LinExpr(y), LinExpr(0)));
  EXPECT_TRUE(g->eval({0, 0}));
  EXPECT_TRUE(g->eval({2, 3}));
  EXPECT_FALSE(g->eval({2, 0}));
  EXPECT_FALSE(g->eval({0, 3}));
}

TEST(Formula, Aggregates) {
  const std::vector<VarId> vars{VarId{0}, VarId{1}, VarId{2}};
  const std::vector<Int> a{5, 9, 2};
  EXPECT_TRUE(max_ge(vars, LinExpr(9))->eval(a));
  EXPECT_FALSE(max_ge(vars, LinExpr(10))->eval(a));
  EXPECT_TRUE(max_le(vars, LinExpr(9))->eval(a));
  EXPECT_FALSE(max_le(vars, LinExpr(8))->eval(a));
  EXPECT_TRUE(min_le(vars, LinExpr(2))->eval(a));
  EXPECT_FALSE(min_le(vars, LinExpr(1))->eval(a));
  EXPECT_TRUE(min_ge(vars, LinExpr(2))->eval(a));
  EXPECT_FALSE(min_ge(vars, LinExpr(3))->eval(a));
}

TEST(Formula, AggregateOverEmptySetIsRejected) {
  EXPECT_THROW(max_ge({}, LinExpr(0)), util::PreconditionError);
}

TEST(Formula, AbsDiff) {
  const VarId x{0}, y{1};
  const Formula f = abs_diff_le(LinExpr(x), LinExpr(y), LinExpr(2));
  EXPECT_TRUE(f->eval({5, 6}));
  EXPECT_TRUE(f->eval({6, 5}));
  EXPECT_TRUE(f->eval({5, 7}));
  EXPECT_FALSE(f->eval({5, 8}));
  EXPECT_FALSE(f->eval({8, 5}));
}

// Build a random small formula over `nvars` variables, depth-bounded.
Formula random_formula(util::Rng& rng, int nvars, int depth) {
  if (depth == 0 || rng.bernoulli(0.4)) {
    // Random atom: c0*x0 + c1*x1 + k  ⋈  0
    LinExpr e(rng.uniform_int(-5, 5));
    const int used = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < used; ++i) {
      const VarId v{static_cast<int>(rng.uniform_int(0, nvars - 1))};
      e += LinExpr::term(rng.uniform_int(-3, 3), v);
    }
    switch (rng.uniform_int(0, 2)) {
      case 0: return le(e, LinExpr(0));
      case 1: return eq(e, LinExpr(0));
      default: return ne(e, LinExpr(0));
    }
  }
  const int arity = static_cast<int>(rng.uniform_int(2, 3));
  std::vector<Formula> children;
  for (int i = 0; i < arity; ++i)
    children.push_back(random_formula(rng, nvars, depth - 1));
  switch (rng.uniform_int(0, 2)) {
    case 0: return land(std::move(children));
    case 1: return lor(std::move(children));
    default: return implies(children[0], children[1]);
  }
}

// Property: structural negation is logical negation, on random formulas and
// random assignments.
class FormulaNegationProperty : public ::testing::TestWithParam<int> {};

TEST_P(FormulaNegationProperty, LnotComplementsEval) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  constexpr int kVars = 3;
  for (int trial = 0; trial < 50; ++trial) {
    const Formula f = random_formula(rng, kVars, 2);
    const Formula nf = lnot(f);
    for (int i = 0; i < 20; ++i) {
      std::vector<Int> a;
      for (int v = 0; v < kVars; ++v) a.push_back(rng.uniform_int(-4, 4));
      EXPECT_NE(f->eval(a), nf->eval(a))
          << "f = " << f->to_string() << " a = [" << a[0] << "," << a[1]
          << "," << a[2] << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaNegationProperty,
                         ::testing::Range(1, 9));

TEST(Formula, ToStringRoundTrips) {
  const VarId x{0}, y{1};
  const Formula f = land(le(LinExpr(x), LinExpr(3)), gt(LinExpr(y), LinExpr(x)));
  const std::string s = f->to_string();
  EXPECT_NE(s.find("&"), std::string::npos);
  EXPECT_NE(s.find("v0"), std::string::npos);
}

}  // namespace
}  // namespace lejit::smt
