// Fuzz-style end-to-end property: for RANDOM rule sets written in the rule
// language, LeJIT must either detect unsatisfiability up front or generate
// rows that satisfy every rule. This exercises parser → solver → transition
// system → decoder against rule shapes no human picked.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decoder.hpp"
#include "lint/lint.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/parser.hpp"
#include "telemetry/generator.hpp"

namespace lejit {
namespace {

using telemetry::Window;

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 8, .windows_per_rack = 30, .seed = 123});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : telemetry::all_windows(out.dataset))
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    return out;
  }();
  return e;
}

// Emit a random rule line in the parser's syntax.
std::string random_rule_line(util::Rng& rng,
                             const telemetry::RowLayout& layout) {
  const auto field = [&]() {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, layout.num_fields() - 1));
    return layout.fields[idx].name;
  };
  const auto operand = [&]() -> std::string {
    switch (rng.uniform_int(0, 3)) {
      case 0: return field();
      case 1: return std::to_string(rng.uniform_int(0, 200));
      case 2:
        return std::to_string(rng.uniform_int(1, 3)) + "*" + field() +
               (rng.bernoulli(0.5)
                    ? " + " + std::to_string(rng.uniform_int(0, 100))
                    : "");
      default: {
        const char* aggs[] = {"max(I)", "min(I)", "sum(I)"};
        return aggs[rng.uniform_int(0, 2)];
      }
    }
  };
  const char* cmps[] = {"<=", ">=", "<", ">", "==", "!="};
  const auto clause = [&]() {
    std::string lhs = operand();
    std::string rhs = operand();
    // The parser rejects aggregates on both sides; retry the rhs.
    const auto is_agg = [](const std::string& s) {
      return s.starts_with("max(") || s.starts_with("min(");
    };
    while (is_agg(lhs) && is_agg(rhs)) rhs = operand();
    return lhs + " " + cmps[rng.uniform_int(0, 5)] + " " + rhs;
  };
  std::string line = clause();
  if (rng.bernoulli(0.3)) line += " => " + clause();
  return line;
}

class RandomRuleSets : public ::testing::TestWithParam<int> {};

TEST_P(RandomRuleSets, LeJitCompliesOrReportsInfeasibility) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  int generated = 0, infeasible = 0;

  for (int trial = 0; trial < 8; ++trial) {
    std::ostringstream rule_text;
    const int nrules = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < nrules; ++i)
      rule_text << random_rule_line(rng, env().layout) << "\n";

    const auto parsed = rules::parse_rules(rule_text.str(), env().layout);
    ASSERT_TRUE(parsed.ok()) << rule_text.str();

    // Random rule sets are frequently unsatisfiable; detect that first the
    // same way the decoder would.
    smt::Solver solver;
    rules::declare_fields(solver, env().layout);
    rules::assert_rules(solver, parsed.rules);
    const auto sat = solver.check();

    // The static analyzer must survive every rule shape the grammar can emit
    // and agree with the direct solver verdict (unless either ran out of
    // budget — kUnknown makes no claim).
    const lint::Report report = lint::analyze(parsed.rules, env().layout);
    if (sat != smt::CheckResult::kUnknown &&
        report.satisfiable != smt::CheckResult::kUnknown) {
      EXPECT_EQ(report.satisfiable, sat)
          << "lint and solver disagree on:\n"
          << rule_text.str() << lint::to_text(report);
    }
    if (report.satisfiable == smt::CheckResult::kUnsat) {
      EXPECT_FALSE(report.core.empty());
    }

    if (sat != smt::CheckResult::kSat) {
      ++infeasible;
      continue;
    }

    core::GuidedDecoder dec(*env().model, env().tokenizer, env().layout,
                            parsed.rules,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    const std::uint64_t decode_seed = rng.next_u64();
    util::Rng decode_rng(decode_seed);
    const auto r = dec.generate(decode_rng);
    ASSERT_TRUE(r.ok) << "rules:\n" << rule_text.str() << "row: " << r.text;
    EXPECT_TRUE(rules::violated_rules(parsed.rules, *r.window).empty())
        << "rules:\n" << rule_text.str() << "row: " << r.text;
    ++generated;

    // A compiled decode plan must not change a single character, whatever
    // rule shape the grammar produced — and neither may an artificially
    // coarsened partition (merged clusters assert more rules per sliced
    // query, never different verdicts).
    core::DecoderConfig planned_cfg{.mode = core::GuidanceMode::kFull};
    planned_cfg.compile_plan = true;
    core::GuidedDecoder planned(*env().model, env().tokenizer, env().layout,
                                parsed.rules, std::move(planned_cfg));
    util::Rng planned_rng(decode_seed);
    const auto rp = planned.generate(planned_rng);
    EXPECT_EQ(rp.text, r.text) << "plan diverged on:\n" << rule_text.str();

    if (planned.decode_plan()->clusters.size() >= 2) {
      plan::DecodePlan merged = *planned.decode_plan();
      const auto a = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(merged.clusters.size()) - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(merged.clusters.size()) - 1));
      if (a == b) b = (b + 1) % merged.clusters.size();
      merged = plan::merge_clusters(std::move(merged), a, b);
      core::DecoderConfig merged_cfg{.mode = core::GuidanceMode::kFull};
      merged_cfg.plan = std::move(merged);
      core::GuidedDecoder coarse(*env().model, env().tokenizer, env().layout,
                                 parsed.rules, std::move(merged_cfg));
      util::Rng coarse_rng(decode_seed);
      const auto rm = coarse.generate(coarse_rng);
      EXPECT_EQ(rm.text, r.text)
          << "merged clusters diverged on:\n" << rule_text.str();
    }
  }
  // Both outcomes should occur across the suite; per-seed we only require
  // progress (at least one decided trial).
  EXPECT_GT(generated + infeasible, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRuleSets, ::testing::Range(1, 11));

}  // namespace
}  // namespace lejit
