// lejit::serve — the batched serving runtime (DESIGN.md §13).
//
// The load-bearing property under test is the determinism contract: serve
// output for a fixed (seed, prompts) pair is bit-identical to a sequential
// per-row decode, independent of worker count, batch width, and scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "fault/fault.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "serve/queue.hpp"
#include "serve/serve.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

namespace lejit::serve {
namespace {

using telemetry::Window;

// --- BoundedQueue -------------------------------------------------------------

TEST(BoundedQueue, FifoAndDrainAfterClose) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  q.close();
  // Accepted items survive close(); only then does pop() report end.
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PushAfterCloseIsRejected) {
  BoundedQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), util::PreconditionError);
}

TEST(BoundedQueue, FullQueueBackpressuresTheProducer) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer makes room
    second_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_accepted.load()) << "push must block while full";
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(q.pop(), std::optional<int>(2));
}

TEST(BoundedQueue, CloseUnblocksAWaitingProducer) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

// --- serving runtime ----------------------------------------------------------

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::Transformer> model;
  rules::RuleSet mined;
  std::vector<std::string> prompts;  // rules-compatible imputation prompts
};

// A small *untrained* transformer: kFull guided decoding emits compliant
// rows regardless of LM quality, and serve's contract is about scheduling
// and bit-identity, not text quality.
const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 6, .windows_per_rack = 20, .seed = 99});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    util::Rng rng(5);
    out.model = std::make_unique<lm::Transformer>(
        lm::TransformerConfig{.vocab_size = out.tokenizer.vocab_size(),
                              .d_model = 32,
                              .n_layers = 2,
                              .n_heads = 2,
                              .d_ff = 48,
                              .max_seq = 64},
        rng);
    const auto windows = telemetry::all_windows(out.dataset);
    out.mined =
        rules::mine_rules(windows, out.layout, out.dataset.limits).rules;
    for (const Window& w : windows)
      if (rules::violated_rules(out.mined, w).empty())
        out.prompts.push_back(telemetry::imputation_prompt(w));
    return out;
  }();
  return e;
}

core::DecoderConfig full_config() {
  return core::DecoderConfig{.mode = core::GuidanceMode::kFull};
}

// The sequential oracle: one decoder, core::row_rng per row — exactly the
// derivation the server uses.
std::vector<core::DecodeResult> sequential_decode(
    const std::vector<std::string>& prompts, std::uint64_t seed,
    const core::DecoderConfig& config = full_config()) {
  core::GuidedDecoder decoder(*env().model, env().tokenizer, env().layout,
                              env().mined, config);
  std::vector<core::DecodeResult> results;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    util::Rng rng = core::row_rng(seed, i, 0);
    results.push_back(decoder.generate(rng, prompts[i]));
  }
  return results;
}

void expect_identical(const std::vector<core::DecodeResult>& serve_results,
                      const std::vector<core::DecodeResult>& expected,
                      const char* what) {
  ASSERT_EQ(serve_results.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(serve_results[i].text, expected[i].text)
        << what << ": row " << i;
    EXPECT_EQ(serve_results[i].ok, expected[i].ok) << what << ": row " << i;
  }
}

// The fig3-style identity gate from the serving side: 64 synthesis rows
// through a 2x4 server must reproduce the sequential decode bit for bit.
TEST(Serve, SixtyFourRowBitIdentityAgainstSequentialDecode) {
  const std::vector<std::string> prompts(64, std::string());
  const auto expected = sequential_decode(prompts, 13);

  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(), ServeConfig{.workers = 2, .batch = 4,
                                           .seed = 13});
  const auto results = server.run(prompts);
  expect_identical(results, expected, "serve 2x4");

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rows, 64u);
  EXPECT_EQ(stats.degraded_rows, 0u);
  EXPECT_GT(stats.batched_forwards, 0u);
}

TEST(Serve, OutputIndependentOfWorkerAndBatchConfiguration) {
  std::vector<std::string> prompts(env().prompts.begin(),
                                   env().prompts.begin() + 12);
  const auto expected = sequential_decode(prompts, 21);
  for (const auto& [workers, batch] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 3}, {3, 2}}) {
    Server server(*env().model, env().tokenizer, env().layout, env().mined,
                  full_config(),
                  ServeConfig{.workers = workers, .batch = batch, .seed = 21});
    expect_identical(server.run(prompts), expected, "config sweep");
  }
}

TEST(Serve, ServerIsReusableAcrossRuns) {
  const std::vector<std::string> prompts(10, std::string());
  const auto expected = sequential_decode(prompts, 3);
  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(),
                ServeConfig{.workers = 1, .batch = 4, .seed = 3});
  // Rows renumber from 0 each run(): two runs of the same prompts must give
  // the same rows twice, with pooled sessions (and their KV caches) reused.
  expect_identical(server.run(prompts), expected, "first run");
  expect_identical(server.run(prompts), expected, "second run");
  EXPECT_EQ(server.stats().rows, 20u);
  EXPECT_EQ(server.run({}).size(), 0u);
}

TEST(Serve, SessionsActuallyBatchTheirForwards) {
  const std::vector<std::string> prompts(24, std::string());
  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(),
                ServeConfig{.workers = 1, .batch = 4, .seed = 9});
  (void)server.run(prompts);
  const ServeStats stats = server.stats();
  // With 24 rows over 4 sessions of one group, a meaningful fraction of
  // forwards must have been fused (width > 1); width can never exceed the
  // group size.
  EXPECT_GT(stats.mean_batch_width(), 1.0);
  EXPECT_LE(stats.mean_batch_width(), 4.0);
  EXPECT_GE(stats.forwarded_contexts, stats.batched_forwards);
}

TEST(Serve, SharedCompiledPlanKeepsDecodesBitIdentical) {
  // compile_plan is hoisted into the Server constructor (one compile shared
  // by all sessions); the plan must not change decoded text.
  std::vector<std::string> prompts(env().prompts.begin(),
                                   env().prompts.begin() + 6);
  const auto expected = sequential_decode(prompts, 17);
  core::DecoderConfig config = full_config();
  config.compile_plan = true;
  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                config,
                ServeConfig{.workers = 2, .batch = 2, .seed = 17});
  expect_identical(server.run(prompts), expected, "shared plan");
}

// A batched forward that throws (fault injection at lm_forward — the same
// hook the resilience suite arms) must complete the rendezvous round with
// the exception instead of abandoning it: every session rethrows from
// forward(), marks its row degraded, and the group keeps serving. Before
// the fix, the leader's unwind left waiting_ pointing at destroyed
// stack Pendings — followers hung forever and run() never returned.
TEST(Serve, ThrowingForwardDegradesRowsInsteadOfWedgingTheGroup) {
  const std::vector<std::string> prompts(16, std::string());
  const auto expected = sequential_decode(prompts, 29);
  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(),
                ServeConfig{.workers = 1, .batch = 4, .seed = 29});
  {
    fault::Plan plan;
    plan.site(fault::Site::kLmForward).p_throw = 1.0;
    const fault::ScopedPlan scoped{plan};
    const auto results = server.run(prompts);  // hangs here on regression
    ASSERT_EQ(results.size(), prompts.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_FALSE(results[i].ok) << "row " << i;
      EXPECT_EQ(results[i].reason, core::FailReason::kFault) << "row " << i;
    }
    EXPECT_EQ(server.stats().degraded_rows, prompts.size());
  }
  // Disarmed, the same session pool (KV caches reset on the faulted rows)
  // must again match the sequential oracle bit for bit.
  expect_identical(server.run(prompts), expected, "after fault storm");
}

// Partial fault rate: a round that throws degrades exactly its members; all
// other rows decode normally, and every surviving row is still bit-identical
// to the sequential decode of that (seed, row) pair.
TEST(Serve, SurvivingRowsStayBitIdenticalUnderInjectedFaults) {
  const std::vector<std::string> prompts(32, std::string());
  const auto expected = sequential_decode(prompts, 41);
  Server server(*env().model, env().tokenizer, env().layout, env().mined,
                full_config(),
                ServeConfig{.workers = 2, .batch = 2, .seed = 41});
  fault::Plan plan;
  plan.site(fault::Site::kLmForward).p_throw = 0.05;
  const fault::ScopedPlan scoped{plan};
  const auto results = server.run(prompts);
  ASSERT_EQ(results.size(), prompts.size());
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].reason == core::FailReason::kFault) {
      ++degraded;
      EXPECT_FALSE(results[i].ok) << "row " << i;
    } else {
      EXPECT_EQ(results[i].text, expected[i].text) << "row " << i;
      EXPECT_EQ(results[i].ok, expected[i].ok) << "row " << i;
    }
  }
  EXPECT_EQ(server.stats().degraded_rows, degraded);
}

TEST(Serve, RejectsDegenerateConfigs) {
  EXPECT_THROW(Server(*env().model, env().tokenizer, env().layout,
                      env().mined, full_config(),
                      ServeConfig{.workers = 0}),
               util::PreconditionError);
  EXPECT_THROW(Server(*env().model, env().tokenizer, env().layout,
                      env().mined, full_config(),
                      ServeConfig{.batch = 0}),
               util::PreconditionError);
  EXPECT_THROW(Server(*env().model, env().tokenizer, env().layout,
                      env().mined, full_config(),
                      ServeConfig{.queue_capacity = 0}),
               util::PreconditionError);
}

}  // namespace
}  // namespace lejit::serve
