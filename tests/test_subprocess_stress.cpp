// Subprocess-backend chaos stress (ctest label `stress`; also run under
// ASan+UBSan by tools/run_stress_sanitized.sh). Hundreds of checks against
// the bundled lejit_smtserve while fault injection kills, wedges, and
// garbles the child at high rates: the respawn/replay path must stay leak-
// and race-free, the fault accounting must balance, and — with the failover
// wrapper — every single check must still come back with a definitive
// verdict that matches plain minismt.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "smt/backend.hpp"
#include "smt/subprocess.hpp"
#include "util/rng.hpp"

#ifndef LEJIT_SMTSERVE_PATH
#define LEJIT_SMTSERVE_PATH ""
#endif

namespace lejit::smt {
namespace {

bool smtserve_available() {
  return LEJIT_SMTSERVE_PATH[0] != '\0' &&
         ::access(LEJIT_SMTSERVE_PATH, X_OK) == 0;
}

BackendConfig chaos_config(bool degrade) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSubprocess;
  cfg.solver_path = LEJIT_SMTSERVE_PATH;
  cfg.degrade_to_minismt = degrade;
  cfg.check_timeout_ms = 40;  // injected hangs resolve fast
  cfg.retry_backoff_ms = 1;
  cfg.max_respawns = 1 << 20;
  return cfg;
}

fault::Plan chaos_plan() {
  fault::Plan plan;
  plan.seed = 4242;
  plan.site(fault::Site::kSubprocessKill).p_unknown = 0.35;
  plan.site(fault::Site::kSubprocessHang).p_unknown = 0.05;
  plan.site(fault::Site::kSubprocessGarble).p_unknown = 0.15;
  return plan;
}

// Drive one randomized session: shared scaffold for both stress scenarios.
// `mirror` (when non-null) receives the same declares/asserts and its
// verdicts must match on every definitive answer.
void run_session(Backend& b, Solver* mirror, util::Rng& rng, int checks) {
  std::vector<VarId> vars, mvars;
  const int nv = static_cast<int>(rng.uniform_int(2, 4));
  for (int v = 0; v < nv; ++v) {
    const Int hi = rng.uniform_int(5, 40);
    const std::string name = "x" + std::to_string(v);
    vars.push_back(b.add_var(name, 0, hi));
    if (mirror) mvars.push_back(mirror->add_var(name, 0, hi));
  }
  const auto expr = [&](int v, Int k) {
    return k * LinExpr(vars[static_cast<std::size_t>(v)]);
  };
  for (int c = 0; c < checks; ++c) {
    const int v = static_cast<int>(rng.uniform_int(0, nv - 1));
    Int k = rng.uniform_int(-2, 2);
    if (k == 0) k = 1;
    const Int bound = rng.uniform_int(-10, 50);
    const Formula f = rng.bernoulli(0.5) ? le(expr(v, k), LinExpr(bound))
                                         : ge(expr(v, k), LinExpr(bound));
    if (rng.bernoulli(0.3)) {
      b.push();
      if (mirror) mirror->push();
    }
    b.add(f);
    if (mirror) mirror->add(f);
    const CheckResult rb = b.check();
    if (mirror) {
      const CheckResult rm = mirror->check();
      if (rb != CheckResult::kUnknown && rm != CheckResult::kUnknown) {
        ASSERT_EQ(rb, rm) << "check " << c;
      }
    }
    if (rb == CheckResult::kSat) {
      // Model extraction under chaos must never read freed state.
      for (const VarId var : vars) (void)b.model_value(var);
    }
    if (b.num_scopes() > 0 && rng.bernoulli(0.4)) {
      b.pop();
      if (mirror) mirror->pop();
    }
  }
}

TEST(SubprocessStress, RawBackendSurvivesAKillHangGarbleStorm) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  const fault::ScopedPlan scoped{chaos_plan()};
  util::Rng rng(7);
  BackendStats total;
  for (int session = 0; session < 12; ++session) {
    SubprocessBackend b(chaos_config(/*degrade=*/false));
    run_session(b, nullptr, rng, 25);
    const BackendStats s = b.backend_stats();
    EXPECT_EQ(s.faults,
              s.timeouts + s.crashes + s.protocol_errors + s.spawn_failures)
        << "session " << session;
    total.checks += s.checks;
    total.faults += s.faults;
    total.respawns += s.respawns;
    total.restored_lines += s.restored_lines;
  }
  // The storm must actually have raged, and the replay machinery must have
  // rebuilt real session state (not just respawned empty children).
  EXPECT_GT(total.checks, 200);
  EXPECT_GT(total.faults, 20);
  EXPECT_GT(total.respawns, 20);
  EXPECT_GT(total.restored_lines, 0);
}

TEST(SubprocessStress, FailoverAnswersEveryCheckAndAgreesWithMinismt) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  const fault::ScopedPlan scoped{chaos_plan()};
  util::Rng rng(11);
  std::int64_t degraded = 0, faults = 0;
  for (int session = 0; session < 10; ++session) {
    const std::unique_ptr<Backend> b = make_backend(chaos_config(true));
    Solver mirror;
    run_session(*b, &mirror, rng, 25);
    const BackendStats s = b->backend_stats();
    EXPECT_GE(s.faults, s.degraded) << "session " << session;
    degraded += s.degraded;
    faults += s.faults;
  }
  EXPECT_GT(degraded, 0);
  EXPECT_GE(faults, degraded);
}

}  // namespace
}  // namespace lejit::smt
