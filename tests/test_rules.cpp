#include <gtest/gtest.h>

#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::rules {
namespace {

using telemetry::Dataset;
using telemetry::GeneratorConfig;
using telemetry::Limits;
using telemetry::Window;

struct Env {
  Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  std::vector<Window> test;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(
        GeneratorConfig{.num_racks = 20, .windows_per_rack = 60, .seed = 11});
    out.split = telemetry::split_by_rack(out.dataset, 4, 5);
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.split.train);
    out.test = telemetry::all_windows(out.split.test);
    return out;
  }();
  return e;
}

TEST(ManualRules, ExactlyFourAndTheyHoldOnRealData) {
  const RuleSet set = manual_rules(env().layout, env().dataset.limits);
  ASSERT_EQ(set.size(), 4u);
  const auto stats = check_violations(set, env().train);
  EXPECT_EQ(stats.violating_windows, 0u)
      << "generated data must satisfy the manual rules by construction";
}

TEST(ManualRules, DetectViolations) {
  const RuleSet set = manual_rules(env().layout, env().dataset.limits);
  Window w = env().train.front();
  w.fine[0] = env().dataset.limits.bandwidth + 50;  // break the bound rule
  const auto violated = violated_rules(set, w);
  EXPECT_FALSE(violated.empty());
}

TEST(ManualRules, CoarseOnlySubset) {
  const RuleSet set = manual_rules(env().layout, env().dataset.limits);
  const RuleSet coarse = set.coarse_only();
  ASSERT_EQ(coarse.size(), 1u);  // only egress <= total is coarse-only
  EXPECT_EQ(coarse.rules[0].kind, RuleKind::kManual);
}

TEST(FieldPlumbing, AssignmentMatchesLayoutOrder) {
  const Window& w = env().train.front();
  const auto a = field_assignment(w);
  ASSERT_EQ(static_cast<int>(a.size()), env().layout.num_fields());
  EXPECT_EQ(a[0], w.total);
  EXPECT_EQ(a[4], w.egress);
  EXPECT_EQ(a[5], w.fine[0]);
  EXPECT_EQ(field_index(env().layout, "total"), 0);
  EXPECT_EQ(field_index(env().layout, "I0"), 5);
  EXPECT_EQ(field_index(env().layout, "nope"), -1);
}

TEST(FieldPlumbing, DeclareFieldsMatchesDomains) {
  smt::Solver solver;
  const auto vars = declare_fields(solver, env().layout);
  ASSERT_EQ(static_cast<int>(vars.size()), env().layout.num_fields());
  EXPECT_EQ(solver.bounds(vars[0]).hi, env().dataset.limits.total_max());
  EXPECT_EQ(solver.bounds(vars[5]).hi, env().dataset.limits.bandwidth);
  EXPECT_THROW(declare_fields(solver, env().layout), util::PreconditionError)
      << "requires a fresh solver";
}

TEST(Miner, MinedRulesHoldOnEveryTrainingWindow) {
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits);
  ASSERT_GT(report.rules.size(), 0u);
  const auto stats = check_violations(report.rules, env().train);
  EXPECT_EQ(stats.rule_violations, 0)
      << "mining guarantees train-set compliance";
}

TEST(Miner, ProducesHundredsOfRulesAcrossFamilies) {
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits);
  EXPECT_GE(report.rules.size(), 150u);
  EXPECT_GT(report.bounds, 0u);
  EXPECT_EQ(report.sums, 1u);
  EXPECT_GT(report.implications, 50u);
  EXPECT_GT(report.pairwise, 10u);
  EXPECT_EQ(report.rules.size(),
            report.bounds + report.sums + report.implications + report.pairwise);
}

TEST(Miner, GeneralizesToUnseenRacks) {
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits);
  const auto stats = check_violations(report.rules, env().test);
  // Slack-widened mined rules should transfer almost perfectly.
  EXPECT_LT(stats.window_rate(), 0.10)
      << stats.violating_windows << "/" << stats.windows;
}

TEST(Miner, CoarseOnlySubsetIsSubstantial) {
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits);
  const RuleSet coarse = report.rules.coarse_only();
  EXPECT_GE(coarse.size(), 30u);
  for (const Rule& r : coarse.rules) EXPECT_FALSE(r.uses_fine);
}

TEST(Miner, MinedRuleSetIsSatisfiable) {
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits);
  smt::Solver solver;
  declare_fields(solver, env().layout);
  assert_rules(solver, report.rules);
  EXPECT_EQ(solver.check(), smt::CheckResult::kSat)
      << "any training window is a model, so the rule set must be SAT";
}

TEST(Miner, FamilySwitchesWork) {
  MinerConfig cfg;
  cfg.mine_pairwise = false;
  cfg.mine_conditionals = false;
  const MinerReport report =
      mine_rules(env().train, env().layout, env().dataset.limits, cfg);
  EXPECT_EQ(report.pairwise, 0u);
  EXPECT_GT(report.bounds, 0u);
}

TEST(Miner, TighterSlackMeansMoreTestViolations) {
  MinerConfig tight;
  tight.slack = 0.0;
  MinerConfig loose;
  loose.slack = 0.15;
  const auto tight_rules =
      mine_rules(env().train, env().layout, env().dataset.limits, tight);
  const auto loose_rules =
      mine_rules(env().train, env().layout, env().dataset.limits, loose);
  const auto tight_stats = check_violations(tight_rules.rules, env().test);
  const auto loose_stats = check_violations(loose_rules.rules, env().test);
  EXPECT_GE(tight_stats.rule_violations, loose_stats.rule_violations);
}

TEST(Miner, RejectsEmptyTrainSet) {
  EXPECT_THROW(mine_rules({}, env().layout, env().dataset.limits),
               util::PreconditionError);
}

TEST(Merge, UnionsAndDeduplicates) {
  const RuleSet manual = manual_rules(env().layout, env().dataset.limits);
  const RuleSet mined =
      mine_rules(env().train, env().layout, env().dataset.limits).rules;
  const RuleSet both = merge({&manual, &mined});
  EXPECT_EQ(both.size(), manual.size() + mined.size());
  // Self-merge deduplicates completely.
  const RuleSet twice = merge({&manual, &manual});
  EXPECT_EQ(twice.size(), manual.size());
  // Null input rejected.
  EXPECT_THROW(merge({&manual, nullptr}), util::PreconditionError);
}

TEST(Merge, MergedSetStillSatisfiable) {
  const RuleSet manual = manual_rules(env().layout, env().dataset.limits);
  const RuleSet mined =
      mine_rules(env().train, env().layout, env().dataset.limits).rules;
  const RuleSet both = merge({&manual, &mined});
  smt::Solver solver;
  declare_fields(solver, env().layout);
  assert_rules(solver, both);
  EXPECT_EQ(solver.check(), smt::CheckResult::kSat);
}

TEST(Checker, RatesAreConsistent) {
  const RuleSet set = manual_rules(env().layout, env().dataset.limits);
  std::vector<Window> windows = {env().train[0], env().train[1]};
  windows[0].fine[0] = -5;  // violates the bound rule (and the sum rule)
  const auto stats = check_violations(set, windows);
  EXPECT_EQ(stats.windows, 2u);
  EXPECT_EQ(stats.violating_windows, 1u);
  EXPECT_NEAR(stats.window_rate(), 0.5, 1e-12);
  EXPECT_GT(stats.pair_rate(), 0.0);
  EXPECT_LT(stats.pair_rate(), 1.0);
}

}  // namespace
}  // namespace lejit::rules
