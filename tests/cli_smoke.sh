#!/bin/sh
# End-to-end smoke test of the lejit_cli workflow:
# generate -> mine -> train (briefly) -> synth -> check must yield 0
# violations, and the observability exports must produce non-empty JSON.
#
# Each stage announces itself and failures name the stage, so a broken
# pipeline points at the broken step instead of dying silently under -e.
set -u
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR" || exit 1

STAGE=none
run() {
  STAGE="$1"
  shift
  echo "[cli_smoke] stage: $STAGE" >&2
  if ! "$@"; then
    echo "[cli_smoke] FAILED at stage: $STAGE" >&2
    exit 1
  fi
}

run generate "$CLI" generate --racks 6 --windows 30 --seed 3 --out corpus.txt 2>/dev/null
run mine "$CLI" mine --corpus corpus.txt --out rules.txt 2>/dev/null

# Acceptance gate for the static analyzer: a mined (Fig. 3-style) rule set
# must lint clean — exit 0, zero errors — while a contradictory set must be
# rejected (exit 1) with a named conflict subset.
run lint-mined "$CLI" lint --rules rules.txt 2>/dev/null >/dev/null
printf 'egress >= 50\negress <= 40\n' > contradictory.txt
STAGE=lint-contradictory
echo "[cli_smoke] stage: $STAGE" >&2
"$CLI" lint --rules contradictory.txt 2>/dev/null > lint_bad.txt
if [ "$?" != 1 ] || ! grep -q E_UNSAT lint_bad.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

run train "$CLI" train --corpus corpus.txt --steps 25 --dmodel 32 --heads 2 --dff 48 --out model.bin 2>/dev/null

STAGE=synth
echo "[cli_smoke] stage: $STAGE" >&2
if ! "$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 \
      --metrics-out metrics.json --trace-out trace.json 2>/dev/null > rows.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

run synth-output test -s rows.txt
run metrics-output test -s metrics.json
run metrics-content grep -q smt.checks metrics.json
run trace-output test -s trace.json
run trace-content grep -q traceEvents trace.json
run check "$CLI" check --rules rules.txt --rows rows.txt
echo "[cli_smoke] all stages passed" >&2
