#!/bin/sh
# End-to-end smoke test of the lejit_cli workflow:
# generate -> mine -> train (briefly) -> synth -> check must yield 0
# violations, and the observability exports must produce non-empty JSON.
#
# Each stage announces itself and failures name the stage, so a broken
# pipeline points at the broken step instead of dying silently under -e.
set -u
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR" || exit 1

STAGE=none
run() {
  STAGE="$1"
  shift
  echo "[cli_smoke] stage: $STAGE" >&2
  if ! "$@"; then
    echo "[cli_smoke] FAILED at stage: $STAGE" >&2
    exit 1
  fi
}

run generate "$CLI" generate --racks 6 --windows 30 --seed 3 --out corpus.txt 2>/dev/null
run mine "$CLI" mine --corpus corpus.txt --out rules.txt 2>/dev/null

# Acceptance gate for the static analyzer: a mined (Fig. 3-style) rule set
# must lint clean — exit 0, zero errors — while a contradictory set must be
# rejected (exit 1) with a named conflict subset.
run lint-mined "$CLI" lint --rules rules.txt 2>/dev/null >/dev/null
printf 'egress >= 50\negress <= 40\n' > contradictory.txt
STAGE=lint-contradictory
echo "[cli_smoke] stage: $STAGE" >&2
"$CLI" lint --rules contradictory.txt 2>/dev/null > lint_bad.txt
if [ "$?" != 1 ] || ! grep -q E_UNSAT lint_bad.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

# Static decode-plan compiler: a mined rule set must compile to an active
# plan (exit 0) whose JSON artifact round-trips through from_json — exercised
# by loading it back into a decode below.
run plan-compile "$CLI" plan --rules rules.txt --out plan.json 2>/dev/null >/dev/null
run plan-artifact test -s plan.json
run plan-content grep -q fingerprint plan.json

run train "$CLI" train --corpus corpus.txt --steps 25 --dmodel 32 --heads 2 --dff 48 --out model.bin 2>/dev/null

STAGE=synth
echo "[cli_smoke] stage: $STAGE" >&2
if ! "$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 \
      --metrics-out metrics.json --trace-out trace.json 2>/dev/null > rows.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

run synth-output test -s rows.txt
run metrics-output test -s metrics.json
run metrics-content grep -q smt.checks metrics.json
run trace-output test -s trace.json
run trace-content grep -q traceEvents trace.json
run check "$CLI" check --rules rules.txt --rows rows.txt

# The compiled plan must load into a decode, drive it (plan counters in the
# metrics export), and — the paper's invariant — change nothing about the
# decoded rows: same seed, same text, so `check` still passes and the rows
# match the plan-free synth byte for byte.
STAGE=synth-planned
echo "[cli_smoke] stage: $STAGE" >&2
if ! "$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 \
      --plan plan.json --metrics-out metrics_plan.json 2>/dev/null > rows_plan.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi
run planned-bit-identical cmp rows.txt rows_plan.txt
run planned-metrics grep -q "decode.plan.table_hits" metrics_plan.json
run planned-check "$CLI" check --rules rules.txt --rows rows_plan.txt

# A tampered artifact (fingerprint flipped) must be rejected with exit 1
# before any decode happens.
STAGE=plan-tampered
echo "[cli_smoke] stage: $STAGE" >&2
sed 's/"fingerprint":"f/"fingerprint":"#/; s/"fingerprint":"[0-9a-e]/"fingerprint":"f/; s/"fingerprint":"#/"fingerprint":"0/' \
    plan.json > plan_bad.json
"$CLI" synth --model model.bin --rules rules.txt --count 1 --seed 9 \
    --plan plan_bad.json 2>plan_bad_err.txt >/dev/null
if [ "$?" != 1 ] || ! grep -q "stale decode plan" plan_bad_err.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

# Translation validation (DESIGN.md §14): the independent verifier must
# certify the compiled artifact (exit 0) and reject a forged verdict inside
# an otherwise well-bound artifact (exit 1 + a stable finding code) — the
# tamper class the fingerprint check above cannot see.
run plan-verify "$CLI" plan-verify --plan plan.json --rules rules.txt 2>/dev/null >/dev/null
STAGE=plan-verify-tampered
echo "[cli_smoke] stage: $STAGE" >&2
sed 's/"satisfiable":"sat"/"satisfiable":"unsat"/' plan.json > plan_forged.json
"$CLI" plan-verify --plan plan_forged.json --rules rules.txt 2>/dev/null > verify_bad.txt
if [ "$?" != 1 ] || ! grep -q "E_" verify_bad.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi

# Abstract-interpretation prefilter (DESIGN.md §16): on by default, it must
# refute real feasibility probes (decode.absint.prefilter_hits in the
# metrics export) without changing a single decoded byte vs --no-absint —
# the abstraction only ever refutes, and a refutation is a proof.
run absint-metrics grep -q "decode.absint.prefilter_hits" metrics.json
STAGE=synth-no-absint
echo "[cli_smoke] stage: $STAGE" >&2
if ! "$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 \
      --no-absint 2>/dev/null > rows_noabsint.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi
run absint-bit-identical cmp rows.txt rows_noabsint.txt

# Decoding with --verify-plan engages the verifier as a load gate and must
# not change a single decoded byte.
STAGE=synth-verified-plan
echo "[cli_smoke] stage: $STAGE" >&2
if ! "$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 \
      --plan plan.json --verify-plan 2>/dev/null > rows_verified.txt; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi
run verified-bit-identical cmp rows.txt rows_verified.txt

# Overwrite guard: recompiling the same rule set over its artifact is fine;
# a different set must refuse (exit 2) unless --force.
run plan-recompile-same "$CLI" plan --rules rules.txt --out plan.json 2>/dev/null >/dev/null
STAGE=plan-overwrite-guard
echo "[cli_smoke] stage: $STAGE" >&2
"$CLI" plan --rules contradictory.txt --out plan.json 2>/dev/null >/dev/null
if [ "$?" != 2 ]; then
  echo "[cli_smoke] FAILED at stage: $STAGE" >&2
  exit 1
fi
run plan-overwrite-forced "$CLI" plan --rules rules.txt --out plan.json --force 2>/dev/null >/dev/null
echo "[cli_smoke] all stages passed" >&2
