#!/bin/sh
# End-to-end smoke test of the lejit_cli workflow:
# generate -> mine -> train (briefly) -> synth -> check must yield 0 violations.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
cd "$DIR"
"$CLI" generate --racks 6 --windows 30 --seed 3 --out corpus.txt 2>/dev/null
"$CLI" mine --corpus corpus.txt --out rules.txt 2>/dev/null
"$CLI" train --corpus corpus.txt --steps 25 --dmodel 32 --heads 2 --dff 48 --out model.bin 2>/dev/null
"$CLI" synth --model model.bin --rules rules.txt --count 6 --seed 9 2>/dev/null > rows.txt
test -s rows.txt
"$CLI" check --rules rules.txt --rows rows.txt
