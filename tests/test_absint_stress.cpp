// lejit::absint stress tests (DESIGN.md §16) — built into the `stress` ctest
// binary so tools/run_stress_sanitized.sh runs them under ASan+UBSan.
//
// Two properties that only show up under volume:
//   1. Termination: the rule-set fixpoint must converge (or stop at its
//      iteration cap) for adversarial inputs — huge coefficients near the
//      saturation rail, moduli at the config ceiling, deep Or-fans whose
//      joins keep widening, and contradictory sets that collapse to bottom.
//      A transfer-function bug that oscillates instead of monotonically
//      narrowing would hang here, and an arithmetic edge case (overflow,
//      negative division) trips the sanitizers.
//   2. Soundness under fuzz: for every satisfiable random set, every model
//      the solver produces must be admitted by every field's abstract value.
//      This is the same invariant the absint-diff harness checks from the
//      refutation side, re-checked from the model side at stress volume.
#include <gtest/gtest.h>

#include <vector>

#include "absint/absint.hpp"
#include "rules/rule.hpp"
#include "smt/formula.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"
#include "util/rng.hpp"

namespace lejit::absint {
namespace {

using smt::Int;
using smt::LinExpr;
using smt::VarId;

telemetry::RowLayout random_layout(util::Rng& rng, int fields) {
  static const Int kMaxima[] = {9, 60, 99, 999, 4999, 99999};
  telemetry::RowLayout layout;
  for (int i = 0; i < fields; ++i) {
    telemetry::FieldSpec spec;
    spec.name = "f" + std::to_string(i);
    spec.max_value = kMaxima[rng.uniform_int(0, 5)];
    layout.fields.push_back(spec);
  }
  return layout;
}

LinExpr random_expr(util::Rng& rng, int fields, Int coeff_cap) {
  LinExpr e(rng.uniform_int(-coeff_cap, coeff_cap));
  const int terms = static_cast<int>(rng.uniform_int(1, 3));
  for (int t = 0; t < terms; ++t) {
    const VarId v{static_cast<int>(rng.uniform_int(0, fields - 1))};
    e = e + rng.uniform_int(-coeff_cap, coeff_cap) * LinExpr(v);
  }
  return e;
}

smt::Formula random_formula(util::Rng& rng, int fields, Int coeff_cap,
                            int depth) {
  if (depth > 0 && rng.uniform_int(0, 2) == 0) {
    std::vector<smt::Formula> kids;
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int i = 0; i < n; ++i)
      kids.push_back(random_formula(rng, fields, coeff_cap, depth - 1));
    return rng.uniform_int(0, 1) == 0 ? smt::land(std::move(kids))
                                      : smt::lor(std::move(kids));
  }
  const LinExpr a = random_expr(rng, fields, coeff_cap);
  const LinExpr b = random_expr(rng, fields, coeff_cap);
  switch (rng.uniform_int(0, 3)) {
    case 0: return smt::le(a, b);
    case 1: return smt::eq(a, b);
    case 2: return smt::ne(a, b);
    default: return smt::ge(a, b);
  }
}

rules::RuleSet random_set(util::Rng& rng, int fields, Int coeff_cap,
                          int max_rules) {
  rules::RuleSet set;
  const int n = static_cast<int>(rng.uniform_int(1, max_rules));
  for (int i = 0; i < n; ++i) {
    rules::Rule r;
    r.description = "stress rule " + std::to_string(i);
    r.formula = random_formula(rng, fields, coeff_cap, 2);
    set.rules.push_back(std::move(r));
  }
  return set;
}

// Domain-invariant checks a single analysis result must satisfy regardless
// of what the rule set meant.
void check_analysis_invariants(const Analysis& analysis,
                               const telemetry::RowLayout& layout) {
  ASSERT_EQ(analysis.fields.size(), layout.fields.size());
  for (std::size_t i = 0; i < analysis.fields.size(); ++i) {
    const AbsVal& a = analysis.fields[i];
    if (a.is_bottom()) continue;
    // Stays inside the declared domain and structurally normalized:
    // endpoints admitted, congruence in canonical range.
    EXPECT_GE(a.range.lo, 0);
    EXPECT_LE(a.range.hi, layout.fields[i].max_value);
    EXPECT_LE(a.range.lo, a.range.hi);
    EXPECT_TRUE(a.admits(a.range.lo)) << "field " << i;
    EXPECT_TRUE(a.admits(a.range.hi)) << "field " << i;
    EXPECT_GE(a.cong.mod, 1);
    EXPECT_GE(a.cong.rem, 0);
    EXPECT_LT(a.cong.rem, a.cong.mod);
  }
}

TEST(AbsintStress, FixpointTerminatesOnAdversarialSets) {
  // Coefficients at three scales, including near-rail values whose products
  // exercise the saturating arithmetic paths; moduli land wherever the
  // congruence inference takes them, capped by Config::max_modulus.
  static const Int kCoeffCaps[] = {3, 50'000, smt::kIntInf / 4};
  util::Rng rng(20260808u);
  Config config;
  config.max_iterations = 8;
  for (int round = 0; round < 400; ++round) {
    const Int cap = kCoeffCaps[round % 3];
    const int fields = static_cast<int>(rng.uniform_int(1, 5));
    const auto layout = random_layout(rng, fields);
    const auto set = random_set(rng, fields, cap, 6);
    const Analysis analysis = analyze(set, layout, config);
    ASSERT_LE(analysis.iterations, config.max_iterations);
    check_analysis_invariants(analysis, layout);
    // Re-running the fixpoint on its own output must be a no-op: refining
    // the converged state with every rule again may not change it.
    if (analysis.converged && !analysis.infeasible) {
      std::vector<AbsVal> state = analysis.fields;
      (void)refine_all(state, set, config);
      for (std::size_t i = 0; i < state.size(); ++i) {
        EXPECT_EQ(state[i].range.lo, analysis.fields[i].range.lo) << i;
        EXPECT_EQ(state[i].range.hi, analysis.fields[i].range.hi) << i;
      }
    }
  }
}

TEST(AbsintStress, MeetJoinNormalizeFuzz) {
  util::Rng rng(777u);
  for (int round = 0; round < 2000; ++round) {
    const Int hi = rng.uniform_int(0, 5000);
    AbsVal a = AbsVal::top(rng.uniform_int(0, hi), hi);
    AbsVal b = AbsVal::top(0, rng.uniform_int(0, hi));
    a.cong = Congruence{rng.uniform_int(1, 64), 0};
    a.cong.rem = rng.uniform_int(0, a.cong.mod - 1);
    b.bits.mask = static_cast<std::uint64_t>(rng.uniform_int(0, 255));
    b.bits.value = static_cast<std::uint64_t>(rng.uniform_int(0, 255)) &
                   b.bits.mask;
    normalize(a);
    normalize(b);
    const AbsVal m = meet(a, b);
    const AbsVal j = join(a, b);
    // Spot-check γ: meet admits only what both admit, join admits whatever
    // either admits.
    for (int probe = 0; probe < 16; ++probe) {
      const Int v = rng.uniform_int(0, hi);
      if (m.admits(v)) {
        EXPECT_TRUE(a.admits(v) && b.admits(v)) << v;
      }
      if (a.admits(v) || b.admits(v)) {
        EXPECT_TRUE(j.admits(v)) << v;
      }
    }
  }
}

TEST(AbsintStress, SolverModelsAdmittedAtVolume) {
  util::Rng rng(424242u);
  int sat_sessions = 0;
  for (int round = 0; round < 200; ++round) {
    const int fields = static_cast<int>(rng.uniform_int(1, 4));
    const auto layout = random_layout(rng, fields);
    const auto set = random_set(rng, fields, 40, 4);

    smt::Solver solver;
    for (const auto& f : layout.fields) solver.add_var(f.name, 0, f.max_value);
    for (const auto& r : set.rules) solver.add(r.formula);
    smt::Budget budget;
    budget.max_nodes = 200'000;
    if (solver.check(budget) != smt::CheckResult::kSat) continue;
    ++sat_sessions;

    const Analysis analysis = analyze(set, layout);
    ASSERT_FALSE(analysis.infeasible);
    for (int i = 0; i < fields; ++i) {
      const Int v = solver.model_value(VarId{i});
      EXPECT_TRUE(analysis.field(i).admits(v))
          << "round " << round << " field " << i << " model value " << v;
    }
  }
  // The harness must actually exercise the property, not vacuously skip.
  EXPECT_GT(sat_sessions, 50);
}

}  // namespace
}  // namespace lejit::absint
