// SubprocessBackend lifecycle tests (DESIGN.md §12): a missing, dying,
// babbling, or wedged external solver must never crash or stall the caller —
// every pathology ends in a clean kUnknown (raw backend) or a degraded
// in-process answer (failover), with the incident visible in BackendStats.
//
// Misbehaving solvers are real processes: tiny /bin/sh scripts written to a
// temp directory, plus the bundled lejit_smtserve (path injected by CMake as
// LEJIT_SMTSERVE_PATH) for the healthy and fault-injected cases.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "fault/fault.hpp"
#include "lm/ngram.hpp"
#include "obs/timer.hpp"
#include "rules/rule.hpp"
#include "smt/backend.hpp"
#include "smt/subprocess.hpp"
#include "telemetry/generator.hpp"
#include "util/rng.hpp"

#ifndef LEJIT_SMTSERVE_PATH
#define LEJIT_SMTSERVE_PATH ""
#endif

namespace lejit::smt {
namespace {

// All fine-grained fault causes must add up to the total: every incident is
// accounted, none double-counted.
void expect_fault_accounting(const BackendStats& s) {
  EXPECT_EQ(s.faults,
            s.timeouts + s.crashes + s.protocol_errors + s.spawn_failures);
}

// Write an executable /bin/sh script posing as an SMT solver.
class FakeSolver {
 public:
  explicit FakeSolver(const std::string& body) {
    char tmpl[] = "/tmp/lejit_fake_solver_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd >= 0) ::close(fd);
    path_ = tmpl;
    std::ofstream out(path_);
    out << "#!/bin/sh\n" << body;
    out.close();
    ::chmod(path_.c_str(), 0755);
  }
  ~FakeSolver() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

BackendConfig raw_config(std::string path) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSubprocess;
  cfg.solver_path = std::move(path);
  cfg.degrade_to_minismt = false;  // probe the raw backend
  cfg.retry_backoff_ms = 1;
  cfg.max_respawns = 2;
  return cfg;
}

// A tiny problem every test reuses: x in [0,10], x <= 5.
void seed_problem(Backend& b) {
  const VarId x = b.add_var("x", 0, 10);
  b.add(le(LinExpr(x), LinExpr(5)));
}

TEST(SubprocessLifecycle, AbsentBinaryIsACleanUnknown) {
  SubprocessBackend b(raw_config("/nonexistent/solver-binary"));
  seed_problem(b);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(b.check(), CheckResult::kUnknown) << "check " << i;
  const BackendStats s = b.backend_stats();
  EXPECT_EQ(s.checks, 5);
  EXPECT_EQ(s.spawn_failures, 5);
  EXPECT_EQ(s.crashes, 0);
  expect_fault_accounting(s);
  // Spawn failures burn the respawn budget too: the backend must eventually
  // declare itself unhealthy so FailoverBackend stops consulting it.
  EXPECT_FALSE(b.healthy());
  EXPECT_EQ(b.stats().checks, 5);  // solver-shaped stats stay consistent
  EXPECT_EQ(b.stats().unknowns, 5);
}

TEST(SubprocessLifecycle, ChildDyingMidCheckIsACrashNotASignal) {
  // Reads one line of the replayed session, then exits: every check loses
  // its child mid-flight. The SIGPIPE from writing to the dead pipe must be
  // swallowed (the test process surviving *is* the assertion).
  const FakeSolver solver("read line\nexit 0\n");
  SubprocessBackend b(raw_config(solver.path()));
  seed_problem(b);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(b.check(), CheckResult::kUnknown) << "check " << i;
  const BackendStats s = b.backend_stats();
  EXPECT_GT(s.crashes, 0);
  EXPECT_EQ(s.protocol_errors, 0);
  expect_fault_accounting(s);
  EXPECT_FALSE(b.healthy());  // respawn budget exhausted
}

TEST(SubprocessLifecycle, GarbageAnswerIsAProtocolError) {
  const FakeSolver solver(
      "while read line; do\n"
      "  case \"$line\" in\n"
      "    '(check-sat)') echo 'blargh' ;;\n"
      "  esac\n"
      "done\n");
  SubprocessBackend b(raw_config(solver.path()));
  seed_problem(b);
  EXPECT_EQ(b.check(), CheckResult::kUnknown);
  const BackendStats s = b.backend_stats();
  EXPECT_GT(s.protocol_errors, 0);
  EXPECT_EQ(s.timeouts, 0);
  expect_fault_accounting(s);
}

TEST(SubprocessLifecycle, TruncatedSatAnswerIsAProtocolError) {
  // The classic garble: a `(sat` with the rest of the line missing.
  const FakeSolver solver(
      "while read line; do\n"
      "  case \"$line\" in\n"
      "    '(check-sat)') echo '(sat' ;;\n"
      "  esac\n"
      "done\n");
  SubprocessBackend b(raw_config(solver.path()));
  seed_problem(b);
  EXPECT_EQ(b.check(), CheckResult::kUnknown);
  EXPECT_GT(b.backend_stats().protocol_errors, 0);
  expect_fault_accounting(b.backend_stats());
}

TEST(SubprocessLifecycle, WedgedChildHonorsTheDeadline) {
  // Consumes everything, answers nothing: the check blocks on read() until
  // the effective deadline. The sliced poll bounds the overshoot.
  const FakeSolver solver("while read line; do :; done\n");
  BackendConfig cfg = raw_config(solver.path());
  cfg.check_timeout_ms = 80;
  SubprocessBackend b(cfg);
  seed_problem(b);
  const std::int64_t t0 = obs::now_ns();
  EXPECT_EQ(b.check(), CheckResult::kUnknown);
  const std::int64_t elapsed_ms = (obs::now_ns() - t0) / 1'000'000;
  EXPECT_GE(elapsed_ms, 80);
  EXPECT_LT(elapsed_ms, 2'000);  // deadline + poll slice + CI slack, not 60 s
  EXPECT_GT(b.backend_stats().timeouts, 0);
  expect_fault_accounting(b.backend_stats());
}

TEST(SubprocessLifecycle, BudgetDeadlineCapsTheWait) {
  const FakeSolver solver("while read line; do :; done\n");
  BackendConfig cfg = raw_config(solver.path());
  cfg.check_timeout_ms = 60'000;  // the Budget, not the config, must bind
  SubprocessBackend b(cfg);
  seed_problem(b);
  const std::int64_t t0 = obs::now_ns();
  EXPECT_EQ(b.check(Budget::deadline_in_ms(60)), CheckResult::kUnknown);
  const std::int64_t elapsed_ms = (obs::now_ns() - t0) / 1'000'000;
  EXPECT_LT(elapsed_ms, 2'000);
  EXPECT_GT(b.backend_stats().timeouts, 0);
}

// --- against the real bundled server -----------------------------------------

bool smtserve_available() {
  return LEJIT_SMTSERVE_PATH[0] != '\0' &&
         ::access(LEJIT_SMTSERVE_PATH, X_OK) == 0;
}

TEST(SubprocessSmtserve, AnswersAndProducesModels) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  BackendConfig cfg = raw_config(LEJIT_SMTSERVE_PATH);
  SubprocessBackend b(cfg);
  const VarId x = b.add_var("x", 0, 10);
  const VarId y = b.add_var("y", 0, 10);
  b.add(eq(LinExpr(x) + LinExpr(y), LinExpr(7)));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  const auto mx = b.model_value(x);
  const auto my = b.model_value(y);
  ASSERT_TRUE(mx.has_value() && my.has_value());
  EXPECT_EQ(*mx + *my, 7);

  b.push();
  b.add(ge(LinExpr(x), LinExpr(9)));
  EXPECT_EQ(b.check(), CheckResult::kUnsat);
  b.pop();
  EXPECT_EQ(b.check(), CheckResult::kSat);
  EXPECT_EQ(b.backend_stats().faults, 0);
}

TEST(SubprocessSmtserve, InjectedKillRespawnsAndRestoresTheSession) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  BackendConfig cfg = raw_config(LEJIT_SMTSERVE_PATH);
  cfg.max_respawns = 100;
  SubprocessBackend b(cfg);
  const VarId x = b.add_var("x", 0, 10);
  b.push();
  b.add(le(LinExpr(x), LinExpr(3)));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  const pid_t before = b.child_pid();
  ASSERT_GT(before, 0);

  {
    fault::Plan plan;
    plan.site(fault::Site::kSubprocessKill).p_unknown = 1.0;
    const fault::ScopedPlan scoped{plan};
    // Every attempt (including the one bounded retry) is killed mid-check.
    EXPECT_EQ(b.check(), CheckResult::kUnknown);
  }
  const BackendStats mid = b.backend_stats();
  EXPECT_GT(mid.crashes, 0);
  expect_fault_accounting(mid);

  // Chaos off: the next check respawns, replays the session — including the
  // scoped assertion — and answers correctly again.
  std::vector<Formula> over{ge(LinExpr(x), LinExpr(5))};
  EXPECT_EQ(b.check_assuming(over, Budget{}), CheckResult::kUnsat);
  EXPECT_EQ(b.check(), CheckResult::kSat);
  const BackendStats after = b.backend_stats();
  EXPECT_GT(after.respawns, 0);
  EXPECT_GT(after.restored_lines, 0);
  EXPECT_NE(b.child_pid(), before);
  EXPECT_TRUE(b.healthy());
}

TEST(SubprocessSmtserve, InjectedGarbleIsAProtocolErrorThenRecovers) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  BackendConfig cfg = raw_config(LEJIT_SMTSERVE_PATH);
  cfg.max_respawns = 100;
  SubprocessBackend b(cfg);
  seed_problem(b);
  {
    fault::Plan plan;
    plan.site(fault::Site::kSubprocessGarble).p_unknown = 1.0;
    const fault::ScopedPlan scoped{plan};
    EXPECT_EQ(b.check(), CheckResult::kUnknown);
  }
  EXPECT_GT(b.backend_stats().protocol_errors, 0);
  EXPECT_EQ(b.check(), CheckResult::kSat);
  EXPECT_TRUE(b.healthy());
}

TEST(SubprocessSmtserve, InjectedHangTimesOutFast) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  BackendConfig cfg = raw_config(LEJIT_SMTSERVE_PATH);
  cfg.check_timeout_ms = 60;
  cfg.max_respawns = 100;
  SubprocessBackend b(cfg);
  seed_problem(b);
  {
    fault::Plan plan;
    plan.site(fault::Site::kSubprocessHang).p_unknown = 1.0;
    const fault::ScopedPlan scoped{plan};
    const std::int64_t t0 = obs::now_ns();
    EXPECT_EQ(b.check(), CheckResult::kUnknown);
    EXPECT_LT((obs::now_ns() - t0) / 1'000'000, 2'000);
  }
  EXPECT_GT(b.backend_stats().timeouts, 0);
  EXPECT_EQ(b.check(), CheckResult::kSat);
}

}  // namespace
}  // namespace lejit::smt

// --- end-to-end: decoder on a chaos-ridden subprocess backend ----------------

namespace lejit::core {
namespace {

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet rules;
  std::vector<telemetry::Window> windows;
};

bool smtserve_available() {
  return LEJIT_SMTSERVE_PATH[0] != '\0' &&
         ::access(LEJIT_SMTSERVE_PATH, X_OK) == 0;
}

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 8, .windows_per_rack = 40, .seed = 91});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.windows = telemetry::all_windows(out.dataset);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const auto& w : out.windows)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.rules = rules::manual_rules(out.layout, out.dataset.limits);
    return out;
  }();
  return e;
}

// The acceptance bar for the whole backend layer: a 64-row decode with fault
// injection killing or hanging the subprocess on ~20% of checks must
// complete without a process crash, produce rows bit-identical to the
// minismt-only baseline (degradation falls back to the very solver the
// baseline runs), and account for every incident in the stats.
TEST(SubprocessDecode, SixtyFourRowsBitIdenticalUnderTwentyPercentChaos) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  DecoderConfig base{.mode = GuidanceMode::kFull};
  GuidedDecoder baseline(*env().model, env().tokenizer, env().layout,
                         env().rules, base);

  DecoderConfig chaotic{.mode = GuidanceMode::kFull};
  chaotic.backend.kind = smt::BackendKind::kSubprocess;
  chaotic.backend.solver_path = LEJIT_SMTSERVE_PATH;
  chaotic.backend.check_timeout_ms = 50;  // injected hangs resolve quickly
  chaotic.backend.retry_backoff_ms = 1;
  chaotic.backend.max_respawns = 1 << 20;  // chaos must not exhaust the budget
  GuidedDecoder chaos_decoder(*env().model, env().tokenizer, env().layout,
                              env().rules, chaotic);

  fault::Plan plan;
  plan.seed = 20260808;
  plan.site(fault::Site::kSubprocessKill).p_unknown = 0.17;
  plan.site(fault::Site::kSubprocessHang).p_unknown = 0.03;
  const fault::ScopedPlan scoped{plan};

  std::int64_t degraded_rows = 0;
  for (int seed = 0; seed < 40; ++seed) {
    util::Rng a(static_cast<std::uint64_t>(seed));
    util::Rng b(static_cast<std::uint64_t>(seed));
    const DecodeResult rb = baseline.generate(a);
    const DecodeResult rc = chaos_decoder.generate(b);
    ASSERT_EQ(rc.text, rb.text) << "seed " << seed;
    ASSERT_EQ(rc.ok, rb.ok) << "seed " << seed;
    degraded_rows += rc.backend_degraded > 0 ? 1 : 0;
  }
  for (int seed = 0; seed < 24; ++seed) {
    const telemetry::Window& truth =
        env().windows[static_cast<std::size_t>(seed) % env().windows.size()];
    const std::string prompt = telemetry::imputation_prompt(truth);
    util::Rng a(static_cast<std::uint64_t>(7000 + seed));
    util::Rng b(static_cast<std::uint64_t>(7000 + seed));
    const DecodeResult rb = baseline.generate(a, prompt);
    const DecodeResult rc = chaos_decoder.generate(b, prompt);
    ASSERT_EQ(rc.text, rb.text) << "prompt seed " << seed;
    ASSERT_EQ(rc.ok, rb.ok) << "prompt seed " << seed;
    degraded_rows += rc.backend_degraded > 0 ? 1 : 0;
  }

  // With ~20% of checks faulted, chaos must actually have struck — and every
  // strike must be visible in the accounting.
  const smt::BackendStats s = chaos_decoder.backend_stats();
  EXPECT_GT(s.checks, 0);
  EXPECT_GT(s.degraded, 0);
  EXPECT_GT(s.respawns, 0);
  EXPECT_GT(degraded_rows, 0);
  EXPECT_EQ(s.faults,
            s.timeouts + s.crashes + s.protocol_errors + s.spawn_failures);
  EXPECT_GE(s.faults, s.degraded);  // every degraded check had >= 1 fault
  // The baseline saw no backend incidents at all.
  const smt::BackendStats sb = baseline.backend_stats();
  EXPECT_EQ(sb.faults, 0);
  EXPECT_EQ(sb.degraded, 0);
}

}  // namespace
}  // namespace lejit::core
