// smt::Backend layer tests (DESIGN.md §12): MinismtBackend must be
// indistinguishable from a raw smt::Solver, the SMT-LIB2 emitter/parser must
// round-trip the dialect, backend specs must parse, and FailoverBackend must
// degrade cleanly when its primary cannot serve.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "smt/backend.hpp"
#include "smt/diff.hpp"
#include "smt/smtlib2.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lejit::smt {
namespace {

Formula random_constraint(util::Rng& rng, const std::vector<VarId>& vars) {
  const auto pick = [&] {
    return vars[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(vars.size()) - 1))];
  };
  const Int a = rng.uniform_int(-3, 3);
  const Int b = rng.uniform_int(-3, 3);
  const Int c = rng.uniform_int(-25, 25);
  const LinExpr lhs = a * LinExpr(pick()) + b * LinExpr(pick());
  switch (rng.uniform_int(0, 3)) {
    case 0: return le(lhs, LinExpr(c));
    case 1: return ge(lhs, LinExpr(c));
    case 2: return lor(le(lhs, LinExpr(c)), ge(lhs, LinExpr(c + 5)));
    default: return ne(lhs, LinExpr(c));
  }
}

// --- MinismtBackend ≡ raw Solver --------------------------------------------

TEST(MinismtBackend, MatchesRawSolverAcrossRandomSessions) {
  util::Rng rng(1337);
  for (int trial = 0; trial < 25; ++trial) {
    MinismtBackend backend;
    Solver solver;
    std::vector<VarId> vb, vs;
    for (int v = 0; v < 4; ++v) {
      const Int hi = rng.uniform_int(1, 20);
      vb.push_back(backend.add_var("v" + std::to_string(v), 0, hi));
      vs.push_back(solver.add_var("v" + std::to_string(v), 0, hi));
      ASSERT_EQ(vb.back().index, vs.back().index);
    }
    for (int i = 0; i < 3; ++i) {
      const Formula f = random_constraint(rng, vb);
      backend.add(f);
      solver.add(f);
    }
    backend.push();
    solver.push();
    const Formula scoped = random_constraint(rng, vb);
    backend.add(scoped);
    solver.add(scoped);
    for (int q = 0; q < 3; ++q) {
      std::vector<Formula> assumptions{random_constraint(rng, vb)};
      ASSERT_EQ(backend.check_assuming(assumptions, Budget{}),
                solver.check_assuming(assumptions))
          << "trial " << trial << " query " << q;
    }
    for (int v = 0; v < 4; ++v) {
      const auto bi = backend.try_feasible_interval(
          vb[static_cast<std::size_t>(v)], {}, Budget{});
      const auto si = solver.try_feasible_interval(
          vs[static_cast<std::size_t>(v)]);
      ASSERT_EQ(bi.has_value(), si.has_value()) << "trial " << trial;
      if (bi) {
        EXPECT_EQ(*bi, *si) << "trial " << trial << " var " << v;
      }
    }
    backend.pop();
    solver.pop();
    EXPECT_EQ(backend.num_scopes(), solver.num_scopes());
    EXPECT_EQ(backend.check(), solver.check());
  }
}

TEST(MinismtBackend, ModelValueOnlyAfterSat) {
  MinismtBackend b;
  const VarId x = b.add_var("x", 0, 10);
  EXPECT_FALSE(b.model_value(x).has_value());  // no check yet: no model
  b.add(eq(LinExpr(x), LinExpr(7)));
  ASSERT_EQ(b.check(), CheckResult::kSat);
  ASSERT_TRUE(b.model_value(x).has_value());
  EXPECT_EQ(*b.model_value(x), 7);
  std::vector<Formula> contradiction{eq(LinExpr(x), LinExpr(3))};
  ASSERT_EQ(b.check_assuming(contradiction, Budget{}), CheckResult::kUnsat);
  EXPECT_FALSE(b.model_value(x).has_value());  // unsat invalidates the model
}

// The generic Backend::try_feasible_interval (used by subprocess backends)
// must agree with minismt's exact native implementation.
TEST(Backend, GenericFeasibleIntervalMatchesNative) {
  // A backend that inherits the generic default by not overriding it.
  class GenericMinismt final : public Backend {
   public:
    std::string_view name() const noexcept override { return "generic"; }
    VarId add_var(std::string name, Int lo, Int hi) override {
      return inner_.add_var(std::move(name), lo, hi);
    }
    int num_vars() const noexcept override { return inner_.num_vars(); }
    Interval bounds(VarId v) const override { return inner_.bounds(v); }
    void add(Formula f) override { inner_.add(std::move(f)); }
    void push() override { inner_.push(); }
    void pop() override { inner_.pop(); }
    std::size_t num_scopes() const noexcept override {
      return inner_.num_scopes();
    }
    CheckResult check_assuming(std::span<const Formula> assumptions,
                               const Budget& budget) override {
      return inner_.check_assuming(assumptions, budget);
    }
    std::optional<Int> model_value(VarId v) override {
      return inner_.model_value(v);
    }
    SolverStats stats() const override { return inner_.stats(); }

   private:
    MinismtBackend inner_;
  };

  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    GenericMinismt generic;
    Solver solver;
    std::vector<VarId> vars;
    for (int v = 0; v < 3; ++v) {
      const Int hi = rng.uniform_int(1, 30);
      vars.push_back(generic.add_var("v" + std::to_string(v), 0, hi));
      (void)solver.add_var("v" + std::to_string(v), 0, hi);
    }
    for (int i = 0; i < 2; ++i) {
      const Formula f = random_constraint(rng, vars);
      generic.add(f);
      solver.add(f);
    }
    for (int v = 0; v < 3; ++v) {
      const auto gi =
          generic.try_feasible_interval(vars[static_cast<std::size_t>(v)]);
      const auto si =
          solver.try_feasible_interval(vars[static_cast<std::size_t>(v)]);
      ASSERT_EQ(gi.has_value(), si.has_value()) << "trial " << trial;
      if (gi) {
        EXPECT_EQ(*gi, *si) << "trial " << trial << " var " << v;
      }
    }
  }
}

// --- SMT-LIB2 emit / parse ---------------------------------------------------

TEST(Smtlib2, EmitsTheClosedDialect) {
  const VarId x{0}, y{1};
  EXPECT_EQ(smtlib2::var_name(3), "x3");
  EXPECT_EQ(smtlib2::to_smtlib2(le(2 * LinExpr(x), LinExpr(5))),
            "(<= (+ (* 2 x0) (- 5)) 0)");
  EXPECT_EQ(smtlib2::to_smtlib2(ne(LinExpr(x), LinExpr(y))),
            "(not (= (+ x0 (* (- 1) x1)) 0))");
  EXPECT_EQ(smtlib2::to_smtlib2(land(le(LinExpr(x), LinExpr(1)),
                                     le(LinExpr(y), LinExpr(2)))),
            "(and (<= (+ x0 (- 1)) 0) (<= (+ x1 (- 2)) 0))");
  const std::string decls = smtlib2::declare_lines(2, 0, 9);
  EXPECT_NE(decls.find("(declare-const x2 Int)"), std::string::npos);
  EXPECT_NE(decls.find("(assert"), std::string::npos);  // the domain bound
}

TEST(Smtlib2, ParsesModelsIncludingNegatives) {
  const auto m = smtlib2::parse_model("((x0 3) (x1 (- 2)) (x2 0))");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->size(), 3u);
  EXPECT_EQ((*m)[0], (std::pair<int, Int>{0, 3}));
  EXPECT_EQ((*m)[1], (std::pair<int, Int>{1, -2}));
  EXPECT_EQ((*m)[2], (std::pair<int, Int>{2, 0}));
  // Garbage and truncation must parse to nullopt, not crash.
  EXPECT_FALSE(smtlib2::parse_model("((x0 3").has_value());
  EXPECT_FALSE(smtlib2::parse_model("sat").has_value());
  EXPECT_FALSE(smtlib2::parse_model("((y9 1))").has_value());
}

TEST(Smtlib2, SexprParserHandlesNestingAndComments) {
  std::size_t pos = 0;
  const auto s =
      smtlib2::parse_sexpr("; comment\n(assert (<= (+ (* 1 x0) 2) 0))", &pos);
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->list.size(), 2u);
  EXPECT_EQ(s->list[0].atom, "assert");
  std::size_t bad = 0;
  EXPECT_FALSE(smtlib2::parse_sexpr("(sat", &bad).has_value());
}

// --- backend spec parsing ----------------------------------------------------

TEST(BackendSpec, ParsesTheDocumentedForms) {
  EXPECT_EQ(backend_config_from_spec("").kind, BackendKind::kMinismt);
  EXPECT_EQ(backend_config_from_spec("minismt").kind, BackendKind::kMinismt);

  const BackendConfig sub = backend_config_from_spec("subprocess:/opt/solver");
  EXPECT_EQ(sub.kind, BackendKind::kSubprocess);
  EXPECT_EQ(sub.solver_path, "/opt/solver");

  const BackendConfig bare = backend_config_from_spec("/usr/local/bin/z3");
  EXPECT_EQ(bare.kind, BackendKind::kSubprocess);
  ASSERT_FALSE(bare.solver_args.empty());  // z3 needs -in for stdin mode
  EXPECT_EQ(bare.solver_args[0], "-in");

  const BackendConfig cvc = backend_config_from_spec("subprocess:/bin/cvc5");
  EXPECT_EQ(cvc.solver_args,
            (std::vector<std::string>{"--incremental", "--lang", "smt2"}));

  EXPECT_THROW(backend_config_from_spec("bogus"), util::RuntimeError);
}

TEST(BackendSpec, AutoFallsBackToMinismtWhenNothingIsFound) {
  // Neutralize every discovery channel; PATH without z3/cvc5 and no
  // argv0-sibling smtserve leaves auto with nothing.
  const char* const saved_solver = std::getenv("LEJIT_SMT_SOLVER");
  const char* const saved_serve = std::getenv("LEJIT_SMTSERVE");
  const char* const saved_path = std::getenv("PATH");
  ::unsetenv("LEJIT_SMT_SOLVER");
  ::unsetenv("LEJIT_SMTSERVE");
  ::setenv("PATH", "/nonexistent-for-test", 1);
  const BackendConfig cfg = backend_config_from_spec("auto", "/nonexistent/cli");
  if (saved_solver) ::setenv("LEJIT_SMT_SOLVER", saved_solver, 1);
  if (saved_serve) ::setenv("LEJIT_SMTSERVE", saved_serve, 1);
  if (saved_path) ::setenv("PATH", saved_path, 1);
  EXPECT_EQ(cfg.kind, BackendKind::kMinismt);
}

// --- FailoverBackend ---------------------------------------------------------

TEST(FailoverBackend, AbsentBinaryDegradesEveryCheckToTheFallback) {
  BackendConfig cfg;
  cfg.kind = BackendKind::kSubprocess;
  cfg.solver_path = "/nonexistent/solver-binary";
  cfg.retry_backoff_ms = 1;
  const std::unique_ptr<Backend> b = make_backend(cfg);
  ASSERT_EQ(b->name(), "failover");

  const VarId x = b->add_var("x", 0, 10);
  b->add(le(LinExpr(x), LinExpr(5)));
  EXPECT_EQ(b->check(), CheckResult::kSat);  // answered, not crashed
  b->push();
  b->add(ge(LinExpr(x), LinExpr(8)));
  EXPECT_EQ(b->check(), CheckResult::kUnsat);
  b->pop();

  const BackendStats stats = b->backend_stats();
  EXPECT_EQ(stats.degraded, 2);  // both checks served by minismt
  EXPECT_GT(stats.spawn_failures, 0);
  EXPECT_GT(stats.faults, 0);

  // The fallback's model is available after a degraded sat check.
  ASSERT_EQ(b->check(), CheckResult::kSat);
  const auto w = b->model_value(x);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(*w, 5);

  // Degraded feasible intervals are exact (the fallback mirrors all state).
  const auto iv = b->try_feasible_interval(x);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, (Interval{0, 5}));
}

TEST(FailoverBackend, GenuineUnknownIsNotDegradation) {
  // A primary that answers kUnknown without faulting must have its verdict
  // passed through: degradation is about availability, not verdict quality.
  SolverConfig tiny;
  tiny.max_nodes = 1;  // starves search so checks give up
  auto primary = std::make_unique<MinismtBackend>(tiny);
  auto fallback = std::make_unique<MinismtBackend>();
  FailoverBackend fo(std::move(primary), std::move(fallback));
  const VarId x = fo.add_var("x", 0, 50);
  const VarId y = fo.add_var("y", 0, 50);
  // Disjunctive structure forces search (propagation alone can't decide it).
  fo.add(lor(eq(LinExpr(x) + LinExpr(y), LinExpr(17)),
             eq(LinExpr(x) - LinExpr(y), LinExpr(13))));
  const CheckResult r = fo.check();
  EXPECT_EQ(r, CheckResult::kUnknown);
  EXPECT_EQ(fo.backend_stats().degraded, 0);
}

// --- differential harness sanity --------------------------------------------

TEST(SmtDiff, MinismtAgainstItselfIsClean) {
  diff::Config cfg;
  cfg.queries = 200;
  cfg.seed = 9;
  const diff::Report report = diff::run(
      [] { return std::make_unique<MinismtBackend>(); },
      [] { return std::make_unique<MinismtBackend>(); }, cfg);
  EXPECT_TRUE(report.ok()) << report.first_mismatch;
  EXPECT_EQ(report.compared, 200);
  EXPECT_EQ(report.unknowns, 0);
  EXPECT_GT(report.sessions, 0);
}

}  // namespace
}  // namespace lejit::smt
