#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "fault/fault.hpp"

namespace lejit::fault {
namespace {

TEST(FaultInjector, DisarmedHooksAreNoOps) {
  Injector& inj = Injector::instance();
  ASSERT_FALSE(inj.armed());
  EXPECT_FALSE(inj.on_call(Site::kSolverCheck));
  EXPECT_NO_THROW(inj.on_batch_row(0, 0));
  EXPECT_FALSE(inject_unknown(Site::kSolverCheck));
  EXPECT_NO_THROW(inject(Site::kLmForward));
}

TEST(FaultInjector, ScopedPlanArmsAndDisarms) {
  {
    const ScopedPlan scoped{Plan{}};
    EXPECT_TRUE(Injector::instance().armed());
  }
  EXPECT_FALSE(Injector::instance().armed());
}

TEST(FaultInjector, ArmingZeroesCounts) {
  Plan plan;
  plan.site(Site::kSolverCheck).p_unknown = 1.0;
  {
    const ScopedPlan scoped{plan};
    EXPECT_TRUE(inject_unknown(Site::kSolverCheck));
    EXPECT_EQ(Injector::instance().counts().unknowns, 1);
  }
  const ScopedPlan again{plan};
  const Counts c = Injector::instance().counts();
  EXPECT_EQ(c.calls, 0);
  EXPECT_EQ(c.unknowns, 0);
}

TEST(FaultInjector, DecisionsAreDeterministicGivenSeed) {
  Plan plan;
  plan.seed = 42;
  plan.site(Site::kSolverCheck).p_unknown = 0.5;

  const auto run = [&] {
    std::vector<bool> decisions;
    const ScopedPlan scoped{plan};
    for (int i = 0; i < 200; ++i)
      decisions.push_back(inject_unknown(Site::kSolverCheck));
    return decisions;
  };
  const auto first = run();
  EXPECT_EQ(first, run()) << "same plan must replay bit-identically";

  Plan other = plan;
  other.seed = 43;
  std::vector<bool> reseeded;
  {
    const ScopedPlan scoped{other};
    for (int i = 0; i < 200; ++i)
      reseeded.push_back(inject_unknown(Site::kSolverCheck));
  }
  EXPECT_NE(first, reseeded) << "seed must actually steer the decisions";
}

TEST(FaultInjector, ProbabilitiesPartitionOneDraw) {
  Plan plan;
  plan.seed = 7;
  plan.site(Site::kLmForward) =
      SiteConfig{.p_unknown = 0.0, .p_throw = 0.3, .p_delay = 0.3};

  const ScopedPlan scoped{plan};
  const int n = 2000;
  int threw = 0;
  for (int i = 0; i < n; ++i) {
    try {
      inject(Site::kLmForward);
    } catch (const InjectedFault&) {
      ++threw;
    }
  }
  const Counts c = Injector::instance().counts();
  EXPECT_EQ(c.calls, n);
  EXPECT_EQ(c.throws, threw);
  EXPECT_EQ(c.unknowns, 0);
  // 0.3 ± generous slack over 2000 deterministic draws.
  EXPECT_GT(c.throws, n / 5);
  EXPECT_LT(c.throws, n / 2);
  EXPECT_GT(c.delays, n / 5);
  EXPECT_LT(c.delays, n / 2);
}

TEST(FaultInjector, DelayActuallyStalls) {
  Plan plan;
  plan.site(Site::kLmForward) =
      SiteConfig{.p_delay = 1.0, .delay_us = 2000};
  const ScopedPlan scoped{plan};
  const auto t0 = std::chrono::steady_clock::now();
  inject(Site::kLmForward);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(Injector::instance().counts().delays, 1);
}

TEST(FaultInjector, ScriptedRowFaultsHitExactAttempts) {
  Plan plan;
  plan.fail_rows = {{5, 2}};
  const ScopedPlan scoped{plan};
  Injector& inj = Injector::instance();

  EXPECT_THROW(inj.on_batch_row(5, 0), InjectedFault);
  EXPECT_THROW(inj.on_batch_row(5, 1), InjectedFault);
  EXPECT_NO_THROW(inj.on_batch_row(5, 2));  // past the scripted attempts
  EXPECT_NO_THROW(inj.on_batch_row(4, 0));  // other rows untouched
  EXPECT_EQ(inj.counts().row_faults, 2);
}

TEST(FaultInjector, InjectedFaultIsARuntimeError) {
  Plan plan;
  plan.site(Site::kBatchRow).p_throw = 1.0;
  const ScopedPlan scoped{plan};
  // Catchable both precisely and through the generic recovery paths.
  EXPECT_THROW(inject(Site::kBatchRow), InjectedFault);
  EXPECT_THROW(inject(Site::kBatchRow), util::RuntimeError);
  EXPECT_THROW(inject(Site::kBatchRow), std::exception);
}

TEST(FaultInjector, SiteNamesAreStable) {
  EXPECT_EQ(site_name(Site::kSolverCheck), "solver_check");
  EXPECT_EQ(site_name(Site::kLmForward), "lm_forward");
  EXPECT_EQ(site_name(Site::kBatchRow), "batch_row");
}

}  // namespace
}  // namespace lejit::fault
