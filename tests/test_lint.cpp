// lejit::lint — static rule-set analysis: vacuity/unsat cores, dead rules,
// unbounded fields, overflow hazards, and the static-hull handoff to the
// decoder's FeasibilityCache.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/decoder.hpp"
#include "lint/lint.hpp"
#include "lm/ngram.hpp"
#include "rules/parser.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"
#include "util/error.hpp"

namespace lejit {
namespace {

using smt::Int;

telemetry::RowLayout layout() {
  return telemetry::telemetry_row_layout(telemetry::Limits{});
}

rules::RuleSet parse(const std::string& text, const telemetry::RowLayout& l) {
  const auto parsed = rules::parse_rules(text, l);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.rules;
}

bool has_code(const lint::Report& r, lint::Code c) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [c](const lint::Finding& f) { return f.code == c; });
}

const lint::Finding* find_code(const lint::Report& r, lint::Code c) {
  for (const auto& f : r.findings)
    if (f.code == c) return &f;
  return nullptr;
}

TEST(Lint, CleanRuleSetHasNoErrors) {
  const auto l = layout();
  const auto set =
      rules::manual_rules(l, telemetry::Limits{});
  const auto report = lint::analyze(set, l);
  EXPECT_EQ(report.satisfiable, smt::CheckResult::kSat);
  EXPECT_EQ(report.errors(), 0u) << lint::to_text(report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.core.empty());
}

TEST(Lint, UnsatPairYieldsMinimalCore) {
  const auto l = layout();
  // Rules #1 and #3 conflict; #0 and #2 are innocent bystanders the greedy
  // deletion pass must eliminate from the core.
  const auto set = parse(
      "total >= 1\n"
      "egress >= 50\n"
      "conn <= 500\n"
      "egress <= 40\n",
      l);
  const auto report = lint::analyze(set, l);
  EXPECT_EQ(report.satisfiable, smt::CheckResult::kUnsat);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.core, (std::vector<std::size_t>{1, 3}));
  const auto* f = find_code(report, lint::Code::kUnsatRuleSet);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, lint::Severity::kError);
  EXPECT_EQ(f->rule_indices, report.core);
  EXPECT_NE(f->message.find("egress >= 50"), std::string::npos);
  EXPECT_NE(f->message.find("egress <= 40"), std::string::npos);
  // An UNSAT set has no feasible values anywhere: hulls must be empty.
  ASSERT_EQ(report.hulls.size(), static_cast<std::size_t>(l.num_fields()));
  for (const auto& h : report.hulls) EXPECT_TRUE(h.bounds.is_empty());
}

TEST(Lint, SubsumedRuleReportedDeadWithImplyingSubset) {
  const auto l = layout();
  const auto set = parse(
      "conn < 10\n"
      "conn < 20\n",
      l);
  const auto report = lint::analyze(set, l);
  EXPECT_EQ(report.satisfiable, smt::CheckResult::kSat);
  EXPECT_TRUE(report.ok());
  const auto* dead = find_code(report, lint::Code::kDeadRule);
  ASSERT_NE(dead, nullptr) << lint::to_text(report);
  EXPECT_EQ(dead->severity, lint::Severity::kWarning);
  // conn < 20 (#1) is implied by conn < 10 (#0), and the implying subset is
  // shrunk to exactly that rule.
  EXPECT_NE(dead->message.find("conn < 20"), std::string::npos);
  EXPECT_EQ(dead->rule_indices, (std::vector<std::size_t>{0}));
}

TEST(Lint, RuleImpliedByDomainsAloneSaysSo) {
  const auto l = layout();
  // total's domain is [0, 480]: total <= 1000 does no work at all.
  const auto set = parse("total <= 1000\n", l);
  const auto report = lint::analyze(set, l);
  const auto* dead = find_code(report, lint::Code::kDeadRule);
  ASSERT_NE(dead, nullptr) << lint::to_text(report);
  EXPECT_TRUE(dead->rule_indices.empty());
  EXPECT_NE(dead->message.find("domains alone"), std::string::npos);
}

TEST(Lint, UnboundedFieldsFlagged) {
  const auto l = layout();
  const auto set = parse("total <= 100\n", l);
  const auto report = lint::analyze(set, l);
  // Every field except total is untouched by the rule set.
  const int conn = rules::field_index(l, "conn");
  bool conn_unbounded = false;
  bool total_unbounded = false;
  for (const auto& f : report.findings) {
    if (f.code != lint::Code::kUnboundedField) continue;
    if (f.field == conn) conn_unbounded = true;
    if (f.field == rules::field_index(l, "total")) total_unbounded = true;
  }
  EXPECT_TRUE(conn_unbounded) << lint::to_text(report);
  EXPECT_FALSE(total_unbounded);
}

TEST(Lint, OverflowHazardCoefficientFlagged) {
  const auto l = layout();
  // 2^55 * total with total up to 480 crosses the 2^60 saturation rail.
  const auto set = parse("36028797018963968*total >= 0\n", l);
  const auto report = lint::analyze(set, l);
  const auto* f = find_code(report, lint::Code::kOverflowHazard);
  ASSERT_NE(f, nullptr) << lint::to_text(report);
  EXPECT_EQ(f->severity, lint::Severity::kWarning);
  EXPECT_EQ(f->rule_indices, (std::vector<std::size_t>{0}));
}

TEST(Lint, FieldMismatchIsAnError) {
  const telemetry::Limits limits;
  // Rules over fine fields, linted against the coarse-only layout: the
  // formulas reference variables the layout does not declare.
  const auto full = telemetry::telemetry_row_layout(limits);
  const auto coarse = telemetry::coarse_row_layout(limits);
  const auto set = rules::manual_rules(full, limits);
  const auto report = lint::analyze(set, coarse);
  EXPECT_FALSE(report.ok());
  const auto* f = find_code(report, lint::Code::kFieldMismatch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, lint::Severity::kError);
  // The coarse-only rule (egress <= total) is still analyzable.
  EXPECT_NE(report.satisfiable, smt::CheckResult::kUnsat);
}

TEST(Lint, FineFlagMismatchFlagged) {
  const auto l = layout();
  auto set = parse("I0 <= 50\n", l);
  ASSERT_TRUE(set.rules[0].uses_fine);
  set.rules[0].uses_fine = false;  // sabotage the flag
  const auto report = lint::analyze(set, l);
  EXPECT_TRUE(has_code(report, lint::Code::kFineMismatch))
      << lint::to_text(report);
}

TEST(Lint, DigitWidthAndConstantFieldNotes) {
  const auto l = layout();
  const auto set = parse(
      "total <= 9\n"   // 3-digit format, feasible max 9: width slack
      "conn == 42\n",  // statically fixed
      l);
  const auto report = lint::analyze(set, l);
  EXPECT_TRUE(report.ok());
  bool total_width = false, conn_const = false;
  for (const auto& f : report.findings) {
    if (f.code == lint::Code::kDigitWidth &&
        f.field == rules::field_index(l, "total"))
      total_width = true;
    if (f.code == lint::Code::kConstantField &&
        f.field == rules::field_index(l, "conn"))
      conn_const = true;
  }
  EXPECT_TRUE(total_width) << lint::to_text(report);
  EXPECT_TRUE(conn_const) << lint::to_text(report);
}

TEST(Lint, HullsAreExactAndSound) {
  const auto l = layout();
  const auto set = parse(
      "total >= 100\n"
      "total <= 250\n"
      "egress <= total\n",
      l);
  const auto report = lint::analyze(set, l);
  const auto total = static_cast<std::size_t>(rules::field_index(l, "total"));
  ASSERT_LT(total, report.hulls.size());
  EXPECT_TRUE(report.hulls[total].exact);
  EXPECT_EQ(report.hulls[total].bounds, (smt::Interval{100, 250}));
  // Witnesses come from a real model, so each must satisfy its own hull.
  for (const auto& h : report.hulls)
    for (const Int w : h.witnesses) EXPECT_TRUE(h.bounds.contains(w));
}

TEST(Lint, ReportSerializesToJson) {
  const auto l = layout();
  const auto set = parse("egress >= 50\negress <= 40\n", l);
  const auto report = lint::analyze(set, l);
  const std::string json = lint::to_json(report);
  EXPECT_NE(json.find("\"satisfiable\":\"unsat\""), std::string::npos) << json;
  EXPECT_NE(json.find("E_UNSAT"), std::string::npos);
  EXPECT_NE(json.find("\"core\":[0,1]"), std::string::npos) << json;
  EXPECT_NE(lint::to_text(report).find("error"), std::string::npos);
}

TEST(Lint, BudgetExhaustionIsInconclusiveNotWrong) {
  const auto l = layout();
  // A sum-equality over all fine fields needs real search; a 1-node budget
  // cannot decide it. The analyzer must degrade to W_INCONCLUSIVE, never
  // claim UNSAT.
  const auto set = parse("sum(I) == total\necn > 0 => max(I) >= 48\n", l);
  lint::Config cfg;
  cfg.check_max_nodes = 1;
  const auto report = lint::analyze(set, l, cfg);
  EXPECT_NE(report.satisfiable, smt::CheckResult::kUnsat);
  if (report.satisfiable == smt::CheckResult::kUnknown) {
    EXPECT_TRUE(has_code(report, lint::Code::kInconclusive));
  }
  EXPECT_TRUE(report.ok()) << lint::to_text(report);  // no false errors
}

// --- decoder integration: lint_on_load ---------------------------------------

struct DecodeEnv {
  telemetry::Dataset dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 4, .windows_per_rack = 20,
                                 .seed = 7});
  telemetry::RowLayout layout =
      telemetry::telemetry_row_layout(dataset.limits);
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  lm::NgramModel model{tokenizer.vocab_size(), lm::NgramConfig{.order = 5}};

  DecodeEnv() {
    for (const auto& w : telemetry::all_windows(dataset))
      model.observe(tokenizer.encode(telemetry::window_to_row(w)));
  }
};

TEST(LintOnLoad, ContradictoryRuleSetFailsFast) {
  DecodeEnv env;
  const auto set = parse("egress >= 50\negress <= 40\n", env.layout);
  core::DecoderConfig config;
  config.lint_on_load = true;
  EXPECT_THROW(core::GuidedDecoder(env.model, env.tokenizer, env.layout, set,
                                   config),
               util::RuntimeError);
}

TEST(LintOnLoad, CleanRuleSetDecodesAndSeedsHulls) {
  DecodeEnv env;
  const auto set = rules::manual_rules(env.layout, env.dataset.limits);

  core::DecoderConfig config;
  config.lint_on_load = true;
  core::GuidedDecoder dec(env.model, env.tokenizer, env.layout, set, config);
  ASSERT_TRUE(dec.lint_report().has_value());
  EXPECT_TRUE(dec.lint_report()->ok());

  util::Rng rng(11);
  const auto r = dec.generate(rng);
  ASSERT_TRUE(r.ok) << r.fail_detail;
  // The lint-seeded static hulls answered at least the first field's
  // attempt-start hull query.
  EXPECT_GT(dec.cache_stats().static_hits, 0);
}

TEST(LintOnLoad, SeededDecodeIsBitIdenticalToUnseeded) {
  DecodeEnv env;
  const auto set = rules::manual_rules(env.layout, env.dataset.limits);

  core::DecoderConfig plain;
  core::DecoderConfig linted;
  linted.lint_on_load = true;

  core::GuidedDecoder a(env.model, env.tokenizer, env.layout, set, plain);
  core::GuidedDecoder b(env.model, env.tokenizer, env.layout, set, linted);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng ra(seed), rb(seed);
    const auto x = a.generate(ra);
    const auto y = b.generate(rb);
    ASSERT_EQ(x.ok, y.ok);
    EXPECT_EQ(x.text, y.text) << "seed " << seed;
  }
}

TEST(LintOnLoad, DisabledByDefaultLeavesNoReport) {
  DecodeEnv env;
  const auto set = rules::manual_rules(env.layout, env.dataset.limits);
  core::GuidedDecoder dec(env.model, env.tokenizer, env.layout, set);
  EXPECT_FALSE(dec.lint_report().has_value());
  EXPECT_EQ(dec.cache_stats().static_hits, 0);
}

}  // namespace
}  // namespace lejit
