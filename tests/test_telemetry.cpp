#include <gtest/gtest.h>

#include <set>

#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

namespace lejit::telemetry {
namespace {

const Dataset& small_dataset() {
  static const Dataset ds = generate_dataset(GeneratorConfig{
      .num_racks = 12, .windows_per_rack = 40, .seed = 99});
  return ds;
}

TEST(Generator, ProducesRequestedShape) {
  const Dataset& ds = small_dataset();
  EXPECT_EQ(ds.racks.size(), 12u);
  EXPECT_EQ(ds.total_windows(), 12u * 40u);
  for (const auto& rack : ds.racks)
    EXPECT_EQ(rack.windows.size(), 40u);
}

TEST(Generator, EveryWindowIsConsistent) {
  const Dataset& ds = small_dataset();
  for (const auto& rack : ds.racks)
    for (const auto& w : rack.windows)
      EXPECT_TRUE(window_is_consistent(w, ds.limits));
}

TEST(Generator, IsDeterministicInSeed) {
  const GeneratorConfig cfg{.num_racks = 3, .windows_per_rack = 5, .seed = 7};
  const Dataset a = generate_dataset(cfg);
  const Dataset b = generate_dataset(cfg);
  ASSERT_EQ(a.total_windows(), b.total_windows());
  EXPECT_EQ(a.racks[1].windows[2].fine, b.racks[1].windows[2].fine);
  EXPECT_EQ(a.racks[2].windows[4].conn, b.racks[2].windows[4].conn);
}

TEST(Generator, DifferentSeedsDiffer) {
  const Dataset a = generate_dataset({.num_racks = 2, .windows_per_rack = 10, .seed = 1});
  const Dataset b = generate_dataset({.num_racks = 2, .windows_per_rack = 10, .seed = 2});
  EXPECT_NE(a.racks[0].windows[0].fine, b.racks[0].windows[0].fine);
}

TEST(Generator, ProducesBurstsAndQuietWindows) {
  const Dataset& ds = small_dataset();
  int bursty = 0, quiet = 0;
  for (const auto& w : all_windows(ds))
    (w.ecn > 0 ? bursty : quiet)++;
  EXPECT_GT(bursty, 10) << "burst behaviour must be present";
  EXPECT_GT(quiet, 10) << "baseline behaviour must be present";
}

TEST(Generator, RacksAreHeterogeneous) {
  const Dataset& ds = small_dataset();
  std::set<Int> mean_totals;
  for (const auto& rack : ds.racks) {
    Int total = 0;
    for (const auto& w : rack.windows) total += w.total;
    mean_totals.insert(total / static_cast<Int>(rack.windows.size()));
  }
  EXPECT_GT(mean_totals.size(), 6u) << "rack personalities should differ";
}

TEST(SplitByRack, PartitionsWithoutOverlap) {
  const Dataset& ds = small_dataset();
  const Split split = split_by_rack(ds, 3, 42);
  EXPECT_EQ(split.test.racks.size(), 3u);
  EXPECT_EQ(split.train.racks.size(), 9u);
  std::set<int> seen;
  for (const auto& r : split.train.racks) seen.insert(r.rack_id);
  for (const auto& r : split.test.racks)
    EXPECT_FALSE(seen.contains(r.rack_id)) << "rack leaked across the split";
}

TEST(SplitByRack, RejectsDegenerateSplits) {
  const Dataset& ds = small_dataset();
  EXPECT_THROW(split_by_rack(ds, 0, 1), util::PreconditionError);
  EXPECT_THROW(split_by_rack(ds, 12, 1), util::PreconditionError);
}

TEST(Text, RowRoundTrip) {
  const Dataset& ds = small_dataset();
  for (const auto& w : all_windows(ds)) {
    const std::string row = window_to_row(w);
    const auto parsed = parse_row(row, ds.limits);
    ASSERT_TRUE(parsed.has_value()) << row;
    EXPECT_EQ(parsed->total, w.total);
    EXPECT_EQ(parsed->ecn, w.ecn);
    EXPECT_EQ(parsed->rtx, w.rtx);
    EXPECT_EQ(parsed->conn, w.conn);
    EXPECT_EQ(parsed->egress, w.egress);
    EXPECT_EQ(parsed->fine, w.fine);
  }
}

TEST(Text, RowsUseOnlyTheDeclaredAlphabet) {
  const Dataset& ds = small_dataset();
  const std::string alphabet = row_alphabet();
  const std::string corpus = dataset_corpus(ds);
  for (const char c : corpus)
    EXPECT_NE(alphabet.find(c), std::string::npos) << "char '" << c << "'";
}

TEST(Text, PromptIsARowPrefix) {
  const Window& w = small_dataset().racks[0].windows[0];
  const std::string row = window_to_row(w);
  const std::string prompt = imputation_prompt(w);
  EXPECT_TRUE(row.starts_with(prompt));
  EXPECT_EQ(prompt.back(), '|');
}

TEST(Text, ParseRejectsMalformedRows) {
  const Limits lim{};
  EXPECT_FALSE(parse_row("", lim).has_value());
  EXPECT_FALSE(parse_row("T=10 E=1 R=0 C=5 G=9", lim).has_value());  // no fine
  EXPECT_FALSE(parse_row("T=x E=1 R=0 C=5 G=9|1 2 3 4 5", lim).has_value());
  EXPECT_FALSE(parse_row("T=10 E=1 R=0 C=5 G=9|1 2 3 4", lim).has_value());
  EXPECT_FALSE(parse_row("T=10 E=1 R=0 C=5 G=9|1 2 3 4 5 6", lim).has_value());
  EXPECT_FALSE(parse_row("E=1 T=10 R=0 C=5 G=9|1 2 3 4 5", lim).has_value());
  EXPECT_FALSE(parse_row("T=10 E=1 R=0 C=5 G=9|1 2 3 4 5x", lim).has_value());
}

TEST(Text, ParseAcceptsOutOfDomainValues) {
  // Syntax-only parsing: semantic violations are the rule checker's job.
  const Limits lim{};
  const auto w = parse_row("T=9999 E=1 R=0 C=5 G=9|1 2 3 4 999", lim);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->total, 9999);
  EXPECT_EQ(w->fine.back(), 999);
}

TEST(Text, CoarseRowAndLayout) {
  const Window& w = small_dataset().racks[0].windows[0];
  const std::string row = window_to_coarse_row(w);
  const RowLayout coarse = coarse_row_layout(Limits{});
  EXPECT_EQ(coarse.num_fields(), kNumCoarse);
  const auto parsed = parse_row(row, coarse);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total, w.total);
  EXPECT_TRUE(parsed->fine.empty());
}

TEST(Text, CorpusParsesCompletely) {
  const Dataset& ds = small_dataset();
  const ParsedCorpus parsed = parse_corpus(dataset_corpus(ds), ds.limits);
  EXPECT_EQ(parsed.malformed, 0u);
  EXPECT_EQ(parsed.windows.size(), ds.total_windows());
}

TEST(Layout, FieldOrderAndBounds) {
  const Limits lim{};
  const RowLayout layout = telemetry_row_layout(lim);
  ASSERT_EQ(layout.num_fields(), kNumCoarse + lim.window);
  EXPECT_EQ(layout.fields[0].name, "total");
  EXPECT_EQ(layout.fields[0].max_value, lim.total_max());
  EXPECT_EQ(layout.fields[4].name, "egress");
  EXPECT_EQ(layout.first_fine_field(), kNumCoarse);
  EXPECT_EQ(layout.fields[5].name, "I0");
  EXPECT_EQ(layout.fields[5].max_value, lim.bandwidth);
  EXPECT_EQ(layout.suffix, "\n");
}

}  // namespace
}  // namespace lejit::telemetry
