// Deeper solver coverage: self-consistency on larger domains (where brute
// force is impossible), incremental push/pop stress against a rebuilt-from-
// scratch oracle, and boundary behaviour of feasible_interval/minimize.
#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace lejit::smt {
namespace {

Formula random_formula(util::Rng& rng, const std::vector<VarId>& vars,
                       Int coeff_range, int depth) {
  if (depth == 0 || rng.bernoulli(0.5)) {
    LinExpr e(rng.uniform_int(-coeff_range * 4, coeff_range * 4));
    const int nterms = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < nterms; ++i) {
      const VarId v = vars[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<Int>(vars.size()) - 1))];
      e += LinExpr::term(rng.uniform_int(-coeff_range, coeff_range), v);
    }
    switch (rng.uniform_int(0, 2)) {
      case 0: return le(e, LinExpr(0));
      case 1: return eq(e, LinExpr(0));
      default: return ne(e, LinExpr(0));
    }
  }
  std::vector<Formula> children;
  for (int i = 0; i < 2; ++i)
    children.push_back(random_formula(rng, vars, coeff_range, depth - 1));
  return rng.bernoulli(0.5) ? land(std::move(children))
                            : lor(std::move(children));
}

// Self-consistency on domains far beyond brute force: every SAT model must
// actually satisfy the formulas, and feasible_interval endpoints must be
// tight (endpoint satisfiable, endpoint±1 unsatisfiable).
class LargeDomainSelfConsistency : public ::testing::TestWithParam<int> {};

TEST_P(LargeDomainSelfConsistency, ModelsAndIntervalsAreExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  for (int trial = 0; trial < 6; ++trial) {
    Solver s;
    std::vector<VarId> vars;
    for (int i = 0; i < 4; ++i)
      vars.push_back(s.add_var("v" + std::to_string(i), 0, 1'000'000));
    std::vector<Formula> fs;
    for (int i = 0; i < 3; ++i) {
      Formula f = random_formula(rng, vars, 5, 2);
      fs.push_back(f);
      s.add(std::move(f));
    }
    const CheckResult r = s.check();
    if (r != CheckResult::kSat) continue;  // UNSAT is fine; nothing to verify
    for (const auto& f : fs) EXPECT_TRUE(f->eval(s.model()));

    const VarId target = vars[0];
    const Interval iv = s.feasible_interval(target);
    ASSERT_FALSE(iv.is_empty());
    for (const Int endpoint : {iv.lo, iv.hi}) {
      const Formula pin = eq(LinExpr(target), LinExpr(endpoint));
      EXPECT_EQ(s.check_assuming(std::span(&pin, 1)), CheckResult::kSat)
          << "endpoint " << endpoint << " must be feasible";
    }
    if (iv.lo > 0) {
      const Formula below = le(LinExpr(target), LinExpr(iv.lo - 1));
      EXPECT_EQ(s.check_assuming(std::span(&below, 1)), CheckResult::kUnsat);
    }
    if (iv.hi < 1'000'000) {
      const Formula above = ge(LinExpr(target), LinExpr(iv.hi + 1));
      EXPECT_EQ(s.check_assuming(std::span(&above, 1)), CheckResult::kUnsat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LargeDomainSelfConsistency,
                         ::testing::Range(1, 7));

// Incremental push/pop must behave exactly like a solver rebuilt from the
// same live assertions.
class PushPopStress : public ::testing::TestWithParam<int> {};

TEST_P(PushPopStress, MatchesRebuiltSolver) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  constexpr int kVars = 3;
  constexpr Int kHi = 9;

  Solver incremental;
  std::vector<VarId> vars;
  for (int i = 0; i < kVars; ++i)
    incremental.add_var("v" + std::to_string(i), 0, kHi);
  for (int i = 0; i < kVars; ++i) vars.push_back(VarId{i});

  // Stack of scopes, each holding the formulas asserted in it.
  std::vector<std::vector<Formula>> scopes(1);
  for (int step = 0; step < 60; ++step) {
    const auto action = rng.uniform_int(0, 3);
    if (action == 0) {
      incremental.push();
      scopes.emplace_back();
    } else if (action == 1 && scopes.size() > 1) {
      incremental.pop();
      scopes.pop_back();
    } else {
      Formula f = random_formula(rng, vars, 3, 1);
      scopes.back().push_back(f);
      incremental.add(std::move(f));
    }

    Solver rebuilt;
    for (int i = 0; i < kVars; ++i)
      rebuilt.add_var("v" + std::to_string(i), 0, kHi);
    for (const auto& scope : scopes)
      for (const auto& f : scope) rebuilt.add(f);

    EXPECT_EQ(incremental.check(), rebuilt.check()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushPopStress, ::testing::Range(1, 6));

TEST(SolverEdge, SingletonDomains) {
  Solver s;
  const VarId x = s.add_var("x", 5, 5);
  EXPECT_EQ(s.check(), CheckResult::kSat);
  EXPECT_EQ(s.model_value(x), 5);
  EXPECT_EQ(s.feasible_interval(x), (Interval{5, 5}));
}

TEST(SolverEdge, NegativeDomains) {
  Solver s;
  const VarId x = s.add_var("x", -100, -10);
  s.add(ge(LinExpr(x), LinExpr(-50)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_GE(s.model_value(x), -50);
  EXPECT_LE(s.model_value(x), -10);
  EXPECT_EQ(s.feasible_interval(x), (Interval{-50, -10}));
}

TEST(SolverEdge, LargeCoefficients) {
  Solver s;
  const VarId x = s.add_var("x", 0, 1'000'000);
  const VarId y = s.add_var("y", 0, 1'000'000);
  s.add(eq(1000 * LinExpr(x) - LinExpr(y), LinExpr(0)));
  s.add(ge(LinExpr(y), LinExpr(123'000)));
  s.add(le(LinExpr(y), LinExpr(123'999)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  EXPECT_EQ(s.model_value(y), 1000 * s.model_value(x));
}

TEST(SolverEdge, DomainOutsideSafeRangeRejected) {
  Solver s;
  EXPECT_THROW(s.add_var("x", -kIntInf, kIntInf), util::PreconditionError);
}

TEST(SolverEdge, ManyDisjunctionsStillDecided) {
  // A chain of 20 two-way choices with one globally consistent path.
  Solver s;
  std::vector<VarId> vars;
  for (int i = 0; i < 20; ++i)
    vars.push_back(s.add_var("b" + std::to_string(i), 0, 1));
  for (int i = 0; i + 1 < 20; ++i) {
    // b_{i+1} == b_i (disguised as a disjunction of conjunctions).
    s.add(lor(land(eq(LinExpr(vars[static_cast<std::size_t>(i)]), LinExpr(0)),
                   eq(LinExpr(vars[static_cast<std::size_t>(i + 1)]), LinExpr(0))),
              land(eq(LinExpr(vars[static_cast<std::size_t>(i)]), LinExpr(1)),
                   eq(LinExpr(vars[static_cast<std::size_t>(i + 1)]), LinExpr(1)))));
  }
  s.add(eq(LinExpr(vars[0]), LinExpr(1)));
  ASSERT_EQ(s.check(), CheckResult::kSat);
  for (const VarId v : vars) EXPECT_EQ(s.model_value(v), 1);
  s.add(eq(LinExpr(vars[19]), LinExpr(0)));
  EXPECT_EQ(s.check(), CheckResult::kUnsat);
}

TEST(SolverEdge, MinimizeRespectsScopedAssertions) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  s.add(ge(LinExpr(x), LinExpr(10)));
  s.push();
  s.add(ge(LinExpr(x), LinExpr(40)));
  const auto inner = s.minimize(LinExpr(x));
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->cost, 40);
  s.pop();
  const auto outer = s.minimize(LinExpr(x));
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->cost, 10);
}

TEST(SolverEdge, MaximizeViaNegatedCost) {
  Solver s;
  const VarId x = s.add_var("x", 0, 100);
  s.add(le(LinExpr(x), LinExpr(63)));
  const auto best = s.minimize(-LinExpr(x));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ((*best).model[static_cast<std::size_t>(x.index)], 63);
}

}  // namespace
}  // namespace lejit::smt
