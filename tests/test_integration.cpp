// Cross-module integration tests: the full pipeline
// (generate fleet → mine rules → train LM → LeJIT decode → check)
// exercised across schema configurations, model families, and baselines.
#include <gtest/gtest.h>

#include "baselines/posthoc.hpp"
#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "lm/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit {
namespace {

using telemetry::Window;

// A self-contained pipeline for arbitrary schema limits.
struct Pipeline {
  explicit Pipeline(const telemetry::Limits& limits, std::uint64_t seed) {
    telemetry::GeneratorConfig gen;
    gen.limits = limits;
    gen.num_racks = 10;
    gen.windows_per_rack = 40;
    gen.seed = seed;
    dataset = telemetry::generate_dataset(gen);
    layout = telemetry::telemetry_row_layout(limits);
    train = telemetry::all_windows(dataset);
    model = std::make_unique<lm::NgramModel>(tokenizer.vocab_size(),
                                             lm::NgramConfig{.order = 6});
    for (const Window& w : train)
      model->observe(tokenizer.encode(telemetry::window_to_row(w)));
    mined = rules::mine_rules(train, layout, dataset.limits).rules;
  }

  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet mined;
};

struct SchemaCase {
  int window;
  telemetry::Int bandwidth;
};

class PipelineAcrossSchemas : public ::testing::TestWithParam<SchemaCase> {};

TEST_P(PipelineAcrossSchemas, LeJitCompliesUnderEverySchema) {
  telemetry::Limits limits;
  limits.window = GetParam().window;
  limits.bandwidth = GetParam().bandwidth;
  const Pipeline p(limits, 1000 + static_cast<std::uint64_t>(GetParam().window));

  core::GuidedDecoder dec(*p.model, p.tokenizer, p.layout, p.mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(5);
  int produced = 0;
  for (int i = 0; i < 8; ++i) {
    const auto r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << "window=" << limits.window
                      << " bw=" << limits.bandwidth << ": " << r.text;
    ASSERT_EQ(static_cast<int>(r.window->fine.size()), limits.window);
    EXPECT_TRUE(rules::violated_rules(p.mined, *r.window).empty()) << r.text;
    ++produced;
  }
  EXPECT_EQ(produced, 8);
}

TEST_P(PipelineAcrossSchemas, GrammarModeProducesParseableRows) {
  telemetry::Limits limits;
  limits.window = GetParam().window;
  limits.bandwidth = GetParam().bandwidth;
  const Pipeline p(limits, 2000 + static_cast<std::uint64_t>(GetParam().window));

  core::GuidedDecoder dec(*p.model, p.tokenizer, p.layout, rules::RuleSet{},
                          core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
  util::Rng rng(6);
  for (int i = 0; i < 8; ++i) {
    const auto r = dec.generate(rng);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(static_cast<int>(r.window->fine.size()), limits.window);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemas, PipelineAcrossSchemas,
    ::testing::Values(SchemaCase{3, 50}, SchemaCase{4, 96}, SchemaCase{5, 96},
                      SchemaCase{6, 200}, SchemaCase{8, 75}),
    [](const auto& tc) {
      return "w" + std::to_string(tc.param.window) + "bw" +
             std::to_string(tc.param.bandwidth);
    });

TEST(PipelineDeterminism, SameSeedsSameRows) {
  telemetry::Limits limits;
  const Pipeline p(limits, 7);
  core::GuidedDecoder a(*p.model, p.tokenizer, p.layout, p.mined,
                        core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  core::GuidedDecoder b(*p.model, p.tokenizer, p.layout, p.mined,
                        core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng ra(9), rb(9);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.generate(ra).text, b.generate(rb).text);
}

TEST(TransformerPipeline, GuidedNanoGptCompliesAfterBriefTraining) {
  telemetry::Limits limits;
  const Pipeline p(limits, 21);

  // Tiny but real training run (seconds).
  util::Rng init_rng(1);
  lm::Transformer model(
      lm::TransformerConfig{.vocab_size = p.tokenizer.vocab_size(),
                            .d_model = 32,
                            .n_layers = 1,
                            .n_heads = 2,
                            .d_ff = 48,
                            .max_seq = 64},
      init_rng);
  std::vector<std::vector<int>> rows;
  for (const Window& w : p.train)
    rows.push_back(p.tokenizer.encode(telemetry::window_to_row(w)));
  util::Rng train_rng(2);
  lm::train_lm(model, rows,
               lm::TrainConfig{.steps = 30,
                               .batch_size = 8,
                               .adam = lm::AdamConfig{.lr = 3e-3f},
                               .warmup_steps = 5},
               train_rng);

  core::GuidedDecoder dec(model, p.tokenizer, p.layout, p.mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(3);
  for (int i = 0; i < 3; ++i) {
    const auto r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_TRUE(rules::violated_rules(p.mined, *r.window).empty()) << r.text;
  }
}

TEST(TransformerPipeline, CheckpointRoundTripPreservesDecoding) {
  telemetry::Limits limits;
  const Pipeline p(limits, 22);
  util::Rng init_rng(4);
  lm::Transformer model(
      lm::TransformerConfig{.vocab_size = p.tokenizer.vocab_size(),
                            .d_model = 32,
                            .n_layers = 1,
                            .n_heads = 2,
                            .d_ff = 48,
                            .max_seq = 64},
      init_rng);
  const std::string path = ::testing::TempDir() + "pipeline_ckpt.bin";
  model.save(path);
  const lm::Transformer loaded = lm::Transformer::load(path);

  core::GuidedDecoder original(model, p.tokenizer, p.layout, p.mined,
                               core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  core::GuidedDecoder restored(loaded, p.tokenizer, p.layout, p.mined,
                               core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng ra(5), rb(5);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(original.generate(ra).text, restored.generate(rb).text);
}

TEST(RepairPipeline, PostHocFixesGuidedGrammarOutput) {
  telemetry::Limits limits;
  const Pipeline p(limits, 23);
  core::GuidedDecoder grammar(*p.model, p.tokenizer, p.layout,
                              rules::RuleSet{},
                              core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
  const baselines::PostHocRepairer repairer(p.layout, p.mined);
  util::Rng rng(6);
  int repaired = 0;
  for (int i = 0; i < 6; ++i) {
    const auto r = grammar.generate(rng);
    ASSERT_TRUE(r.ok);
    const auto fixed = repairer.repair(*r.window, /*pin_coarse=*/false);
    if (!fixed.feasible) continue;
    ++repaired;
    EXPECT_TRUE(rules::violated_rules(p.mined, fixed.window).empty());
  }
  EXPECT_GT(repaired, 0);
}

TEST(TaskSwap, SameModelServesImputationAndSynthesis) {
  // The paper's §4 headline: one trained model, two tasks, selected by rules.
  telemetry::Limits limits;
  const Pipeline p(limits, 24);
  const rules::RuleSet coarse = p.mined.coarse_only();
  ASSERT_FALSE(coarse.empty());

  core::GuidedDecoder imputer(*p.model, p.tokenizer, p.layout, p.mined,
                              core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  core::GuidedDecoder synthesizer(*p.model, p.tokenizer, p.layout, coarse,
                                  core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(7);

  const Window& truth = p.train.front();
  const auto imputed =
      imputer.generate(rng, telemetry::imputation_prompt(truth));
  ASSERT_TRUE(imputed.ok || imputed.infeasible_prompt);
  if (imputed.ok) {
    EXPECT_EQ(imputed.window->total, truth.total);
    EXPECT_TRUE(rules::violated_rules(p.mined, *imputed.window).empty());
  }

  const auto synthesized = synthesizer.generate(rng);
  ASSERT_TRUE(synthesized.ok);
  EXPECT_TRUE(rules::violated_rules(coarse, *synthesized.window).empty());
}

TEST(Observability, FullDecodePhaseSpansMatchDecodeStats) {
  // With metrics on, the tracer's lm_forward span count must agree exactly
  // with the decoder's own DecodeStats.lm_calls bookkeeping across a kFull
  // run — the obs layer observes the hot path, it must not miscount it.
  telemetry::Limits limits;
  const Pipeline p(limits, 25);

  const bool prev = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  obs::Tracer::instance().reset();

  core::GuidedDecoder dec(*p.model, p.tokenizer, p.layout, p.mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(8);
  std::int64_t lm_calls = 0;
  std::int64_t solver_checks = 0;
  for (int i = 0; i < 4; ++i) {
    const auto r = dec.generate(rng);
    ASSERT_TRUE(r.ok) << r.text;
    lm_calls += r.stats.lm_calls;
    solver_checks += r.stats.solver_checks;
  }

  const auto lm = obs::Tracer::instance().totals(obs::Phase::kLmForward);
  EXPECT_EQ(lm.count, lm_calls);
  EXPECT_GT(lm.total_ns, 0);
  // Every per-row sat check went through the instrumented solver entry.
  EXPECT_EQ(obs::MetricsRegistry::instance()
                .counter("smt.checks")
                .value(),
            solver_checks);
  obs::set_metrics_enabled(prev);
}

}  // namespace
}  // namespace lejit
