// lejit::plan::verify tests (DESIGN.md §14): translation validation of
// decode-plan artifacts.
//
// The load-bearing claims under test:
//   1. The verifier's independent fingerprint implementation agrees with
//      plan::rule_set_fingerprint (a drift would reject every artifact —
//      loudly, which is the designed failure mode; this test pins it).
//   2. A clean compile → serialize → deserialize → verify round trip
//      certifies completely: every claim re-proved, zero findings.
//   3. Every seeded miscompilation is detected with its expected finding
//      code: a forged fingerprint (E_FINGERPRINT), a flipped digit-table
//      bit (E_TABLE), a rule moved across clusters (E_PARTITION), a forged
//      satisfiability verdict (E_FULLSET_VERDICT / E_CLUSTER_VERDICT), and
//      an unverified table entry marked verified (E_TABLE via the
//      re-derivation, E_VERIFIED_ACCOUNTING via the bookkeeping checks).
//   4. Budget exhaustion and sampling degrade to a visibly *partial*
//      certificate (warnings, complete() == false) — never to rejection of
//      a sound artifact and never to silent full certification.
//   5. The certificate's JSON rendering is parseable and carries the
//      finding codes, so CI can gate on them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "plan/plan.hpp"
#include "plan/verify.hpp"
#include "rules/miner.hpp"
#include "rules/rule.hpp"
#include "smt/backend.hpp"
#include "smt/formula.hpp"
#include "telemetry/generator.hpp"

#ifndef LEJIT_SMTSERVE_PATH
#define LEJIT_SMTSERVE_PATH ""
#endif

namespace lejit::plan {
namespace {

using verify::Certificate;
using verify::Code;

rules::Rule make_rule(std::string description, smt::Formula f) {
  rules::Rule r;
  r.description = std::move(description);
  r.kind = rules::RuleKind::kManual;
  r.formula = std::move(f);
  return r;
}

telemetry::RowLayout two_field_layout() {
  telemetry::RowLayout layout;
  layout.fields.push_back({"T=", "x", 99, false});
  layout.fields.push_back({" E=", "y", 99, false});
  layout.suffix = "\n";
  return layout;
}

// Two variable-disjoint rules — the smallest set whose partition has two
// clusters, so cross-cluster mutations are expressible.
rules::RuleSet two_cluster_set() {
  rules::RuleSet set;
  const smt::VarId x{0};
  const smt::VarId y{1};
  set.rules.push_back(make_rule(
      "x <= 50", smt::le(smt::LinExpr(x), smt::LinExpr(smt::Int{50}))));
  set.rules.push_back(make_rule(
      "y >= 10", smt::ge(smt::LinExpr(y), smt::LinExpr(smt::Int{10}))));
  return set;
}

DecodePlan reload(const DecodePlan& p) { return from_json(to_json(p)); }

bool has_code(const Certificate& cert, Code code) {
  for (const auto& f : cert.findings)
    if (f.code == code) return true;
  return false;
}

std::string codes(const Certificate& cert) {
  std::string out;
  for (const auto& f : cert.findings) {
    if (!out.empty()) out += ",";
    out += verify::code_name(f.code);
  }
  return out;
}

// --- fingerprint pinning -----------------------------------------------------

TEST(PlanVerifyFingerprint, IndependentImplementationAgrees) {
  const auto layout = two_field_layout();
  EXPECT_EQ(verify::expected_fingerprint({}, layout),
            rule_set_fingerprint({}, layout));
  const auto set = two_cluster_set();
  EXPECT_EQ(verify::expected_fingerprint(set, layout),
            rule_set_fingerprint(set, layout));

  // A mined set exercises every formula shape the miner emits (max/min
  // atoms, implications, sums) plus the full telemetry layout.
  const auto dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
      .num_racks = 6, .windows_per_rack = 30, .seed = 99});
  const auto full = telemetry::telemetry_row_layout(dataset.limits);
  const auto mined =
      rules::mine_rules(telemetry::all_windows(dataset), full, dataset.limits)
          .rules;
  ASSERT_FALSE(mined.empty());
  EXPECT_EQ(verify::expected_fingerprint(mined, full),
            rule_set_fingerprint(mined, full));

  // The fingerprint is order-sensitive and rule-text-sensitive: a reordered
  // or reworded set must not collide (otherwise stale plans slip through).
  rules::RuleSet swapped = two_cluster_set();
  std::swap(swapped.rules[0], swapped.rules[1]);
  EXPECT_NE(verify::expected_fingerprint(swapped, layout),
            verify::expected_fingerprint(set, layout));
}

// --- clean round trip --------------------------------------------------------

TEST(PlanVerifyRoundTrip, CleanArtifactCertifiesCompletely) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  const DecodePlan p = reload(compile(set, layout));
  ASSERT_TRUE(p.active());

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_TRUE(cert.ok()) << codes(cert);
  EXPECT_TRUE(cert.complete()) << codes(cert);
  EXPECT_TRUE(cert.findings.empty()) << codes(cert);
  EXPECT_EQ(cert.full_set, smt::CheckResult::kSat);
  EXPECT_EQ(cert.clusters_checked, 2);
  EXPECT_GT(cert.solver_checks, 0);
  EXPECT_GT(cert.table_rows_checked, 0);
  EXPECT_EQ(cert.table_rows_skipped, 0);
  EXPECT_EQ(cert.table_rows_inconclusive, 0);
}

TEST(PlanVerifyRoundTrip, MinedSetCertifies) {
  const auto dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
      .num_racks = 6, .windows_per_rack = 30, .seed = 99});
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto set =
      rules::mine_rules(telemetry::all_windows(dataset), layout, dataset.limits)
          .rules;
  const DecodePlan p = reload(compile(set, layout));

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_TRUE(cert.ok()) << codes(cert);
  EXPECT_TRUE(cert.complete()) << codes(cert);
}

// An UNSAT set compiles to an inactive plan — which is still a *correct*
// artifact, and the verifier must certify it rather than confuse "inactive"
// with "wrong".
TEST(PlanVerifyRoundTrip, InactiveUnsatPlanStillCertifies) {
  const auto layout = two_field_layout();
  rules::RuleSet set;
  const smt::VarId x{0};
  set.rules.push_back(make_rule(
      "x <= 10", smt::le(smt::LinExpr(x), smt::LinExpr(smt::Int{10}))));
  set.rules.push_back(make_rule(
      "x >= 20", smt::ge(smt::LinExpr(x), smt::LinExpr(smt::Int{20}))));
  const DecodePlan p = reload(compile(set, layout));
  ASSERT_FALSE(p.active());
  ASSERT_EQ(p.satisfiable, smt::CheckResult::kUnsat);

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_TRUE(cert.ok()) << codes(cert);
}

// --- seeded miscompilations --------------------------------------------------

TEST(PlanVerifyMutation, ForgedFingerprintRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  p.fingerprint ^= 1;  // one flipped hex digit in the serialized form

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kFingerprintMismatch)) << codes(cert);
  // Foreign artifact: no solver time is spent certifying claims against
  // inputs the plan does not bind to.
  EXPECT_EQ(cert.solver_checks, 0);
}

TEST(PlanVerifyMutation, FlippedTableBitRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_EQ(p.tables.size(), 2u);
  ASSERT_TRUE(p.tables[0].row_verified(1));
  p.tables[0].always[1] ^= 1u << 3;  // forge digit 3 universally admissible

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  ASSERT_TRUE(has_code(cert, Code::kTableMismatch)) << codes(cert);
  for (const auto& f : cert.findings)
    if (f.code == Code::kTableMismatch) {
      EXPECT_EQ(f.field, 0);
      EXPECT_EQ(f.row, 1);
    }
}

TEST(PlanVerifyMutation, FlippedNeverBitRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  // Forge digit 3 universally inadmissible for x's second position: would
  // make the decoder mask out 13/23/33/43, which x <= 50 does not exclude.
  // (Row 0 bits all overlap `always` for this set and would trip the
  // cheaper structural always∧never check instead of a re-derivation.)
  ASSERT_FALSE(p.tables[0].always_bit(1, 3));
  p.tables[0].never[1] |= 1u << 3;

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kTableMismatch)) << codes(cert);
}

TEST(PlanVerifyMutation, MergedClustersRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_EQ(p.clusters.size(), 2u);
  p = merge_clusters(std::move(p), 0, 1);  // coarser than the true partition

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kPartitionMismatch)) << codes(cert);
}

TEST(PlanVerifyMutation, RuleMovedAcrossClustersRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_EQ(p.clusters.size(), 2u);
  // Swap the rule memberships while keeping the field sets: each cluster
  // now claims the other cluster's rule.
  std::swap(p.clusters[0].rules, p.clusters[1].rules);

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kPartitionMismatch)) << codes(cert);
}

TEST(PlanVerifyMutation, ForgedFullSetVerdictRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  // Compile without tables: a kUnsat verdict alongside digit tables is
  // already structurally impossible (compile never emits that) and would be
  // caught by the cheaper E_STRUCTURE pass before any solver runs. Table-
  // free, the forged verdict survives to the re-proof and is refuted there.
  Config cfg;
  cfg.build_tables = false;
  DecodePlan p = reload(compile(set, layout, cfg));
  ASSERT_EQ(p.satisfiable, smt::CheckResult::kSat);
  p.satisfiable = smt::CheckResult::kUnsat;

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kFullSetVerdict)) << codes(cert);
}

TEST(PlanVerifyMutation, VerdictWithTablesCaughtStructurally) {
  // The with-tables variant of the same forgery: tables may only exist on a
  // sat plan, so this one never needs a solver to die.
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_FALSE(p.tables.empty());
  p.satisfiable = smt::CheckResult::kUnsat;

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kStructure)) << codes(cert);
}

TEST(PlanVerifyMutation, ForgedClusterVerdictRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_EQ(p.clusters[0].satisfiable, smt::CheckResult::kSat);
  p.clusters[0].satisfiable = smt::CheckResult::kUnsat;

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kClusterVerdict)) << codes(cert);
}

TEST(PlanVerifyMutation, UnverifiedEntryMarkedVerifiedRejected) {
  // A starved compile frontier leaves x's deeper rows unverified; forging
  // the verified flag on one of them claims empty masks ("no admissible-
  // digit facts") for a row where re-derivation proves real facts — e.g.
  // every length-2 prefix of [17, 42] terminates.
  const auto layout = two_field_layout();
  rules::RuleSet set;
  const smt::VarId x{0};
  set.rules.push_back(make_rule(
      "x in [17,42]",
      smt::between(smt::LinExpr(x), smt::LinExpr(smt::Int{17}),
                   smt::LinExpr(smt::Int{42}))));
  Config cfg;
  cfg.max_prefixes_per_field = 1;  // P_1 = {1,2,3,4} overflows the frontier
  DecodePlan p = reload(compile(set, layout, cfg));
  // Tamper the *first* unverified row, keeping the verified prefix
  // contiguous — the bookkeeping pass can't tell, so detection rests
  // entirely on the solver re-derivation (row 1 provably has a
  // never-terminate fact this row's empty masks deny).
  ASSERT_TRUE(p.tables[0].row_verified(0));
  ASSERT_FALSE(p.tables[0].row_verified(1));
  ASSERT_TRUE(verify::run(p, set, layout).ok());  // honest artifact passes
  p.tables[0].verified[1] = 1;

  const Certificate cert = verify::run(p, set, layout);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kTableMismatch)) << codes(cert);
}

TEST(PlanVerifyMutation, VerifiedFlagAfterUnverifiedRowRejected) {
  // Same tamper one row deeper leaves a hole in the verified prefix, which
  // the structural accounting pass catches without any solver work.
  const auto layout = two_field_layout();
  rules::RuleSet set;
  const smt::VarId x{0};
  set.rules.push_back(make_rule(
      "x in [100,420]",
      smt::between(smt::LinExpr(x), smt::LinExpr(smt::Int{100}),
                   smt::LinExpr(smt::Int{420}))));
  telemetry::RowLayout wide = layout;
  wide.fields[0].max_value = 999;
  Config cfg;
  cfg.max_prefixes_per_field = 1;
  DecodePlan p = reload(compile(set, wide, cfg));
  ASSERT_FALSE(p.tables[0].row_verified(2));
  ASSERT_FALSE(p.tables[0].row_verified(3));
  p.tables[0].verified[3] = 1;  // verified row after an unverified one

  const Certificate cert = verify::run(p, set, wide);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kVerifiedAccounting)) << codes(cert);
}

TEST(PlanVerifyMutation, StructuralGarbageRejected) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  const DecodePlan base = reload(compile(set, layout));

  {  // claim bits beyond kTerminatorBit
    DecodePlan p = base;
    p.tables[0].always[1] |= 1u << (kTerminatorBit + 1);
    const Certificate cert = verify::run(p, set, layout);
    EXPECT_FALSE(cert.ok());
    EXPECT_TRUE(has_code(cert, Code::kStructure)) << codes(cert);
  }
  {  // a terminator claim for the empty prefix
    DecodePlan p = base;
    p.tables[0].always[0] |= 1u << kTerminatorBit;
    const Certificate cert = verify::run(p, set, layout);
    EXPECT_FALSE(cert.ok());
    EXPECT_TRUE(has_code(cert, Code::kStructure)) << codes(cert);
  }
  {  // truncated row array
    DecodePlan p = base;
    p.tables[0].always.pop_back();
    const Certificate cert = verify::run(p, set, layout);
    EXPECT_FALSE(cert.ok());
    EXPECT_TRUE(has_code(cert, Code::kStructure)) << codes(cert);
  }
  {  // a digit both always-admissible and never-admissible
    DecodePlan p = base;
    p.tables[0].always[1] |= 1u << 2;
    p.tables[0].never[1] |= 1u << 2;
    const Certificate cert = verify::run(p, set, layout);
    EXPECT_FALSE(cert.ok());
    EXPECT_TRUE(has_code(cert, Code::kStructure)) << codes(cert);
  }
}

// --- abstract containment (pass 6) -------------------------------------------
// The solver-free third reading: every always-bit chain must stay inside the
// abstract interpreter's over-approximation of the cluster-feasible set. The
// load-bearing property is *independence* — these tests run with
// check_tables = false, so the solver re-derivation (pass 5) cannot be the
// thing doing the rejecting.

TEST(PlanVerifyAbsint, ForgedAlwaysBitCaughtWithoutSolverTablePass) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  ASSERT_TRUE(p.tables[0].row_verified(1));
  // Forge digit 9 universally admissible at x's second position: the chain
  // then claims 59/69/../99 completable, all refuted by x <= 50. Neither
  // bit is set in the honest table, so no structural check fires first.
  ASSERT_FALSE(p.tables[0].always_bit(1, 9));
  ASSERT_FALSE(p.tables[0].never_bit(1, 9));
  p.tables[0].always[1] |= 1u << 9;

  verify::Config cfg;
  cfg.check_tables = false;  // solver table pass OFF — absint must bite
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_FALSE(cert.ok());
  ASSERT_TRUE(has_code(cert, Code::kAbsintContainment)) << codes(cert);
  EXPECT_FALSE(has_code(cert, Code::kTableMismatch)) << codes(cert);
  for (const auto& f : cert.findings)
    if (f.code == Code::kAbsintContainment) {
      EXPECT_EQ(f.field, 0);
      EXPECT_EQ(f.row, 1);
    }
  EXPECT_EQ(cert.table_rows_checked, 0);
  EXPECT_GT(cert.absint_prefixes_checked, 0);

  // With everything on, the same forgery is caught twice over — once by the
  // solver re-derivation, once by the containment audit.
  const Certificate full = verify::run(p, set, layout);
  EXPECT_TRUE(has_code(full, Code::kTableMismatch)) << codes(full);
  EXPECT_TRUE(has_code(full, Code::kAbsintContainment)) << codes(full);
}

TEST(PlanVerifyAbsint, ForgedTerminatorBitCaughtWithoutSolverTablePass) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  // y >= 10: no single digit is a feasible value, so the honest table marks
  // the row-1 terminator never-admissible. Forge it always-admissible
  // (clearing the never bit so the always∧never structural check stays
  // quiet) — the audit must refute the claim that 1..9 terminate feasibly.
  const std::uint16_t term = 1u << kTerminatorBit;
  ASSERT_TRUE(p.tables[1].row_verified(1));
  ASSERT_NE(p.tables[1].never[1] & term, 0);
  p.tables[1].never[1] &= static_cast<std::uint16_t>(~term);
  p.tables[1].always[1] |= term;

  verify::Config cfg;
  cfg.check_tables = false;
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_FALSE(cert.ok());
  ASSERT_TRUE(has_code(cert, Code::kAbsintContainment)) << codes(cert);
  for (const auto& f : cert.findings)
    if (f.code == Code::kAbsintContainment) {
      EXPECT_EQ(f.field, 1);
    }
}

TEST(PlanVerifyAbsint, CleanArtifactPassesContainmentAlone) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  const DecodePlan p = reload(compile(set, layout));

  verify::Config cfg;
  cfg.check_tables = false;
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_TRUE(cert.ok()) << codes(cert);
  EXPECT_GT(cert.absint_prefixes_checked, 0);

  // The abstraction only refutes with proofs, so it can never false-reject
  // a sound artifact — including a big mined set with sum/implication rules
  // well beyond what the interval domain represents exactly.
  const auto dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
      .num_racks = 6, .windows_per_rack = 30, .seed = 99});
  const auto mined_layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto mined = rules::mine_rules(telemetry::all_windows(dataset),
                                       mined_layout, dataset.limits)
                         .rules;
  const DecodePlan mp = reload(compile(mined, mined_layout));
  const Certificate mcert = verify::run(mp, mined, mined_layout, cfg);
  EXPECT_TRUE(mcert.ok()) << codes(mcert);
}

TEST(PlanVerifyAbsint, DisabledPassIsInert) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  p.tables[0].always[1] |= 1u << 9;  // same forgery as above

  // Both table passes off: the forgery goes unseen — proof that the
  // containment audit (not some other pass) is what catches it.
  verify::Config cfg;
  cfg.check_tables = false;
  cfg.check_absint = false;
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_TRUE(cert.ok()) << codes(cert);
  EXPECT_EQ(cert.absint_prefixes_checked, 0);
}

// --- graceful degradation ----------------------------------------------------

TEST(PlanVerifyDegradation, StarvedBudgetWarnsInsteadOfRejecting) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  const DecodePlan p = reload(compile(set, layout));

  verify::Config cfg;
  cfg.check_max_nodes = 1;  // every re-proof exhausts immediately
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_TRUE(cert.ok()) << codes(cert);  // nothing was *refuted*
  EXPECT_FALSE(cert.complete());
  EXPECT_GT(cert.warnings(), 0u);
  EXPECT_TRUE(has_code(cert, Code::kInconclusive)) << codes(cert);
}

TEST(PlanVerifyDegradation, SamplingIsVisiblyPartial) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  const DecodePlan p = reload(compile(set, layout));

  verify::Config cfg;
  cfg.sample_field_stride = 2;  // re-derive every other field's table
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_TRUE(cert.ok()) << codes(cert);
  EXPECT_FALSE(cert.complete());
  EXPECT_GT(cert.table_rows_skipped, 0);
  EXPECT_TRUE(has_code(cert, Code::kSampled)) << codes(cert);

  // Sampling must never mask a tampered bit in a field it *does* check:
  // field 0 is on-stride for any stride.
  DecodePlan tampered = p;
  tampered.tables[0].always[1] ^= 1u << 3;
  EXPECT_FALSE(verify::run(tampered, set, layout, cfg).ok());
}

// --- certificate rendering ---------------------------------------------------

TEST(PlanVerifyReport, JsonParsesAndCarriesCodes) {
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));
  p.tables[0].always[1] ^= 1u << 3;

  const Certificate cert = verify::run(p, set, layout);
  const auto doc = obs::parse_json(verify::to_json(cert));
  EXPECT_FALSE(doc.get("ok").as_bool());
  EXPECT_FALSE(doc.get("complete").as_bool());
  EXPECT_GT(doc.get("errors").as_int(), 0);
  EXPECT_EQ(doc.get("expected_fingerprint").as_string().size(), 16u);
  bool saw_table_code = false;
  for (const auto& f : doc.get("findings").as_array()) {
    EXPECT_FALSE(f.get("message").as_string().empty());
    if (f.get("code").as_string() == "E_TABLE") saw_table_code = true;
  }
  EXPECT_TRUE(saw_table_code);

  const std::string text = verify::to_text(cert);
  EXPECT_NE(text.find("REJECTED"), std::string::npos);
  EXPECT_NE(text.find("E_TABLE"), std::string::npos);
}

// --- backend seam ------------------------------------------------------------

bool smtserve_available() {
  return LEJIT_SMTSERVE_PATH[0] != '\0' &&
         ::access(LEJIT_SMTSERVE_PATH, X_OK) == 0;
}

TEST(PlanVerifyBackend, SubprocessBackendCertifiesAndRejects) {
  if (!smtserve_available()) GTEST_SKIP() << "lejit_smtserve not built";
  const auto layout = two_field_layout();
  const auto set = two_cluster_set();
  DecodePlan p = reload(compile(set, layout));

  verify::Config cfg;
  cfg.backend.kind = smt::BackendKind::kSubprocess;
  cfg.backend.solver_path = LEJIT_SMTSERVE_PATH;
  const Certificate clean = verify::run(p, set, layout, cfg);
  EXPECT_TRUE(clean.ok()) << codes(clean);
  EXPECT_TRUE(clean.complete()) << codes(clean);

  p.tables[0].always[1] ^= 1u << 3;
  const Certificate cert = verify::run(p, set, layout, cfg);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(has_code(cert, Code::kTableMismatch)) << codes(cert);
}

}  // namespace
}  // namespace lejit::plan
