// Unit tests for lejit::obs — counters, histograms (bucket boundaries and
// percentiles on known distributions), span nesting, logger level filtering,
// and the JSON export shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace {

using namespace lejit;

// Turns metrics on (or off) for one test and restores the prior state, so
// tests can't leak an enabled registry into whatever runs next in-process.
class MetricsScope {
 public:
  explicit MetricsScope(bool on) : prev_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(on);
  }
  ~MetricsScope() { obs::set_metrics_enabled(prev_); }

 private:
  bool prev_;
};

TEST(ObsCounter, AddAndValue) {
  const MetricsScope scope(true);
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, NoOpWhenDisabled) {
  const MetricsScope scope(false);
  obs::Counter c;
  c.inc();
  c.add(100);
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsGauge, SetRespectsEnableGate) {
  {
    const MetricsScope scope(false);
    obs::Gauge g;
    g.set(3.5);
    EXPECT_EQ(g.value(), 0.0);
  }
  {
    const MetricsScope scope(true);
    obs::Gauge g;
    g.set(3.5);
    EXPECT_EQ(g.value(), 3.5);
    g.set(-1.0);  // last write wins
    EXPECT_EQ(g.value(), -1.0);
  }
}

TEST(ObsHistogram, BucketBoundaries) {
  const MetricsScope scope(true);
  // linear(0,4,4) → bounds {1,2,3,4}; buckets are lower-inclusive
  // ([1,2) etc., via upper_bound), with an implicit overflow bucket for
  // v >= the last bound.
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 4.0, 4));
  ASSERT_EQ(h.bounds().size(), 4u);  // 1, 2, 3, 4
  h.observe(0.5);
  h.observe(1.0);   // exactly on a bound → the bucket it starts
  h.observe(2.5);
  h.observe(3.5);
  h.observe(99.0);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.bucket_count(0), 1);  // [0, 1)
  EXPECT_EQ(h.bucket_count(1), 1);  // [1, 2)
  EXPECT_EQ(h.bucket_count(2), 1);  // [2, 3)
  EXPECT_EQ(h.bucket_count(3), 1);  // [3, 4)
  EXPECT_EQ(h.bucket_count(4), 1);  // overflow
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.5 + 3.5 + 99.0);
}

TEST(ObsHistogram, PercentilesOnKnownUniform) {
  const MetricsScope scope(true);
  // 100 observations at 0.5, 1.5, ..., 99.5 — one per unit-width bucket:
  // the empirical distribution is uniform on [0, 100], so interpolated
  // percentiles should track p * 100 closely.
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 100.0, 100));
  for (int i = 0; i < 100; ++i) h.observe(i + 0.5);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.90), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  // p0/p100 stay within the observed range.
  EXPECT_GE(h.percentile(0.0), 0.0);
  EXPECT_LE(h.percentile(1.0), 100.0);
}

TEST(ObsHistogram, PercentileOfPointMass) {
  const MetricsScope scope(true);
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  for (int i = 0; i < 1000; ++i) h.observe(7.3);
  // Every observation is in the (7,8] bucket: all percentiles land there.
  EXPECT_GE(h.percentile(0.50), 7.0);
  EXPECT_LE(h.percentile(0.50), 8.0);
  EXPECT_GE(h.percentile(0.99), 7.0);
  EXPECT_LE(h.percentile(0.99), 8.0);
}

TEST(ObsHistogram, OverflowReportsMax) {
  const MetricsScope scope(true);
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 1.0, 2));
  h.observe(123.0);
  h.observe(456.0);
  // Both land in the +inf bucket; percentiles report the observed max
  // rather than inventing an upper bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 456.0);
}

TEST(ObsHistogram, EmptyAndDisabled) {
  const MetricsScope scope(true);
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  obs::set_metrics_enabled(false);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 0);
}

TEST(ObsHistogram, LatencyLadderIsSortedAndSpans1usTo10s) {
  const auto opts = obs::HistogramOptions::latency_us();
  ASSERT_GE(opts.bounds.size(), 2u);
  for (std::size_t i = 1; i < opts.bounds.size(); ++i)
    EXPECT_LT(opts.bounds[i - 1], opts.bounds[i]);
  EXPECT_DOUBLE_EQ(opts.bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(opts.bounds.back(), 1e7);  // 10 s in µs
}

TEST(ObsRegistry, StableHandlesAndReset) {
  const MetricsScope scope(true);
  auto& registry = obs::MetricsRegistry::instance();
  obs::Counter& a = registry.counter("test_obs.stable");
  obs::Counter& b = registry.counter("test_obs.stable");
  EXPECT_EQ(&a, &b);  // same name → same object
  a.add(7);
  EXPECT_EQ(b.value(), 7);
  registry.reset();
  EXPECT_EQ(a.value(), 0);  // reset zeroes but the reference stays valid
  a.inc();
  EXPECT_EQ(b.value(), 1);
}

TEST(ObsRegistry, JsonShape) {
  const MetricsScope scope(true);
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  registry.counter("test_obs.json_counter").add(3);
  registry.gauge("test_obs.json_gauge").set(1.5);
  registry.histogram("test_obs.json_hist").observe(42.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test_obs.json_gauge\":1.5"), std::string::npos);
  for (const char* key : {"\"count\"", "\"sum\"", "\"mean\"", "\"max\"",
                          "\"p50\"", "\"p90\"", "\"p99\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  // pretty() mentions every registered metric by name.
  const std::string text = registry.pretty();
  EXPECT_NE(text.find("test_obs.json_counter"), std::string::npos);
  EXPECT_NE(text.find("test_obs.json_hist"), std::string::npos);
}

TEST(ObsJsonWriter, EscapesAndStructures) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("s").value(std::string_view("a\"b\\c\n"));
  w.key("i").value(std::int64_t{-5});
  w.key("b").value(true);
  w.key("nan").value(std::nan(""));  // NaN is not valid JSON → null
  w.key("arr").begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":-5,\"b\":true,"
            "\"nan\":null,\"arr\":[1,2]}");
}

TEST(ObsSpan, NestedSpansRecordInclusiveTotals) {
  const MetricsScope scope(true);
  auto& tracer = obs::Tracer::instance();
  tracer.reset();
  {
    const obs::Span outer(obs::Phase::kMaskBuild);
    for (int i = 0; i < 3; ++i) {
      const obs::Span inner(obs::Phase::kSolverCheck);
    }
  }
  const auto mask = tracer.totals(obs::Phase::kMaskBuild);
  const auto check = tracer.totals(obs::Phase::kSolverCheck);
  EXPECT_EQ(mask.count, 1);
  EXPECT_EQ(check.count, 3);
  // The enclosing phase's total is inclusive of its children.
  EXPECT_GE(mask.total_ns, check.total_ns);
  EXPECT_GE(check.total_ns, 0);
}

TEST(ObsSpan, InertWhenDisabled) {
  const MetricsScope scope(true);
  auto& tracer = obs::Tracer::instance();
  tracer.reset();
  obs::set_metrics_enabled(false);
  {
    const obs::Span span(obs::Phase::kSampling);
  }
  EXPECT_EQ(tracer.totals(obs::Phase::kSampling).count, 0);
}

TEST(ObsTracer, CaptureProducesChromeTraceJson) {
  const MetricsScope scope(true);
  auto& tracer = obs::Tracer::instance();
  tracer.reset();
  tracer.start_capture();
  {
    const obs::Span span(obs::Phase::kLmForward);
  }
  {
    const obs::Span span(obs::Phase::kSolverCheck);
  }
  tracer.stop_capture();
  EXPECT_EQ(tracer.num_events(), 2u);
  const std::string json = tracer.trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"lm_forward\""), std::string::npos);
  EXPECT_NE(json.find("\"solver_check\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  tracer.reset();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(ObsTracer, PhaseNames) {
  EXPECT_EQ(obs::phase_name(obs::Phase::kLmForward), "lm_forward");
  EXPECT_EQ(obs::phase_name(obs::Phase::kSolverCheck), "solver_check");
  EXPECT_EQ(obs::phase_name(obs::Phase::kMaskBuild), "mask_build");
  EXPECT_EQ(obs::phase_name(obs::Phase::kSampling), "sampling");
  EXPECT_EQ(obs::phase_name(obs::Phase::kRuleMining), "rule_mining");
}

TEST(ObsLogger, ParseLevel) {
  using obs::LogLevel;
  LogLevel l = LogLevel::kOff;
  EXPECT_TRUE(obs::Logger::parse_level("debug", &l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(obs::Logger::parse_level("warn", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(obs::Logger::parse_level("warning", &l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(obs::Logger::parse_level("off", &l));
  EXPECT_EQ(l, LogLevel::kOff);
  l = LogLevel::kInfo;
  EXPECT_FALSE(obs::Logger::parse_level("loud", &l));
  EXPECT_EQ(l, LogLevel::kInfo);  // untouched on failure
}

TEST(ObsLogger, LevelFiltering) {
  using obs::LogLevel;
  const LogLevel prev = obs::Logger::level();
  obs::Logger::set_level(LogLevel::kWarn);
  EXPECT_TRUE(obs::Logger::enabled(LogLevel::kError));
  EXPECT_TRUE(obs::Logger::enabled(LogLevel::kWarn));
  EXPECT_FALSE(obs::Logger::enabled(LogLevel::kInfo));
  EXPECT_FALSE(obs::Logger::enabled(LogLevel::kDebug));
  obs::Logger::set_level(LogLevel::kOff);
  EXPECT_FALSE(obs::Logger::enabled(LogLevel::kError));
  obs::Logger::set_level(prev);
}

TEST(ObsLogger, LazyMessageEvaluation) {
  using obs::LogLevel;
  const LogLevel prev = obs::Logger::level();
  obs::Logger::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("msg");
  };
  LEJIT_LOG_DEBUG(expensive());
  EXPECT_EQ(evaluations, 0);  // macro must not build the disabled message
  obs::Logger::set_level(prev);
}

TEST(ObsDecodeMetrics, RemovedMassHistogramRecordsOnlyInterventions) {
  // Regression: decode.removed_mass used to record every masked step, so the
  // (typical) zero-removal steps drowned the distribution — its p99 read as
  // 0 even when interventions removed most of the mass. The histogram must
  // record exactly one sample per intervention (mask pruned the LM argmax).
  const MetricsScope scope(true);
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();

  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 6, .windows_per_rack = 30,
                                 .seed = 13});
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  // A barely-trained model disagrees with the rules often, guaranteeing
  // interventions; a single observed row keeps it parseable.
  lm::NgramModel model(tokenizer.vocab_size(), lm::NgramConfig{.order = 4});
  const auto windows = telemetry::all_windows(dataset);
  model.observe(tokenizer.encode(telemetry::window_to_row(windows.front())));
  core::GuidedDecoder dec(model, tokenizer, layout,
                          rules::manual_rules(layout, dataset.limits),
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});

  util::Rng rng(17);
  std::int64_t interventions = 0, masked_steps = 0;
  for (int i = 0; i < 6; ++i) {
    const core::DecodeResult r = dec.generate(rng);
    interventions += r.stats.interventions;
    masked_steps += r.stats.masked_steps;
  }
  const auto& hist = registry.histogram("decode.removed_mass");
  EXPECT_EQ(hist.count(), interventions);
  ASSERT_GT(interventions, 0) << "fixture must force interventions";
  EXPECT_GT(masked_steps, interventions)
      << "fixture needs zero-removal masked steps for the gate to matter";
}

TEST(ObsTimer, ElapsedNsMonotonic) {
  obs::Timer t;
  const auto a = t.elapsed_ns();
  const auto b = t.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(t.elapsed_seconds(), static_cast<double>(t.elapsed_ns()) * 1e-9,
              1e-3);
  t.reset();
  EXPECT_LT(t.elapsed_ns(), b + 1'000'000'000);  // sanity: reset restarts
}

}  // namespace
