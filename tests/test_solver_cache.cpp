// Feasibility-cache equivalence and incremental-solver property tests
// (DESIGN.md §9). The contract under test: DecoderConfig::cache changes how
// much solver work a decode spends, never what it decodes — cached and
// uncached runs must be bit-identical for a fixed seed, and the incremental
// solver base must answer exactly like a from-scratch solve.
#include <gtest/gtest.h>

#include <vector>

#include "core/decoder.hpp"
#include "fault/fault.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "smt/formula.hpp"
#include "smt/solver.hpp"
#include "telemetry/generator.hpp"
#include "util/rng.hpp"

namespace lejit::core {
namespace {

using telemetry::Window;

// Shared fixture (mirrors test_core_decoder.cpp): a synthetic fleet, a
// trained n-gram over its rows, and manual + mined rule sets.
struct Env {
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  std::vector<Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
  rules::RuleSet mined;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 12, .windows_per_rack = 50, .seed = 55});
    out.split = telemetry::split_by_rack(out.dataset, 2, 3);
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.split.train);
    out.test = telemetry::all_windows(out.split.test);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    out.mined =
        rules::mine_rules(out.train, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

DecoderConfig with_cache(GuidanceMode mode, bool cache) {
  DecoderConfig config{.mode = mode};
  config.cache = cache;
  return config;
}

// Decode one row with each decoder from the same seed and require the two
// results to be indistinguishable to a caller.
void expect_identical_row(GuidedDecoder& cached, GuidedDecoder& uncached,
                          int seed, std::string_view prompt = {}) {
  util::Rng a(static_cast<std::uint64_t>(seed));
  util::Rng b(static_cast<std::uint64_t>(seed));
  const DecodeResult rc = cached.generate(a, prompt);
  const DecodeResult ru = uncached.generate(b, prompt);
  ASSERT_EQ(rc.text, ru.text) << "seed " << seed;
  EXPECT_EQ(rc.ok, ru.ok) << "seed " << seed;
  EXPECT_EQ(rc.reason, ru.reason) << "seed " << seed;
  EXPECT_EQ(rc.dead_end, ru.dead_end) << "seed " << seed;
  EXPECT_EQ(rc.recoveries, ru.recoveries) << "seed " << seed;
  EXPECT_EQ(rc.stats.interventions, ru.stats.interventions) << "seed " << seed;
  EXPECT_EQ(rc.stats.masked_steps, ru.stats.masked_steps) << "seed " << seed;
}

// --- cache on/off equivalence ------------------------------------------------

TEST(CacheEquivalence, SixtyFourSeededRowsAreBitIdentical) {
  // 64 rows: 40 free synthesis + 24 imputation prompts, mined rules (the
  // densest constraint set), kFull look-ahead. The cache persists inside each
  // decoder across rows — equivalence must survive a warm cache, not just a
  // cold one.
  GuidedDecoder cached(*env().model, env().tokenizer, env().layout,
                       env().mined, with_cache(GuidanceMode::kFull, true));
  GuidedDecoder uncached(*env().model, env().tokenizer, env().layout,
                         env().mined, with_cache(GuidanceMode::kFull, false));
  for (int seed = 0; seed < 40; ++seed)
    expect_identical_row(cached, uncached, seed);
  for (int seed = 0; seed < 24; ++seed) {
    const Window& truth =
        env().test[static_cast<std::size_t>(seed) % env().test.size()];
    expect_identical_row(cached, uncached, 1000 + seed,
                         telemetry::imputation_prompt(truth));
  }
  // The run must actually have exercised the cache for the test to mean
  // anything.
  EXPECT_GT(cached.cache_stats().hits, 0);
  EXPECT_GT(cached.cache_stats().misses, 0);
  EXPECT_EQ(uncached.cache_stats().hits, 0);
  EXPECT_EQ(uncached.cache_stats().misses, 0);
}

TEST(CacheEquivalence, HullModeWithRecoveryRewinds) {
  // kHull + dead-end recovery exercises the rewind path: recovery rolls the
  // walk (and the pin fingerprint) back, so stale-fingerprint bugs would
  // surface here as divergent texts or recovery counts.
  DecoderConfig on = with_cache(GuidanceMode::kHull, true);
  on.resilience.retry_budget = 3;
  DecoderConfig off = with_cache(GuidanceMode::kHull, false);
  off.resilience.retry_budget = 3;
  GuidedDecoder cached(*env().model, env().tokenizer, env().layout,
                       env().manual, on);
  GuidedDecoder uncached(*env().model, env().tokenizer, env().layout,
                         env().manual, off);
  for (int seed = 0; seed < 16; ++seed)
    expect_identical_row(cached, uncached, 300 + seed);
}

TEST(CacheEquivalence, CacheStatsStayZeroWhenDisabled) {
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    with_cache(GuidanceMode::kFull, false));
  util::Rng rng(9);
  ASSERT_TRUE(dec.generate(rng).ok);
  EXPECT_EQ(dec.cache_stats().hits, 0);
  EXPECT_EQ(dec.cache_stats().misses, 0);
  EXPECT_EQ(dec.cache_stats().evictions, 0);
}

// --- cached unknowns respect UnknownPolicy -----------------------------------

TEST(CacheUnknowns, CachedRunHonorsFeasibleReading) {
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  DecoderConfig config = with_cache(GuidanceMode::kFull, true);
  config.resilience.on_unknown = UnknownPolicy::kFeasible;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  // Two rows: the second replays unknown verdicts from the cache and must
  // behave exactly like the first — row completes (optimistic reading) and
  // every inconclusive answer, cached or live, is counted.
  util::Rng rng(21);
  for (int row = 0; row < 2; ++row) {
    const DecodeResult r = dec.generate(rng);
    EXPECT_TRUE(r.ok) << "row " << row << ": " << r.fail_detail;
    EXPECT_EQ(r.reason, FailReason::kNone);
    EXPECT_GT(r.stats.unknown_checks, 0) << "row " << row;
  }
}

TEST(CacheUnknowns, CachedRunHonorsInfeasibleReading) {
  fault::Plan plan;
  plan.site(fault::Site::kSolverCheck).p_unknown = 1.0;
  const fault::ScopedPlan scoped{plan};

  DecoderConfig config = with_cache(GuidanceMode::kFull, true);
  config.resilience.on_unknown = UnknownPolicy::kInfeasible;
  GuidedDecoder dec(*env().model, env().tokenizer, env().layout, env().manual,
                    config);
  util::Rng rng(22);
  for (int row = 0; row < 2; ++row) {
    const DecodeResult r = dec.generate(rng);
    EXPECT_FALSE(r.ok) << "row " << row;
    EXPECT_EQ(r.reason, FailReason::kEmptyMask) << "row " << row;
    EXPECT_GT(r.stats.unknown_checks, 0) << "row " << row;
  }
}

// --- incremental solver base agrees with from-scratch solves -----------------

smt::Formula random_constraint(util::Rng& rng,
                               const std::vector<smt::VarId>& vars) {
  const auto pick = [&] {
    return vars[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(vars.size()) - 1))];
  };
  const smt::Int a = rng.uniform_int(-3, 3);
  const smt::Int b = rng.uniform_int(-3, 3);
  const smt::Int c = rng.uniform_int(-25, 25);
  const smt::LinExpr lhs = a * smt::LinExpr(pick()) + b * smt::LinExpr(pick());
  switch (rng.uniform_int(0, 3)) {
    case 0: return smt::le(lhs, smt::LinExpr(c));
    case 1: return smt::ge(lhs, smt::LinExpr(c));
    case 2: return smt::lor(smt::le(lhs, smt::LinExpr(c)),
                            smt::ge(lhs, smt::LinExpr(c + 5)));
    default: return smt::ne(lhs, smt::LinExpr(c));
  }
}

TEST(IncrementalSolver, AgreesWithFreshSolverUnderPushPop) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    smt::SolverConfig inc_config;
    inc_config.incremental = true;
    smt::Solver inc(inc_config);
    smt::Solver fresh;
    std::vector<smt::VarId> vi, vf;
    for (int v = 0; v < 4; ++v) {
      const smt::Int lo = rng.uniform_int(-10, 0);
      const smt::Int hi = rng.uniform_int(1, 15);
      vi.push_back(inc.add_var("v" + std::to_string(v), lo, hi));
      vf.push_back(fresh.add_var("v" + std::to_string(v), lo, hi));
    }
    const auto agree = [&](int where) {
      ASSERT_EQ(inc.check(), fresh.check()) << "trial " << trial << " @" << where;
      for (int v = 0; v < 4; ++v)
        EXPECT_EQ(inc.feasible_interval(vi[static_cast<std::size_t>(v)]),
                  fresh.feasible_interval(vf[static_cast<std::size_t>(v)]))
            << "trial " << trial << " var " << v << " @" << where;
    };
    for (int i = 0; i < 3; ++i) {
      const smt::Formula f = random_constraint(rng, vi);
      inc.add(f);
      fresh.add(f);
    }
    agree(0);
    inc.push();
    fresh.push();
    for (int i = 0; i < 2; ++i) {
      const smt::Formula f = random_constraint(rng, vi);
      inc.add(f);
      fresh.add(f);
    }
    agree(1);
    inc.pop();
    fresh.pop();
    agree(2);  // pop must restore the base exactly
    const smt::Formula assumption = random_constraint(rng, vi);
    const std::vector<smt::Formula> assumptions{assumption};
    EXPECT_EQ(inc.check_assuming(assumptions), fresh.check_assuming(assumptions))
        << "trial " << trial;
    agree(3);  // assumptions must not leak into the base
  }
}

TEST(IncrementalSolver, PropagatedBoundsAreASoundOverApproximation) {
  smt::SolverConfig config;
  config.incremental = true;
  smt::Solver s(config);
  const smt::VarId x = s.add_var("x", 0, 100);
  const smt::VarId y = s.add_var("y", 0, 100);
  s.add(smt::le(smt::LinExpr(x) + smt::LinExpr(y), smt::LinExpr(50)));
  s.add(smt::ge(smt::LinExpr(x), smt::LinExpr(10)));
  const smt::Interval px = s.propagated_bounds(x);
  const smt::Interval exact = s.feasible_interval(x);
  EXPECT_FALSE(px.is_empty());
  EXPECT_LE(px.lo, exact.lo);
  EXPECT_GE(px.hi, exact.hi);
  // Scoped tightening is visible, and pop restores the wider bounds.
  s.push();
  s.add(smt::le(smt::LinExpr(x), smt::LinExpr(20)));
  EXPECT_LE(s.propagated_bounds(x).hi, 20);
  s.pop();
  EXPECT_EQ(s.propagated_bounds(x), px);
  // A contradiction is reported as an empty interval.
  s.push();
  s.add(smt::ge(smt::LinExpr(x), smt::LinExpr(90)));
  EXPECT_TRUE(s.propagated_bounds(x).is_empty());
  s.pop();
}

}  // namespace
}  // namespace lejit::core
