#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace lejit::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // degenerate range clamps to lo
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(5);
  double sum = 0, sumsq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.03);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(9);
  const std::vector<double> w{0.0, 3.0, 1.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork(1);
  Rng c = a.fork(1);
  // Forks from an advanced parent differ from each other.
  EXPECT_NE(b.next_u32(), c.next_u32());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Strings, SplitBasics) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("123"), 123);
  EXPECT_EQ(parse_int("-5"), -5);
  EXPECT_EQ(parse_int(""), std::nullopt);
  EXPECT_EQ(parse_int("12x"), std::nullopt);
  EXPECT_EQ(parse_int("x12"), std::nullopt);
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("1234", 3), "1234");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  EXPECT_GE(t.elapsed_ms(), t.elapsed_seconds());
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace lejit::util
