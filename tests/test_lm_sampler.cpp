#include <gtest/gtest.h>

#include <cmath>

#include "lm/sampler.hpp"

namespace lejit::lm {
namespace {

TEST(Softmax, SumsToOne) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f};
  const auto p = softmax(logits, 1.0);
  double sum = 0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, TemperatureSharpens) {
  const std::vector<float> logits{1.0f, 2.0f};
  const auto cold = softmax(logits, 0.25);
  const auto hot = softmax(logits, 4.0);
  EXPECT_GT(cold[1], hot[1]);
}

TEST(Softmax, ZeroTemperatureIsArgmax) {
  const std::vector<float> logits{1.0f, 5.0f, 3.0f};
  const auto p = softmax(logits, 0.0);
  EXPECT_EQ(p[1], 1.0);
  EXPECT_EQ(p[0] + p[2], 0.0);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const std::vector<float> logits{1000.0f, 1001.0f};
  const auto p = softmax(logits, 1.0);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(SampleToken, GreedyPicksArgmax) {
  util::Rng rng(1);
  const std::vector<float> logits{0.1f, 2.0f, -1.0f};
  EXPECT_EQ(sample_token(logits, {.temperature = 0.0}, rng), 1);
}

TEST(SampleToken, RespectsMask) {
  util::Rng rng(2);
  const std::vector<float> logits{10.0f, 0.0f, -5.0f};
  const std::vector<char> raw{0, 1, 1};
  bool mask_arr[3] = {false, true, true};
  for (int i = 0; i < 50; ++i) {
    const int t = sample_token(logits, {.temperature = 1.0}, rng,
                               std::span<const bool>(mask_arr, 3));
    EXPECT_NE(t, 0);
  }
  (void)raw;
}

TEST(SampleToken, MaskAllowingNothingThrows) {
  util::Rng rng(3);
  const std::vector<float> logits{1.0f, 2.0f};
  bool mask_arr[2] = {false, false};
  EXPECT_THROW(sample_token(logits, {}, rng, std::span<const bool>(mask_arr, 2)),
               util::PreconditionError);
}

TEST(SampleToken, MaskSizeMismatchThrows) {
  util::Rng rng(3);
  const std::vector<float> logits{1.0f, 2.0f};
  bool mask_arr[1] = {true};
  EXPECT_THROW(sample_token(logits, {}, rng, std::span<const bool>(mask_arr, 1)),
               util::PreconditionError);
}

TEST(SampleToken, TopKTruncates) {
  util::Rng rng(4);
  const std::vector<float> logits{5.0f, 4.0f, -20.0f, -20.0f};
  for (int i = 0; i < 100; ++i) {
    const int t = sample_token(logits, {.temperature = 1.0, .top_k = 2}, rng);
    EXPECT_LT(t, 2);
  }
}

TEST(SampleToken, SamplingFollowsDistribution) {
  util::Rng rng(5);
  // p(1)/p(0) = e^2 ≈ 7.39
  const std::vector<float> logits{0.0f, 2.0f};
  int count1 = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i)
    count1 += sample_token(logits, {.temperature = 1.0}, rng);
  const double frac = static_cast<double>(count1) / kN;
  EXPECT_NEAR(frac, std::exp(2.0) / (1.0 + std::exp(2.0)), 0.03);
}

TEST(SampleToken, MaskedRenormalizationPreservesRelativeOdds) {
  util::Rng rng(6);
  // Mask removes index 0; ratio between 1 and 2 must be preserved.
  const std::vector<float> logits{9.0f, 1.0f, 0.0f};
  bool mask_arr[3] = {false, true, true};
  int count1 = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const int t = sample_token(logits, {.temperature = 1.0}, rng,
                               std::span<const bool>(mask_arr, 3));
    if (t == 1) ++count1;
  }
  const double frac = static_cast<double>(count1) / kN;
  EXPECT_NEAR(frac, std::exp(1.0) / (1.0 + std::exp(1.0)), 0.03);
}

TEST(AllowedMass, MeasuresMaskedProbability) {
  const std::vector<float> logits{0.0f, 0.0f, 0.0f, 0.0f};
  bool mask_arr[4] = {true, true, false, false};
  EXPECT_NEAR(allowed_mass(logits, std::span<const bool>(mask_arr, 4)), 0.5,
              1e-12);
}

}  // namespace
}  // namespace lejit::lm
