#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "lm/ngram.hpp"
#include "lm/trainer.hpp"
#include "lm/transformer.hpp"
#include "obs/metrics.hpp"

namespace lejit::lm {
namespace {

std::vector<double> probs_of(const LanguageModel& m,
                             std::span<const int> ctx) {
  const auto logits = m.logits(ctx);
  std::vector<double> p(logits.size());
  double total = 0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(static_cast<double>(logits[i]));
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}

// --- n-gram ------------------------------------------------------------------

TEST(NgramModel, UntrainedIsUniform) {
  const NgramModel m(4);
  const auto p = probs_of(m, {});
  for (const double v : p) EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(NgramModel, LearnsDeterministicSequence) {
  NgramModel m(3, NgramConfig{.order = 3});
  const std::vector<int> row{0, 1, 2, 0, 1, 2, 0, 1, 2};
  for (int i = 0; i < 20; ++i) m.observe(row);
  const std::vector<int> ctx{0, 1};
  const auto p = probs_of(m, ctx);
  EXPECT_GT(p[2], 0.8) << "after (0,1) the next token is always 2";
}

TEST(NgramModel, BacksOffForUnseenContext) {
  NgramModel m(3, NgramConfig{.order = 3});
  // Unigram distribution heavily favors token 1.
  const std::vector<int> row{1, 1, 1, 1, 0};
  for (int i = 0; i < 10; ++i) m.observe(row);
  // Context (2,2) was never observed: backoff should still prefer 1.
  const std::vector<int> ctx{2, 2};
  const auto p = probs_of(m, ctx);
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[1], p[2]);
}

TEST(NgramModel, LogitsAreFiniteAndSizedToVocab) {
  NgramModel m(7);
  m.observe(std::vector<int>{0, 1, 2, 3, 4, 5, 6});
  const auto logits = m.logits(std::vector<int>{3});
  ASSERT_EQ(logits.size(), 7u);
  for (const float l : logits) EXPECT_TRUE(std::isfinite(l));
}

TEST(NgramModel, RejectsOutOfRangeToken) {
  NgramModel m(3);
  EXPECT_THROW(m.observe(std::vector<int>{0, 3}), util::PreconditionError);
}

TEST(NgramModel, TotalEventsGrow) {
  NgramModel m(3, NgramConfig{.order = 2});
  EXPECT_EQ(m.total_events(), 0);
  m.observe(std::vector<int>{0, 1, 2});
  EXPECT_GT(m.total_events(), 0);
}

// --- transformer -------------------------------------------------------------

TransformerConfig tiny_config(int vocab = 5) {
  return TransformerConfig{.vocab_size = vocab,
                           .d_model = 16,
                           .n_layers = 2,
                           .n_heads = 2,
                           .d_ff = 24,
                           .max_seq = 12};
}

TEST(Transformer, ShapesAndDeterminism) {
  util::Rng rng(7);
  const Transformer m(tiny_config(), rng);
  EXPECT_GT(m.num_parameters(), 1000u);
  const std::vector<int> ctx{0, 1, 2};
  const auto a = m.logits(ctx);
  const auto b = m.logits(ctx);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b) << "inference must be deterministic";
}

TEST(Transformer, EmptyContextGivesUnconditionalLogits) {
  util::Rng rng(8);
  const Transformer m(tiny_config(), rng);
  const auto l = m.logits({});
  ASSERT_EQ(l.size(), 5u);
  for (const float v : l) EXPECT_TRUE(std::isfinite(v));
}

TEST(Transformer, ContextIsTruncatedToWindow) {
  util::Rng rng(9);
  const Transformer m(tiny_config(), rng);
  std::vector<int> long_ctx(50, 1);
  EXPECT_NO_THROW(m.logits(long_ctx));
}

TEST(Transformer, RejectsBadConfig) {
  util::Rng rng(1);
  EXPECT_THROW(Transformer(TransformerConfig{.vocab_size = 0}, rng),
               util::PreconditionError);
  EXPECT_THROW(Transformer(TransformerConfig{.vocab_size = 4,
                                             .d_model = 10,
                                             .n_heads = 3},
                           rng),
               util::PreconditionError);
}

TEST(Transformer, RejectsOutOfRangeContextToken) {
  util::Rng rng(1);
  const Transformer m(tiny_config(), rng);
  EXPECT_THROW(m.logits(std::vector<int>{99}), util::PreconditionError);
}

TEST(Transformer, ParameterRoundTrip) {
  util::Rng rng(10);
  Transformer m(tiny_config(), rng);
  const auto flat = m.parameters_flat();
  std::vector<float> doubled = flat;
  for (float& v : doubled) v *= 2.0f;
  m.set_parameters_flat(doubled);
  EXPECT_EQ(m.parameters_flat(), doubled);
  EXPECT_THROW(m.set_parameters_flat(std::vector<float>{1.0f}),
               util::PreconditionError);
}

// The decisive test for hand-written backprop: analytic gradients must match
// central finite differences on a random subset of parameters.
TEST(Transformer, GradientMatchesFiniteDifference) {
  util::Rng rng(11);
  Transformer m(tiny_config(4), rng);
  const std::vector<std::vector<int>> rows{{0, 1, 2, 3, 1, 0},
                                           {3, 2, 1, 0, 2}};

  const auto [loss0, grad] = m.loss_and_gradient(rows);
  EXPECT_TRUE(std::isfinite(loss0));
  auto flat = m.parameters_flat();
  ASSERT_EQ(flat.size(), grad.size());

  util::Rng pick(12);
  constexpr double kEps = 1e-3;
  int checked = 0;
  double worst = 0.0;
  while (checked < 60) {
    const auto i = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(flat.size()) - 1));
    const float saved = flat[i];

    flat[i] = saved + static_cast<float>(kEps);
    m.set_parameters_flat(flat);
    const double lp = m.loss_and_gradient(rows).first;
    flat[i] = saved - static_cast<float>(kEps);
    m.set_parameters_flat(flat);
    const double lm = m.loss_and_gradient(rows).first;
    flat[i] = saved;
    m.set_parameters_flat(flat);

    const double numeric = (lp - lm) / (2 * kEps);
    const double analytic = static_cast<double>(grad[i]);
    // Skip near-zero coordinates: the loss is float32, so the central
    // difference carries ~1e-7/eps ≈ 1e-4 absolute noise.
    if (std::abs(numeric) < 2e-3 && std::abs(analytic) < 2e-3) {
      ++checked;
      continue;
    }
    const double rel = std::abs(numeric - analytic) /
                       std::max({std::abs(numeric), std::abs(analytic), 1e-4});
    worst = std::max(worst, rel);
    EXPECT_LT(rel, 0.08) << "param " << i << ": analytic " << analytic
                         << " vs numeric " << numeric;
    ++checked;
  }
  // The typical case should be far tighter than the per-coordinate bound.
  EXPECT_LT(worst, 0.08);
}

TEST(Transformer, KvCacheMatchesColdForward) {
  util::Rng rng(19);
  const Transformer m(tiny_config(6), rng);
  util::Rng ctx_rng(20);
  // Grow a context token by token (the decoder's access pattern), and
  // interleave unrelated contexts to force cache resets; every answer must
  // match a freshly-constructed model's cold forward pass.
  const Transformer cold(tiny_config(6), rng);  // different weights — not used
  std::vector<int> ctx;
  for (int step = 0; step < 20; ++step) {
    ctx.push_back(static_cast<int>(ctx_rng.uniform_int(0, 5)));
    const auto warm = m.logits(ctx);
    // Cold pass: same model, cache invalidated by querying a disjoint
    // context first.
    std::vector<int> other(3, 0);
    (void)m.logits(other);
    const auto recomputed = m.logits(ctx);
    ASSERT_EQ(warm.size(), recomputed.size());
    for (std::size_t i = 0; i < warm.size(); ++i)
      EXPECT_NEAR(warm[i], recomputed[i], 1e-4f) << "step " << step;
  }
}

TEST(Transformer, DecodePathAgreesWithTrainingPath) {
  // The KV-cached decode path and the batched training forward are separate
  // implementations; cross-check them through the loss: for a one-token row
  // {t}, evaluate() returns the cross-entropy of the unconditional logits at
  // target t, which must match -log softmax(logits({}))[t].
  util::Rng rng(21);
  Transformer m(tiny_config(5), rng);
  const auto logits = m.logits({});
  double maxv = -1e30;
  for (const float l : logits) maxv = std::max(maxv, static_cast<double>(l));
  double total = 0;
  for (const float l : logits) total += std::exp(static_cast<double>(l) - maxv);
  for (int t = 0; t < 5; ++t) {
    const std::vector<std::vector<int>> rows{{t}};
    const double expected =
        -(static_cast<double>(logits[static_cast<std::size_t>(t)]) - maxv -
          std::log(total));
    EXPECT_NEAR(m.evaluate(rows), expected, 1e-4) << "target " << t;
  }
}

TEST(Transformer, TrainingReducesLossOnTinyCorpus) {
  util::Rng rng(13);
  Transformer m(tiny_config(4), rng);
  // A strongly patterned corpus the model should memorize quickly.
  std::vector<std::vector<int>> rows;
  for (int i = 0; i < 8; ++i) rows.push_back({0, 1, 2, 3, 0, 1, 2, 3});

  const float before = m.evaluate(rows);
  util::Rng train_rng(14);
  const TrainConfig cfg{.steps = 60,
                        .batch_size = 4,
                        .adam = AdamConfig{.lr = 1e-2f},
                        .warmup_steps = 5};
  const TrainReport report = train_lm(m, rows, cfg, train_rng);
  const float after = m.evaluate(rows);
  EXPECT_LT(after, before * 0.6f)
      << "loss " << before << " -> " << after << " (report last "
      << report.final_loss << ")";
}

TEST(Transformer, SaveLoadRoundTrip) {
  util::Rng rng(22);
  const Transformer original(tiny_config(6), rng);
  const std::string path = ::testing::TempDir() + "lejit_ckpt_test.bin";
  original.save(path);
  const Transformer loaded = Transformer::load(path);
  EXPECT_EQ(loaded.config().d_model, original.config().d_model);
  EXPECT_EQ(loaded.parameters_flat(), original.parameters_flat());
  const std::vector<int> ctx{0, 3, 1};
  EXPECT_EQ(loaded.logits(ctx), original.logits(ctx));
}

TEST(Transformer, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "lejit_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  EXPECT_THROW(Transformer::load(path), util::RuntimeError);
  EXPECT_THROW(Transformer::load("/nonexistent/path.bin"), util::RuntimeError);
}

// --- KV cache + batched decode ------------------------------------------------

TEST(Transformer, CallerCacheMatchesInternalCacheBitExactly) {
  util::Rng rng(23);
  const Transformer m(tiny_config(6), rng);
  KvCache cache;
  // Empty context, short context, and a context past the window limit: the
  // caller-owned-cache overload runs the same kernel as the internal path,
  // so the answers must be bit-identical, not just close.
  for (const auto& ctx : std::vector<std::vector<int>>{
           {}, {0, 1, 2}, {1, 4}, std::vector<int>(30, 2)}) {
    EXPECT_EQ(m.logits(ctx, cache), m.logits(ctx));
  }
}

TEST(Transformer, RewoundContextMatchesColdForward) {
  // Dead-end recovery rewinds the decoder's context: after answering a long
  // context, a query for one of its prefixes must be bit-identical to a
  // cold forward of that prefix (the LCP logic may not serve stale suffix
  // state).
  util::Rng rng(24);
  const Transformer m(tiny_config(6), rng);
  KvCache warm;
  const std::vector<int> full{0, 1, 2, 3, 4, 5, 0, 1};
  (void)m.logits(full, warm);
  for (std::size_t keep = full.size() - 1; keep > 0; --keep) {
    const std::vector<int> rewound(full.begin(),
                                   full.begin() + static_cast<long>(keep));
    KvCache fresh;
    EXPECT_EQ(m.logits(rewound, warm), m.logits(rewound, fresh))
        << "rewound to " << keep << " tokens";
  }
}

TEST(Transformer, BatchedLogitsBitIdenticalToSequential) {
  util::Rng rng(25);
  const Transformer m(tiny_config(6), rng);
  const std::vector<std::vector<int>> contexts{
      {}, {3}, {0, 1, 2, 3}, {5, 5, 1, 0, 2, 4, 3}, std::vector<int>(20, 1)};

  std::vector<KvCache> batch_caches(contexts.size());
  std::vector<KvCache*> cache_ptrs;
  for (auto& c : batch_caches) cache_ptrs.push_back(&c);
  const auto batched = m.logits_batch(contexts, cache_ptrs);

  ASSERT_EQ(batched.size(), contexts.size());
  for (std::size_t s = 0; s < contexts.size(); ++s) {
    KvCache fresh;
    EXPECT_EQ(batched[s], m.logits(contexts[s], fresh)) << "session " << s;
    EXPECT_EQ(batched[s], m.logits(contexts[s])) << "session " << s;
  }
}

TEST(Transformer, BatchedGrowingSessionsStayBitIdentical) {
  // The serve access pattern: sessions grow token by token at different
  // rates, cross the window limit, and keep their own caches. Every step of
  // every session must match a sequential reference decode bit for bit.
  util::Rng rng(26);
  const Transformer m(tiny_config(6), rng);
  constexpr std::size_t kSessions = 3;

  std::vector<std::vector<int>> ctxs(kSessions);
  std::vector<KvCache> batch_caches(kSessions), ref_caches(kSessions);
  std::vector<KvCache*> cache_ptrs;
  for (auto& c : batch_caches) cache_ptrs.push_back(&c);

  util::Rng toks(27);
  for (int step = 0; step < 18; ++step) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      // Session s grows every (s+1)-th step — sessions desynchronize, so the
      // batch mixes different context lengths and cache states.
      if (step % static_cast<int>(s + 1) == 0)
        ctxs[s].push_back(static_cast<int>(toks.uniform_int(0, 5)));
    }
    const auto batched = m.logits_batch(ctxs, cache_ptrs);
    for (std::size_t s = 0; s < kSessions; ++s)
      EXPECT_EQ(batched[s], m.logits(ctxs[s], ref_caches[s]))
          << "step " << step << " session " << s;
  }
}

TEST(Transformer, BatchedLogitsValidatesArguments) {
  util::Rng rng(28);
  const Transformer m(tiny_config(4), rng);
  KvCache a, b;
  const std::vector<std::vector<int>> two{{0}, {1}};
  const std::vector<std::vector<int>> none;

  std::vector<KvCache*> one_cache{&a};
  EXPECT_THROW(m.logits_batch(two, one_cache), util::PreconditionError);
  std::vector<KvCache*> empty_caches;
  EXPECT_THROW(m.logits_batch(none, empty_caches), util::PreconditionError);
  std::vector<KvCache*> with_null{&a, nullptr};
  EXPECT_THROW(m.logits_batch(two, with_null), util::PreconditionError);
  std::vector<KvCache*> duplicated{&a, &a};
  EXPECT_THROW(m.logits_batch(two, duplicated), util::PreconditionError);
  std::vector<KvCache*> distinct{&a, &b};
  EXPECT_NO_THROW(m.logits_batch(two, distinct));
}

TEST(Transformer, KvCacheRejectsForeignModelShape) {
  util::Rng rng(29);
  const Transformer small(tiny_config(4), rng);
  const Transformer big(
      TransformerConfig{.vocab_size = 4, .d_model = 32, .n_layers = 1,
                        .n_heads = 2, .d_ff = 24, .max_seq = 12},
      rng);
  KvCache cache;
  (void)small.logits(std::vector<int>{0, 1}, cache);
  EXPECT_THROW(big.logits(std::vector<int>{0, 1}, cache),
               util::PreconditionError);
}

// Pins the KV-cache efficiency contract (lm.kv.* counters): below the window
// limit every step reuses the full cached prefix and recomputes exactly one
// token; past the limit the sliding window shifts every step, the common
// prefix collapses to the START token, and each step reprocesses the whole
// max_seq-1 window — the documented O(ctx²) post-window regime.
TEST(Transformer, KvCountersPinFullPrefixReuseAndWindowCliff) {
  util::Rng rng(30);
  const int max_seq = tiny_config().max_seq;  // 12
  const Transformer m(tiny_config(6), rng);

  obs::set_metrics_enabled(true);
  auto& registry = obs::MetricsRegistry::instance();
  auto& reused = registry.counter("lm.kv.reused_tokens");
  auto& recomputed = registry.counter("lm.kv.recomputed_tokens");

  KvCache cache;
  std::vector<int> ctx;
  // Non-repeating window content (period 6 > shift 1), so a shifted window
  // never accidentally matches the cached one.
  for (int step = 0; step < 30; ++step) {
    ctx.push_back(step % 6);
    const std::int64_t reused_before = reused.value();
    const std::int64_t recomputed_before = recomputed.value();
    (void)m.logits(ctx, cache);
    const std::int64_t dr = reused.value() - reused_before;
    const std::int64_t dc = recomputed.value() - recomputed_before;
    if (static_cast<int>(ctx.size()) == 1) {
      // Cold cache: START + first token both recomputed.
      EXPECT_EQ(dr, 0) << "step " << step;
      EXPECT_EQ(dc, 2) << "step " << step;
    } else if (static_cast<int>(ctx.size()) < max_seq) {
      // Below the window: full prefix reuse, exactly one token recomputed.
      EXPECT_EQ(dr, static_cast<std::int64_t>(ctx.size())) << "step " << step;
      EXPECT_EQ(dc, 1) << "step " << step;
    } else {
      // Past the window: only START survives the shift; the whole window is
      // reprocessed.
      EXPECT_EQ(dr, 1) << "step " << step;
      EXPECT_EQ(dc, max_seq - 1) << "step " << step;
    }
  }
  obs::set_metrics_enabled(false);
}

TEST(TransformerSession, ConcurrentViewsMatchSharedModel) {
  // TransformerSession is the per-thread view the serve runtime hands out:
  // interleaved sessions over one shared model must each behave exactly like
  // the model queried alone.
  util::Rng rng(31);
  const Transformer m(tiny_config(6), rng);
  TransformerSession s1(m), s2(m);
  EXPECT_EQ(s1.vocab_size(), m.vocab_size());

  std::vector<int> c1, c2{5, 4, 3};
  for (int step = 0; step < 10; ++step) {
    c1.push_back(step % 6);
    c2.push_back((5 - step % 6) % 6);
    KvCache f1, f2;
    EXPECT_EQ(s1.logits(c1), m.logits(c1, f1)) << "step " << step;
    EXPECT_EQ(s2.logits(c2), m.logits(c2, f2)) << "step " << step;
  }
}

TEST(Trainer, LogsWhenRequested) {
  util::Rng rng(15);
  Transformer m(tiny_config(3), rng);
  const std::vector<std::vector<int>> rows{{0, 1, 2}, {2, 1, 0}};
  int calls = 0;
  util::Rng train_rng(16);
  train_lm(m, rows,
           TrainConfig{.steps = 10, .batch_size = 2, .log_every = 2},
           train_rng, [&](int, float) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(Trainer, RejectsEmptyCorpus) {
  util::Rng rng(17);
  Transformer m(tiny_config(3), rng);
  util::Rng train_rng(18);
  EXPECT_THROW(train_lm(m, {}, TrainConfig{}, train_rng),
               util::PreconditionError);
}

}  // namespace
}  // namespace lejit::lm
