#include <gtest/gtest.h>

#include "core/transition.hpp"
#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace lejit::core {
namespace {

TEST(DigitsFor, KnownValues) {
  EXPECT_EQ(digits_for(0), 1);
  EXPECT_EQ(digits_for(9), 1);
  EXPECT_EQ(digits_for(10), 2);
  EXPECT_EQ(digits_for(96), 2);
  EXPECT_EQ(digits_for(100), 3);
  EXPECT_EQ(digits_for(999), 3);
  EXPECT_THROW(digits_for(-1), util::PreconditionError);
}

TEST(DigitPrefix, CanonicalZeroCannotExtend) {
  const DigitPrefix zero{0, 1};
  EXPECT_FALSE(zero.can_extend(3));
  const DigitPrefix one{1, 1};
  EXPECT_TRUE(one.can_extend(3));
  EXPECT_FALSE(one.can_extend(1));
}

TEST(DigitPrefix, ExtendedAccumulates) {
  DigitPrefix p;
  p = p.extended(4);
  p = p.extended(2);
  EXPECT_EQ(p.value, 42);
  EXPECT_EQ(p.digits, 2);
}

TEST(DigitPrefix, ExtendedSaturatesInsteadOfOverflowing) {
  // Regression: `value * 10 + digit` used to be plain Int arithmetic, which
  // is UB once a prompt feeds enough digits. Saturation must kick in and
  // stay monotone: every further digit keeps the prefix at the ceiling.
  DigitPrefix p;
  for (int i = 0; i < 25; ++i) p = p.extended(9);  // 25 nines >> Int range
  EXPECT_EQ(p.digits, 25);
  EXPECT_EQ(p.value, smt::kIntInf);
  const DigitPrefix q = p.extended(7);
  EXPECT_EQ(q.value, smt::kIntInf);
  EXPECT_EQ(q.digits, 26);
}

TEST(DigitPrefix, SaturatedPrefixIsInfeasibleForMaxDomainField) {
  // A saturated prefix clamps to kIntInf, which exceeds every admissible
  // solver domain (domains must stay below kIntInf/2). The completion
  // formula must still build without overflow UB and be cleanly refutable —
  // even for a field sitting at the solver's maximum domain.
  DigitPrefix sat_prefix;
  for (int i = 0; i < 30; ++i) sat_prefix = sat_prefix.extended(9);
  smt::Solver s;
  const smt::VarId v = s.add_var("v", 0, smt::kIntInf / 2 - 1);
  const std::vector<smt::Formula> assumptions{
      prefix_completion_formula(v, sat_prefix, 40)};
  EXPECT_EQ(s.check_assuming(assumptions), smt::CheckResult::kUnsat);
  // An unsaturated prefix over the same max-domain field stays satisfiable.
  const DigitPrefix small = DigitPrefix{}.extended(7);
  const std::vector<smt::Formula> ok{prefix_completion_formula(v, small, 18)};
  EXPECT_EQ(s.check_assuming(ok), smt::CheckResult::kSat);
}

TEST(CompletionContains, ExactMembership) {
  const DigitPrefix p{42, 2};
  EXPECT_TRUE(completion_contains(p, 4, 42));    // terminate now
  EXPECT_TRUE(completion_contains(p, 4, 420));   // one more digit
  EXPECT_TRUE(completion_contains(p, 4, 4299));  // two more digits
  EXPECT_FALSE(completion_contains(p, 4, 43));
  EXPECT_FALSE(completion_contains(p, 4, 4300));
  EXPECT_FALSE(completion_contains(p, 3, 4200));  // digit budget exceeded
  EXPECT_FALSE(completion_contains(p, 4, 4));     // shorter than the prefix
}

// Enumerate the exact completion set of a prefix by brute force.
std::vector<smt::Int> completions(const DigitPrefix& p, int max_digits) {
  std::vector<smt::Int> out{p.value};
  if (p.can_extend(max_digits)) {
    smt::Int scale = 1;
    for (int m = 1; m <= max_digits - p.digits; ++m) {
      scale *= 10;
      for (smt::Int v = p.value * scale; v < p.value * scale + scale; ++v)
        out.push_back(v);
    }
  }
  return out;
}

// Property: prefix_completion_formula is satisfied by exactly the canonical
// completions of the prefix, for all small prefixes.
class CompletionFormulaProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompletionFormulaProperty, MatchesEnumeration) {
  const int max_digits = GetParam();
  smt::Int domain_hi = 1;
  for (int i = 0; i < max_digits; ++i) domain_hi *= 10;
  --domain_hi;

  for (int first = 0; first <= 9; ++first) {
    for (int second = -1; second <= 9; ++second) {
      DigitPrefix p;
      p = p.extended(first);
      if (second >= 0) {
        if (!p.can_extend(max_digits)) continue;
        p = p.extended(second);
      }
      if (p.digits > max_digits) continue;

      smt::Solver solver;
      const smt::VarId v = solver.add_var("v", 0, domain_hi);
      const smt::Formula f = prefix_completion_formula(v, p, max_digits);

      std::vector<bool> expected(static_cast<std::size_t>(domain_hi) + 1, false);
      for (const smt::Int c : completions(p, max_digits))
        if (c <= domain_hi) expected[static_cast<std::size_t>(c)] = true;

      for (smt::Int val = 0; val <= domain_hi; ++val) {
        const bool sat = f->eval({val});
        EXPECT_EQ(sat, expected[static_cast<std::size_t>(val)])
            << "prefix " << p.value << " (" << p.digits << " digits), value "
            << val;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CompletionFormulaProperty,
                         ::testing::Values(1, 2, 3));

TEST(CompletionFormula, RespectsConstraintsThroughSolver) {
  // Domain [0,99], rule v >= 55. Prefix "5" must be completable (55..59),
  // prefix "4" must not (only 4, 40..49 reachable).
  smt::Solver solver;
  const smt::VarId v = solver.add_var("v", 0, 99);
  solver.add(smt::ge(smt::LinExpr(v), smt::LinExpr(55)));

  const smt::Formula five =
      prefix_completion_formula(v, DigitPrefix{5, 1}, 2);
  EXPECT_EQ(solver.check_assuming(std::span(&five, 1)),
            smt::CheckResult::kSat);

  const smt::Formula four =
      prefix_completion_formula(v, DigitPrefix{4, 1}, 2);
  EXPECT_EQ(solver.check_assuming(std::span(&four, 1)),
            smt::CheckResult::kUnsat);
}

TEST(CompletionFormula, RejectsEmptyPrefix) {
  smt::Solver solver;
  const smt::VarId v = solver.add_var("v", 0, 9);
  EXPECT_THROW(prefix_completion_formula(v, DigitPrefix{}, 1),
               util::PreconditionError);
}

TEST(CompletionIntersects, AgreesWithEnumeration) {
  for (const int max_digits : {1, 2}) {
    smt::Int domain_hi = max_digits == 1 ? 9 : 99;
    for (int first = 0; first <= 9; ++first) {
      DigitPrefix p;
      p = p.extended(first);
      for (smt::Int lo = 0; lo <= domain_hi; lo += 7) {
        for (smt::Int hi = lo; hi <= domain_hi; hi += 11) {
          const smt::Interval hull{lo, hi};
          bool expected = false;
          for (const smt::Int c : completions(p, max_digits))
            if (hull.contains(c)) expected = true;
          EXPECT_EQ(completion_intersects(p, max_digits, hull), expected)
              << "prefix " << p.value << " hull [" << lo << "," << hi << "]";
        }
      }
    }
  }
}

TEST(CompletionIntersects, EmptyHullAndHolePrefix) {
  const DigitPrefix p{1, 1};
  EXPECT_FALSE(completion_intersects(p, 2, smt::Interval::empty()));
  // Completions of "2" with 2 digits: {2, 20..29}; hull {5..15} misses all
  // but... 2 is below, 20 above? No: hull [5,15] contains none of {2,20..29}.
  EXPECT_FALSE(completion_intersects(DigitPrefix{2, 1}, 2,
                                     smt::Interval{5, 15}));
  // But {3..25} catches 20..25.
  EXPECT_TRUE(completion_intersects(DigitPrefix{2, 1}, 2,
                                    smt::Interval{3, 25}));
}

TEST(SyntacticCheck, Basics) {
  EXPECT_TRUE(prefix_syntactically_ok(DigitPrefix{5, 1}, 2));
  EXPECT_TRUE(prefix_syntactically_ok(DigitPrefix{55, 2}, 2));
  EXPECT_FALSE(prefix_syntactically_ok(DigitPrefix{555, 3}, 2));
  EXPECT_FALSE(prefix_syntactically_ok(DigitPrefix{}, 2));
}

}  // namespace
}  // namespace lejit::core
