#include <gtest/gtest.h>

#include <limits>

#include "core/batch.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

namespace lejit::core {
namespace {

using telemetry::Window;

struct Env {
  telemetry::Dataset dataset;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet mined;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 10, .windows_per_rack = 40, .seed = 77});
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.dataset);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.mined =
        rules::mine_rules(out.train, out.layout, out.dataset.limits).rules;
    return out;
  }();
  return e;
}

DecoderFactory lejit_factory() {
  return [] {
    return std::make_unique<GuidedDecoder>(
        *env().model, env().tokenizer, env().layout, env().mined,
        DecoderConfig{.mode = GuidanceMode::kFull});
  };
}

TEST(Batch, SynthesisProducesCompliantRows) {
  const BatchReport report =
      synthesize_batch(lejit_factory(), 12, BatchConfig{.threads = 3});
  ASSERT_EQ(report.results.size(), 12u);
  EXPECT_EQ(report.ok, 12u);
  EXPECT_EQ(report.dead_ends, 0u);
  for (const auto& r : report.results) {
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(rules::violated_rules(env().mined, *r.window).empty());
  }
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Batch, ImputationKeepsInputOrderAndPrompts) {
  std::vector<Window> windows(env().train.begin(), env().train.begin() + 10);
  const BatchReport report =
      impute_batch(lejit_factory(), windows, BatchConfig{.threads = 4});
  ASSERT_EQ(report.results.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& r = report.results[i];
    if (!r.ok) continue;  // infeasible prompts possible
    EXPECT_EQ(r.window->total, windows[i].total) << "order scrambled at " << i;
  }
}

TEST(Batch, ScheduleIndependentDeterminism) {
  const BatchReport a =
      synthesize_batch(lejit_factory(), 8, BatchConfig{.threads = 1, .seed = 5});
  const BatchReport b =
      synthesize_batch(lejit_factory(), 8, BatchConfig{.threads = 4, .seed = 5});
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i].text, b.results[i].text) << "index " << i;
}

TEST(Batch, DifferentSeedsDiffer) {
  const BatchReport a =
      synthesize_batch(lejit_factory(), 4, BatchConfig{.threads = 2, .seed = 1});
  const BatchReport b =
      synthesize_batch(lejit_factory(), 4, BatchConfig{.threads = 2, .seed = 2});
  int same = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i)
    if (a.results[i].text == b.results[i].text) ++same;
  EXPECT_LT(same, 4);
}

TEST(Batch, EmptyInputIsANoOp) {
  const BatchReport report = impute_batch(lejit_factory(), {}, {});
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.ok, 0u);
}

// --- shared per-row RNG derivation ------------------------------------------

TEST(RowRng, DeterministicAndDistinctAcrossRowsAndAttempts) {
  util::Rng a = row_rng(42, 7, 0);
  util::Rng b = row_rng(42, 7, 0);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different rows / attempts / seeds must diverge immediately — retries and
  // neighbors re-rolling the same stream would decode identical rows.
  EXPECT_NE(row_rng(42, 7, 0).next_u64(), row_rng(42, 8, 0).next_u64());
  EXPECT_NE(row_rng(42, 7, 0).next_u64(), row_rng(42, 7, 1).next_u64());
  EXPECT_NE(row_rng(42, 7, 0).next_u64(), row_rng(43, 7, 0).next_u64());
}

// --- retry backoff clamp ------------------------------------------------------

TEST(RetryBackoff, DoublesPerAttemptFromTheConfiguredBase) {
  EXPECT_EQ(retry_backoff_for_attempt(100, 1), 100u);
  EXPECT_EQ(retry_backoff_for_attempt(100, 2), 200u);
  EXPECT_EQ(retry_backoff_for_attempt(100, 3), 400u);
  EXPECT_EQ(retry_backoff_for_attempt(100, 4), 800u);
}

TEST(RetryBackoff, ZeroAndNegativeInputsMeanNoSleep) {
  EXPECT_EQ(retry_backoff_for_attempt(0, 3), 0u);
  EXPECT_EQ(retry_backoff_for_attempt(-50, 3), 0u);
  EXPECT_EQ(retry_backoff_for_attempt(100, 0), 0u);
  EXPECT_EQ(retry_backoff_for_attempt(100, -1), 0u);
}

TEST(RetryBackoff, CapsAtOneSecond) {
  EXPECT_EQ(retry_backoff_for_attempt(600'000, 2), 1'000'000u);
  EXPECT_EQ(retry_backoff_for_attempt(2'000'000, 1), 1'000'000u);
  // A retry budget large enough that the naive `base << (attempt - 1)` is
  // undefined behavior (shift >= 64) must still return the cap, not UB.
  EXPECT_EQ(retry_backoff_for_attempt(1, 70), 1'000'000u);
  EXPECT_EQ(retry_backoff_for_attempt(1, std::numeric_limits<int>::max()),
            1'000'000u);
}

TEST(RetryBackoff, CapComparisonIsExactNearTheBoundary) {
  // base << shift == 524288 < 1s must NOT be clamped (regression for an
  // off-by-one where the floor-divided ceiling comparison over-capped).
  EXPECT_EQ(retry_backoff_for_attempt(1, 20), 1u << 19);
  EXPECT_EQ(retry_backoff_for_attempt(1, 21), 1'000'000u);
  EXPECT_EQ(retry_backoff_for_attempt(1'000'000, 1), 1'000'000u);
  EXPECT_EQ(retry_backoff_for_attempt(500'000, 2), 1'000'000u);
  EXPECT_EQ(retry_backoff_for_attempt(500'001, 1), 500'001u);
}

TEST(Batch, NullFactoryRejected) {
  EXPECT_THROW(synthesize_batch(nullptr, 3, {}), util::PreconditionError);
}

TEST(Batch, WorkerExceptionSurfaces) {
  const DecoderFactory throwing = []() -> std::unique_ptr<GuidedDecoder> {
    throw util::RuntimeError("factory exploded");
  };
  EXPECT_THROW(synthesize_batch(throwing, 3, {}), util::RuntimeError);
}

}  // namespace
}  // namespace lejit::core
