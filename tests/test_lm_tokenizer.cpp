#include <gtest/gtest.h>

#include "lm/tokenizer.hpp"
#include "telemetry/text.hpp"

namespace lejit::lm {
namespace {

TEST(CharTokenizer, RoundTrip) {
  const CharTokenizer tok("abc123\n");
  const std::string text = "a1b2c3\n";
  const auto ids = tok.encode(text);
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(CharTokenizer, DeduplicatesAlphabet) {
  const CharTokenizer tok("aabbcc");
  EXPECT_EQ(tok.vocab_size(), 3);
}

TEST(CharTokenizer, RejectsUnknownCharacter) {
  const CharTokenizer tok("abc");
  EXPECT_FALSE(tok.has_char('z'));
  EXPECT_THROW(tok.encode("az"), util::PreconditionError);
}

TEST(CharTokenizer, RejectsEmptyAlphabet) {
  EXPECT_THROW(CharTokenizer(""), util::PreconditionError);
}

TEST(CharTokenizer, DecodeRejectsOutOfRangeId) {
  const CharTokenizer tok("ab");
  EXPECT_THROW(tok.decode_char(2), util::PreconditionError);
  EXPECT_THROW(tok.decode_char(-1), util::PreconditionError);
}

TEST(CharTokenizer, FromCorpusSortsDistinctChars) {
  const CharTokenizer tok = CharTokenizer::from_corpus("cba\ncab");
  EXPECT_EQ(tok.vocab_size(), 4);  // '\n', 'a', 'b', 'c'
  EXPECT_TRUE(tok.has_char('\n'));
}

TEST(CharTokenizer, DigitIdsAreNumericOrder) {
  const CharTokenizer tok(telemetry::row_alphabet());
  const auto digits = tok.digit_ids();
  for (int d = 0; d < 10; ++d)
    EXPECT_EQ(tok.decode_char(digits[static_cast<std::size_t>(d)]),
              static_cast<char>('0' + d));
}

TEST(CharTokenizer, NewlineId) {
  const CharTokenizer with(telemetry::row_alphabet());
  EXPECT_TRUE(with.newline_id().has_value());
  const CharTokenizer without("abc");
  EXPECT_FALSE(without.newline_id().has_value());
}

TEST(CharTokenizer, CoversRowAlphabet) {
  const CharTokenizer tok(telemetry::row_alphabet());
  for (const char c : std::string("T=480 E=12 R=3 C=45 G=180|48 96 30 41 20\n"))
    EXPECT_TRUE(tok.has_char(c)) << "missing '" << c << "'";
}

}  // namespace
}  // namespace lejit::lm
