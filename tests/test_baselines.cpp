#include <gtest/gtest.h>

#include "baselines/generators.hpp"
#include "baselines/posthoc.hpp"
#include "baselines/rejection.hpp"
#include "baselines/zoom2net.hpp"
#include "metrics/stats.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::baselines {
namespace {

using telemetry::Window;

struct Env {
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  std::vector<Window> train;
  std::vector<Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;
  rules::RuleSet manual;
};

const Env& env() {
  static const Env e = [] {
    Env out;
    out.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
        .num_racks = 18, .windows_per_rack = 50, .seed = 31});
    out.split = telemetry::split_by_rack(out.dataset, 3, 7);
    out.layout = telemetry::telemetry_row_layout(out.dataset.limits);
    out.train = telemetry::all_windows(out.split.train);
    out.test = telemetry::all_windows(out.split.test);
    out.model = std::make_unique<lm::NgramModel>(
        out.tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
    for (const Window& w : out.train)
      out.model->observe(out.tokenizer.encode(telemetry::window_to_row(w)));
    out.manual = rules::manual_rules(out.layout, out.dataset.limits);
    return out;
  }();
  return e;
}

// --- Zoom2Net substitute -------------------------------------------------------

TEST(Zoom2Net, ImputesWithTheRightShape) {
  const Zoom2NetImputer imputer(env().train, env().dataset.limits);
  const Window out = imputer.impute(env().test.front());
  EXPECT_EQ(static_cast<int>(out.fine.size()), env().dataset.limits.window);
  EXPECT_EQ(out.total, env().test.front().total);
}

TEST(Zoom2Net, CemEnforcesItsManualRules) {
  const Zoom2NetImputer imputer(env().train, env().dataset.limits);
  for (std::size_t i = 0; i < env().test.size(); i += 5) {
    const Window out = imputer.impute(env().test[i]);
    // Bounds and exact sum must hold after the CEM pass.
    smt::Int sum = 0;
    for (const auto v : out.fine) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, env().dataset.limits.bandwidth);
      sum += v;
    }
    EXPECT_EQ(sum, out.total);
    if (out.ecn > 0 && out.total >= env().dataset.limits.burst_threshold()) {
      const auto peak = *std::max_element(out.fine.begin(), out.fine.end());
      EXPECT_GE(peak, env().dataset.limits.burst_threshold());
    }
  }
}

TEST(Zoom2Net, RawRegressorViolatesWhatCemFixes) {
  const Zoom2NetImputer raw(env().train, env().dataset.limits,
                            Zoom2NetConfig{.enable_cem = false});
  std::vector<Window> outputs;
  for (std::size_t i = 0; i < env().test.size(); i += 3)
    outputs.push_back(raw.impute(env().test[i]));
  const auto stats = rules::check_violations(env().manual, outputs);
  EXPECT_GT(stats.violating_windows, 0u)
      << "an unconstrained regressor should break exact-accounting rules";
}

TEST(Zoom2Net, BeatsTheMeanPredictor) {
  const Zoom2NetImputer imputer(env().train, env().dataset.limits);
  double model_err = 0, mean_err = 0;
  double grand_mean = 0;
  std::size_t count = 0;
  for (const Window& w : env().train)
    for (const auto v : w.fine) {
      grand_mean += static_cast<double>(v);
      ++count;
    }
  grand_mean /= static_cast<double>(count);

  for (const Window& truth : env().test) {
    const Window pred = imputer.impute(truth);
    for (std::size_t t = 0; t < truth.fine.size(); ++t) {
      model_err += std::abs(static_cast<double>(truth.fine[t]) -
                            static_cast<double>(pred.fine[t]));
      mean_err +=
          std::abs(static_cast<double>(truth.fine[t]) - grand_mean);
    }
  }
  EXPECT_LT(model_err, mean_err)
      << "the regressor must extract signal from the coarse features";
}

TEST(Zoom2Net, TrainingTimePenaltyCannotGuaranteeCompliance) {
  // §2.2's training-time paradigm: encode rules into the loss. For the
  // *differentiable* accounting rule this almost works — with `total` among
  // the features the least-squares optimum already satisfies Σŷ = total up
  // to rounding, penalty or not. But (a) exact integer compliance still
  // fails, and (b) the non-differentiable burst implication cannot be
  // encoded at all, so rule violations persist — the paper's core criticism
  // of the paradigm.
  const Zoom2NetImputer regularized(
      env().train, env().dataset.limits,
      Zoom2NetConfig{.enable_cem = false, .sum_penalty = 20.0});

  std::size_t sum_exact = 0, burst_violations = 0, count = 0;
  for (std::size_t i = 0; i < env().test.size(); i += 2) {
    const Window& truth = env().test[i];
    const Window out = regularized.impute(truth);
    smt::Int sum = 0, peak = 0;
    for (const auto v : out.fine) {
      sum += v;
      peak = std::max(peak, v);
    }
    if (sum == truth.total) ++sum_exact;
    if (out.ecn > 0 && peak < env().dataset.limits.burst_threshold())
      ++burst_violations;
    ++count;
  }
  // (a) soft penalties get close but do not certify exact accounting...
  EXPECT_LT(sum_exact, count);
  // (b) ...and rules outside the differentiable fragment are still broken.
  EXPECT_GT(burst_violations, 0u)
      << "a linear loss cannot encode the burst implication";
}

// --- rejection sampling ----------------------------------------------------------

TEST(Rejection, EventuallyProducesCompliantSample) {
  RejectionSampler sampler(*env().model, env().tokenizer, env().layout,
                           env().manual, RejectionConfig{.max_attempts = 300});
  util::Rng rng(1);
  const RejectionResult r = sampler.generate(rng);
  ASSERT_TRUE(r.compliant);
  EXPECT_GE(r.attempts, 1);
  EXPECT_TRUE(rules::violated_rules(env().manual, *r.decode.window).empty());
}

TEST(Rejection, HarderRulesNeedMoreAttempts) {
  RejectionSampler sampler(*env().model, env().tokenizer, env().layout,
                           env().manual, RejectionConfig{.max_attempts = 400});
  util::Rng rng(2);
  double total_attempts = 0;
  int runs = 8;
  for (int i = 0; i < runs; ++i)
    total_attempts += sampler.generate(rng).attempts;
  EXPECT_GT(total_attempts / runs, 1.0)
      << "exact sum accounting is nearly impossible to hit by luck";
}

TEST(Rejection, BudgetExhaustionReturnsNonCompliant) {
  RejectionSampler sampler(*env().model, env().tokenizer, env().layout,
                           env().manual, RejectionConfig{.max_attempts = 1});
  util::Rng rng(3);
  const RejectionResult r = sampler.generate(rng);
  EXPECT_EQ(r.attempts, 1);
  // With one attempt compliance is overwhelmingly unlikely (sum rule).
}

// --- post-hoc repair ----------------------------------------------------------------

TEST(PostHoc, RepairsToCompliance) {
  const PostHocRepairer repairer(env().layout, env().manual);
  Window w = env().test.front();
  w.fine[0] = env().dataset.limits.bandwidth + 40;  // break bound + sum
  const RepairResult r = repairer.repair(w, /*pin_coarse=*/true);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.changed);
  EXPECT_TRUE(rules::violated_rules(env().manual, r.window).empty());
  EXPECT_EQ(r.window.total, w.total) << "coarse fields were pinned";
}

TEST(PostHoc, CompliantInputIsUntouched) {
  const PostHocRepairer repairer(env().layout, env().manual);
  const Window& w = env().test.front();  // real data satisfies manual rules
  const RepairResult r = repairer.repair(w, true);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.changed);
  EXPECT_EQ(r.l1_distance, 0);
}

TEST(PostHoc, FindsMinimalL1Projection) {
  // Window sums to total+3 → the cheapest repair moves mass 3.
  const PostHocRepairer repairer(env().layout, env().manual);
  Window w = env().test.front();
  // Force a known perturbation that keeps everything else legal.
  w.fine.assign(w.fine.size(), 10);
  w.total = 10 * static_cast<smt::Int>(w.fine.size()) + 3;
  w.ecn = 0;
  w.rtx = 0;
  w.egress = std::min<smt::Int>(w.egress, w.total);
  const RepairResult r = repairer.repair(w, true);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.l1_distance, 3);
}

TEST(PostHoc, ReportsInfeasibleContradictions) {
  const PostHocRepairer repairer(env().layout, env().manual);
  Window w = env().test.front();
  w.total = 0;
  w.ecn = 5;  // burst needed but no volume available
  w.egress = 0;
  w.fine.assign(w.fine.size(), 0);
  const RepairResult r = repairer.repair(w, true);
  EXPECT_FALSE(r.feasible);
}

// --- synthesis generator substitutes ---------------------------------------------

TEST(Generators, AllFiveFitAndSample) {
  const auto gens = make_all_generators(env().train, env().dataset.limits);
  ASSERT_EQ(gens.size(), 5u);
  util::Rng rng(4);
  const auto ubs = telemetry::coarse_upper_bounds(env().dataset.limits);
  for (const auto& g : gens) {
    // The autoregressive substitute is only digit-capacity bounded — it can
    // (and does) emit out-of-domain values; that is part of what Fig. 5's
    // compliance comparison measures.
    const bool strict = g->name() != "REaLTabFormer*";
    for (int i = 0; i < 40; ++i) {
      const Window w = g->sample(rng);
      const auto coarse = telemetry::coarse_values(w);
      for (int f = 0; f < telemetry::kNumCoarse; ++f) {
        EXPECT_GE(coarse[static_cast<std::size_t>(f)], 0) << g->name();
        if (strict) {
          EXPECT_LE(coarse[static_cast<std::size_t>(f)],
                    ubs[static_cast<std::size_t>(f)])
              << g->name();
        }
      }
    }
  }
}

TEST(Generators, MarginalsTrackTheTrainingDistribution) {
  const auto gens = make_all_generators(env().train, env().dataset.limits);
  util::Rng rng(5);
  std::vector<std::int64_t> train_totals;
  for (const Window& w : env().train) train_totals.push_back(w.total);

  for (const auto& g : gens) {
    std::vector<std::int64_t> gen_totals;
    for (int i = 0; i < 400; ++i) gen_totals.push_back(g->sample(rng).total);
    const double d = metrics::jsd_samples(train_totals, gen_totals);
    EXPECT_LT(d, 0.25) << g->name() << " total-field JSD " << d;
  }
}

TEST(Generators, SotaGeneratorsViolateMinedRules) {
  // The paper's Fig. 5 claim: tailored generators produce high-fidelity
  // samples but break mined rules; none of them has a compliance mechanism.
  const auto mined =
      rules::mine_rules(env().train, env().layout, env().dataset.limits)
          .rules.coarse_only();
  const auto gens = make_all_generators(env().train, env().dataset.limits);
  util::Rng rng(6);
  bool some_generator_violates = false;
  for (const auto& g : gens) {
    std::vector<Window> samples;
    for (int i = 0; i < 120; ++i) samples.push_back(g->sample(rng));
    const auto stats = rules::check_violations(mined, samples);
    if (stats.violating_windows > 0) some_generator_violates = true;
  }
  EXPECT_TRUE(some_generator_violates);
}

}  // namespace
}  // namespace lejit::baselines
