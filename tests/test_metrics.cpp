#include <gtest/gtest.h>

#include <cmath>

#include "metrics/bursts.hpp"
#include "metrics/stats.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace lejit::metrics {
namespace {

TEST(Emd, IdenticalSamplesGiveZero) {
  const std::vector<double> a{1, 2, 3, 4};
  EXPECT_NEAR(emd(a, a), 0.0, 1e-12);
}

TEST(Emd, TranslationEqualsShift) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b = a;
  for (double& v : b) v += 2.5;
  EXPECT_NEAR(emd(a, b), 2.5, 1e-12);
}

TEST(Emd, IsSymmetric) {
  const std::vector<double> a{0, 0, 1, 5};
  const std::vector<double> b{2, 2, 3};
  EXPECT_NEAR(emd(a, b), emd(b, a), 1e-12);
}

TEST(Emd, HandlesUnequalSizes) {
  // a = {0,0}, b = {0,0,3}: quantile functions differ on the top third.
  const std::vector<double> a{0, 0};
  const std::vector<double> b{0, 0, 3};
  EXPECT_NEAR(emd(a, b), 1.0, 1e-12);
}

TEST(Emd, TriangleInequalityOnRandomSamples) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b, c;
    for (int i = 0; i < 16; ++i) {
      a.push_back(rng.uniform(0, 100));
      b.push_back(rng.uniform(0, 100));
      c.push_back(rng.uniform(0, 100));
    }
    EXPECT_LE(emd(a, c), emd(a, b) + emd(b, c) + 1e-9);
  }
}

TEST(Emd, IntOverload) {
  const std::vector<std::int64_t> a{0, 10};
  const std::vector<std::int64_t> b{5, 15};
  EXPECT_NEAR(emd(a, b), 5.0, 1e-12);
}

TEST(Emd, RejectsEmpty) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(emd(a, {}), util::PreconditionError);
}

TEST(Histogram, NormalizesAndClamps) {
  const std::vector<std::int64_t> v{0, 5, 10, 100};
  const auto h = histogram(v, 0, 10, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_NEAR(h[0] + h[1], 1.0, 1e-12);
  // 0 → bin 0; 5 → bin 1; 10 and 100 clamp into the top bin.
  EXPECT_NEAR(h[0], 0.25, 1e-12);
  EXPECT_NEAR(h[1], 0.75, 1e-12);
}

TEST(Jsd, BoundsAndIdentity) {
  const std::vector<double> p{0.5, 0.5, 0.0};
  const std::vector<double> q{0.0, 0.0, 1.0};
  EXPECT_NEAR(jsd(p, p), 0.0, 1e-12);
  EXPECT_NEAR(jsd(p, q), 1.0, 1e-9);  // disjoint supports saturate at 1 bit
  EXPECT_NEAR(jsd(p, q), jsd(q, p), 1e-12);
}

TEST(Jsd, SamplesOverloadDiscriminates) {
  util::Rng rng(4);
  std::vector<std::int64_t> a, b, c;
  for (int i = 0; i < 4000; ++i) {
    a.push_back(rng.uniform_int(0, 50));
    b.push_back(rng.uniform_int(0, 50));
    c.push_back(rng.uniform_int(40, 90));
  }
  EXPECT_LT(jsd_samples(a, b), 0.05) << "same distribution, small JSD";
  EXPECT_GT(jsd_samples(a, c), 0.3) << "shifted distribution, large JSD";
}

TEST(Quantile, NearestRank) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_EQ(quantile(v, 0.0), 10);
  EXPECT_EQ(quantile(v, 0.5), 30);
  EXPECT_EQ(quantile(v, 1.0), 50);
  EXPECT_EQ(quantile(v, 0.99), 50);
}

TEST(Autocorrelation, ConstantSeriesIsZeroByConvention) {
  const std::vector<double> v{5, 5, 5, 5};
  EXPECT_EQ(autocorrelation(v, 1), 0.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLagOne) {
  const std::vector<double> v{1, -1, 1, -1, 1, -1, 1, -1};
  EXPECT_LT(autocorrelation(v, 1), -0.7);
  EXPECT_GT(autocorrelation(v, 2), 0.6);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> v{1, 3, 2, 5, 4};
  EXPECT_NEAR(autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(PairedErrors, MaeAndRmse) {
  const std::vector<double> t{0, 0, 0, 0};
  const std::vector<double> p{1, -1, 3, -3};
  EXPECT_NEAR(mae(t, p), 2.0, 1e-12);
  EXPECT_NEAR(rmse(t, p), std::sqrt(5.0), 1e-12);
  EXPECT_THROW(mae(t, {}), util::PreconditionError);
}

TEST(Bursts, ExtractsMaximalRuns) {
  const std::vector<std::int64_t> s{10, 50, 60, 10, 70, 10};
  const auto bursts = extract_bursts(s, 48);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].start, 1);
  EXPECT_EQ(bursts[0].duration, 2);
  EXPECT_EQ(bursts[0].height, 60);
  EXPECT_EQ(bursts[1].start, 4);
  EXPECT_EQ(bursts[1].duration, 1);
  EXPECT_EQ(bursts[1].height, 70);
}

TEST(Bursts, RunTouchingTheEndIsClosed) {
  const std::vector<std::int64_t> s{10, 50, 60};
  const auto bursts = extract_bursts(s, 48);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].duration, 2);
}

TEST(Bursts, NoBurstsBelowThreshold) {
  const std::vector<std::int64_t> s{1, 2, 3};
  EXPECT_TRUE(extract_bursts(s, 48).empty());
}

TEST(BurstErrors, PerfectAgreementIsZero) {
  const std::vector<std::int64_t> s{10, 50, 60, 10, 70};
  const auto e = burst_errors(s, s, 48, 5);
  EXPECT_EQ(e.count, 0);
  EXPECT_EQ(e.height, 0);
  EXPECT_EQ(e.duration, 0);
  EXPECT_EQ(e.position, 0);
}

TEST(BurstErrors, MissedBurstIsPenalized) {
  const std::vector<std::int64_t> truth{10, 90, 10, 10, 10};
  const std::vector<std::int64_t> pred{10, 10, 10, 10, 10};
  const auto e = burst_errors(truth, pred, 48, 5);
  EXPECT_EQ(e.count, 1);
  EXPECT_GT(e.height, 0);
  EXPECT_GT(e.position, 0);
}

TEST(BurstErrors, ShiftedBurstMeasuresPosition) {
  const std::vector<std::int64_t> truth{90, 10, 10, 10, 10};
  const std::vector<std::int64_t> pred{10, 10, 10, 90, 10};
  const auto e = burst_errors(truth, pred, 48, 5);
  EXPECT_EQ(e.count, 0);
  EXPECT_EQ(e.position, 3);
  EXPECT_EQ(e.height, 0);
}

TEST(BurstErrors, MeanAcrossSeries) {
  const std::vector<std::vector<std::int64_t>> truths{{90, 10}, {10, 10}};
  const std::vector<std::vector<std::int64_t>> preds{{90, 10}, {90, 10}};
  const auto e = mean_burst_errors(truths, preds, 48);
  EXPECT_NEAR(e.count, 0.5, 1e-12);
}

// --- obs::Histogram::percentile edge behavior --------------------------------
// Regression coverage for the percentile fix: the old interpolation assumed
// the selected bucket was an interior, non-empty one, so p = 0.0 (target
// mass 0) selected the histogram's first bucket even when it was empty and
// reported its lower edge — a value the histogram never observed.

class HistogramPercentileEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::metrics_enabled();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override { obs::set_metrics_enabled(prev_); }

 private:
  bool prev_ = false;
};

TEST_F(HistogramPercentileEdge, EmptyHistogramIsZeroEverywhere) {
  const obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST_F(HistogramPercentileEdge, PZeroSkipsLeadingEmptyBuckets) {
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  for (int i = 0; i < 5; ++i) h.observe(7.3);  // all mass in [7, 8)
  // p = 0 must land at the first *non-empty* bucket's lower edge, not 0.0.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
}

TEST_F(HistogramPercentileEdge, POneStaysWithinObservedRange) {
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  for (int i = 0; i < 5; ++i) h.observe(7.3);
  // p = 1 interpolates to the bucket's upper edge but is clamped to the
  // observed max — never inventing mass above what was recorded.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.3);
}

TEST_F(HistogramPercentileEdge, SingleBucketMassBracketsAllPercentiles) {
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  for (int i = 0; i < 1000; ++i) h.observe(3.5);
  for (const double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(p), 3.0) << "p=" << p;
    EXPECT_LE(h.percentile(p), 3.5) << "p=" << p;
  }
}

TEST_F(HistogramPercentileEdge, OverflowOnlyMassReportsObservedMax) {
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 1.0, 2));
  h.observe(500.0);
  // Every percentile of a distribution living in the overflow bucket is the
  // observed max — including p = 0, which used to report bucket edge 0.0.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 500.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 500.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 500.0);
}

TEST_F(HistogramPercentileEdge, ClampsOutOfRangeP) {
  obs::Histogram h(obs::HistogramOptions::linear(0.0, 10.0, 10));
  h.observe(4.5);
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

}  // namespace
}  // namespace lejit::metrics
