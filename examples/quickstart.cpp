// Quickstart: the paper's Fig. 1 worked example, end to end.
//
// A datacenter operator wants millisecond-level ingress readings I0..I4 but
// only has coarse counters. Three rules constrain any valid answer:
//   R1: 0 <= I_t <= BW                 (per-slot bandwidth bound)
//   R2: sum_t I_t == TotalIngress      (exact accounting)
//   R3: Congestion > 0 => max_t I_t >= BW/2   (ECN marks imply a burst)
//
// Part 1 queries the SMT layer directly to show why step-by-step guidance is
// subtle: after I0..I2 = 20,15,25 the feasible set for I3 is {0..10} ∪
// {30..40} — non-convex, so naive interval clipping is not enough.
// Part 2 runs the full LeJIT pipeline: a char-level LM trained on synthetic
// telemetry, guided token by token, producing a rule-compliant window.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "smt/solver.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

using namespace lejit;

namespace {

void part1_solver_view() {
  std::cout << "--- Part 1: the solver's view of Fig. 1 ---\n";
  constexpr smt::Int kBw = 60, kTotal = 100, kCongestion = 8, kWindow = 5;

  smt::Solver solver;
  std::vector<smt::VarId> ingress;
  for (int t = 0; t < kWindow; ++t)
    ingress.push_back(solver.add_var("I" + std::to_string(t), 0, kBw));  // R1

  smt::LinExpr sum;
  for (const auto v : ingress) sum += smt::LinExpr(v);
  solver.add(smt::eq(sum, smt::LinExpr(kTotal)));  // R2
  solver.add(smt::implies(smt::gt(smt::LinExpr(kCongestion), smt::LinExpr(0)),
                          smt::max_ge(ingress, smt::LinExpr(kBw / 2))));  // R3

  // The LM has already emitted I0=20, I1=15, I2=25 (all valid so far).
  solver.push();
  solver.add(smt::eq(smt::LinExpr(ingress[0]), smt::LinExpr(20)));
  solver.add(smt::eq(smt::LinExpr(ingress[1]), smt::LinExpr(15)));
  solver.add(smt::eq(smt::LinExpr(ingress[2]), smt::LinExpr(25)));

  const smt::Interval hull = solver.feasible_interval(ingress[3]);
  std::cout << "feasible hull for I3: [" << hull.lo << ", " << hull.hi << "]\n";
  std::cout << "but the set has a hole — per-value feasibility:\n  ";
  for (const smt::Int v : {0, 5, 10, 11, 20, 29, 30, 39, 40, 41}) {
    const smt::Formula pin = smt::eq(smt::LinExpr(ingress[3]), smt::LinExpr(v));
    const bool ok =
        solver.check_assuming(std::span(&pin, 1)) == smt::CheckResult::kSat;
    std::cout << "I3=" << v << (ok ? " ok" : " X") << "  ";
  }
  std::cout << "\n";

  // The paper's choice I3 = 39 forces the final value (Fig. 1b, step 5).
  solver.add(smt::eq(smt::LinExpr(ingress[3]), smt::LinExpr(39)));
  const smt::Interval last = solver.feasible_interval(ingress[4]);
  std::cout << "after I3=39, I4 is forced: [" << last.lo << ", " << last.hi
            << "]\n\n";
  solver.pop();
}

std::string bench_fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void part2_lejit_pipeline() {
  std::cout << "--- Part 2: LeJIT end to end ---\n";
  // Synthetic fleet (the repo's substitute for the Meta rack dataset).
  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 12, .windows_per_rack = 60});
  const auto split = telemetry::split_by_rack(dataset, 2, 1);
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto train = telemetry::all_windows(split.train);

  // A char-level LM trained on the training racks' row text.
  lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  lm::NgramModel model(tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
  for (const auto& w : train)
    model.observe(tokenizer.encode(telemetry::window_to_row(w)));

  // Mine rules from the training racks (NetNomos-style).
  const auto mined =
      rules::mine_rules(train, layout, dataset.limits).rules;
  std::cout << "mined " << mined.size() << " rules from "
            << train.size() << " training windows\n";

  // LeJIT: the solver joins the LM's decoding loop.
  core::GuidedDecoder lejit(model, tokenizer, layout, mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(7);
  const telemetry::Window& truth = split.test.racks[0].windows[3];
  const auto result = lejit.generate(rng, telemetry::imputation_prompt(truth));

  std::cout << "prompt      : " << telemetry::imputation_prompt(truth) << "\n";
  std::cout << "LeJIT output: " << result.text << "\n";
  std::cout << "ground truth: ";
  for (const auto v : truth.fine) std::cout << v << " ";
  std::cout << "\nviolations  : "
            << rules::violated_rules(mined, *result.window).size() << " of "
            << mined.size() << " rules\n";
  std::cout << "solver calls: " << result.stats.solver_checks
            << ", LM calls: " << result.stats.lm_calls
            << ", mask removed " << bench_fmt(result.stats.mean_removed_mass())
            << " of probability mass per step\n";
}

}  // namespace

int main() {
  part1_solver_view();
  part2_lejit_pipeline();
  return 0;
}
