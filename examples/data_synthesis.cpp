// Synthetic network data generation (paper §4.2).
//
// The same trained LM used for imputation is repurposed — without any
// retraining — into an unconditional generator of coarse telemetry rows by
// swapping in the coarse-only rule set. This is the paper's headline side
// benefit: "a single LLM to rule them all".
//
// Build & run:  cmake --build build && ./build/examples/data_synthesis
#include <iostream>

#include "baselines/generators.hpp"
#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "metrics/stats.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

using namespace lejit;

int main() {
  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 20, .windows_per_rack = 80});
  const auto split = telemetry::split_by_rack(dataset, 3, 5);
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto train = telemetry::all_windows(split.train);
  const auto test = telemetry::all_windows(split.test);

  lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  lm::NgramModel model(tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
  for (const auto& w : train)
    model.observe(tokenizer.encode(telemetry::window_to_row(w)));

  // Task swap: coarse-only rules instead of the imputation rule set.
  const auto mined = rules::mine_rules(train, layout, dataset.limits).rules;
  const auto coarse_rules = mined.coarse_only();
  std::cout << "synthesis rule set: " << coarse_rules.size()
            << " coarse rules (of " << mined.size() << " mined)\n\n";

  std::vector<std::int64_t> reference;
  for (const auto& w : test) reference.push_back(w.total);

  constexpr int kSamples = 250;
  util::Rng rng(3);

  const auto evaluate = [&](const std::string& name, auto&& sample) {
    std::vector<telemetry::Window> out;
    for (int i = 0; i < kSamples; ++i) {
      auto w = sample();
      if (w) out.push_back(std::move(*w));
    }
    std::vector<std::int64_t> totals;
    for (const auto& w : out) totals.push_back(w.total);
    const auto stats = rules::check_violations(coarse_rules, out);
    std::cout << name << ": " << out.size() << " samples, JSD(total) "
              << metrics::jsd_samples(reference, totals) << ", violating "
              << stats.violating_windows << "\n";
  };

  {
    core::GuidedDecoder vanilla(model, tokenizer, layout, rules::RuleSet{},
                                core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    evaluate("vanilla LM     ", [&]() -> std::optional<telemetry::Window> {
      const auto r = vanilla.generate(rng);
      return r.ok ? r.window : std::nullopt;
    });
  }
  {
    core::GuidedDecoder lejit(model, tokenizer, layout, coarse_rules,
                              core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    evaluate("LeJIT          ", [&]() -> std::optional<telemetry::Window> {
      const auto r = lejit.generate(rng);
      return r.ok ? r.window : std::nullopt;
    });
  }
  // Compare against the task-specific generator substitutes.
  for (auto& gen : baselines::make_all_generators(train, dataset.limits)) {
    evaluate(gen->name() + std::string(15 - std::min<std::size_t>(15, gen->name().size()), ' '),
             [&]() -> std::optional<telemetry::Window> {
               return gen->sample(rng);
             });
  }

  std::cout << "\nLeJIT is the only generator with zero rule violations while"
               " keeping fidelity close to the task-specific baselines.\n";
  return 0;
}
