// Telemetry imputation (paper §4.1), end to end on a held-out rack.
//
// Workflow:
//   1. generate the synthetic fleet, split by rack;
//   2. train a char-level LM on the training racks' row text;
//   3. mine network rules from the same racks (NetNomos-style);
//   4. for each test window, feed the coarse counters to LeJIT as a prompt
//      and let the solver-guided LM impute the fine-grained ingress series;
//   5. compare against the unguided LM and report accuracy + compliance.
//
// Build & run:  cmake --build build && ./build/examples/telemetry_imputation
#include <cmath>
#include <iostream>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "metrics/bursts.hpp"
#include "metrics/stats.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

using namespace lejit;

int main() {
  // 1. Fleet.
  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 20, .windows_per_rack = 80});
  const auto split = telemetry::split_by_rack(dataset, 3, 99);
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto train = telemetry::all_windows(split.train);
  const auto test = telemetry::all_windows(split.test);
  std::cout << "fleet: " << dataset.racks.size() << " racks, "
            << train.size() << " train / " << test.size()
            << " test windows\n";

  // 2. LM.
  lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  lm::NgramModel model(tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
  for (const auto& w : train)
    model.observe(tokenizer.encode(telemetry::window_to_row(w)));

  // 3. Rules.
  const auto report = rules::mine_rules(train, layout, dataset.limits);
  std::cout << "mined " << report.rules.size() << " rules (" << report.bounds
            << " bounds, " << report.sums << " accounting, "
            << report.implications << " implications, " << report.pairwise
            << " pairwise; " << report.dropped_by_validation
            << " dropped by validation)\n\n";

  // 4./5. Impute with and without guidance.
  struct Run {
    const char* name;
    core::GuidanceMode mode;
    const rules::RuleSet* rules;
  };
  const rules::RuleSet none;
  const Run runs[] = {
      {"unguided LM", core::GuidanceMode::kSyntax, &none},
      {"LeJIT", core::GuidanceMode::kFull, &report.rules},
  };

  for (const Run& run : runs) {
    core::GuidedDecoder decoder(model, tokenizer, layout, *run.rules,
                                core::DecoderConfig{.mode = run.mode});
    util::Rng rng(11);

    double abs_err = 0;
    std::size_t values = 0, violating = 0, produced = 0, infeasible = 0;
    metrics::BurstErrors bursts;
    constexpr std::size_t kSamples = 80;
    for (std::size_t i = 0; i < kSamples && i < test.size(); ++i) {
      const telemetry::Window& truth = test[i];
      const auto r =
          decoder.generate(rng, telemetry::imputation_prompt(truth));
      if (r.infeasible_prompt) {
        ++infeasible;
        continue;
      }
      if (!r.ok) continue;
      ++produced;
      if (!rules::violated_rules(report.rules, *r.window).empty())
        ++violating;
      for (std::size_t t = 0; t < truth.fine.size(); ++t) {
        abs_err += std::abs(static_cast<double>(truth.fine[t]) -
                            static_cast<double>(r.window->fine[t]));
        ++values;
      }
      const auto be =
          metrics::burst_errors(truth.fine, r.window->fine,
                                dataset.limits.burst_threshold(),
                                dataset.limits.window);
      bursts.count += be.count;
      bursts.height += be.height;
    }
    std::cout << run.name << ": " << produced << " imputations, "
              << violating << " violating, " << infeasible
              << " infeasible prompts\n"
              << "  MAE " << abs_err / static_cast<double>(values)
              << ", burst-count err "
              << bursts.count / static_cast<double>(produced)
              << ", burst-height err "
              << bursts.height / static_cast<double>(produced) << "\n";
  }
  std::cout << "\nLeJIT enforces every mined rule; the unguided LM does not."
            << "\n";
  return 0;
}
