// Train the paper-faithful model: a GPT-2-style transformer from scratch
// (§4: "we train GPT-2 from scratch on the datacenter dataset and adopt
// character-level tokenization"), then guide it with LeJIT.
//
// The full manual-backprop training loop runs in-process — no external ML
// framework. On a laptop core this takes about a minute at the default step
// count; pass a step count as argv[1] to train longer/shorter. The trained
// checkpoint is saved next to the binary and can be reloaded with
// lm::Transformer::load().
//
// Build & run:  cmake --build build && ./build/examples/train_transformer [steps]
#include <cstdlib>
#include <iostream>

#include "core/decoder.hpp"
#include "lm/trainer.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

using namespace lejit;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 300;

  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 24, .windows_per_rack = 80});
  const auto split = telemetry::split_by_rack(dataset, 4, 17);
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto train = telemetry::all_windows(split.train);
  const auto test = telemetry::all_windows(split.test);

  lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  std::vector<std::vector<int>> rows;
  for (const auto& w : train)
    rows.push_back(tokenizer.encode(telemetry::window_to_row(w)));

  util::Rng init_rng(1);
  lm::Transformer model(
      lm::TransformerConfig{.vocab_size = tokenizer.vocab_size(),
                            .d_model = 64,
                            .n_layers = 2,
                            .n_heads = 4,
                            .d_ff = 128,
                            .max_seq = 64},
      init_rng);
  std::cout << "nano-GPT: " << model.num_parameters() << " parameters, "
            << steps << " training steps on " << rows.size() << " rows\n";

  util::Rng train_rng(2);
  util::Timer timer;
  lm::train_lm(model, rows,
               lm::TrainConfig{.steps = steps,
                               .batch_size = 16,
                               .adam = lm::AdamConfig{.lr = 2e-3f},
                               .warmup_steps = 20,
                               .log_every = 50},
               train_rng, [](int step, float loss) {
                 std::cout << "  step " << step << "  loss " << loss << "\n";
               });
  std::cout << "trained in " << timer.elapsed_seconds() << "s\n";

  const std::string checkpoint = "lejit_nano_gpt.bin";
  model.save(checkpoint);
  std::cout << "checkpoint saved to " << checkpoint << "\n\n";

  // Guide the freshly trained model with mined rules.
  const auto mined = rules::mine_rules(train, layout, dataset.limits).rules;
  core::GuidedDecoder vanilla(model, tokenizer, layout, rules::RuleSet{},
                              core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
  core::GuidedDecoder lejit(model, tokenizer, layout, mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});

  util::Rng rng(3);
  int vanilla_viol = 0, lejit_viol = 0, n = 0;
  for (int i = 0; i < 40 && i < static_cast<int>(test.size()); ++i) {
    const auto prompt = telemetry::imputation_prompt(test[static_cast<std::size_t>(i)]);
    const auto rv = vanilla.generate(rng, prompt);
    const auto rl = lejit.generate(rng, prompt);
    if (!rv.ok || rl.infeasible_prompt || !rl.ok) continue;
    ++n;
    if (!rules::violated_rules(mined, *rv.window).empty()) ++vanilla_viol;
    if (!rules::violated_rules(mined, *rl.window).empty()) ++lejit_viol;
  }
  std::cout << "imputation on " << n << " held-out windows (" << mined.size()
            << " mined rules):\n"
            << "  vanilla nano-GPT violates " << vanilla_viol << "\n"
            << "  LeJIT-guided nano-GPT violates " << lejit_viol << "\n";
  return 0;
}
