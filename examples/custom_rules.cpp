// Custom rules: repurposing one model with operator-written logic.
//
// The paper's §5 vision is a single foundation model specialized per task by
// swapping "JIT logic plug-ins". This example writes three rule sets by hand
// — no mining — and drives the *same* trained LM through each, producing
// three different generators:
//   1. quiet-hours traffic   (no bursts, low utilization)
//   2. incident replay       (every window congested, heavy retransmits)
//   3. balanced egress audit (egress within ±10% of 80% of ingress)
//
// Build & run:  cmake --build build && ./build/examples/custom_rules
#include <iostream>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "rules/checker.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"

using namespace lejit;
using smt::LinExpr;

namespace {

rules::Rule make_rule(std::string description, smt::Formula f,
                      bool uses_fine) {
  return rules::Rule{.description = std::move(description),
                     .kind = rules::RuleKind::kManual,
                     .formula = std::move(f),
                     .uses_fine = uses_fine};
}

}  // namespace

int main() {
  const auto dataset = telemetry::generate_dataset(
      telemetry::GeneratorConfig{.num_racks = 16, .windows_per_rack = 70});
  const auto layout = telemetry::telemetry_row_layout(dataset.limits);
  const auto train = telemetry::all_windows(dataset);

  lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  lm::NgramModel model(tokenizer.vocab_size(), lm::NgramConfig{.order = 6});
  for (const auto& w : train)
    model.observe(tokenizer.encode(telemetry::window_to_row(w)));

  // Field handles in the canonical layout order.
  const smt::VarId total{rules::field_index(layout, "total")};
  const smt::VarId ecn{rules::field_index(layout, "ecn")};
  const smt::VarId rtx{rules::field_index(layout, "rtx")};
  const smt::VarId egress{rules::field_index(layout, "egress")};
  std::vector<smt::VarId> fine;
  for (int i = 0; i < layout.num_fields(); ++i)
    if (layout.fields[static_cast<std::size_t>(i)].is_fine)
      fine.push_back(smt::VarId{i});

  const smt::Int bw = dataset.limits.bandwidth;

  // --- three operator-authored rule sets ---------------------------------------
  rules::RuleSet quiet;
  quiet.rules.push_back(make_rule(
      "no bursts: max_t I_t < BW/2", smt::max_le(fine, LinExpr(bw / 2 - 1)),
      true));
  quiet.rules.push_back(
      make_rule("no congestion marks", smt::eq(LinExpr(ecn), LinExpr(0)), false));
  quiet.rules.push_back(make_rule(
      "utilization under 40%",
      smt::le(LinExpr(total), LinExpr(dataset.limits.total_max() * 2 / 5)),
      false));
  {
    LinExpr sum;
    for (const auto v : fine) sum += LinExpr(v);
    quiet.rules.push_back(
        make_rule("accounting", smt::eq(sum, LinExpr(total)), true));
  }

  rules::RuleSet incident;
  incident.rules.push_back(
      make_rule("congestion present", smt::ge(LinExpr(ecn), LinExpr(10)), false));
  incident.rules.push_back(
      make_rule("retransmits present", smt::ge(LinExpr(rtx), LinExpr(5)), false));
  incident.rules.push_back(make_rule(
      "saturating burst", smt::max_ge(fine, LinExpr(bw * 9 / 10)), true));
  {
    LinExpr sum;
    for (const auto v : fine) sum += LinExpr(v);
    incident.rules.push_back(
        make_rule("accounting", smt::eq(sum, LinExpr(total)), true));
  }

  rules::RuleSet audit;
  // 10*egress within [7.2*total, 8.8*total]  ⇔  egress ≈ 80% ± 10% of total.
  audit.rules.push_back(make_rule(
      "egress near 80% of ingress",
      smt::land(smt::ge(10 * LinExpr(egress), 7 * LinExpr(total)),
                smt::le(10 * LinExpr(egress), 9 * LinExpr(total))),
      false));
  audit.rules.push_back(make_rule(
      "meaningful volume", smt::ge(LinExpr(total), LinExpr(50)), false));

  struct Task {
    const char* name;
    const rules::RuleSet* set;
  };
  for (const Task task : {Task{"quiet-hours", &quiet},
                          Task{"incident-replay", &incident},
                          Task{"egress-audit", &audit}}) {
    core::GuidedDecoder decoder(model, tokenizer, layout, *task.set,
                                core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(42);
    std::cout << "--- " << task.name << " (" << task.set->size()
              << " rules) ---\n";
    int compliant = 0;
    for (int i = 0; i < 4; ++i) {
      const auto r = decoder.generate(rng);
      std::cout << "  " << r.text << "\n";
      if (r.ok && rules::violated_rules(*task.set, *r.window).empty())
        ++compliant;
    }
    std::cout << "  compliant: " << compliant << "/4\n\n";
  }

  std::cout << "One model, three behaviours — selected purely by logic.\n";
  return 0;
}
