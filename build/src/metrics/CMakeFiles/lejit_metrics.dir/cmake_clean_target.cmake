file(REMOVE_RECURSE
  "liblejit_metrics.a"
)
