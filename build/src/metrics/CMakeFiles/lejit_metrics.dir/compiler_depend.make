# Empty compiler generated dependencies file for lejit_metrics.
# This may be replaced when dependencies are built.
