file(REMOVE_RECURSE
  "CMakeFiles/lejit_metrics.dir/bursts.cpp.o"
  "CMakeFiles/lejit_metrics.dir/bursts.cpp.o.d"
  "CMakeFiles/lejit_metrics.dir/stats.cpp.o"
  "CMakeFiles/lejit_metrics.dir/stats.cpp.o.d"
  "liblejit_metrics.a"
  "liblejit_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
