
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/bursts.cpp" "src/metrics/CMakeFiles/lejit_metrics.dir/bursts.cpp.o" "gcc" "src/metrics/CMakeFiles/lejit_metrics.dir/bursts.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/lejit_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/lejit_metrics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
