
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/ngram.cpp" "src/lm/CMakeFiles/lejit_lm.dir/ngram.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/ngram.cpp.o.d"
  "/root/repo/src/lm/sampler.cpp" "src/lm/CMakeFiles/lejit_lm.dir/sampler.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/sampler.cpp.o.d"
  "/root/repo/src/lm/tensor.cpp" "src/lm/CMakeFiles/lejit_lm.dir/tensor.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/tensor.cpp.o.d"
  "/root/repo/src/lm/tokenizer.cpp" "src/lm/CMakeFiles/lejit_lm.dir/tokenizer.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/tokenizer.cpp.o.d"
  "/root/repo/src/lm/trainer.cpp" "src/lm/CMakeFiles/lejit_lm.dir/trainer.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/trainer.cpp.o.d"
  "/root/repo/src/lm/transformer.cpp" "src/lm/CMakeFiles/lejit_lm.dir/transformer.cpp.o" "gcc" "src/lm/CMakeFiles/lejit_lm.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
