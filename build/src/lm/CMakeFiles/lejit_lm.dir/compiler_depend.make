# Empty compiler generated dependencies file for lejit_lm.
# This may be replaced when dependencies are built.
