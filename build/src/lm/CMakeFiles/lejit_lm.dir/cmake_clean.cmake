file(REMOVE_RECURSE
  "CMakeFiles/lejit_lm.dir/ngram.cpp.o"
  "CMakeFiles/lejit_lm.dir/ngram.cpp.o.d"
  "CMakeFiles/lejit_lm.dir/sampler.cpp.o"
  "CMakeFiles/lejit_lm.dir/sampler.cpp.o.d"
  "CMakeFiles/lejit_lm.dir/tensor.cpp.o"
  "CMakeFiles/lejit_lm.dir/tensor.cpp.o.d"
  "CMakeFiles/lejit_lm.dir/tokenizer.cpp.o"
  "CMakeFiles/lejit_lm.dir/tokenizer.cpp.o.d"
  "CMakeFiles/lejit_lm.dir/trainer.cpp.o"
  "CMakeFiles/lejit_lm.dir/trainer.cpp.o.d"
  "CMakeFiles/lejit_lm.dir/transformer.cpp.o"
  "CMakeFiles/lejit_lm.dir/transformer.cpp.o.d"
  "liblejit_lm.a"
  "liblejit_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
