file(REMOVE_RECURSE
  "liblejit_lm.a"
)
