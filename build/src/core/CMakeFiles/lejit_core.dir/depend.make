# Empty dependencies file for lejit_core.
# This may be replaced when dependencies are built.
