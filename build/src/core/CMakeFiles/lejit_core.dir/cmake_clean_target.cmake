file(REMOVE_RECURSE
  "liblejit_core.a"
)
