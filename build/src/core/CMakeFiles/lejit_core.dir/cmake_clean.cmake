file(REMOVE_RECURSE
  "CMakeFiles/lejit_core.dir/batch.cpp.o"
  "CMakeFiles/lejit_core.dir/batch.cpp.o.d"
  "CMakeFiles/lejit_core.dir/decoder.cpp.o"
  "CMakeFiles/lejit_core.dir/decoder.cpp.o.d"
  "CMakeFiles/lejit_core.dir/transition.cpp.o"
  "CMakeFiles/lejit_core.dir/transition.cpp.o.d"
  "liblejit_core.a"
  "liblejit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
