# Empty dependencies file for lejit_smt.
# This may be replaced when dependencies are built.
