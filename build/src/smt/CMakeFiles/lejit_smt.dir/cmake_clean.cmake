file(REMOVE_RECURSE
  "CMakeFiles/lejit_smt.dir/formula.cpp.o"
  "CMakeFiles/lejit_smt.dir/formula.cpp.o.d"
  "CMakeFiles/lejit_smt.dir/linexpr.cpp.o"
  "CMakeFiles/lejit_smt.dir/linexpr.cpp.o.d"
  "CMakeFiles/lejit_smt.dir/solver.cpp.o"
  "CMakeFiles/lejit_smt.dir/solver.cpp.o.d"
  "liblejit_smt.a"
  "liblejit_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
