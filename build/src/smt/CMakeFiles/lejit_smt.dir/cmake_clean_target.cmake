file(REMOVE_RECURSE
  "liblejit_smt.a"
)
