# Empty compiler generated dependencies file for lejit_smt.
# This may be replaced when dependencies are built.
