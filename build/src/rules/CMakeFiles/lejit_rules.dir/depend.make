# Empty dependencies file for lejit_rules.
# This may be replaced when dependencies are built.
