file(REMOVE_RECURSE
  "liblejit_rules.a"
)
