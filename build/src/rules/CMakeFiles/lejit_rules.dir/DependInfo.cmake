
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/checker.cpp" "src/rules/CMakeFiles/lejit_rules.dir/checker.cpp.o" "gcc" "src/rules/CMakeFiles/lejit_rules.dir/checker.cpp.o.d"
  "/root/repo/src/rules/miner.cpp" "src/rules/CMakeFiles/lejit_rules.dir/miner.cpp.o" "gcc" "src/rules/CMakeFiles/lejit_rules.dir/miner.cpp.o.d"
  "/root/repo/src/rules/parser.cpp" "src/rules/CMakeFiles/lejit_rules.dir/parser.cpp.o" "gcc" "src/rules/CMakeFiles/lejit_rules.dir/parser.cpp.o.d"
  "/root/repo/src/rules/rule.cpp" "src/rules/CMakeFiles/lejit_rules.dir/rule.cpp.o" "gcc" "src/rules/CMakeFiles/lejit_rules.dir/rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lejit_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/lejit_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
