file(REMOVE_RECURSE
  "CMakeFiles/lejit_rules.dir/checker.cpp.o"
  "CMakeFiles/lejit_rules.dir/checker.cpp.o.d"
  "CMakeFiles/lejit_rules.dir/miner.cpp.o"
  "CMakeFiles/lejit_rules.dir/miner.cpp.o.d"
  "CMakeFiles/lejit_rules.dir/parser.cpp.o"
  "CMakeFiles/lejit_rules.dir/parser.cpp.o.d"
  "CMakeFiles/lejit_rules.dir/rule.cpp.o"
  "CMakeFiles/lejit_rules.dir/rule.cpp.o.d"
  "liblejit_rules.a"
  "liblejit_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
