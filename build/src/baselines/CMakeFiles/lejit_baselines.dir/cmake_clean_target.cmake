file(REMOVE_RECURSE
  "liblejit_baselines.a"
)
