file(REMOVE_RECURSE
  "CMakeFiles/lejit_baselines.dir/generators.cpp.o"
  "CMakeFiles/lejit_baselines.dir/generators.cpp.o.d"
  "CMakeFiles/lejit_baselines.dir/linalg.cpp.o"
  "CMakeFiles/lejit_baselines.dir/linalg.cpp.o.d"
  "CMakeFiles/lejit_baselines.dir/posthoc.cpp.o"
  "CMakeFiles/lejit_baselines.dir/posthoc.cpp.o.d"
  "CMakeFiles/lejit_baselines.dir/rejection.cpp.o"
  "CMakeFiles/lejit_baselines.dir/rejection.cpp.o.d"
  "CMakeFiles/lejit_baselines.dir/zoom2net.cpp.o"
  "CMakeFiles/lejit_baselines.dir/zoom2net.cpp.o.d"
  "liblejit_baselines.a"
  "liblejit_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
