# Empty dependencies file for lejit_baselines.
# This may be replaced when dependencies are built.
