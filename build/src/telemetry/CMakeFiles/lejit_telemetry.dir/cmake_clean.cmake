file(REMOVE_RECURSE
  "CMakeFiles/lejit_telemetry.dir/generator.cpp.o"
  "CMakeFiles/lejit_telemetry.dir/generator.cpp.o.d"
  "CMakeFiles/lejit_telemetry.dir/schema.cpp.o"
  "CMakeFiles/lejit_telemetry.dir/schema.cpp.o.d"
  "CMakeFiles/lejit_telemetry.dir/text.cpp.o"
  "CMakeFiles/lejit_telemetry.dir/text.cpp.o.d"
  "liblejit_telemetry.a"
  "liblejit_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
