
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/generator.cpp" "src/telemetry/CMakeFiles/lejit_telemetry.dir/generator.cpp.o" "gcc" "src/telemetry/CMakeFiles/lejit_telemetry.dir/generator.cpp.o.d"
  "/root/repo/src/telemetry/schema.cpp" "src/telemetry/CMakeFiles/lejit_telemetry.dir/schema.cpp.o" "gcc" "src/telemetry/CMakeFiles/lejit_telemetry.dir/schema.cpp.o.d"
  "/root/repo/src/telemetry/text.cpp" "src/telemetry/CMakeFiles/lejit_telemetry.dir/text.cpp.o" "gcc" "src/telemetry/CMakeFiles/lejit_telemetry.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
