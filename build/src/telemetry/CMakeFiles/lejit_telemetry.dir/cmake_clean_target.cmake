file(REMOVE_RECURSE
  "liblejit_telemetry.a"
)
