# Empty dependencies file for lejit_telemetry.
# This may be replaced when dependencies are built.
