# Empty compiler generated dependencies file for lejit_util.
# This may be replaced when dependencies are built.
