file(REMOVE_RECURSE
  "liblejit_util.a"
)
