file(REMOVE_RECURSE
  "CMakeFiles/lejit_util.dir/rng.cpp.o"
  "CMakeFiles/lejit_util.dir/rng.cpp.o.d"
  "CMakeFiles/lejit_util.dir/strings.cpp.o"
  "CMakeFiles/lejit_util.dir/strings.cpp.o.d"
  "liblejit_util.a"
  "liblejit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
