
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/lejit_cli.cpp" "tools/CMakeFiles/lejit_cli.dir/lejit_cli.cpp.o" "gcc" "tools/CMakeFiles/lejit_cli.dir/lejit_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lejit_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/lejit_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/lejit_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/lejit_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lejit_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lejit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lejit_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
