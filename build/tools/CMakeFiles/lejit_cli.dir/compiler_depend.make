# Empty compiler generated dependencies file for lejit_cli.
# This may be replaced when dependencies are built.
