file(REMOVE_RECURSE
  "CMakeFiles/lejit_cli.dir/lejit_cli.cpp.o"
  "CMakeFiles/lejit_cli.dir/lejit_cli.cpp.o.d"
  "lejit_cli"
  "lejit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
