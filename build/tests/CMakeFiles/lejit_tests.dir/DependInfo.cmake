
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/lejit_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_core_batch.cpp" "tests/CMakeFiles/lejit_tests.dir/test_core_batch.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_core_batch.cpp.o.d"
  "/root/repo/tests/test_core_decoder.cpp" "tests/CMakeFiles/lejit_tests.dir/test_core_decoder.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_core_decoder.cpp.o.d"
  "/root/repo/tests/test_core_transition.cpp" "tests/CMakeFiles/lejit_tests.dir/test_core_transition.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_core_transition.cpp.o.d"
  "/root/repo/tests/test_fuzz_rules.cpp" "tests/CMakeFiles/lejit_tests.dir/test_fuzz_rules.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_fuzz_rules.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/lejit_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lm_models.cpp" "tests/CMakeFiles/lejit_tests.dir/test_lm_models.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_lm_models.cpp.o.d"
  "/root/repo/tests/test_lm_sampler.cpp" "tests/CMakeFiles/lejit_tests.dir/test_lm_sampler.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_lm_sampler.cpp.o.d"
  "/root/repo/tests/test_lm_tokenizer.cpp" "tests/CMakeFiles/lejit_tests.dir/test_lm_tokenizer.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_lm_tokenizer.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/lejit_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_rules.cpp" "tests/CMakeFiles/lejit_tests.dir/test_rules.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_rules.cpp.o.d"
  "/root/repo/tests/test_rules_parser.cpp" "tests/CMakeFiles/lejit_tests.dir/test_rules_parser.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_rules_parser.cpp.o.d"
  "/root/repo/tests/test_smt_formula.cpp" "tests/CMakeFiles/lejit_tests.dir/test_smt_formula.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_smt_formula.cpp.o.d"
  "/root/repo/tests/test_smt_linexpr.cpp" "tests/CMakeFiles/lejit_tests.dir/test_smt_linexpr.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_smt_linexpr.cpp.o.d"
  "/root/repo/tests/test_smt_solver.cpp" "tests/CMakeFiles/lejit_tests.dir/test_smt_solver.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_smt_solver.cpp.o.d"
  "/root/repo/tests/test_smt_stress.cpp" "tests/CMakeFiles/lejit_tests.dir/test_smt_stress.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_smt_stress.cpp.o.d"
  "/root/repo/tests/test_telemetry.cpp" "tests/CMakeFiles/lejit_tests.dir/test_telemetry.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_telemetry.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/lejit_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/lejit_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lejit_util.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lejit_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/lejit_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/lejit_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/lejit_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lejit_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lejit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lejit_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
