# Empty dependencies file for lejit_tests.
# This may be replaced when dependencies are built.
