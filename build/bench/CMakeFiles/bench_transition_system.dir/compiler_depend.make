# Empty compiler generated dependencies file for bench_transition_system.
# This may be replaced when dependencies are built.
