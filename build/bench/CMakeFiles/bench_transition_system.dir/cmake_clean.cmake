file(REMOVE_RECURSE
  "CMakeFiles/bench_transition_system.dir/bench_transition_system.cpp.o"
  "CMakeFiles/bench_transition_system.dir/bench_transition_system.cpp.o.d"
  "bench_transition_system"
  "bench_transition_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transition_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
