file(REMOVE_RECURSE
  "CMakeFiles/lejit_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/lejit_bench_harness.dir/harness.cpp.o.d"
  "liblejit_bench_harness.a"
  "liblejit_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lejit_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
