# Empty compiler generated dependencies file for lejit_bench_harness.
# This may be replaced when dependencies are built.
