file(REMOVE_RECURSE
  "liblejit_bench_harness.a"
)
