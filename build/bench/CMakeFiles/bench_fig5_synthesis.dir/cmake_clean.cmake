file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_synthesis.dir/bench_fig5_synthesis.cpp.o"
  "CMakeFiles/bench_fig5_synthesis.dir/bench_fig5_synthesis.cpp.o.d"
  "bench_fig5_synthesis"
  "bench_fig5_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
