# Empty dependencies file for bench_fig5_synthesis.
# This may be replaced when dependencies are built.
