file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_runtime.dir/bench_fig3_runtime.cpp.o"
  "CMakeFiles/bench_fig3_runtime.dir/bench_fig3_runtime.cpp.o.d"
  "bench_fig3_runtime"
  "bench_fig3_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
