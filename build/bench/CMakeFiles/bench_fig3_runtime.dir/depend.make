# Empty dependencies file for bench_fig3_runtime.
# This may be replaced when dependencies are built.
