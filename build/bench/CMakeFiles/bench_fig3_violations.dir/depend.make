# Empty dependencies file for bench_fig3_violations.
# This may be replaced when dependencies are built.
