file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_imputation.dir/bench_fig4_imputation.cpp.o"
  "CMakeFiles/bench_fig4_imputation.dir/bench_fig4_imputation.cpp.o.d"
  "bench_fig4_imputation"
  "bench_fig4_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
