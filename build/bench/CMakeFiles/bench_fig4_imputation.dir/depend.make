# Empty dependencies file for bench_fig4_imputation.
# This may be replaced when dependencies are built.
