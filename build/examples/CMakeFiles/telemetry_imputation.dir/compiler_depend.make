# Empty compiler generated dependencies file for telemetry_imputation.
# This may be replaced when dependencies are built.
