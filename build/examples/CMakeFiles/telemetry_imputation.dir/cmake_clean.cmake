file(REMOVE_RECURSE
  "CMakeFiles/telemetry_imputation.dir/telemetry_imputation.cpp.o"
  "CMakeFiles/telemetry_imputation.dir/telemetry_imputation.cpp.o.d"
  "telemetry_imputation"
  "telemetry_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
