file(REMOVE_RECURSE
  "CMakeFiles/custom_rules.dir/custom_rules.cpp.o"
  "CMakeFiles/custom_rules.dir/custom_rules.cpp.o.d"
  "custom_rules"
  "custom_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
