# Empty dependencies file for custom_rules.
# This may be replaced when dependencies are built.
