# Empty dependencies file for data_synthesis.
# This may be replaced when dependencies are built.
