file(REMOVE_RECURSE
  "CMakeFiles/data_synthesis.dir/data_synthesis.cpp.o"
  "CMakeFiles/data_synthesis.dir/data_synthesis.cpp.o.d"
  "data_synthesis"
  "data_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
