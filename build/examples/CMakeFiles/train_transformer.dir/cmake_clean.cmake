file(REMOVE_RECURSE
  "CMakeFiles/train_transformer.dir/train_transformer.cpp.o"
  "CMakeFiles/train_transformer.dir/train_transformer.cpp.o.d"
  "train_transformer"
  "train_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
