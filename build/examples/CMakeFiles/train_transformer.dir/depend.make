# Empty dependencies file for train_transformer.
# This may be replaced when dependencies are built.
