// Fig. 3 (left): rule-violation rates on the telemetry imputation task.
//
// Paper shape targets: Vanilla GPT-2 violates most (≈18% there), Zoom2Net
// and LeJIT-manual sit in the middle (manual rules only cover a sliver of
// the mined set), rejection sampling and LeJIT reach 0%.
//
// Setup notes (DESIGN.md §3/§4): violation rates are measured against the
// full mined rule set; evaluation windows whose *ground-truth* coarse values
// already violate mined rules are excluded up front (the paper's NetNomos
// rules hold on its test racks by construction; our slack-widened miner gets
// arbitrarily close — the residual is reported below the table).
#include <iostream>

#include "baselines/posthoc.hpp"
#include "baselines/rejection.hpp"
#include "baselines/zoom2net.hpp"
#include "harness.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

constexpr int kSamples = 120;

struct Eligible {
  std::vector<Window> windows;
  std::size_t excluded = 0;  // ground truth incompatible with mined rules
};

Eligible eligible_windows(const BenchEnv& env) {
  Eligible out;
  for (const Window& w : env.test) {
    if (rules::violated_rules(env.mined, w).empty()) {
      if (static_cast<int>(out.windows.size()) < kSamples)
        out.windows.push_back(w);
    } else {
      ++out.excluded;
    }
  }
  return out;
}

struct MethodResult {
  std::string name;
  rules::ViolationStats stats;
  int failures = 0;  // samples the method could not produce
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  lejit::bench::JsonReport report("fig3_violations", &argc, argv);
  const BenchEnv env = bench::make_env(bench::BenchEnvConfig{.use_transformer = true});
  const auto [windows, excluded] = eligible_windows(env);

  std::vector<MethodResult> results;
  const auto evaluate = [&](std::string name, auto&& impute_fn) {
    MethodResult r;
    r.name = std::move(name);
    std::vector<Window> outputs;
    util::Timer timer;
    for (const Window& truth : windows) {
      auto out = impute_fn(truth);
      if (out.has_value())
        outputs.push_back(std::move(*out));
      else
        ++r.failures;
    }
    r.seconds = timer.elapsed_seconds();
    r.stats = rules::check_violations(env.mined, outputs);
    results.push_back(std::move(r));
  };

  util::Rng rng(1);

  // Vanilla: free generation of the fine part (grammar only, no rules).
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    evaluate("Vanilla LM", [&](const Window& w) -> std::optional<Window> {
      const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
      if (!r.ok) return std::nullopt;
      return r.window;
    });
  }

  // Zoom2Net substitute (regressor + CEM over its 4 manual rules).
  {
    const baselines::Zoom2NetImputer imputer(env.train, env.dataset.limits);
    evaluate("Zoom2Net*", [&](const Window& w) -> std::optional<Window> {
      return imputer.impute(w);
    });
  }

  // LeJIT restricted to the 4 manual rules.
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout, env.manual,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    evaluate("LeJIT (manual rules)",
             [&](const Window& w) -> std::optional<Window> {
               const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
               if (!r.ok) return std::nullopt;
               return r.window;
             });
  }

  // Rejection sampling against the full mined set.
  {
    baselines::RejectionSampler sampler(env.lm(), env.tokenizer, env.layout,
                                        env.mined,
                                        baselines::RejectionConfig{.max_attempts = 400});
    evaluate("Rejection sampling",
             [&](const Window& w) -> std::optional<Window> {
               const auto r =
                   sampler.generate(rng, telemetry::imputation_prompt(w));
               if (!r.compliant) return std::nullopt;  // budget exhausted
               return r.decode.window;
             });
  }

  // Post-hoc SMT repair: free generation, then nearest-L1 projection onto
  // the rule-compliant set (§2.2's "enforce post-inference" paradigm).
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    const baselines::PostHocRepairer repairer(env.layout, env.mined);
    evaluate("Post-hoc SMT repair",
             [&](const Window& w) -> std::optional<Window> {
               const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
               if (!r.ok) return std::nullopt;
               const auto fixed = repairer.repair(*r.window, /*pin_coarse=*/true);
               if (!fixed.feasible) return std::nullopt;
               return fixed.window;
             });
  }

  // LeJIT with the full mined rule set.
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout, env.mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    evaluate("LeJIT (mined rules)",
             [&](const Window& w) -> std::optional<Window> {
               const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
               if (!r.ok) return std::nullopt;
               return r.window;
             });
  }

  bench::Table table(
      "Fig. 3 (left) — rule violations, telemetry imputation (" +
          std::to_string(windows.size()) + " samples, " +
          std::to_string(env.mined.size()) + " mined rules)",
      {"method", "violating samples", "violation rate", "(sample,rule) rate",
       "failed/skipped"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.stats.violating_windows),
                   bench::fmt_pct(r.stats.window_rate()),
                   bench::fmt_pct(r.stats.pair_rate(), 3),
                   std::to_string(r.failures)});
  }
  table.print();
  std::cout << "(excluded " << excluded << " of " << env.test.size()
            << " test windows whose ground truth violates mined rules; "
               "rejection 'failed' = attempt budget exhausted)\n";

  // Shape assertions for EXPERIMENTS.md (non-fatal, printed).
  const double vanilla = results[0].stats.window_rate();
  const double zoom = results[1].stats.window_rate();
  const double lejit_manual = results[2].stats.window_rate();
  const double rejection = results[3].stats.window_rate();
  const double posthoc = results[4].stats.window_rate();
  const double lejit = results[5].stats.window_rate();
  std::cout << "\nshape: vanilla(" << bench::fmt_pct(vanilla)
            << ") > zoom2net*(" << bench::fmt_pct(zoom) << ") ~ lejit-manual("
            << bench::fmt_pct(lejit_manual) << ") > rejection("
            << bench::fmt_pct(rejection) << ") = posthoc("
            << bench::fmt_pct(posthoc) << ") = lejit("
            << bench::fmt_pct(lejit) << ") = 0  -> "
            << ((vanilla > zoom && vanilla > lejit_manual &&
                 rejection == 0.0 && posthoc == 0.0 && lejit == 0.0)
                    ? "HOLDS"
                    : "CHECK")
            << "\n";
  report.add_env(env.config);
  report.write();
  return 0;
}
