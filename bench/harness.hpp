// Shared setup and table printing for the benchmark binaries.
//
// Every bench binary reproduces one figure of the paper (see DESIGN.md §4).
// They share the same experimental environment: a synthetic fleet split by
// rack, a char-level LM trained on the training racks' row text, and the
// mined + manual rule sets. The LM here is the n-gram model so each figure
// regenerates in seconds; examples/train_transformer.cpp demonstrates the
// paper-faithful transformer configuration end to end.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "lm/tokenizer.hpp"
#include "lm/transformer.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::bench {

struct BenchEnvConfig {
  int racks = 30;
  int windows_per_rack = 80;
  int test_racks = 5;
  std::uint64_t seed = 20250705;
  // Train (or load from `model_cache`) the nano-GPT on the training rows.
  bool use_transformer = false;
  int train_steps = 400;
  std::string model_cache = "lejit_bench_model";  // seed-suffixed .bin
};

struct BenchEnv {
  BenchEnvConfig config;
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  telemetry::RowLayout coarse_layout;
  std::vector<telemetry::Window> train;
  std::vector<telemetry::Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;              // fast n-gram LM
  std::unique_ptr<lm::Transformer> transformer;       // paper-faithful LM
  rules::RuleSet manual;
  rules::RuleSet mined;         // full (imputation-task) rule set
  rules::RuleSet mined_coarse;  // synthesis-task rule set

  // The LM the figure uses: the trained transformer when available (it can
  // condition on the whole row, which the fidelity claims need), otherwise
  // the n-gram.
  const lm::LanguageModel& lm() const {
    return transformer ? static_cast<const lm::LanguageModel&>(*transformer)
                       : *model;
  }
};

BenchEnv make_env(const BenchEnvConfig& config = {});

// --- fixed-width table printing ----------------------------------------------
// print() also records the table into the active JsonReport (if any), so a
// bench's machine-readable output stays in lockstep with what it prints.
struct Table {
  explicit Table(std::string title, std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::string fmt(double v, int precision = 3);
std::string fmt_pct(double fraction, int precision = 1);

// --- machine-readable bench output ---------------------------------------------
// Accumulates one figure's JSON report (BENCH_<figure>.json): environment
// config, every printed table, custom sections, and a final metrics snapshot
// — the perf trajectory future PRs regress against.
//
// Construct it FIRST in main(): the constructor strips `--json FILE` from
// argv (google-benchmark rejects flags it does not know) and, when the flag
// is present, switches the obs metrics layer on for the whole run. Without
// `--json` every call is a no-op and the bench behaves exactly as before.
class JsonReport {
 public:
  JsonReport(std::string figure, int* argc, char** argv);
  ~JsonReport();
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void add_env(const BenchEnvConfig& config);
  void add_table(const Table& table);
  // Splice a pre-rendered JSON fragment as a top-level key (trusted input).
  void add_raw(const std::string& key, std::string json_fragment);

  // Write the report (figure name, env, tables, custom sections, and a
  // point-in-time MetricsRegistry snapshot under "metrics") to path().
  void write() const;

  // The most recently constructed live report, or nullptr (used by
  // Table::print to self-register tables).
  static JsonReport* active();

 private:
  std::string figure_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> sections_;
  std::vector<std::string> tables_;
};

}  // namespace lejit::bench
