// Shared setup and table printing for the benchmark binaries.
//
// Every bench binary reproduces one figure of the paper (see DESIGN.md §4).
// They share the same experimental environment: a synthetic fleet split by
// rack, a char-level LM trained on the training racks' row text, and the
// mined + manual rule sets. The LM here is the n-gram model so each figure
// regenerates in seconds; examples/train_transformer.cpp demonstrates the
// paper-faithful transformer configuration end to end.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/decoder.hpp"
#include "lm/ngram.hpp"
#include "lm/tokenizer.hpp"
#include "lm/transformer.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "telemetry/generator.hpp"

namespace lejit::bench {

struct BenchEnv {
  telemetry::Dataset dataset;
  telemetry::Split split;
  telemetry::RowLayout layout;
  telemetry::RowLayout coarse_layout;
  std::vector<telemetry::Window> train;
  std::vector<telemetry::Window> test;
  lm::CharTokenizer tokenizer{telemetry::row_alphabet()};
  std::unique_ptr<lm::NgramModel> model;              // fast n-gram LM
  std::unique_ptr<lm::Transformer> transformer;       // paper-faithful LM
  rules::RuleSet manual;
  rules::RuleSet mined;         // full (imputation-task) rule set
  rules::RuleSet mined_coarse;  // synthesis-task rule set

  // The LM the figure uses: the trained transformer when available (it can
  // condition on the whole row, which the fidelity claims need), otherwise
  // the n-gram.
  const lm::LanguageModel& lm() const {
    return transformer ? static_cast<const lm::LanguageModel&>(*transformer)
                       : *model;
  }
};

struct BenchEnvConfig {
  int racks = 30;
  int windows_per_rack = 80;
  int test_racks = 5;
  std::uint64_t seed = 20250705;
  // Train (or load from `model_cache`) the nano-GPT on the training rows.
  bool use_transformer = false;
  int train_steps = 400;
  std::string model_cache = "lejit_bench_model";  // seed-suffixed .bin
};

BenchEnv make_env(const BenchEnvConfig& config = {});

// --- fixed-width table printing ----------------------------------------------
struct Table {
  explicit Table(std::string title, std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

std::string fmt(double v, int precision = 3);
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace lejit::bench
