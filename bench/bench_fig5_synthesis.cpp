// Fig. 5: synthetic network data generation — per-field JSD fidelity and
// rule compliance across eight generators.
//
// Paper shape targets: LeJIT preserves (often improves) the base LM's
// fidelity while complying with every coarse rule; rejection sampling
// distorts the learned distribution; the five task-specific generators offer
// competitive JSD but violate mined rules. Unconditional generation: no
// prompt is fed to the LM; the synthesis rule set is the coarse-only subset
// of the mined rules (paper: 255 rules).
#include <iostream>
#include <map>

#include "baselines/generators.hpp"
#include "baselines/rejection.hpp"
#include "harness.hpp"
#include "metrics/stats.hpp"
#include "telemetry/text.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

constexpr int kSamples = 400;

struct GenResult {
  std::string name;
  std::map<std::string, double> jsd;  // per coarse field
  rules::ViolationStats stats;
  int failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  lejit::bench::JsonReport report("fig5_synthesis", &argc, argv);
  const BenchEnv env = bench::make_env(bench::BenchEnvConfig{.use_transformer = true});

  // Reference distribution: the held-out racks.
  std::map<std::string, std::vector<std::int64_t>> reference;
  for (const Window& w : env.test) {
    const auto values = telemetry::coarse_values(w);
    for (int f = 0; f < telemetry::kNumCoarse; ++f)
      reference[telemetry::kCoarseNames[f]].push_back(
          values[static_cast<std::size_t>(f)]);
  }

  const auto evaluate = [&](std::string name, auto&& sample_fn) {
    GenResult r;
    r.name = std::move(name);
    std::vector<Window> samples;
    for (int i = 0; i < kSamples; ++i) {
      std::optional<Window> w = sample_fn();
      if (w)
        samples.push_back(std::move(*w));
      else
        ++r.failures;
    }
    std::map<std::string, std::vector<std::int64_t>> produced;
    for (const Window& w : samples) {
      const auto values = telemetry::coarse_values(w);
      for (int f = 0; f < telemetry::kNumCoarse; ++f)
        produced[telemetry::kCoarseNames[f]].push_back(
            values[static_cast<std::size_t>(f)]);
    }
    for (const auto& [field, ref] : reference) {
      const auto& got = produced[field];
      r.jsd[field] =
          got.empty() ? 1.0
                      : metrics::jsd_samples(ref, got);
    }
    r.stats = rules::check_violations(env.mined_coarse, samples);
    return r;
  };

  util::Rng rng(1);
  std::vector<GenResult> results;

  // Vanilla LM: unconditional, grammar-only (paper's "vanilla GPT-2").
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    results.push_back(evaluate("Vanilla LM", [&]() -> std::optional<Window> {
      const auto r = dec.generate(rng);
      return r.ok ? r.window : std::nullopt;
    }));
  }
  // Rejection sampling against the coarse rule set.
  {
    baselines::RejectionSampler sampler(
        env.lm(), env.tokenizer, env.layout, env.mined_coarse,
        baselines::RejectionConfig{.max_attempts = 300});
    results.push_back(
        evaluate("Rejection sampling", [&]() -> std::optional<Window> {
          const auto r = sampler.generate(rng);
          return r.compliant ? r.decode.window : std::nullopt;
        }));
  }
  // LeJIT: same LM, coarse rules enforced just-in-time.
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            env.mined_coarse,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    results.push_back(evaluate("LeJIT", [&]() -> std::optional<Window> {
      const auto r = dec.generate(rng);
      return r.ok ? r.window : std::nullopt;
    }));
  }
  // The five task-specific generator substitutes.
  for (auto& gen : baselines::make_all_generators(env.train, env.dataset.limits)) {
    results.push_back(evaluate(gen->name(), [&]() -> std::optional<Window> {
      return gen->sample(rng);
    }));
  }

  std::vector<std::string> headers{"generator"};
  for (int f = 0; f < telemetry::kNumCoarse; ++f)
    headers.push_back(std::string("JSD ") + telemetry::kCoarseNames[f]);
  headers.push_back("violation rate");
  headers.push_back("failed");

  bench::Table table("Fig. 5 — synthesis fidelity (JSD vs held-out racks, " +
                         std::to_string(kSamples) + " samples each, " +
                         std::to_string(env.mined_coarse.size()) +
                         " coarse rules)",
                     headers);
  for (const auto& r : results) {
    std::vector<std::string> row{r.name};
    for (int f = 0; f < telemetry::kNumCoarse; ++f)
      row.push_back(bench::fmt(r.jsd.at(telemetry::kCoarseNames[f]), 3));
    row.push_back(bench::fmt_pct(r.stats.window_rate()));
    row.push_back(std::to_string(r.failures));
    table.add_row(std::move(row));
  }
  table.print();

  const auto mean_jsd = [](const GenResult& r) {
    double acc = 0;
    for (const auto& [_, v] : r.jsd) acc += v;
    return acc / static_cast<double>(r.jsd.size());
  };
  const GenResult& vanilla = results[0];
  const GenResult& rejection = results[1];
  const GenResult& lejit = results[2];
  std::cout << "\nshape: LeJIT mean JSD " << bench::fmt(mean_jsd(lejit), 3)
            << " <= vanilla " << bench::fmt(mean_jsd(vanilla), 3)
            << " < rejection " << bench::fmt(mean_jsd(rejection), 3)
            << "; LeJIT violations " << lejit.stats.violating_windows
            << "  -> "
            << ((lejit.stats.violating_windows == 0 &&
                 mean_jsd(lejit) <= mean_jsd(vanilla) * 1.1)
                    ? "HOLDS"
                    : "CHECK")
            << "\n";
  report.add_env(env.config);
  report.write();
  return 0;
}
