// Serving throughput: the batched decode runtime (lejit::serve, DESIGN.md
// §13) vs sequential per-row decoding.
//
// The sweep decodes the same imputation workload through Server
// configurations of increasing (workers x batch) and reports rows/sec, the
// realized mean batch width, and — the load-bearing claim — that every
// configuration's output is bit-identical to the sequential decode of the
// same (seed, row) pairs. The google-benchmark micro-timings isolate the
// kernel effect the runtime is built on: one batched forward over N contexts
// amortizes each weight-matrix sweep across N rows.
//
// BENCH_8.json carries the "serve" section tools/check_bench_json.py
// --compare-serve gates on.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "serve/serve.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

constexpr std::uint64_t kServeSeed = 11;

// --smoke: tiny environment + reduced row counts so CI can run the whole
// sweep (including the bit-identity legs) in seconds.
bool g_smoke = false;

const BenchEnv& env() {
  // Serve drives Transformer::logits_batch, so this figure always trains the
  // nano-GPT — with a shortened schedule in smoke mode (an undertrained LM
  // decodes worse rows, but throughput and bit-identity do not care).
  static const BenchEnv e = bench::make_env(
      g_smoke ? bench::BenchEnvConfig{.racks = 8,
                                      .windows_per_rack = 30,
                                      .test_racks = 2,
                                      .use_transformer = true,
                                      .train_steps = 60}
              : bench::BenchEnvConfig{.use_transformer = true});
  return e;
}

int scaled(int rows) { return g_smoke ? std::max(8, rows / 4) : rows; }

// Imputation prompts whose ground truth is compatible with the mined rules.
const std::vector<std::string>& prompts() {
  static const std::vector<std::string> p = [] {
    std::vector<std::string> out;
    for (const Window& t : env().test)
      if (rules::violated_rules(env().mined, t).empty())
        out.push_back(telemetry::imputation_prompt(t));
    return out;
  }();
  return p;
}

std::vector<std::string> workload(int rows) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i)
    out.push_back(prompts()[static_cast<std::size_t>(i) % prompts().size()]);
  return out;
}

// --- micro: batched vs sequential cold forwards ------------------------------

std::vector<std::vector<int>> forward_contexts() {
  std::vector<std::vector<int>> ctxs;
  for (std::size_t i = 0; i < 8 && i < env().test.size(); ++i) {
    auto ids = env().tokenizer.encode(telemetry::window_to_row(env().test[i]));
    ids.resize(std::min<std::size_t>(ids.size(), 48));
    ctxs.push_back(std::move(ids));
  }
  return ctxs;
}

void BM_SequentialForwards4(benchmark::State& state) {
  const auto ctxs = forward_contexts();
  lm::KvCache cache;
  std::size_t i = 0;
  for (auto _ : state) {
    for (int s = 0; s < 4; ++s) {
      cache.clear();  // cold forward: no cross-iteration KV reuse
      benchmark::DoNotOptimize(
          env().transformer->logits(ctxs[(i + static_cast<std::size_t>(s)) %
                                         ctxs.size()],
                                    cache));
    }
    ++i;
  }
}
BENCHMARK(BM_SequentialForwards4)->Unit(benchmark::kMillisecond);

void BM_BatchedForwards4(benchmark::State& state) {
  const auto ctxs = forward_contexts();
  std::vector<lm::KvCache> caches(4);
  std::size_t i = 0;
  for (auto _ : state) {
    std::vector<std::vector<int>> batch;
    std::vector<lm::KvCache*> cache_ptrs;
    for (int s = 0; s < 4; ++s) {
      batch.push_back(
          ctxs[(i + static_cast<std::size_t>(s)) % ctxs.size()]);
      caches[static_cast<std::size_t>(s)].clear();
      cache_ptrs.push_back(&caches[static_cast<std::size_t>(s)]);
    }
    benchmark::DoNotOptimize(
        env().transformer->logits_batch(batch, cache_ptrs));
    ++i;
  }
}
BENCHMARK(BM_BatchedForwards4)->Unit(benchmark::kMillisecond);

// --- the sweep ----------------------------------------------------------------

struct ServeRun {
  int workers = 0;
  int batch = 0;
  std::size_t rows = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  double mean_batch_width = 0.0;
  std::uint64_t batched_forwards = 0;
  std::uint64_t degraded_rows = 0;
  bool bit_identical = true;
};

ServeRun run_serve(int workers, int batch,
                   const std::vector<std::string>& rows,
                   const std::vector<std::string>& expect) {
  ServeRun run;
  run.workers = workers;
  run.batch = batch;
  run.rows = rows.size();

  core::DecoderConfig config{.mode = core::GuidanceMode::kFull};
  serve::Server server(*env().transformer, env().tokenizer, env().layout,
                       env().mined, config,
                       serve::ServeConfig{.workers = workers,
                                          .batch = batch,
                                          .seed = kServeSeed});
  util::Timer timer;
  const auto results = server.run(rows);
  run.seconds = timer.elapsed_seconds();
  run.rows_per_sec =
      run.seconds > 0.0 ? static_cast<double>(rows.size()) / run.seconds : 0.0;

  const serve::ServeStats stats = server.stats();
  run.mean_batch_width = stats.mean_batch_width();
  run.batched_forwards = stats.batched_forwards;
  run.degraded_rows = stats.degraded_rows;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].text != expect[i]) run.bit_identical = false;
  return run;
}

void print_serve_sweep(bench::JsonReport& report) {
  const int n_rows = scaled(48);
  const std::vector<std::string> rows = workload(n_rows);

  // Sequential reference: one decoder, same per-row RNG derivation
  // (core::row_rng) the server uses. This is the bit-identity oracle AND the
  // throughput baseline.
  std::vector<std::string> expect;
  double seq_seconds = 0.0;
  {
    core::GuidedDecoder dec(*env().transformer, env().tokenizer, env().layout,
                            env().mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Timer timer;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      util::Rng rng = core::row_rng(kServeSeed, i, 0);
      expect.push_back(dec.generate(rng, rows[i]).text);
    }
    seq_seconds = timer.elapsed_seconds();
  }
  const double seq_rows_per_sec =
      seq_seconds > 0.0 ? static_cast<double>(rows.size()) / seq_seconds : 0.0;

  std::vector<std::pair<int, int>> configs = {
      {1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}};
  if (!g_smoke) configs.push_back({4, 4});

  std::vector<ServeRun> runs;
  for (const auto& [workers, batch] : configs)
    runs.push_back(run_serve(workers, batch, rows, expect));

  bench::Table table(
      "Serving throughput — workers x batch sweep over " +
          std::to_string(n_rows) + " imputation rows (sequential baseline " +
          bench::fmt(seq_rows_per_sec, 1) + " rows/s)",
      {"workers x batch", "rows/s", "vs sequential", "mean batch width",
       "batched forwards", "bit-identical"});
  bool all_identical = true;
  for (const ServeRun& r : runs) {
    all_identical = all_identical && r.bit_identical && r.degraded_rows == 0;
    table.add_row({std::to_string(r.workers) + " x " + std::to_string(r.batch),
                   bench::fmt(r.rows_per_sec, 1),
                   bench::fmt(seq_rows_per_sec > 0.0
                                  ? r.rows_per_sec / seq_rows_per_sec
                                  : 0.0,
                              2) + "x",
                   bench::fmt(r.mean_batch_width, 2),
                   std::to_string(r.batched_forwards),
                   r.bit_identical ? "YES" : "NO *** MISMATCH ***"});
  }
  table.print();

  std::cout << "\nshape: every serve configuration bit-identical to "
               "sequential decode -> "
            << (all_identical ? "YES" : "NO *** MISMATCH ***") << "\n";

  obs::JsonWriter w;
  w.begin_object();
  w.key("rows").value(static_cast<std::int64_t>(rows.size()));
  w.key("seq_rows_per_sec").value(seq_rows_per_sec);
  w.key("bit_identical").value(all_identical);
  w.key("runs").begin_array();
  for (const ServeRun& r : runs) {
    w.begin_object();
    w.key("workers").value(r.workers);
    w.key("batch").value(r.batch);
    w.key("rows_per_sec").value(r.rows_per_sec);
    w.key("speedup_vs_sequential")
        .value(seq_rows_per_sec > 0.0 ? r.rows_per_sec / seq_rows_per_sec
                                      : 0.0);
    w.key("mean_batch_width").value(r.mean_batch_width);
    w.key("batched_forwards")
        .value(static_cast<std::int64_t>(r.batched_forwards));
    w.key("degraded_rows").value(static_cast<std::int64_t>(r.degraded_rows));
    w.key("bit_identical").value(r.bit_identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  report.add_raw("serve", w.str());
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      g_smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  bench::JsonReport report("serve_throughput", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (!g_smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_serve_sweep(report);
  report.add_env(env().config);
  report.write();
  return 0;
}
