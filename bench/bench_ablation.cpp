// Ablations on LeJIT's design choices (DESIGN.md §6, paper §5 agenda):
//   A. guidance mode — vanilla vs grammar-only vs full solver look-ahead
//      (grammar-only is §2.2's "constrained decoding" strawman: it cannot do
//      arithmetic, so sum/implication rules still break);
//   B. rule-set size vs decode cost — how solver-in-the-loop overhead scales
//      with the number of enforced rules;
//   C. forced-literal skipping — LM calls saved by not sampling characters
//      the syntax already determines.
#include <iostream>

#include "harness.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

constexpr int kSamples = 60;

}  // namespace

int main(int argc, char** argv) {
  lejit::bench::JsonReport report("ablation", &argc, argv);
  const BenchEnv env = bench::make_env();
  std::vector<Window> prompts;
  for (const Window& w : env.test) {
    if (rules::violated_rules(env.mined, w).empty()) prompts.push_back(w);
    if (static_cast<int>(prompts.size()) == kSamples) break;
  }

  // --- A: guidance mode ---------------------------------------------------------
  {
    bench::Table table(
        "Ablation A — guidance mode (imputation, mined rules as the check)",
        {"mode", "rows produced", "violation rate", "dead ends", "ms/sample",
         "solver checks/sample"});
    struct ModeCase {
      std::string name;
      core::GuidanceMode mode;
      const rules::RuleSet* rules;
    };
    const std::vector<ModeCase> cases{
        {"none (vanilla)", core::GuidanceMode::kNone, nullptr},
        {"grammar only", core::GuidanceMode::kSyntax, nullptr},
        {"hull only (no look-ahead)", core::GuidanceMode::kHull, &env.mined},
        {"full (LeJIT)", core::GuidanceMode::kFull, &env.mined},
    };
    for (const auto& c : cases) {
      core::GuidedDecoder dec(*env.model, env.tokenizer, env.layout,
                              c.rules ? *c.rules : rules::RuleSet{},
                              core::DecoderConfig{.mode = c.mode});
      util::Rng rng(1);
      std::vector<Window> outputs;
      std::int64_t checks = 0;
      int dead_ends = 0;
      util::Timer timer;
      for (const Window& w : prompts) {
        const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
        checks += r.stats.solver_checks;
        if (r.dead_end) ++dead_ends;
        if (r.ok) outputs.push_back(*r.window);
      }
      const double ms =
          timer.elapsed_ms() / static_cast<double>(prompts.size());
      const auto stats = rules::check_violations(env.mined, outputs);
      table.add_row({c.name,
                     std::to_string(outputs.size()) + "/" +
                         std::to_string(prompts.size()),
                     outputs.empty() ? "n/a"
                                     : bench::fmt_pct(stats.window_rate()),
                     std::to_string(dead_ends), bench::fmt(ms, 3),
                     bench::fmt(static_cast<double>(checks) /
                                    static_cast<double>(prompts.size()),
                                1)});
    }
    table.print();
    std::cout << "(unguided rows often fail to parse at all; grammar-only "
                 "cannot express arithmetic — its violations come from "
                 "sum/implication rules, the paper's §2.2 argument; hull-only "
                 "is blind to holes in the feasible set and dead-ends "
                 "instead)\n";
  }

  // --- B: rule-set size scaling -----------------------------------------------
  {
    bench::Table table("Ablation B — decode cost vs enforced-rule count",
                       {"rule families", "#rules", "ms/sample",
                        "checks/sample", "violation rate"});
    struct FamilyCase {
      std::string name;
      rules::MinerConfig config;
    };
    std::vector<FamilyCase> cases;
    {
      rules::MinerConfig c;
      c.mine_sum = c.mine_burst = c.mine_conditionals = c.mine_pairwise = false;
      cases.push_back({"bounds", c});
    }
    {
      rules::MinerConfig c;
      c.mine_conditionals = c.mine_pairwise = false;
      cases.push_back({"+sum+burst", c});
    }
    {
      rules::MinerConfig c;
      c.mine_conditionals = false;
      cases.push_back({"+pairwise", c});
    }
    cases.push_back({"all (full mined)", rules::MinerConfig{}});

    for (const auto& c : cases) {
      const rules::RuleSet set =
          rules::mine_rules(env.train, env.layout, env.dataset.limits, c.config)
              .rules;
      core::GuidedDecoder dec(*env.model, env.tokenizer, env.layout, set,
                              core::DecoderConfig{.mode = core::GuidanceMode::kFull});
      util::Rng rng(2);
      std::vector<Window> outputs;
      std::int64_t checks = 0;
      util::Timer timer;
      for (const Window& w : prompts) {
        const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
        checks += r.stats.solver_checks;
        if (r.ok) outputs.push_back(*r.window);
      }
      const double ms =
          timer.elapsed_ms() / static_cast<double>(prompts.size());
      const auto stats = rules::check_violations(env.mined, outputs);
      table.add_row({c.name, std::to_string(set.size()), bench::fmt(ms, 3),
                     bench::fmt(static_cast<double>(checks) /
                                    static_cast<double>(prompts.size()),
                                1),
                     bench::fmt_pct(stats.window_rate())});
    }
    table.print();
  }

  // --- D: minimal invasiveness (paper §3) ---------------------------------------
  // How much does the solver actually override the LM? Mean probability mass
  // removed per masked step and the fraction of steps where the LM's argmax
  // was pruned, for both tasks.
  {
    bench::Table table(
        "Ablation D — minimal invasiveness of LeJIT's guidance",
        {"task", "masked steps/sample", "mean removed mass",
         "argmax pruned"});
    struct TaskCase {
      std::string name;
      const rules::RuleSet* rules;
      bool imputation;
    };
    const rules::RuleSet coarse = env.mined_coarse;
    for (const auto& t :
         {TaskCase{"imputation (mined)", &env.mined, true},
          TaskCase{"synthesis (coarse)", &coarse, false}}) {
      core::GuidedDecoder dec(*env.model, env.tokenizer, env.layout, *t.rules,
                              core::DecoderConfig{.mode = core::GuidanceMode::kFull});
      util::Rng rng(4);
      std::int64_t masked = 0, interventions = 0;
      double removed = 0.0;
      int samples = 0;
      for (const Window& w : prompts) {
        const auto r = dec.generate(
            rng, t.imputation ? telemetry::imputation_prompt(w) : "");
        if (!r.ok) continue;
        ++samples;
        masked += r.stats.masked_steps;
        interventions += r.stats.interventions;
        removed += r.stats.removed_mass;
      }
      table.add_row(
          {t.name,
           bench::fmt(static_cast<double>(masked) / samples, 1),
           bench::fmt(removed / static_cast<double>(masked), 3),
           bench::fmt_pct(static_cast<double>(interventions) /
                          static_cast<double>(masked))});
    }
    table.print();
    std::cout << "(low removed mass = the solver mostly lets the LM decide, "
                 "the paper's 'a little guidance goes a long way')\n";
  }

  // --- C: forced-literal skipping ----------------------------------------------
  {
    bench::Table table("Ablation C — skipping LM calls on forced syntax",
                       {"skip_forced_literals", "LM calls/sample",
                        "ms/sample"});
    for (const bool skip : {true, false}) {
      core::GuidedDecoder dec(
          *env.model, env.tokenizer, env.layout, env.manual,
          core::DecoderConfig{.mode = core::GuidanceMode::kFull,
                              .skip_forced_literals = skip});
      util::Rng rng(3);
      std::int64_t lm_calls = 0;
      util::Timer timer;
      for (const Window& w : prompts) {
        const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
        lm_calls += r.stats.lm_calls;
      }
      table.add_row({skip ? "on" : "off",
                     bench::fmt(static_cast<double>(lm_calls) /
                                    static_cast<double>(prompts.size()),
                                1),
                     bench::fmt(timer.elapsed_ms() /
                                    static_cast<double>(prompts.size()),
                                3)});
    }
    table.print();
  }
  report.add_env(env.config);
  report.write();
  return 0;
}
