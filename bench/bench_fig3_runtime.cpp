// Fig. 3 (right): runtime to impute a 30K-sample test set.
//
// Paper shape targets: rejection sampling is the slowest by far (>2 days in
// the paper), LeJIT completes the workload in hours (>10× faster than
// rejection), vanilla decoding is fastest but violates rules. We measure
// per-sample latency on a scaled-down sample count and extrapolate to the
// paper's 30K samples; absolute numbers differ (our LM substrate is a
// trained n-gram, not GPT-2 on a GPU) but the ordering and ratios are the
// reproduction target.
//
// google-benchmark micro-timings for the per-method sample latency come
// first; the binary then prints the extrapolated Fig. 3 (right) table.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "baselines/rejection.hpp"
#include "baselines/zoom2net.hpp"
#include "harness.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

const BenchEnv& env() {
  static const BenchEnv e = bench::make_env(bench::BenchEnvConfig{.use_transformer = true});
  return e;
}

// Eligible prompts (ground truth compatible with the mined rules).
const std::vector<Window>& prompts() {
  static const std::vector<Window> w = [] {
    std::vector<Window> out;
    for (const Window& t : env().test)
      if (rules::violated_rules(env().mined, t).empty()) out.push_back(t);
    return out;
  }();
  return w;
}

void BM_VanillaImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          rules::RuleSet{},
                          core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
  util::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_VanillaImpute)->Unit(benchmark::kMillisecond);

void BM_Zoom2NetImpute(benchmark::State& state) {
  const baselines::Zoom2NetImputer imputer(env().train, env().dataset.limits);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(imputer.impute(w));
  }
}
BENCHMARK(BM_Zoom2NetImpute)->Unit(benchmark::kMillisecond);

void BM_LeJitManualImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          env().manual,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(2);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_LeJitManualImpute)->Unit(benchmark::kMillisecond);

void BM_LeJitMinedImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          env().mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_LeJitMinedImpute)->Unit(benchmark::kMillisecond);

void BM_RejectionImpute(benchmark::State& state) {
  baselines::RejectionSampler sampler(
      env().lm(), env().tokenizer, env().layout, env().mined,
      baselines::RejectionConfig{.max_attempts = 400});
  util::Rng rng(4);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        sampler.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_RejectionImpute)->Unit(benchmark::kMillisecond)->Iterations(8);

// Wall-clock measurement used for the extrapolated table (independent of
// google-benchmark's iteration policy so every method sees the same prompts).
double per_sample_seconds(const std::function<void(const Window&)>& fn,
                          int samples) {
  util::Timer timer;
  for (int i = 0; i < samples; ++i)
    fn(prompts()[static_cast<std::size_t>(i) % prompts().size()]);
  return timer.elapsed_seconds() / samples;
}

void print_fig3_right() {
  constexpr int kPaperSamples = 30'000;

  struct Row {
    std::string name;
    double sec_per_sample;
  };
  std::vector<Row> rows;

  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    util::Rng rng(5);
    rows.push_back({"Vanilla LM", per_sample_seconds(
        [&](const Window& w) {
          (void)dec.generate(rng, telemetry::imputation_prompt(w));
        },
        60)});
  }
  {
    const baselines::Zoom2NetImputer imputer(env().train, env().dataset.limits);
    rows.push_back({"Zoom2Net*", per_sample_seconds(
        [&](const Window& w) { (void)imputer.impute(w); }, 200)});
  }
  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().manual,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(6);
    rows.push_back({"LeJIT (manual rules)", per_sample_seconds(
        [&](const Window& w) {
          (void)dec.generate(rng, telemetry::imputation_prompt(w));
        },
        60)});
  }
  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(7);
    rows.push_back({"LeJIT (mined rules)", per_sample_seconds(
        [&](const Window& w) {
          (void)dec.generate(rng, telemetry::imputation_prompt(w));
        },
        40)});
  }
  {
    baselines::RejectionSampler sampler(
        env().lm(), env().tokenizer, env().layout, env().mined,
        baselines::RejectionConfig{.max_attempts = 400});
    util::Rng rng(8);
    rows.push_back({"Rejection sampling", per_sample_seconds(
        [&](const Window& w) {
          (void)sampler.generate(rng, telemetry::imputation_prompt(w));
        },
        12)});
  }

  bench::Table table(
      "Fig. 3 (right) — runtime for the 30K-sample imputation workload "
      "(extrapolated from measured per-sample latency)",
      {"method", "ms/sample", "30K-sample total", "vs LeJIT(mined)"});
  const double lejit = rows[3].sec_per_sample;
  for (const auto& r : rows) {
    const double total_sec = r.sec_per_sample * kPaperSamples;
    std::string total;
    if (total_sec < 120.0)
      total = bench::fmt(total_sec, 1) + " s";
    else if (total_sec < 7200.0)
      total = bench::fmt(total_sec / 60.0, 1) + " min";
    else
      total = bench::fmt(total_sec / 3600.0, 1) + " h";
    table.add_row({r.name, bench::fmt(r.sec_per_sample * 1e3, 3), total,
                   bench::fmt(r.sec_per_sample / lejit, 2) + "x"});
  }
  table.print();

  const double rejection = rows[4].sec_per_sample;
  std::cout << "\nshape: rejection/LeJIT speedup = "
            << bench::fmt(rejection / lejit, 1)
            << "x (paper reports >10x)  -> "
            << (rejection / lejit >= 5.0 ? "HOLDS" : "CHECK") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_fig3_right();
  return 0;
}
