// Fig. 3 (right): runtime to impute a 30K-sample test set.
//
// Paper shape targets: rejection sampling is the slowest by far (>2 days in
// the paper), LeJIT completes the workload in hours (>10× faster than
// rejection), vanilla decoding is fastest but violates rules. We measure
// per-sample latency on a scaled-down sample count and extrapolate to the
// paper's 30K samples; absolute numbers differ (our LM substrate is a
// trained n-gram, not GPT-2 on a GPU) but the ordering and ratios are the
// reproduction target.
//
// google-benchmark micro-timings for the per-method sample latency come
// first; the binary then prints the extrapolated Fig. 3 (right) table.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>

#include "baselines/rejection.hpp"
#include "baselines/zoom2net.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smt/backend.hpp"
#include "telemetry/text.hpp"
#include "util/timer.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

// --smoke: tiny environment + reduced sample counts so CI can run the whole
// binary (including the cache on/off comparison) in seconds. Set in main()
// before env() is first touched.
bool g_smoke = false;

// argv[0], for locating the bundled lejit_smtserve in the build tree.
std::string g_argv0;

// External SMT-LIB2 solver for the backend ablation: a real z3/cvc5 when one
// is around (find_external_solver's usual ladder), else the bundled
// lejit_smtserve, which bench binaries see at ../tools relative to
// themselves. Empty string = no subprocess leg, reported as unavailable.
std::string resolve_subprocess_solver() {
  std::string found = smt::find_external_solver(g_argv0);
  if (!found.empty()) return found;
  const auto slash = g_argv0.find_last_of('/');
  if (slash != std::string::npos) {
    const std::string sibling =
        g_argv0.substr(0, slash) + "/../tools/lejit_smtserve";
    if (::access(sibling.c_str(), X_OK) == 0) return sibling;
  }
  return {};
}

const BenchEnv& env() {
  static const BenchEnv e = bench::make_env(
      g_smoke ? bench::BenchEnvConfig{.racks = 8,
                                      .windows_per_rack = 30,
                                      .test_racks = 2,
                                      .use_transformer = false}
              : bench::BenchEnvConfig{.use_transformer = true});
  return e;
}

int scaled(int samples) { return g_smoke ? std::max(3, samples / 5) : samples; }

// Eligible prompts (ground truth compatible with the mined rules).
const std::vector<Window>& prompts() {
  static const std::vector<Window> w = [] {
    std::vector<Window> out;
    for (const Window& t : env().test)
      if (rules::violated_rules(env().mined, t).empty()) out.push_back(t);
    return out;
  }();
  return w;
}

void BM_VanillaImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          rules::RuleSet{},
                          core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
  util::Rng rng(1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_VanillaImpute)->Unit(benchmark::kMillisecond);

void BM_Zoom2NetImpute(benchmark::State& state) {
  const baselines::Zoom2NetImputer imputer(env().train, env().dataset.limits);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(imputer.impute(w));
  }
}
BENCHMARK(BM_Zoom2NetImpute)->Unit(benchmark::kMillisecond);

void BM_LeJitManualImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          env().manual,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(2);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_LeJitManualImpute)->Unit(benchmark::kMillisecond);

void BM_LeJitMinedImpute(benchmark::State& state) {
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          env().mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_LeJitMinedImpute)->Unit(benchmark::kMillisecond);

void BM_LeJitMinedPlanImpute(benchmark::State& state) {
  core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
  cfg.compile_plan = true;
  core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                          env().mined, cfg);
  util::Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        dec.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_LeJitMinedPlanImpute)->Unit(benchmark::kMillisecond);

void BM_RejectionImpute(benchmark::State& state) {
  baselines::RejectionSampler sampler(
      env().lm(), env().tokenizer, env().layout, env().mined,
      baselines::RejectionConfig{.max_attempts = 400});
  util::Rng rng(4);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = prompts()[i++ % prompts().size()];
    benchmark::DoNotOptimize(
        sampler.generate(rng, telemetry::imputation_prompt(w)));
  }
}
BENCHMARK(BM_RejectionImpute)->Unit(benchmark::kMillisecond)->Iterations(8);

// Per-mode wall-clock plus an obs snapshot taken over exactly that mode's
// samples (the registry and tracer are reset before each measured loop).
struct ModeRun {
  std::string name;
  double sec_per_sample = 0.0;
  int samples = 0;
  // smt.check_latency_us percentiles over this mode's solver checks.
  std::int64_t solver_checks = 0;
  double check_p50_us = 0.0, check_p90_us = 0.0, check_p99_us = 0.0;
  // Inclusive phase totals (lm_forward and solver_check never nest).
  std::int64_t lm_forward_ns = 0, solver_check_ns = 0;
  std::int64_t mask_build_ns = 0, sampling_ns = 0;
  std::int64_t lm_forwards = 0;
  // Solver work + feasibility-cache traffic over this mode's samples.
  std::int64_t solver_propagations = 0;
  std::int64_t cache_hits = 0, cache_misses = 0;
  // Decode-plan effect (zero unless an active plan drove the decoder).
  std::int64_t plan_table_hits = 0, plan_sliced_queries = 0;
  std::int64_t plan_sliced_rules = 0;
  // Abstract-interpretation prefilter traffic (zero when absint is off).
  std::int64_t absint_checks = 0, absint_hits = 0;
};

// Wall-clock measurement used for the extrapolated table (independent of
// google-benchmark's iteration policy so every method sees the same prompts).
ModeRun run_mode(std::string name, int samples,
                 const std::function<void(const Window&)>& fn) {
  ModeRun run;
  run.name = std::move(name);
  run.samples = samples;

  auto& registry = lejit::obs::MetricsRegistry::instance();
  auto& tracer = lejit::obs::Tracer::instance();
  if (lejit::obs::metrics_enabled()) {
    registry.reset();
    tracer.reset();
  }

  util::Timer timer;
  for (int i = 0; i < samples; ++i)
    fn(prompts()[static_cast<std::size_t>(i) % prompts().size()]);
  run.sec_per_sample = timer.elapsed_seconds() / samples;

  if (lejit::obs::metrics_enabled()) {
    const auto& checks = registry.histogram("smt.check_latency_us");
    run.solver_checks = checks.count();
    run.check_p50_us = checks.percentile(0.50);
    run.check_p90_us = checks.percentile(0.90);
    run.check_p99_us = checks.percentile(0.99);
    const auto lm = tracer.totals(lejit::obs::Phase::kLmForward);
    run.lm_forwards = lm.count;
    run.lm_forward_ns = lm.total_ns;
    run.solver_check_ns =
        tracer.totals(lejit::obs::Phase::kSolverCheck).total_ns;
    run.mask_build_ns = tracer.totals(lejit::obs::Phase::kMaskBuild).total_ns;
    run.sampling_ns = tracer.totals(lejit::obs::Phase::kSampling).total_ns;
    run.solver_propagations = registry.counter("smt.propagations").value();
    run.cache_hits = registry.counter("decode.cache.hits").value();
    run.cache_misses = registry.counter("decode.cache.misses").value();
    run.plan_table_hits = registry.counter("decode.plan.table_hits").value();
    run.plan_sliced_queries =
        registry.counter("decode.plan.sliced_queries").value();
    run.plan_sliced_rules =
        registry.counter("decode.plan.sliced_rules").value();
    run.absint_checks =
        registry.counter("decode.absint.prefilter_checks").value();
    run.absint_hits = registry.counter("decode.absint.prefilter_hits").value();
  }
  return run;
}

// Renders the per-mode captures as the "modes" section of the JSON report:
// wall-clock, solver-check latency percentiles, and the lm_forward vs
// solver_check time split Fig. 3's discussion is about.
std::string modes_json(const std::vector<ModeRun>& runs) {
  lejit::obs::JsonWriter w;
  w.begin_array();
  for (const ModeRun& r : runs) {
    const double lm_s = static_cast<double>(r.lm_forward_ns) * 1e-9;
    const double solver_s = static_cast<double>(r.solver_check_ns) * 1e-9;
    const double denom = lm_s + solver_s;
    w.begin_object();
    w.key("name").value(r.name);
    w.key("samples").value(r.samples);
    w.key("ms_per_sample").value(r.sec_per_sample * 1e3);
    w.key("wall_clock_s").value(r.sec_per_sample * r.samples);
    w.key("solver_check_latency_us").begin_object();
    w.key("count").value(r.solver_checks);
    w.key("p50").value(r.check_p50_us);
    w.key("p90").value(r.check_p90_us);
    w.key("p99").value(r.check_p99_us);
    w.end_object();
    w.key("phase_seconds").begin_object();
    w.key("lm_forward").value(lm_s);
    w.key("solver_check").value(solver_s);
    w.key("mask_build").value(static_cast<double>(r.mask_build_ns) * 1e-9);
    w.key("sampling").value(static_cast<double>(r.sampling_ns) * 1e-9);
    w.end_object();
    w.key("lm_forwards").value(r.lm_forwards);
    w.key("solver_propagations").value(r.solver_propagations);
    w.key("cache").begin_object();
    w.key("hits").value(r.cache_hits);
    w.key("misses").value(r.cache_misses);
    w.end_object();
    w.key("plan").begin_object();
    w.key("table_hits").value(r.plan_table_hits);
    w.key("sliced_queries").value(r.plan_sliced_queries);
    w.key("sliced_rules").value(r.plan_sliced_rules);
    w.end_object();
    w.key("absint").begin_object();
    w.key("prefilter_checks").value(r.absint_checks);
    w.key("prefilter_hits").value(r.absint_hits);
    w.end_object();
    w.key("split").begin_object();
    w.key("lm_forward_frac").value(denom > 0.0 ? lm_s / denom : 0.0);
    w.key("solver_check_frac").value(denom > 0.0 ? solver_s / denom : 0.0);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  return w.str();
}

void print_fig3_right(bench::JsonReport& report) {
  constexpr int kPaperSamples = 30'000;

  std::vector<ModeRun> rows;

  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    util::Rng rng(5);
    rows.push_back(run_mode("Vanilla LM", scaled(60), [&](const Window& w) {
      (void)dec.generate(rng, telemetry::imputation_prompt(w));
    }));
  }
  {
    const baselines::Zoom2NetImputer imputer(env().train, env().dataset.limits);
    rows.push_back(run_mode("Zoom2Net*", scaled(200),
                            [&](const Window& w) { (void)imputer.impute(w); }));
  }
  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().manual,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(6);
    rows.push_back(run_mode("LeJIT (manual rules)", scaled(60),
                            [&](const Window& w) {
      (void)dec.generate(rng, telemetry::imputation_prompt(w));
    }));
  }
  // Cache ablation: the mined-rules workload runs twice — feasibility cache
  // on (DecoderConfig default) and off — over the same prompts with the same
  // seed. The decodes must be bit-identical (see DESIGN.md §9); the run pair
  // is also what BENCH_3.json's propagation/latency acceptance check reads.
  std::vector<std::string> mined_texts;
  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(7);
    rows.push_back(run_mode("LeJIT (mined rules)", scaled(40),
                            [&](const Window& w) {
      mined_texts.push_back(dec.generate(rng, telemetry::imputation_prompt(w)).text);
    }));
  }
  bool cache_bit_identical = true;
  {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.cache = false;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    util::Rng rng(7);
    std::size_t i = 0;
    rows.push_back(run_mode("LeJIT (mined, no cache)", scaled(40),
                            [&](const Window& w) {
      const auto res = dec.generate(rng, telemetry::imputation_prompt(w));
      if (i >= mined_texts.size() || res.text != mined_texts[i])
        cache_bit_identical = false;
      ++i;
    }));
  }
  // Plan ablation: the same mined workload once more, driven by a decode
  // plan compiled in the constructor (outside the measured loop — plan
  // compilation is a static, per-rule-set cost). The decodes must again be
  // bit-identical (DESIGN.md §11); BENCH_5's acceptance check reads this run
  // pair for the propagation reduction and the decode.plan.* counters.
  bool plan_bit_identical = true;
  std::int64_t plan_compile_checks = 0;
  {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.compile_plan = true;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    plan_compile_checks = dec.decode_plan()->solver_checks;
    util::Rng rng(7);
    std::size_t i = 0;
    rows.push_back(run_mode("LeJIT (mined, plan)", scaled(40),
                            [&](const Window& w) {
      const auto res = dec.generate(rng, telemetry::imputation_prompt(w));
      if (i >= mined_texts.size() || res.text != mined_texts[i])
        plan_bit_identical = false;
      ++i;
    }));
  }
  {
    baselines::RejectionSampler sampler(
        env().lm(), env().tokenizer, env().layout, env().mined,
        baselines::RejectionConfig{.max_attempts = 400});
    util::Rng rng(8);
    rows.push_back(run_mode("Rejection sampling", scaled(12),
                            [&](const Window& w) {
      (void)sampler.generate(rng, telemetry::imputation_prompt(w));
    }));
  }
  // Synthesis leg of the plan ablation. Imputation prompts pin the coarse
  // fields, which dirties the (single, densely coupled) mined cluster before
  // any fine field decodes — so the digit tables' always-bits cannot fire
  // there and the plan's effect is slicing only. Synthesis rows start with a
  // clean cluster: the tables answer the whole leading field plus the
  // never-terminator positions of lower-bounded fields without a solver
  // check, which is where the plan beats even PR 4's hull/witness tiers.
  std::vector<std::string> synth_texts;
  bool synth_bit_identical = true;
  {
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    util::Rng rng(9);
    rows.push_back(run_mode("LeJIT synth (mined)", scaled(40),
                            [&](const Window&) {
      synth_texts.push_back(dec.generate(rng).text);
    }));
  }
  {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.compile_plan = true;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    util::Rng rng(9);
    std::size_t i = 0;
    rows.push_back(run_mode("LeJIT synth (mined, plan)", scaled(40),
                            [&](const Window&) {
      const auto res = dec.generate(rng);
      if (i >= synth_texts.size() || res.text != synth_texts[i])
        synth_bit_identical = false;
      ++i;
    }));
  }
  // Backend ablation (DESIGN.md §12): the mined imputation workload once
  // more on (a) the out-of-process SMT-LIB2 backend and (b) a deliberately
  // broken subprocess whose every check degrades to the in-process fallback.
  // Both must stay bit-identical to the in-process run — the backend layer
  // may change where checks execute, never what gets decoded — and the
  // stats blocks account for the wire overhead and the degradation ladder.
  const std::string subprocess_solver = resolve_subprocess_solver();
  bool backend_bit_identical = true;
  int subprocess_row = -1;
  int degraded_row = -1;
  smt::BackendStats subprocess_stats, degraded_stats;
  if (!subprocess_solver.empty()) {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.backend.kind = smt::BackendKind::kSubprocess;
    cfg.backend.solver_path = subprocess_solver;
    cfg.backend.retry_backoff_ms = 1;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    util::Rng rng(7);
    std::size_t i = 0;
    subprocess_row = static_cast<int>(rows.size());
    rows.push_back(run_mode("LeJIT (mined, subprocess)", scaled(40),
                            [&](const Window& w) {
      const auto res = dec.generate(rng, telemetry::imputation_prompt(w));
      if (i >= mined_texts.size() || res.text != mined_texts[i])
        backend_bit_identical = false;
      ++i;
    }));
    subprocess_stats = dec.backend_stats();
  }
  {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.backend.kind = smt::BackendKind::kSubprocess;
    cfg.backend.solver_path = "/nonexistent/lejit-bench-degraded-solver";
    cfg.backend.retry_backoff_ms = 1;
    cfg.backend.max_respawns = 1;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    util::Rng rng(7);
    std::size_t i = 0;
    degraded_row = static_cast<int>(rows.size());
    rows.push_back(run_mode("LeJIT (mined, degraded)", scaled(40),
                            [&](const Window& w) {
      const auto res = dec.generate(rng, telemetry::imputation_prompt(w));
      if (i >= mined_texts.size() || res.text != mined_texts[i])
        backend_bit_identical = false;
      ++i;
    }));
    degraded_stats = dec.backend_stats();
  }
  // Absint ablation (DESIGN.md §16.2): the mined imputation workload once
  // more with both the feasibility cache and the abstract-interpretation
  // prefilter off. The "no cache" run above (cache off, absint on — the
  // DecoderConfig default) is the on-leg; this is the off-leg. The cache is
  // disabled on both legs because its negative caching would otherwise
  // absorb exactly the probes the prefilter refutes, masking the solver
  // shedding the pair is meant to isolate — same methodology as the cache
  // ablation itself. The abstraction only ever *refutes* — and a refutation
  // is a proof — so decodes must stay bit-identical to the reference.
  bool absint_bit_identical = true;
  int no_absint_row = -1;
  {
    core::DecoderConfig cfg{.mode = core::GuidanceMode::kFull};
    cfg.cache = false;
    cfg.absint = false;
    core::GuidedDecoder dec(env().lm(), env().tokenizer, env().layout,
                            env().mined, cfg);
    util::Rng rng(7);
    std::size_t i = 0;
    no_absint_row = static_cast<int>(rows.size());
    rows.push_back(run_mode("LeJIT (mined, no cache/absint)", scaled(40),
                            [&](const Window& w) {
      const auto res = dec.generate(rng, telemetry::imputation_prompt(w));
      if (i >= mined_texts.size() || res.text != mined_texts[i])
        absint_bit_identical = false;
      ++i;
    }));
  }
  report.add_raw("modes", modes_json(rows));

  const ModeRun& cached = rows[3];
  const ModeRun& uncached = rows[4];
  const ModeRun& planned = rows[5];
  {
    lejit::obs::JsonWriter w;
    w.begin_object();
    w.key("bit_identical").value(cache_bit_identical);
    w.key("propagations_on").value(cached.solver_propagations);
    w.key("propagations_off").value(uncached.solver_propagations);
    w.key("ms_per_sample_on").value(cached.sec_per_sample * 1e3);
    w.key("ms_per_sample_off").value(uncached.sec_per_sample * 1e3);
    w.key("cache_hits").value(cached.cache_hits);
    w.key("cache_misses").value(cached.cache_misses);
    w.end_object();
    report.add_raw("cache_ablation", w.str());
  }
  const ModeRun& synth_plain = rows[7];
  const ModeRun& synth_plan = rows[8];
  {
    // `off` sums the plain mined runs (cache on, no plan) over both legs so
    // the pair isolates the plan's effect on top of PR 4's
    // incremental/caching machinery; ms_per_sample stays the Fig. 3
    // (imputation) metric. Plan compilation cost is static (once per rule
    // set, in the constructor, outside the measured loops) and is reported
    // as compile_solver_checks rather than folded into per-sample numbers.
    const std::int64_t sliced =
        planned.plan_sliced_queries + synth_plan.plan_sliced_queries;
    const std::int64_t sliced_rules =
        planned.plan_sliced_rules + synth_plan.plan_sliced_rules;
    const double frac =
        sliced > 0 && !env().mined.rules.empty()
            ? static_cast<double>(sliced_rules) /
                  (static_cast<double>(sliced) *
                   static_cast<double>(env().mined.size()))
            : 0.0;
    lejit::obs::JsonWriter w;
    w.begin_object();
    w.key("bit_identical").value(plan_bit_identical && synth_bit_identical);
    w.key("propagations_on")
        .value(planned.solver_propagations + synth_plan.solver_propagations);
    w.key("propagations_off")
        .value(cached.solver_propagations + synth_plain.solver_propagations);
    w.key("ms_per_sample_on").value(planned.sec_per_sample * 1e3);
    w.key("ms_per_sample_off").value(cached.sec_per_sample * 1e3);
    w.key("table_hits")
        .value(planned.plan_table_hits + synth_plan.plan_table_hits);
    w.key("sliced_queries").value(sliced);
    w.key("slice_rule_fraction").value(frac);
    w.key("compile_solver_checks").value(plan_compile_checks);
    w.end_object();
    report.add_raw("plan_ablation", w.str());
  }
  {
    const auto stats_block = [](lejit::obs::JsonWriter& w,
                                const smt::BackendStats& s) {
      w.key("checks").value(s.checks);
      w.key("faults").value(s.faults);
      w.key("spawn_failures").value(s.spawn_failures);
      w.key("respawns").value(s.respawns);
      w.key("degraded").value(s.degraded);
    };
    lejit::obs::JsonWriter w;
    w.begin_object();
    w.key("subprocess_available").value(!subprocess_solver.empty());
    w.key("solver_path").value(subprocess_solver);
    w.key("bit_identical").value(backend_bit_identical);
    w.key("ms_per_sample_inprocess").value(cached.sec_per_sample * 1e3);
    w.key("ms_per_sample_subprocess")
        .value(subprocess_row >= 0
                   ? rows[static_cast<std::size_t>(subprocess_row)]
                             .sec_per_sample * 1e3
                   : 0.0);
    w.key("ms_per_sample_degraded")
        .value(rows[static_cast<std::size_t>(degraded_row)].sec_per_sample *
               1e3);
    w.key("subprocess").begin_object();
    stats_block(w, subprocess_stats);
    w.end_object();
    w.key("degraded_backend").begin_object();
    stats_block(w, degraded_stats);
    w.end_object();
    w.end_object();
    report.add_raw("backend_ablation", w.str());
  }
  const ModeRun& no_absint = rows[static_cast<std::size_t>(no_absint_row)];
  {
    lejit::obs::JsonWriter w;
    w.begin_object();
    w.key("bit_identical").value(absint_bit_identical);
    w.key("prefilter_checks").value(uncached.absint_checks);
    w.key("prefilter_hits").value(uncached.absint_hits);
    w.key("solver_checks_on").value(uncached.solver_checks);
    w.key("solver_checks_off").value(no_absint.solver_checks);
    w.key("propagations_on").value(uncached.solver_propagations);
    w.key("propagations_off").value(no_absint.solver_propagations);
    w.key("ms_per_sample_on").value(uncached.sec_per_sample * 1e3);
    w.key("ms_per_sample_off").value(no_absint.sec_per_sample * 1e3);
    w.end_object();
    report.add_raw("absint_ablation", w.str());
  }

  bench::Table table(
      "Fig. 3 (right) — runtime for the 30K-sample imputation workload "
      "(extrapolated from measured per-sample latency)",
      {"method", "ms/sample", "30K-sample total", "vs LeJIT(mined)"});
  const double lejit = rows[3].sec_per_sample;
  for (const auto& r : rows) {
    const double total_sec = r.sec_per_sample * kPaperSamples;
    std::string total;
    if (total_sec < 120.0)
      total = bench::fmt(total_sec, 1) + " s";
    else if (total_sec < 7200.0)
      total = bench::fmt(total_sec / 60.0, 1) + " min";
    else
      total = bench::fmt(total_sec / 3600.0, 1) + " h";
    table.add_row({r.name, bench::fmt(r.sec_per_sample * 1e3, 3), total,
                   bench::fmt(r.sec_per_sample / lejit, 2) + "x"});
  }
  table.print();

  const double rejection = rows[6].sec_per_sample;
  std::cout << "\nshape: rejection/LeJIT speedup = "
            << bench::fmt(rejection / lejit, 1)
            << "x (paper reports >10x)  -> "
            << (rejection / lejit >= 5.0 ? "HOLDS" : "CHECK") << "\n";

  const double prop_ratio =
      cached.solver_propagations > 0
          ? static_cast<double>(uncached.solver_propagations) /
                static_cast<double>(cached.solver_propagations)
          : 0.0;
  std::cout << "shape: cache on/off decodes bit-identical -> "
            << (cache_bit_identical ? "YES" : "NO *** MISMATCH ***")
            << "\nshape: solver propagations cache-off/cache-on = "
            << bench::fmt(prop_ratio, 1) << "x; ms/sample "
            << bench::fmt(cached.sec_per_sample * 1e3, 3) << " (on) vs "
            << bench::fmt(uncached.sec_per_sample * 1e3, 3) << " (off)\n";

  const double plan_prop_ratio =
      planned.solver_propagations > 0
          ? static_cast<double>(cached.solver_propagations) /
                static_cast<double>(planned.solver_propagations)
          : 0.0;
  std::cout << "shape: plan on/off decodes bit-identical -> "
            << (plan_bit_identical && synth_bit_identical
                    ? "YES"
                    : "NO *** MISMATCH ***")
            << "\nshape: solver propagations plan-off/plan-on = "
            << bench::fmt(plan_prop_ratio, 1) << "x (impute); table hits "
            << planned.plan_table_hits + synth_plan.plan_table_hits
            << ", sliced queries "
            << planned.plan_sliced_queries + synth_plan.plan_sliced_queries
            << "\n";

  std::cout << "shape: backend in-process/subprocess/degraded bit-identical -> "
            << (backend_bit_identical ? "YES" : "NO *** MISMATCH ***") << " (";
  if (subprocess_row >= 0)
    std::cout << "subprocess "
              << bench::fmt(rows[static_cast<std::size_t>(subprocess_row)]
                                    .sec_per_sample * 1e3, 3)
              << " ms/sample via " << subprocess_solver << ", ";
  else
    std::cout << "no external solver found, subprocess leg skipped; ";
  std::cout << "degraded run answered "
            << degraded_stats.degraded << "/" << degraded_stats.checks
            << " checks via the in-process fallback)\n";

  std::cout << "shape: absint on/off decodes bit-identical -> "
            << (absint_bit_identical ? "YES" : "NO *** MISMATCH ***")
            << "\nshape: prefilter answered " << uncached.absint_hits << "/"
            << uncached.absint_checks
            << " feasibility probes (cache-off legs); solver checks "
            << uncached.solver_checks << " (on) vs "
            << no_absint.solver_checks << " (off)\n";
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  // Strip --smoke before google-benchmark parses argv (mirrors JsonReport's
  // handling of --json). Must happen before env() is first touched.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      g_smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  bench::JsonReport report("fig3_runtime", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (!g_smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_fig3_right(report);
  report.add_env(env().config);
  report.write();
  return 0;
}
