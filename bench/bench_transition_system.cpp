// Fig. 2 companion: micro-benchmarks of LeJIT's moving parts.
//
// Measures the per-operation costs that determine Fig. 3 (right)'s runtime:
// solver sat checks under partial instantiation, feasible-interval queries,
// per-character digit-mask computation (the on-the-fly transition system),
// and LM forward passes for both model families.
#include <benchmark/benchmark.h>

#include "core/transition.hpp"
#include "harness.hpp"
#include "lm/transformer.hpp"
#include "telemetry/text.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;

const BenchEnv& env() {
  static const BenchEnv e = bench::make_env(
      bench::BenchEnvConfig{.racks = 16, .windows_per_rack = 50});
  return e;
}

// Solver primed with the mined rules and a pinned coarse prefix — the state
// LeJIT queries from inside a row.
struct PrimedSolver {
  smt::Solver solver;
  std::vector<smt::VarId> vars;

  PrimedSolver() {
    vars = rules::declare_fields(solver, env().layout);
    rules::assert_rules(solver, env().mined);
    const telemetry::Window& w = env().test.front();
    const auto values = telemetry::coarse_values(w);
    for (int f = 0; f < telemetry::kNumCoarse; ++f)
      solver.add(smt::eq(smt::LinExpr(vars[static_cast<std::size_t>(f)]),
                         smt::LinExpr(values[static_cast<std::size_t>(f)])));
  }
};

void BM_SolverCheckUnderPartialInstantiation(benchmark::State& state) {
  PrimedSolver p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.solver.check());
  }
}
BENCHMARK(BM_SolverCheckUnderPartialInstantiation)->Unit(benchmark::kMicrosecond);

void BM_PrefixFeasibilityCheck(benchmark::State& state) {
  PrimedSolver p;
  const smt::VarId fine0 =
      p.vars[static_cast<std::size_t>(telemetry::kNumCoarse)];
  const core::DigitPrefix prefix{4, 1};
  for (auto _ : state) {
    const smt::Formula f = core::prefix_completion_formula(fine0, prefix, 2);
    benchmark::DoNotOptimize(p.solver.check_assuming(std::span(&f, 1)));
  }
}
BENCHMARK(BM_PrefixFeasibilityCheck)->Unit(benchmark::kMicrosecond);

void BM_FeasibleInterval(benchmark::State& state) {
  PrimedSolver p;
  const smt::VarId fine0 =
      p.vars[static_cast<std::size_t>(telemetry::kNumCoarse)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.solver.feasible_interval(fine0));
  }
}
BENCHMARK(BM_FeasibleInterval)->Unit(benchmark::kMicrosecond);

void BM_NgramLogits(benchmark::State& state) {
  const auto ctx = env().tokenizer.encode("T=123 E=0 R=0 C=250 G=100|4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(env().model->logits(ctx));
  }
}
BENCHMARK(BM_NgramLogits)->Unit(benchmark::kMicrosecond);

void BM_TransformerLogits(benchmark::State& state) {
  util::Rng rng(1);
  const lm::Transformer model(
      lm::TransformerConfig{.vocab_size = env().tokenizer.vocab_size(),
                            .d_model = 48,
                            .n_layers = 2,
                            .n_heads = 2,
                            .d_ff = 96,
                            .max_seq = 64},
      rng);
  const auto ctx = env().tokenizer.encode("T=123 E=0 R=0 C=250 G=100|4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.logits(ctx));
  }
}
BENCHMARK(BM_TransformerLogits)->Unit(benchmark::kMicrosecond);

void BM_FullRowDecode(benchmark::State& state) {
  core::GuidedDecoder dec(*env().model, env().tokenizer, env().layout,
                          env().mined,
                          core::DecoderConfig{.mode = core::GuidanceMode::kFull});
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.generate(rng));
  }
}
BENCHMARK(BM_FullRowDecode)->Unit(benchmark::kMillisecond);

void BM_RuleMining(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rules::mine_rules(env().train, env().layout, env().dataset.limits));
  }
}
BENCHMARK(BM_RuleMining)->Unit(benchmark::kMillisecond);

// Solver scaling: sat-check latency as the problem grows along each axis
// the deployment cares about (variables, domain width, disjunction count).
void BM_SolverScaling_Vars(benchmark::State& state) {
  const int nvars = static_cast<int>(state.range(0));
  smt::Solver solver;
  std::vector<smt::VarId> vars;
  smt::LinExpr sum;
  for (int i = 0; i < nvars; ++i) {
    vars.push_back(solver.add_var("v" + std::to_string(i), 0, 96));
    sum += smt::LinExpr(vars.back());
  }
  solver.add(smt::eq(sum, smt::LinExpr(48 * nvars / 2)));
  solver.add(smt::max_ge(vars, smt::LinExpr(48)));
  for (auto _ : state) benchmark::DoNotOptimize(solver.check());
  state.SetLabel(std::to_string(nvars) + " vars");
}
BENCHMARK(BM_SolverScaling_Vars)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMicrosecond);

void BM_SolverScaling_Domain(benchmark::State& state) {
  const smt::Int hi = state.range(0);
  smt::Solver solver;
  const auto x = solver.add_var("x", 0, hi);
  const auto y = solver.add_var("y", 0, hi);
  solver.add(smt::eq(smt::LinExpr(x) + smt::LinExpr(y), smt::LinExpr(hi)));
  solver.add(smt::ne(smt::LinExpr(x) - smt::LinExpr(y), smt::LinExpr(0)));
  for (auto _ : state) benchmark::DoNotOptimize(solver.check());
}
BENCHMARK(BM_SolverScaling_Domain)->Arg(100)->Arg(10'000)->Arg(1'000'000)
    ->Unit(benchmark::kMicrosecond);

void BM_SolverScaling_Disjunctions(benchmark::State& state) {
  const int nors = static_cast<int>(state.range(0));
  smt::Solver solver;
  std::vector<smt::VarId> vars;
  for (int i = 0; i < 8; ++i)
    vars.push_back(solver.add_var("v" + std::to_string(i), 0, 96));
  util::Rng rng(1);
  for (int i = 0; i < nors; ++i) {
    const auto a = vars[static_cast<std::size_t>(rng.uniform_int(0, 7))];
    const auto b = vars[static_cast<std::size_t>(rng.uniform_int(0, 7))];
    solver.add(smt::implies(
        smt::gt(smt::LinExpr(a), smt::LinExpr(rng.uniform_int(0, 90))),
        smt::ge(smt::LinExpr(b), smt::LinExpr(rng.uniform_int(0, 48)))));
  }
  for (auto _ : state) benchmark::DoNotOptimize(solver.check());
}
BENCHMARK(BM_SolverScaling_Disjunctions)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  lejit::bench::JsonReport report("transition_system", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report.add_env(env().config);
  report.write();
  return 0;
}
