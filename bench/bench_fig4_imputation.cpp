// Fig. 4: imputation accuracy (left) and downstream burst analysis (right).
//
// Paper shape targets: LeJIT with the full mined rule set matches or beats
// Zoom2Net on EMD and p99 while improving burst metrics across the board;
// LeJIT-manual improves substantially over vanilla but trails full LeJIT;
// rejection sampling *hurts* accuracy (it suppresses near-correct outputs).
#include <algorithm>
#include <iostream>
#include <optional>

#include "baselines/posthoc.hpp"
#include "baselines/rejection.hpp"
#include "baselines/zoom2net.hpp"
#include "harness.hpp"
#include "metrics/bursts.hpp"
#include "metrics/stats.hpp"
#include "telemetry/text.hpp"

namespace {

using namespace lejit;
using bench::BenchEnv;
using telemetry::Window;

constexpr int kSamples = 110;

struct Accuracy {
  std::string name;
  double emd = 0;       // mean per-window EMD(imputed series, true series)
  double p99_err = 0;   // |p99(pred) − p99(true)| over all fine values
  double mae = 0;       // per-slot mean absolute error
  double ac_err = 0;    // |lag-1 autocorrelation diff| on concatenated trace
  metrics::BurstErrors bursts;
  int failures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  lejit::bench::JsonReport report("fig4_imputation", &argc, argv);
  const BenchEnv env = bench::make_env(bench::BenchEnvConfig{.use_transformer = true});

  std::vector<Window> truths;
  for (const Window& w : env.test) {
    if (rules::violated_rules(env.mined, w).empty()) truths.push_back(w);
    if (static_cast<int>(truths.size()) == kSamples) break;
  }

  const auto evaluate = [&](std::string name, auto&& impute_fn) {
    Accuracy acc;
    acc.name = std::move(name);
    std::vector<std::int64_t> true_vals, pred_vals;
    std::vector<double> true_trace, pred_trace;
    std::vector<std::vector<std::int64_t>> true_series, pred_series;
    std::vector<double> abs_errors;

    for (const Window& truth : truths) {
      std::optional<Window> out = impute_fn(truth);
      if (!out) {
        ++acc.failures;
        continue;
      }
      true_series.push_back(truth.fine);
      pred_series.push_back(out->fine);
      for (std::size_t t = 0; t < truth.fine.size(); ++t) {
        true_vals.push_back(truth.fine[t]);
        pred_vals.push_back(out->fine[t]);
        true_trace.push_back(static_cast<double>(truth.fine[t]));
        pred_trace.push_back(static_cast<double>(out->fine[t]));
        abs_errors.push_back(std::abs(static_cast<double>(truth.fine[t]) -
                                      static_cast<double>(out->fine[t])));
      }
    }
    if (pred_vals.empty()) return acc;

    // Per-window EMD: distance between each imputed 5-slot series and its
    // ground truth, averaged (order-invariant accuracy, the paper's usage).
    double emd_sum = 0;
    for (std::size_t i = 0; i < true_series.size(); ++i)
      emd_sum += metrics::emd(std::span<const std::int64_t>(true_series[i]),
                              std::span<const std::int64_t>(pred_series[i]));
    acc.emd = emd_sum / static_cast<double>(true_series.size());
    acc.p99_err = std::abs(metrics::quantile(std::span<const std::int64_t>(true_vals), 0.99) -
                           metrics::quantile(std::span<const std::int64_t>(pred_vals), 0.99));
    double mae = 0;
    for (const double e : abs_errors) mae += e;
    acc.mae = mae / static_cast<double>(abs_errors.size());
    acc.ac_err = std::abs(metrics::autocorrelation(true_trace, 1) -
                          metrics::autocorrelation(pred_trace, 1));
    acc.bursts = metrics::mean_burst_errors(true_series, pred_series,
                                            env.dataset.limits.burst_threshold());
    return acc;
  };

  util::Rng rng(1);
  std::vector<Accuracy> results;

  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    results.push_back(evaluate("Vanilla LM", [&](const Window& w) {
      const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
      return r.ok ? r.window : std::nullopt;
    }));
  }
  {
    const baselines::Zoom2NetImputer imputer(env.train, env.dataset.limits);
    results.push_back(evaluate("Zoom2Net*", [&](const Window& w) {
      return std::optional<Window>(imputer.impute(w));
    }));
  }
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout, env.manual,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    results.push_back(evaluate("LeJIT (manual rules)", [&](const Window& w) {
      const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
      return r.ok ? r.window : std::nullopt;
    }));
  }
  {
    baselines::RejectionSampler sampler(
        env.lm(), env.tokenizer, env.layout, env.mined,
        baselines::RejectionConfig{.max_attempts = 250});
    results.push_back(evaluate("Rejection sampling", [&](const Window& w) {
      const auto r = sampler.generate(rng, telemetry::imputation_prompt(w));
      return r.compliant ? r.decode.window : std::nullopt;
    }));
  }
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout,
                            rules::RuleSet{},
                            core::DecoderConfig{.mode = core::GuidanceMode::kSyntax});
    const baselines::PostHocRepairer repairer(env.layout, env.mined);
    results.push_back(evaluate("Post-hoc SMT repair", [&](const Window& w) -> std::optional<Window> {
      const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
      if (!r.ok) return std::nullopt;
      const auto fixed = repairer.repair(*r.window, /*pin_coarse=*/true);
      if (!fixed.feasible) return std::nullopt;
      return fixed.window;
    }));
  }
  {
    core::GuidedDecoder dec(env.lm(), env.tokenizer, env.layout, env.mined,
                            core::DecoderConfig{.mode = core::GuidanceMode::kFull});
    results.push_back(evaluate("LeJIT (mined rules)", [&](const Window& w) {
      const auto r = dec.generate(rng, telemetry::imputation_prompt(w));
      return r.ok ? r.window : std::nullopt;
    }));
  }

  bench::Table left("Fig. 4 (left) — imputation accuracy (" +
                        std::to_string(truths.size()) +
                        " samples; lower is better)",
                    {"method", "EMD", "p99 err", "MAE", "autocorr err",
                     "failed"});
  for (const auto& r : results)
    left.add_row({r.name, bench::fmt(r.emd, 3), bench::fmt(r.p99_err, 1),
                  bench::fmt(r.mae, 2), bench::fmt(r.ac_err, 3),
                  std::to_string(r.failures)});
  left.print();

  bench::Table right(
      "Fig. 4 (right) — downstream burst analysis errors (lower is better)",
      {"method", "count", "height", "duration", "position"});
  for (const auto& r : results)
    right.add_row({r.name, bench::fmt(r.bursts.count, 3),
                   bench::fmt(r.bursts.height, 2),
                   bench::fmt(r.bursts.duration, 3),
                   bench::fmt(r.bursts.position, 3)});
  right.print();
  std::cout << "(rejection rows carry survivor bias: its 'failed' samples — "
               "the hard windows — are excluded from its own averages)\n";

  const Accuracy& vanilla = results[0];
  const Accuracy& zoom = results[1];
  const Accuracy& lejit = results[5];
  std::cout << "\nshape: LeJIT(mined) EMD " << bench::fmt(lejit.emd, 3)
            << " <= vanilla EMD " << bench::fmt(vanilla.emd, 3)
            << "; LeJIT vs Zoom2Net* EMD ratio "
            << bench::fmt(lejit.emd / std::max(zoom.emd, 1e-9), 2)
            << " (paper: on-par or better)  -> "
            << ((lejit.emd <= vanilla.emd * 1.05) ? "HOLDS" : "CHECK") << "\n";
  report.add_env(env.config);
  report.write();
  return 0;
}
