#include "harness.hpp"

#include <iostream>

#include "lm/trainer.hpp"
#include "telemetry/text.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace lejit::bench {

namespace {

// Train the nano-GPT on the env's training rows, or load a cached checkpoint
// from a previous bench run (deterministic training makes them identical).
std::unique_ptr<lm::Transformer> make_transformer(
    const BenchEnvConfig& config, const lm::CharTokenizer& tokenizer,
    const std::vector<telemetry::Window>& train) {
  const std::string cache = config.model_cache + "." +
                            std::to_string(config.seed) + "." +
                            std::to_string(config.train_steps) + ".bin";
  try {
    auto model = std::make_unique<lm::Transformer>(lm::Transformer::load(cache));
    if (model->vocab_size() == tokenizer.vocab_size()) {
      std::cout << "[harness] loaded LM checkpoint " << cache << "\n";
      return model;
    }
  } catch (const util::RuntimeError&) {
    // No usable cache: fall through to training.
  }

  std::cout << "[harness] training the nano-GPT LM (" << config.train_steps
            << " steps) ...\n";
  util::Rng init_rng(config.seed);
  auto model = std::make_unique<lm::Transformer>(
      lm::TransformerConfig{.vocab_size = tokenizer.vocab_size(),
                            .d_model = 64,
                            .n_layers = 2,
                            .n_heads = 4,
                            .d_ff = 128,
                            .max_seq = 64},
      init_rng);
  std::vector<std::vector<int>> rows;
  rows.reserve(train.size());
  for (const auto& w : train)
    rows.push_back(tokenizer.encode(telemetry::window_to_row(w)));
  util::Rng train_rng(config.seed + 1);
  util::Timer timer;
  const lm::TrainReport report = lm::train_lm(
      *model, rows,
      lm::TrainConfig{.steps = config.train_steps,
                      .batch_size = 16,
                      .adam = lm::AdamConfig{.lr = 2e-3f},
                      .warmup_steps = 20},
      train_rng);
  std::cout << "[harness] trained in " << fmt(timer.elapsed_seconds(), 1)
            << "s, loss " << fmt(report.first_loss, 3) << " -> "
            << fmt(report.final_loss, 3) << "\n";
  try {
    model->save(cache);
  } catch (const util::RuntimeError&) {
    // Read-only working directory: run without a cache.
  }
  return model;
}

}  // namespace

BenchEnv make_env(const BenchEnvConfig& config) {
  BenchEnv env;
  env.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
      .num_racks = config.racks,
      .windows_per_rack = config.windows_per_rack,
      .seed = config.seed});
  env.split = telemetry::split_by_rack(env.dataset, config.test_racks,
                                       config.seed + 1);
  env.layout = telemetry::telemetry_row_layout(env.dataset.limits);
  env.coarse_layout = telemetry::coarse_row_layout(env.dataset.limits);
  env.train = telemetry::all_windows(env.split.train);
  env.test = telemetry::all_windows(env.split.test);

  env.model = std::make_unique<lm::NgramModel>(env.tokenizer.vocab_size(),
                                               lm::NgramConfig{.order = 6});
  for (const auto& w : env.train)
    env.model->observe(env.tokenizer.encode(telemetry::window_to_row(w)));
  if (config.use_transformer)
    env.transformer = make_transformer(config, env.tokenizer, env.train);

  env.manual = rules::manual_rules(env.layout, env.dataset.limits);
  env.mined = rules::mine_rules(env.train, env.layout, env.dataset.limits).rules;
  env.mined_coarse = env.mined.coarse_only();
  return env;
}

Table::Table(std::string t, std::vector<std::string> h)
    : title(std::move(t)), headers(std::move(h)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers.size(), 0);
  for (std::size_t c = 0; c < headers.size(); ++c)
    widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::cout << "\n== " << title << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << (c == 0 ? "" : "  ")
                << (c == 0 ? util::pad_right(cells[c], widths[c])
                           : util::pad_left(cells[c], widths[c]));
    }
    std::cout << "\n";
  };
  print_row(headers);
  std::size_t total = headers.size() > 0 ? (headers.size() - 1) * 2 : 0;
  for (const auto w : widths) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double v, int precision) {
  return util::format_double(v, precision);
}

std::string fmt_pct(double fraction, int precision) {
  return util::format_double(fraction * 100.0, precision) + "%";
}

}  // namespace lejit::bench
