#include "harness.hpp"

#include <fstream>
#include <iostream>

#include "lm/trainer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "telemetry/text.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace lejit::bench {

namespace {

// Train the nano-GPT on the env's training rows, or load a cached checkpoint
// from a previous bench run (deterministic training makes them identical).
std::unique_ptr<lm::Transformer> make_transformer(
    const BenchEnvConfig& config, const lm::CharTokenizer& tokenizer,
    const std::vector<telemetry::Window>& train) {
  const std::string cache = config.model_cache + "." +
                            std::to_string(config.seed) + "." +
                            std::to_string(config.train_steps) + ".bin";
  try {
    auto model = std::make_unique<lm::Transformer>(lm::Transformer::load(cache));
    if (model->vocab_size() == tokenizer.vocab_size()) {
      std::cout << "[harness] loaded LM checkpoint " << cache << "\n";
      return model;
    }
  } catch (const util::RuntimeError&) {
    // No usable cache: fall through to training.
  }

  std::cout << "[harness] training the nano-GPT LM (" << config.train_steps
            << " steps) ...\n";
  util::Rng init_rng(config.seed);
  auto model = std::make_unique<lm::Transformer>(
      lm::TransformerConfig{.vocab_size = tokenizer.vocab_size(),
                            .d_model = 64,
                            .n_layers = 2,
                            .n_heads = 4,
                            .d_ff = 128,
                            .max_seq = 64},
      init_rng);
  std::vector<std::vector<int>> rows;
  rows.reserve(train.size());
  for (const auto& w : train)
    rows.push_back(tokenizer.encode(telemetry::window_to_row(w)));
  util::Rng train_rng(config.seed + 1);
  util::Timer timer;
  const lm::TrainReport report = lm::train_lm(
      *model, rows,
      lm::TrainConfig{.steps = config.train_steps,
                      .batch_size = 16,
                      .adam = lm::AdamConfig{.lr = 2e-3f},
                      .warmup_steps = 20},
      train_rng);
  std::cout << "[harness] trained in " << fmt(timer.elapsed_seconds(), 1)
            << "s, loss " << fmt(report.first_loss, 3) << " -> "
            << fmt(report.final_loss, 3) << "\n";
  try {
    model->save(cache);
  } catch (const util::RuntimeError&) {
    // Read-only working directory: run without a cache.
  }
  return model;
}

}  // namespace

BenchEnv make_env(const BenchEnvConfig& config) {
  BenchEnv env;
  env.config = config;
  env.dataset = telemetry::generate_dataset(telemetry::GeneratorConfig{
      .num_racks = config.racks,
      .windows_per_rack = config.windows_per_rack,
      .seed = config.seed});
  env.split = telemetry::split_by_rack(env.dataset, config.test_racks,
                                       config.seed + 1);
  env.layout = telemetry::telemetry_row_layout(env.dataset.limits);
  env.coarse_layout = telemetry::coarse_row_layout(env.dataset.limits);
  env.train = telemetry::all_windows(env.split.train);
  env.test = telemetry::all_windows(env.split.test);

  env.model = std::make_unique<lm::NgramModel>(env.tokenizer.vocab_size(),
                                               lm::NgramConfig{.order = 6});
  for (const auto& w : env.train)
    env.model->observe(env.tokenizer.encode(telemetry::window_to_row(w)));
  if (config.use_transformer)
    env.transformer = make_transformer(config, env.tokenizer, env.train);

  env.manual = rules::manual_rules(env.layout, env.dataset.limits);
  env.mined = rules::mine_rules(env.train, env.layout, env.dataset.limits).rules;
  env.mined_coarse = env.mined.coarse_only();
  return env;
}

Table::Table(std::string t, std::vector<std::string> h)
    : title(std::move(t)), headers(std::move(h)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows.push_back(std::move(cells));
}

void Table::print() const {
  if (JsonReport* report = JsonReport::active()) report->add_table(*this);
  std::vector<std::size_t> widths(headers.size(), 0);
  for (std::size_t c = 0; c < headers.size(); ++c)
    widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::cout << "\n== " << title << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << (c == 0 ? "" : "  ")
                << (c == 0 ? util::pad_right(cells[c], widths[c])
                           : util::pad_left(cells[c], widths[c]));
    }
    std::cout << "\n";
  };
  print_row(headers);
  std::size_t total = headers.size() > 0 ? (headers.size() - 1) * 2 : 0;
  for (const auto w : widths) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double v, int precision) {
  return util::format_double(v, precision);
}

std::string fmt_pct(double fraction, int precision) {
  return util::format_double(fraction * 100.0, precision) + "%";
}

namespace {
JsonReport* g_active_report = nullptr;
}

JsonReport* JsonReport::active() { return g_active_report; }

JsonReport::JsonReport(std::string figure, int* argc, char** argv)
    : figure_(std::move(figure)) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string_view(argv[i]) != "--json") continue;
    if (i + 1 >= *argc || argv[i + 1][0] == '-') {
      std::cerr << "error: --json expects an output path\n";
      std::exit(2);
    }
    path_ = argv[i + 1];
    for (int j = i; j + 2 <= *argc; ++j) argv[j] = argv[j + 2];
    *argc -= 2;
    break;
  }
  if (enabled()) obs::set_metrics_enabled(true);
  g_active_report = this;
}

JsonReport::~JsonReport() {
  if (g_active_report == this) g_active_report = nullptr;
}

void JsonReport::add_env(const BenchEnvConfig& config) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("racks").value(config.racks);
  w.key("windows_per_rack").value(config.windows_per_rack);
  w.key("test_racks").value(config.test_racks);
  w.key("seed").value(static_cast<std::uint64_t>(config.seed));
  w.key("use_transformer").value(config.use_transformer);
  w.key("train_steps").value(config.train_steps);
  w.end_object();
  sections_.emplace_back("env", w.str());
}

void JsonReport::add_table(const Table& table) {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("title").value(table.title);
  w.key("headers").begin_array();
  for (const auto& h : table.headers) w.value(h);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : table.rows) {
    w.begin_array();
    for (const auto& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  tables_.push_back(w.str());
}

void JsonReport::add_raw(const std::string& key, std::string json_fragment) {
  sections_.emplace_back(key, std::move(json_fragment));
}

void JsonReport::write() const {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("figure").value(figure_);
  for (const auto& [key, fragment] : sections_) w.key(key).raw(fragment);
  w.key("tables").begin_array();
  for (const auto& t : tables_) w.raw(t);
  w.end_array();
  w.key("metrics").raw(obs::MetricsRegistry::instance().to_json());
  w.end_object();

  std::ofstream out(path_, std::ios::binary);
  out << w.str() << "\n";
  if (!out) {
    std::cerr << "error: cannot write bench report to " << path_ << "\n";
    std::exit(2);
  }
  std::cout << "\n[bench] wrote " << path_ << "\n";
}

}  // namespace lejit::bench
