#!/bin/sh
# Check (or fix) formatting of every in-tree C++ file against .clang-format.
#
#   usage: run_clang_format.sh --check    report violations, exit 1 if any
#          run_clang_format.sh --fix      rewrite files in place
#
# Exit codes: 0 clean (or fixed), 1 violations found in --check mode, 2 bad
# usage, 77 when clang-format is unavailable — the format_cxx ctest declares
# SKIP_RETURN_CODE 77, so missing tooling reports as SKIPPED, not as a pass
# or a failure.
set -u

cd "$(dirname "$0")/.."

MODE="${1:---check}"
case "$MODE" in
  --check|--fix) ;;
  *) echo "usage: run_clang_format.sh [--check|--fix]" >&2; exit 2 ;;
esac

if ! command -v clang-format >/dev/null 2>&1; then
  echo "run_clang_format: clang-format not installed; skipping" >&2
  exit 77
fi

FILES=$(find src tools tests bench examples \
             \( -name '*.cpp' -o -name '*.hpp' \) 2>/dev/null | sort)
[ -n "$FILES" ] || { echo "run_clang_format: no sources found" >&2; exit 77; }

if [ "$MODE" = "--fix" ]; then
  # shellcheck disable=SC2086
  clang-format -i $FILES
  exit 0
fi

STATUS=0
for f in $FILES; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "run_clang_format: $f is not clang-format clean" >&2
    STATUS=1
  fi
done
[ "$STATUS" = 0 ] && echo "run_clang_format: all files clean" >&2
exit $STATUS
