#!/bin/sh
# Differential verdict test against a real external SMT solver.
#
# Usage: run_smt_diff.sh <lejit_cli> [queries]
#
# Exits 77 (ctest SKIPPED via SKIP_RETURN_CODE) when neither z3 nor cvc5 is
# installed — `lejit_cli smt-diff --backend auto` would otherwise fall back
# to the bundled lejit_smtserve, which the always-on smt_diff_self test
# already covers.
set -u

CLI="${1:?usage: run_smt_diff.sh <lejit_cli> [queries]}"
QUERIES="${2:-1000}"

if command -v z3 >/dev/null 2>&1; then
  SOLVER=$(command -v z3)
elif command -v cvc5 >/dev/null 2>&1; then
  SOLVER=$(command -v cvc5)
else
  echo "run_smt_diff.sh: no z3 or cvc5 on PATH; skipping" >&2
  exit 77
fi

echo "run_smt_diff.sh: diffing minismt against ${SOLVER}" >&2
exec "${CLI}" smt-diff --backend "${SOLVER}" --queries "${QUERIES}" --seed 7
