#!/bin/sh
# Differential soundness test of the abstract interpreter against a real
# external SMT solver (DESIGN.md §16.4).
#
# Usage: run_absint_diff.sh <lejit_cli> [queries]
#
# Exits 77 (ctest SKIPPED via SKIP_RETURN_CODE) when neither z3 nor cvc5 is
# installed — the always-on absint_diff_minismt / absint_diff_self tests
# already cover the in-process and bundled-subprocess backends.
set -u

CLI="${1:?usage: run_absint_diff.sh <lejit_cli> [queries]}"
QUERIES="${2:-1000}"

if command -v z3 >/dev/null 2>&1; then
  SOLVER=$(command -v z3)
elif command -v cvc5 >/dev/null 2>&1; then
  SOLVER=$(command -v cvc5)
else
  echo "run_absint_diff.sh: no z3 or cvc5 on PATH; skipping" >&2
  exit 77
fi

echo "run_absint_diff.sh: diffing the abstraction against ${SOLVER}" >&2
exec "${CLI}" absint-diff --backend "${SOLVER}" --queries "${QUERIES}" --seed 7
