#!/bin/sh
# Build the asan-ubsan preset and run only the `stress`-labelled
# fault-injection tests under the sanitizers. The tier-1 loop
# (cmake/ctest on the default build) stays fast because the instrumented
# tree lives in its own binary dir and only the stress binary is built.
set -eu

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j --target lejit_stress_tests
ctest --preset stress-asan-ubsan
