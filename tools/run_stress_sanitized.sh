#!/bin/sh
# Build a sanitizer preset and run only the `stress`-labelled fault-injection
# tests under it. The tier-1 loop (cmake/ctest on the default build) stays
# fast because each instrumented tree lives in its own binary dir and only
# the stress binary is built.
#
#   usage: run_stress_sanitized.sh [--tsan]
#
# Default is ASan+UBSan (memory/UB bugs); --tsan selects ThreadSanitizer,
# which is what catches races in the batch driver's worker pool. The two are
# separate presets because the sanitizers cannot be combined in one binary.
set -eu

cd "$(dirname "$0")/.."

PRESET=asan-ubsan
TEST_PRESET=stress-asan-ubsan
if [ "${1:-}" = "--tsan" ]; then
  PRESET=tsan
  TEST_PRESET=stress-tsan
fi

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j --target lejit_stress_tests
ctest --preset "$TEST_PRESET"
