// lejit_cli — the LeJIT workflow from the command line.
//
//   lejit_cli generate --racks 20 --windows 80 --seed 1 --out corpus.txt
//   lejit_cli mine     --corpus corpus.txt --out rules.txt [--coarse-only]
//   lejit_cli train    --corpus corpus.txt --steps 300 --out model.bin
//   lejit_cli synth    --model model.bin --rules rules.txt --count 20
//   lejit_cli impute   --model model.bin --rules rules.txt --prompts coarse.txt
//   lejit_cli serve-bench --model model.bin --rules rules.txt --workers 2 --batch 4
//   lejit_cli check    --rules rules.txt --rows rows.txt
//   lejit_cli lint     --rules rules.txt [--json]
//   lejit_cli plan     --rules rules.txt [--json] [--out plan.json]
//
// Rows use the telemetry text format (telemetry/text.hpp) under the default
// schema limits; rule files use the rules/parser.hpp syntax, so mined rule
// sets are editable by hand before being enforced. Generated/imputed rows go
// to stdout; diagnostics go to stderr.
#include <unistd.h>

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "absint/diff.hpp"
#include "core/batch.hpp"
#include "core/decoder.hpp"
#include "lint/lint.hpp"
#include "serve/serve.hpp"
#include "util/timer.hpp"
#include "smt/diff.hpp"
#include "lm/trainer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan.hpp"
#include "plan/verify.hpp"
#include "rules/checker.hpp"
#include "rules/miner.hpp"
#include "rules/parser.hpp"
#include "telemetry/generator.hpp"
#include "telemetry/text.hpp"
#include "util/strings.hpp"

using namespace lejit;

namespace {

// argv[0], for resolving a sibling `lejit_smtserve` in backend specs.
std::string g_argv0;

// --- tiny argv parser -----------------------------------------------------------
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string_view a = argv[i];
      if (a.starts_with("--")) {
        const std::string key(a.substr(2));
        if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "true";  // boolean flag
        }
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const auto v = util::parse_int(it->second);
    if (!v) {
      std::cerr << "error: --" << key << " expects an integer\n";
      std::exit(2);
    }
    return *v;
  }
  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
}

rules::RuleSet load_rules(const std::string& path,
                          const telemetry::RowLayout& layout) {
  const auto parsed = rules::parse_rules(read_file(path), layout);
  for (const auto& e : parsed.errors)
    std::cerr << path << ":" << e.line << ": " << e.message << "\n";
  if (!parsed.ok()) std::exit(2);
  return parsed.rules;
}

int cmd_generate(const Args& args) {
  telemetry::GeneratorConfig cfg;
  cfg.num_racks = static_cast<int>(args.get_int("racks", 20));
  cfg.windows_per_rack = static_cast<int>(args.get_int("windows", 80));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto dataset = telemetry::generate_dataset(cfg);

  std::string corpus;
  for (const auto& w : telemetry::all_windows(dataset))
    corpus += args.has("coarse") ? telemetry::window_to_coarse_row(w)
                                 : telemetry::window_to_row(w);
  const std::string out = args.get("out", "");
  if (out.empty())
    std::cout << corpus;
  else
    write_file(out, corpus);
  std::cerr << "generated " << dataset.total_windows() << " windows ("
            << cfg.num_racks << " racks)\n";
  return 0;
}

int cmd_mine(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = telemetry::telemetry_row_layout(limits);
  const auto parsed =
      telemetry::parse_corpus(read_file(args.get("corpus", "corpus.txt")), limits);
  if (parsed.windows.empty()) {
    std::cerr << "error: corpus holds no valid rows (" << parsed.malformed
              << " malformed)\n";
    return 2;
  }
  rules::MinerConfig cfg;
  cfg.slack = static_cast<double>(args.get_int("slack-pct", 5)) / 100.0;
  auto report = rules::mine_rules(parsed.windows, layout, limits, cfg);
  rules::RuleSet set = args.has("coarse-only") ? report.rules.coarse_only()
                                               : std::move(report.rules);
  const std::string out = args.get("out", "");
  if (out.empty())
    std::cout << set.to_text();
  else
    write_file(out, set.to_text());
  std::cerr << "mined " << set.size() << " rules from "
            << parsed.windows.size() << " windows (" << report.bounds
            << " bounds, " << report.sums << " accounting, "
            << report.implications << " implications, " << report.pairwise
            << " pairwise; dropped " << report.dropped_by_validation
            << " in validation)\n";
  return 0;
}

int cmd_train(const Args& args) {
  const telemetry::Limits limits;
  const auto parsed =
      telemetry::parse_corpus(read_file(args.get("corpus", "corpus.txt")), limits);
  if (parsed.windows.empty()) {
    std::cerr << "error: corpus holds no valid rows\n";
    return 2;
  }
  const lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  std::vector<std::vector<int>> rows;
  for (const auto& w : parsed.windows)
    rows.push_back(tokenizer.encode(telemetry::window_to_row(w)));

  util::Rng init_rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  lm::Transformer model(
      lm::TransformerConfig{.vocab_size = tokenizer.vocab_size(),
                            .d_model = static_cast<int>(args.get_int("dmodel", 64)),
                            .n_layers = static_cast<int>(args.get_int("layers", 2)),
                            .n_heads = static_cast<int>(args.get_int("heads", 4)),
                            .d_ff = static_cast<int>(args.get_int("dff", 128)),
                            .max_seq = 64},
      init_rng);
  util::Rng train_rng(init_rng.next_u64());
  const auto report = lm::train_lm(
      model, rows,
      lm::TrainConfig{.steps = static_cast<int>(args.get_int("steps", 300)),
                      .batch_size = 16,
                      .adam = lm::AdamConfig{.lr = 2e-3f},
                      .warmup_steps = 20,
                      .log_every = 50},
      train_rng,
      [](int step, float loss) {
        std::cerr << "  step " << step << "  loss " << loss << "\n";
      });
  const std::string out = args.get("out", "model.bin");
  model.save(out);
  std::cerr << "trained " << model.num_parameters() << " params, loss "
            << report.first_loss << " -> " << report.final_loss
            << "; saved to " << out << "\n";
  return 0;
}

// Resilience knobs shared by synth and impute (see DESIGN.md §8).
core::ResilienceConfig resilience_from_args(const Args& args) {
  core::ResilienceConfig res;
  const std::string policy = args.get("on-unknown", "escalate");
  if (policy == "infeasible") {
    res.on_unknown = core::UnknownPolicy::kInfeasible;
  } else if (policy == "feasible") {
    res.on_unknown = core::UnknownPolicy::kFeasible;
  } else if (policy == "escalate") {
    res.on_unknown = core::UnknownPolicy::kEscalate;
  } else {
    std::cerr << "error: --on-unknown expects infeasible|feasible|escalate\n";
    std::exit(2);
  }
  res.check_deadline_ms = args.get_int("solver-deadline-ms", 0);
  res.row_deadline_ms = args.get_int("row-deadline-ms", 0);
  res.retry_budget = static_cast<int>(args.get_int("retry-budget", 0));
  return res;
}

// The full decoder configuration the resilience/plan/backend flags describe.
// Shared by the per-row commands (synth, impute) and the serve runtime,
// which hands the same config to every pooled session.
core::DecoderConfig decoder_config_from_args(const Args& args,
                                             const telemetry::RowLayout& layout,
                                             const rules::RuleSet& rules) {
  core::DecoderConfig config{.mode = core::GuidanceMode::kFull};
  config.solver.max_nodes = args.get_int("max-nodes", config.solver.max_nodes);
  config.resilience = resilience_from_args(args);
  config.cache = !args.has("no-solver-cache");
  // Abstract-interpretation prefilter (DESIGN.md §16): refutation-only, so
  // decodes are bit-identical either way; --no-absint exists for perf A/B
  // runs and debugging, mirroring --no-solver-cache.
  config.absint = !args.has("no-absint");
  // Solver substrate (DESIGN.md §12): in-process minismt, or an external
  // SMT-LIB2 subprocess with automatic degradation back to minismt.
  config.backend =
      smt::backend_config_from_spec(args.get("smt-backend", "minismt"),
                                    g_argv0);
  // Fail fast on contradictory/degenerate rule sets before any decode; the
  // analyzer's static hulls also pre-warm the feasibility cache.
  config.lint_on_load = args.has("lint");
  // Static decode plan (DESIGN.md §11): load a compiled artifact, or compile
  // one in-process. The fingerprint is checked here (not just in the decoder
  // constructor) so a stale artifact gets the documented exit code 1 rather
  // than the generic error exit.
  if (args.has("plan")) {
    plan::DecodePlan loaded = plan::from_json(read_file(args.get("plan", "")));
    if (loaded.fingerprint != plan::rule_set_fingerprint(rules, layout)) {
      std::cerr << "error: stale decode plan " << args.get("plan", "")
                << ": fingerprint does not match this rule set and layout "
                   "(recompile with `lejit_cli plan`)\n";
      std::exit(1);
    }
    // Translation validation before trusting the artifact (DESIGN.md §14):
    // every claim is re-proved through the same backend substrate the
    // decode will use. Decode output is bit-identical with or without this
    // gate — it only decides whether the artifact is used at all.
    if (args.has("verify-plan")) {
      plan::verify::Config vcfg;
      vcfg.check_max_nodes = config.solver.max_nodes;
      vcfg.backend = config.backend;
      const auto cert = plan::verify::run(loaded, rules, layout, vcfg);
      if (!cert.ok()) {
        std::cerr << "error: decode plan " << args.get("plan", "")
                  << " failed verification:\n"
                  << plan::verify::to_text(cert);
        std::exit(1);
      }
      std::cerr << "plan-verify: artifact certified (" << cert.solver_checks
                << " re-proof checks)\n";
    }
    config.plan = std::move(loaded);
  } else if (args.has("plan-compile")) {
    config.compile_plan = true;
  }
  return config;
}

core::GuidedDecoder make_decoder(const Args& args,
                                 const lm::Transformer& model,
                                 const lm::CharTokenizer& tokenizer,
                                 const telemetry::RowLayout& layout,
                                 rules::RuleSet rules) {
  core::DecoderConfig config = decoder_config_from_args(args, layout, rules);
  return core::GuidedDecoder(model, tokenizer, layout, std::move(rules),
                             config);
}

int cmd_synth(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = telemetry::telemetry_row_layout(limits);
  const lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  const lm::Transformer model =
      lm::Transformer::load(args.get("model", "model.bin"));
  auto decoder = make_decoder(args, model, tokenizer, layout,
                              load_rules(args.get("rules", "rules.txt"), layout));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const auto count = args.get_int("count", 10);
  std::size_t compliant = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const auto r = decoder.generate(rng);
    if (!r.ok) continue;
    std::cout << r.text << "\n";
    ++compliant;
  }
  std::cerr << "emitted " << compliant << "/" << count << " compliant rows\n";
  return 0;
}

int cmd_impute(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = telemetry::telemetry_row_layout(limits);
  const auto coarse_layout = telemetry::coarse_row_layout(limits);
  const lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  const lm::Transformer model =
      lm::Transformer::load(args.get("model", "model.bin"));
  auto decoder = make_decoder(args, model, tokenizer, layout,
                              load_rules(args.get("rules", "rules.txt"), layout));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  std::size_t done = 0, infeasible = 0;
  for (const auto line :
       util::split(read_file(args.get("prompts", "prompts.txt")), '\n')) {
    if (util::trim(line).empty()) continue;
    const auto coarse = telemetry::parse_row(line, coarse_layout);
    if (!coarse) {
      std::cerr << "skipping malformed prompt row: " << line << "\n";
      continue;
    }
    const auto r =
        decoder.generate(rng, telemetry::imputation_prompt(*coarse));
    if (r.infeasible_prompt) {
      ++infeasible;
      std::cerr << "infeasible prompt (rules contradict it): " << line << "\n";
      continue;
    }
    if (r.ok) {
      std::cout << r.text << "\n";
      ++done;
    }
  }
  std::cerr << "imputed " << done << " rows, " << infeasible
            << " infeasible prompts\n";
  return 0;
}

// Batched serving runtime (DESIGN.md §13): decode many rows through a pooled
// Server instead of a single sequential decoder, and report the realized
// throughput and batching. With --verify, the same workload is re-decoded
// sequentially and the outputs are compared byte for byte — serve's
// determinism contract says they must match exactly.
int cmd_serve_bench(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = telemetry::telemetry_row_layout(limits);
  const auto coarse_layout = telemetry::coarse_row_layout(limits);
  const lm::CharTokenizer tokenizer(telemetry::row_alphabet());
  const lm::Transformer model =
      lm::Transformer::load(args.get("model", "model.bin"));
  const rules::RuleSet rules =
      load_rules(args.get("rules", "rules.txt"), layout);
  const core::DecoderConfig decoder_config =
      decoder_config_from_args(args, layout, rules);

  // Synthesis rows by default; --prompts FILE switches to imputation over
  // the file's coarse rows.
  std::vector<std::string> prompts;
  if (args.has("prompts")) {
    for (const auto line :
         util::split(read_file(args.get("prompts", "")), '\n')) {
      if (util::trim(line).empty()) continue;
      const auto coarse = telemetry::parse_row(line, coarse_layout);
      if (!coarse) {
        std::cerr << "skipping malformed prompt row: " << line << "\n";
        continue;
      }
      prompts.push_back(telemetry::imputation_prompt(*coarse));
    }
  } else {
    prompts.assign(static_cast<std::size_t>(args.get_int("count", 64)),
                   std::string());
  }

  serve::ServeConfig serve_config;
  serve_config.workers = static_cast<int>(args.get_int("workers", 2));
  serve_config.batch = static_cast<int>(args.get_int("batch", 4));
  serve_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  serve::Server server(model, tokenizer, layout, rules, decoder_config,
                       serve_config);
  util::Timer timer;
  const auto results = server.run(prompts);
  const double seconds = timer.elapsed_seconds();
  const serve::ServeStats stats = server.stats();

  std::size_t ok = 0;
  for (const auto& r : results)
    if (r.ok) {
      std::cout << r.text << "\n";
      ++ok;
    }
  std::cerr << "serve: " << results.size() << " rows in "
            << util::format_double(seconds, 3) << "s ("
            << util::format_double(
                   seconds > 0.0 ? static_cast<double>(results.size()) / seconds
                                 : 0.0,
                   1)
            << " rows/s) with " << serve_config.workers << " worker(s) x "
            << serve_config.batch << " session(s); " << ok << " ok, "
            << stats.degraded_rows << " degraded; mean batch width "
            << util::format_double(stats.mean_batch_width(), 2) << " over "
            << stats.batched_forwards << " batched forwards\n";

  if (args.has("verify")) {
    core::GuidedDecoder decoder(model, tokenizer, layout, rules,
                                decoder_config);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
      util::Rng rng = core::row_rng(serve_config.seed, i, 0);
      const auto r = decoder.generate(rng, prompts[i]);
      if (r.text != results[i].text || r.ok != results[i].ok) ++mismatches;
    }
    std::cerr << "verify: " << (prompts.size() - mismatches) << "/"
              << prompts.size() << " rows bit-identical to sequential decode"
              << (mismatches ? " *** MISMATCH ***" : "") << "\n";
    if (mismatches) return 1;
  }
  return 0;
}

int cmd_check(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = telemetry::telemetry_row_layout(limits);
  const auto set = load_rules(args.get("rules", "rules.txt"), layout);
  const auto parsed =
      telemetry::parse_corpus(read_file(args.get("rows", "rows.txt")), limits);
  const auto stats = rules::check_violations(set, parsed.windows);
  std::cout << "rows: " << stats.windows << " (+" << parsed.malformed
            << " malformed)\nrules: " << stats.rules
            << "\nviolating rows: " << stats.violating_windows << " ("
            << util::format_double(stats.window_rate() * 100.0, 2)
            << "%)\n(row,rule) violations: " << stats.rule_violations << " ("
            << util::format_double(stats.pair_rate() * 100.0, 4) << "%)\n";
  return stats.violating_windows == 0 ? 0 : 1;
}

// Static rule-set analysis (DESIGN.md §10). Exit-code contract: 0 = no
// errors (warnings/notes allowed), 1 = at least one error finding (e.g. the
// set is unsatisfiable — the conflict subset is named), 2 = usage/IO/parse
// failure. `--json` swaps the text report for the machine-readable one.
int cmd_lint(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = args.has("coarse")
                          ? telemetry::coarse_row_layout(limits)
                          : telemetry::telemetry_row_layout(limits);
  const auto set = load_rules(args.get("rules", "rules.txt"), layout);

  lint::Config cfg;
  cfg.check_max_nodes = args.get_int("max-nodes", cfg.check_max_nodes);
  cfg.deadline_ms = args.get_int("deadline-ms", cfg.deadline_ms);
  if (args.has("no-dead-rules")) cfg.check_dead_rules = false;
  cfg.max_implying_subsets = static_cast<int>(
      args.get_int("max-implying-subsets", cfg.max_implying_subsets));

  const auto report = lint::analyze(set, layout, cfg);
  if (args.has("json"))
    std::cout << lint::to_json(report) << "\n";
  else
    std::cout << lint::to_text(report);
  std::cerr << "lint: " << set.size() << " rules, " << report.errors()
            << " errors, " << report.warnings() << " warnings ("
            << report.solver_checks << " solver checks)\n";
  return report.ok() ? 0 : 1;
}

// Compile a static decode plan (DESIGN.md §11) and emit it as a human
// summary or a JSON artifact for later `--plan FILE` loading. Exit-code
// contract mirrors lint: 0 = the plan is active (partition verified, rule
// set satisfiable), 1 = compiled but inactive (the decoder would fall back
// to unsliced queries — e.g. the set is unsatisfiable or verification ran
// out of budget), 2 = usage/IO/parse failure.
int cmd_plan(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = args.has("coarse")
                          ? telemetry::coarse_row_layout(limits)
                          : telemetry::telemetry_row_layout(limits);
  const auto set = load_rules(args.get("rules", "rules.txt"), layout);

  plan::Config cfg;
  cfg.check_max_nodes = args.get_int("max-nodes", cfg.check_max_nodes);
  cfg.deadline_ms = args.get_int("deadline-ms", cfg.deadline_ms);
  cfg.max_prefixes_per_field = static_cast<int>(
      args.get_int("max-prefixes", cfg.max_prefixes_per_field));
  if (args.has("no-tables")) cfg.build_tables = false;

  // Overwrite guard: an existing artifact compiled from a *different* rule
  // set/layout is someone's working state — refuse to clobber it unless
  // --force. Checked before the (expensive) compile via the fingerprint
  // alone; same-fingerprint recompiles overwrite freely.
  const std::string out = args.get("out", "");
  if (!out.empty() && !args.has("force")) {
    std::ifstream existing(out, std::ios::binary);
    if (existing) {
      std::ostringstream os;
      os << existing.rdbuf();
      const std::uint64_t ours = plan::rule_set_fingerprint(set, layout);
      bool same = false;
      try {
        same = plan::from_json(os.str()).fingerprint == ours;
      } catch (const std::exception&) {
        // Unparseable: not a plan we wrote, or a corrupt one. Either way,
        // treat it as foreign.
      }
      if (!same) {
        std::cerr << "error: " << out
                  << " exists and holds a different plan (fingerprint "
                     "mismatch or unparseable); pass --force to overwrite\n";
        return 2;
      }
    }
  }

  const auto plan = plan::compile(set, layout, cfg);
  if (args.has("json") || !out.empty()) {
    const std::string json = plan::to_json(plan);
    if (out.empty())
      std::cout << json << "\n";
    else
      write_file(out, json);
  }
  if (!args.has("json") || !out.empty())
    std::cout << plan::to_text(plan, set, layout);
  std::cerr << "plan: " << set.size() << " rules, " << plan.clusters.size()
            << " clusters, " << (plan.active() ? "active" : "inactive") << " ("
            << plan.solver_checks << " solver checks)"
            << (out.empty() ? "" : "; wrote " + out) << "\n";
  return plan.active() ? 0 : 1;
}

// Independent plan-certificate verification (DESIGN.md §14): re-prove every
// claim in a serialized decode plan against the rule set it says it was
// compiled from, sharing no verification code with `plan::compile`. Exit-code
// contract mirrors lint: 0 = certified (no error findings; warnings allowed),
// 1 = rejected (at least one error finding — the artifact must not be
// trusted), 2 = usage/IO/parse failure.
int cmd_plan_verify(const Args& args) {
  const telemetry::Limits limits;
  const auto layout = args.has("coarse")
                          ? telemetry::coarse_row_layout(limits)
                          : telemetry::telemetry_row_layout(limits);
  const auto set = load_rules(args.get("rules", "rules.txt"), layout);
  const auto plan = plan::from_json(read_file(args.get("plan", "plan.json")));

  plan::verify::Config cfg;
  cfg.check_max_nodes = args.get_int("max-nodes", cfg.check_max_nodes);
  cfg.deadline_ms = args.get_int("deadline-ms", cfg.deadline_ms);
  cfg.max_prefixes_per_field = static_cast<int>(
      args.get_int("max-prefixes", cfg.max_prefixes_per_field));
  cfg.sample_field_stride = static_cast<int>(
      args.get_int("sample-fields", cfg.sample_field_stride));
  cfg.max_rows_per_field =
      static_cast<int>(args.get_int("sample-rows", cfg.max_rows_per_field));
  if (args.has("no-tables")) cfg.check_tables = false;
  cfg.backend =
      smt::backend_config_from_spec(args.get("smt-backend", "minismt"),
                                    g_argv0);

  const auto cert = plan::verify::run(plan, set, layout, cfg);
  if (args.has("json"))
    std::cout << plan::verify::to_json(cert) << "\n";
  else
    std::cout << plan::verify::to_text(cert);
  std::cerr << "plan-verify: " << set.size() << " rules, "
            << cert.clusters_checked << " clusters, " << cert.errors()
            << " errors, " << cert.warnings() << " warnings ("
            << cert.solver_checks << " re-proof checks via "
            << cert.backend_name << ")\n";
  return cert.ok() ? 0 : 1;
}

// Differential verdict testing between the in-process minismt backend and
// an external SMT-LIB2 subprocess backend (DESIGN.md §12). Exit-code
// contract: 0 = every compared verdict agreed, 1 = at least one
// disagreement (the first repro goes to stdout), 2 = usage failure,
// 77 = no external solver available (the conventional "skip" exit, so test
// drivers can mark the run skipped rather than failed).
int cmd_smt_diff(const Args& args) {
  smt::diff::Config cfg;
  cfg.queries = args.get_int("queries", 1000);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const std::string spec = args.get("backend", "auto");
  smt::BackendConfig cand_cfg;
  if (spec == "auto") {
    const std::string path = smt::find_external_solver(g_argv0);
    if (path.empty()) {
      std::cerr << "smt-diff: no external solver found ($LEJIT_SMT_SOLVER, "
                   "z3/cvc5 on PATH, $LEJIT_SMTSERVE, or a sibling "
                   "lejit_smtserve); skipping\n";
      return 77;
    }
    cand_cfg = smt::backend_config_from_spec(path, g_argv0);
  } else if (spec == "self") {
    // The bundled reference server next to this binary — deterministic in
    // CI, where z3 may or may not be installed.
    const std::size_t slash = g_argv0.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : g_argv0.substr(0, slash + 1);
    const std::string path = dir + "lejit_smtserve";
    if (::access(path.c_str(), X_OK) != 0) {
      std::cerr << "smt-diff: " << path << " is not executable; skipping\n";
      return 77;
    }
    cand_cfg = smt::backend_config_from_spec(path, g_argv0);
  } else {
    cand_cfg = smt::backend_config_from_spec(spec, g_argv0);
    if (cand_cfg.kind != smt::BackendKind::kSubprocess) {
      std::cerr << "error: --backend must name an external solver "
                   "(auto|self|subprocess:<path>|<path>)\n";
      return 2;
    }
  }
  // Compare the subprocess's own verdicts, not the failover's.
  cand_cfg.degrade_to_minismt = false;

  const smt::SolverConfig ref_solver;  // stock in-process configuration
  const auto report = smt::diff::run(
      [&] { return std::make_unique<smt::MinismtBackend>(ref_solver); },
      [&] { return smt::make_backend(cand_cfg); }, cfg);
  std::cout << smt::diff::to_text(report);
  std::cerr << "smt-diff: candidate " << cand_cfg.solver_path << " vs minismt"
            << (report.ok() ? ": agreement" : ": MISMATCH") << "\n";
  return report.ok() ? 0 : 1;
}

// Differential soundness testing of the abstract interpreter (DESIGN.md
// §16.4): fuzzed rule sessions, pins, and completion/value/interval queries;
// every abstract refutation must be confirmed unsat by a real backend. The
// harness's own teeth are gated by --inject-unsound --expect-mismatch (a
// deliberately broken transfer function MUST be caught). Exit-code contract:
// 0 = pass (no mismatch, or mismatch when --expect-mismatch), 1 = soundness
// mismatch / vacuous run / expected mismatch not found, 2 = usage failure,
// 77 = --backend auto found no external solver (conventional skip).
int cmd_absint_diff(const Args& args) {
  absint::diff::Config cfg;
  cfg.queries = static_cast<int>(args.get_int("queries", 1000));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.domain.test_unsound_tighten = args.has("inject-unsound");
  const bool expect_mismatch = args.has("expect-mismatch");

  const std::string spec = args.get("backend", "minismt");
  absint::diff::BackendFactory factory;
  std::string backend_name = spec;
  if (spec == "minismt") {
    factory = [] { return std::make_unique<smt::MinismtBackend>(); };
  } else {
    smt::BackendConfig bc;
    if (spec == "auto") {
      const std::string path = smt::find_external_solver(g_argv0);
      if (path.empty()) {
        std::cerr << "absint-diff: no external solver found "
                     "($LEJIT_SMT_SOLVER, z3/cvc5 on PATH, $LEJIT_SMTSERVE, "
                     "or a sibling lejit_smtserve); skipping\n";
        return 77;
      }
      bc = smt::backend_config_from_spec(path, g_argv0);
    } else if (spec == "self") {
      const std::size_t slash = g_argv0.rfind('/');
      const std::string dir =
          slash == std::string::npos ? "" : g_argv0.substr(0, slash + 1);
      const std::string path = dir + "lejit_smtserve";
      if (::access(path.c_str(), X_OK) != 0) {
        std::cerr << "absint-diff: " << path << " is not executable; "
                     "skipping\n";
        return 77;
      }
      bc = smt::backend_config_from_spec(path, g_argv0);
    } else {
      bc = smt::backend_config_from_spec(spec, g_argv0);
      if (bc.kind != smt::BackendKind::kSubprocess) {
        std::cerr << "error: --backend must be minismt, auto, self, "
                     "subprocess:<path>, or a solver path\n";
        return 2;
      }
    }
    // The abstraction is measured against the external solver's own
    // verdicts, not the failover's.
    bc.degrade_to_minismt = false;
    backend_name = bc.solver_path;
    factory = [bc] { return smt::make_backend(bc); };
  }

  const absint::diff::Report report = absint::diff::run(cfg, factory);
  std::cout << absint::diff::to_text(report);
  if (expect_mismatch) {
    const bool caught = report.mismatches > 0;
    std::cerr << "absint-diff: expected-mismatch mode vs " << backend_name
              << (caught ? ": unsoundness caught as required"
                         : ": FAILED to catch the seeded unsoundness")
              << "\n";
    return caught ? 0 : 1;
  }
  std::cerr << "absint-diff: abstraction vs " << backend_name
            << (report.ok() ? ": sound"
                            : (report.mismatches > 0 ? ": UNSOUND"
                                                     : ": VACUOUS"))
            << "\n";
  return report.ok() ? 0 : 1;
}

void usage() {
  std::cerr <<
      "usage: lejit_cli <command> [--flag value ...]\n"
      "  generate --racks N --windows M --seed S [--coarse] [--out FILE]\n"
      "  mine     --corpus FILE [--coarse-only] [--slack-pct P] [--out FILE]\n"
      "  train    --corpus FILE [--steps N] [--dmodel D] [--out FILE]\n"
      "  synth    --model FILE --rules FILE [--count N] [--seed S]\n"
      "  impute   --model FILE --rules FILE --prompts FILE [--seed S]\n"
      "  serve-bench --model FILE --rules FILE [--count N | --prompts FILE]\n"
      "           [--workers W] [--batch B] [--seed S] [--verify]\n"
      "           decode rows through the batched serving runtime (W worker\n"
      "           groups x B pooled sessions, cross-row batched LM forwards)\n"
      "           and report throughput. --verify re-decodes sequentially\n"
      "           and exits 1 unless serve output is bit-identical\n"
      "  check    --rules FILE --rows FILE\n"
      "  lint     --rules FILE [--coarse] [--json] [--no-dead-rules]\n"
      "           static rule-set analysis: unsatisfiability (with a minimal\n"
      "           conflict subset), dead/subsumed rules, unbounded fields,\n"
      "           overflow hazards, digit-width slack. exit 0 = no errors,\n"
      "           1 = errors found, 2 = usage/IO/parse failure\n"
      "  plan     --rules FILE [--coarse] [--json] [--out FILE] [--force]\n"
      "           [--max-nodes N] [--deadline-ms MS] [--max-prefixes N]\n"
      "           [--no-tables]\n"
      "           compile a static decode plan: rule clusters for sliced\n"
      "           solver queries + solver-verified digit-mask tables, bound\n"
      "           to the rule set by fingerprint. refuses to overwrite an\n"
      "           --out artifact with a different fingerprint unless --force.\n"
      "           exit 0 = active plan, 1 = inactive (decoder would fall\n"
      "           back), 2 = usage/IO\n"
      "  plan-verify --plan FILE --rules FILE [--coarse] [--json]\n"
      "           [--smt-backend SPEC] [--max-nodes N] [--deadline-ms MS]\n"
      "           [--max-prefixes N] [--sample-fields K] [--sample-rows R]\n"
      "           [--no-tables]\n"
      "           translation validation: independently re-prove every claim\n"
      "           in a compiled plan artifact (fingerprint binding, cluster\n"
      "           partition, SAT verdicts, digit-mask table rows) without\n"
      "           sharing code with the compiler. --sample-fields K checks\n"
      "           every K-th field's table; --sample-rows R caps re-derived\n"
      "           rows per field (0 = all). exit 0 = certified, 1 = rejected,\n"
      "           2 = usage/IO/parse failure\n"
      "  smt-diff [--queries N] [--seed S] [--backend SPEC]\n"
      "           differential verdict testing: replay randomized rule\n"
      "           sessions through minismt and an external SMT-LIB2 solver,\n"
      "           fail on any sat/unsat disagreement. SPEC: auto (default;\n"
      "           exit 77 when no solver is found), self (the bundled\n"
      "           lejit_smtserve), subprocess:<path>, or a solver path.\n"
      "           exit 0 = agreement, 1 = mismatch, 77 = skipped\n"
      "  absint-diff [--queries N] [--seed S] [--backend SPEC]\n"
      "           [--inject-unsound] [--expect-mismatch]\n"
      "           differential soundness testing of the abstract\n"
      "           interpreter: every abstract refutation over fuzzed rule\n"
      "           sessions must be confirmed unsat by a real backend. SPEC:\n"
      "           minismt (default, in-process), auto (external solver; exit\n"
      "           77 when none is found), self (the bundled lejit_smtserve),\n"
      "           subprocess:<path>, or a solver path. --inject-unsound\n"
      "           breaks a transfer function on purpose; with\n"
      "           --expect-mismatch the run fails unless the harness catches\n"
      "           it. exit 0 = pass, 1 = unsound/vacuous, 77 = skipped\n"
      "resilience (synth, impute):\n"
      "  --on-unknown POLICY  inconclusive solver checks read as:\n"
      "                       infeasible|feasible|escalate (default escalate)\n"
      "  --max-nodes N        solver search-node cap per check (default 500000)\n"
      "  --solver-deadline-ms MS  wall-clock deadline per solver check\n"
      "  --row-deadline-ms MS     wall-clock ceiling per generated row\n"
      "  --retry-budget N     dead-end recoveries per row (default 0 = fail-stop)\n"
      "  --no-solver-cache    disable incremental solver reuse + feasibility\n"
      "                       caching (decodes are bit-identical either way;\n"
      "                       this exists for perf A/B runs and debugging)\n"
      "  --no-absint          disable the abstract-interpretation prefilter\n"
      "                       in front of the solver/cache (bit-identical\n"
      "                       either way; for perf A/B runs and debugging)\n"
      "  --lint               lint the rule set at load time and refuse to\n"
      "                       decode if it has errors (lint_on_load); clean\n"
      "                       sets seed the feasibility cache's static hulls\n"
      "  --plan FILE          load a compiled decode plan (from `plan --json`);\n"
      "                       a stale fingerprint exits 1. decodes stay\n"
      "                       bit-identical with or without a plan\n"
      "  --verify-plan        with --plan: independently re-verify the loaded\n"
      "                       artifact (as `plan-verify`) and exit 1 if it is\n"
      "                       rejected; decode output is unchanged either way\n"
      "  --plan-compile       compile a decode plan in-process before decoding\n"
      "  --smt-backend SPEC   solver substrate: minismt (default, in-process),\n"
      "                       auto (external solver when one is found),\n"
      "                       subprocess:<path> or a solver path. External\n"
      "                       backends degrade to minismt on crash/hang/\n"
      "                       garble (see smt.backend.* metrics)\n"
      "observability (any command):\n"
      "  --log-level LEVEL    stderr diagnostics: error|warn|info|debug|off\n"
      "                       (default off; LEJIT_LOG env is the fallback)\n"
      "  --metrics-out FILE   write a JSON metrics snapshot on exit\n"
      "  --trace-out FILE     write a chrome://tracing phase trace on exit\n";
}

// Applies --log-level/--metrics-out/--trace-out before the command runs and
// exports the requested files after it finishes (also on error exits, so a
// failed run still leaves its telemetry behind).
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_out_(args.get("metrics-out", "")),
        trace_out_(args.get("trace-out", "")) {
    if (args.has("log-level")) {
      obs::LogLevel level;
      if (!obs::Logger::parse_level(args.get("log-level", ""), &level)) {
        std::cerr << "error: --log-level expects error|warn|info|debug|off\n";
        std::exit(2);
      }
      obs::Logger::set_level(level);
    }
    if (!metrics_out_.empty() || !trace_out_.empty())
      obs::set_metrics_enabled(true);
    if (!trace_out_.empty()) obs::Tracer::instance().start_capture();
  }

  ~ObsSession() {
    try {
      if (!metrics_out_.empty()) {
        write_file(metrics_out_, obs::MetricsRegistry::instance().to_json());
        std::cerr << "wrote metrics to " << metrics_out_ << "\n";
      }
      if (!trace_out_.empty()) {
        obs::Tracer::instance().stop_capture();
        obs::Tracer::instance().write_trace(trace_out_);
        std::cerr << "wrote trace (" << obs::Tracer::instance().num_events()
                  << " events) to " << trace_out_ << "\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "error exporting telemetry: " << e.what() << "\n";
    }
  }

 private:
  std::string metrics_out_;
  std::string trace_out_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  g_argv0 = argv[0];
  const Args args(argc, argv);
  const ObsSession obs_session(args);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "mine") return cmd_mine(args);
    if (command == "train") return cmd_train(args);
    if (command == "synth") return cmd_synth(args);
    if (command == "impute") return cmd_impute(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
    if (command == "check") return cmd_check(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "plan") return cmd_plan(args);
    if (command == "plan-verify") return cmd_plan_verify(args);
    if (command == "smt-diff") return cmd_smt_diff(args);
    if (command == "absint-diff") return cmd_absint_diff(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage();
  return 2;
}
