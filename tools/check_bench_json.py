#!/usr/bin/env python3
"""Validate BENCH_*.json reports emitted by the bench harness (--json flag).

Usage:
  check_bench_json.py FILE [FILE ...]     validate specific report files
  check_bench_json.py --scan DIR          validate every BENCH_*.json under DIR
                                          (ok if none exist yet)
  check_bench_json.py --self-test         validate the checker itself against
                                          known-good and known-bad documents

Exit status 0 iff every checked document is valid. The required shape is the
contract future PRs regress against; extend REQUIRED_* in lockstep with
bench/harness.cpp's JsonReport::write().
"""

import argparse
import json
import pathlib
import sys

REQUIRED_TOP_KEYS = ("schema_version", "figure", "env", "tables", "metrics")
REQUIRED_ENV_KEYS = ("racks", "windows_per_rack", "test_racks", "seed",
                     "use_transformer", "train_steps")
REQUIRED_METRIC_KEYS = ("counters", "gauges", "histograms")
REQUIRED_HISTOGRAM_KEYS = ("count", "sum", "mean", "max", "p50", "p90", "p99")
# fig3_runtime carries the per-mode runtime/latency breakdown the ISSUE's
# acceptance criteria name explicitly.
REQUIRED_MODE_KEYS = ("name", "samples", "ms_per_sample", "wall_clock_s",
                      "solver_check_latency_us", "phase_seconds", "split",
                      "solver_propagations", "cache", "plan")
# Cache on/off comparison block the feasibility-cache PR's acceptance
# criteria read (--compare-cache).
REQUIRED_CACHE_ABLATION_KEYS = ("bit_identical", "propagations_on",
                                "propagations_off", "ms_per_sample_on",
                                "ms_per_sample_off")
# Plan on/off comparison block the decode-plan PR's acceptance criteria read
# (--compare-plan): decode.plan.* counters plus the propagation pair.
REQUIRED_PLAN_ABLATION_KEYS = ("bit_identical", "propagations_on",
                               "propagations_off", "ms_per_sample_on",
                               "ms_per_sample_off", "table_hits",
                               "sliced_queries", "slice_rule_fraction")
# Backend ablation block (--compare-backend): in-process vs subprocess vs
# degraded-subprocess runs of the mined workload. The block is optional in a
# report (pre-backend reports stay valid) but must be complete when present.
REQUIRED_BACKEND_ABLATION_KEYS = ("subprocess_available", "bit_identical",
                                  "ms_per_sample_inprocess",
                                  "ms_per_sample_subprocess",
                                  "ms_per_sample_degraded", "subprocess",
                                  "degraded_backend")
REQUIRED_BACKEND_STATS_KEYS = ("checks", "faults", "spawn_failures",
                               "respawns", "degraded")
# Absint ablation block (--compare-absint): the abstract-interpretation
# prefilter on/off runs of the mined workload. Optional in a report (pre-
# absint reports stay valid) but must be complete when present.
REQUIRED_ABSINT_ABLATION_KEYS = ("bit_identical", "prefilter_checks",
                                 "prefilter_hits", "solver_checks_on",
                                 "solver_checks_off", "propagations_on",
                                 "propagations_off", "ms_per_sample_on",
                                 "ms_per_sample_off")
# Serve sweep block (--compare-serve): the batched serving runtime's
# worker x batch throughput sweep, each configuration checked bit-identical
# against the sequential decode (BENCH_8.json, figure serve_throughput).
REQUIRED_SERVE_KEYS = ("rows", "seq_rows_per_sec", "bit_identical", "runs")
REQUIRED_SERVE_RUN_KEYS = ("workers", "batch", "rows_per_sec",
                           "speedup_vs_sequential", "mean_batch_width",
                           "batched_forwards", "degraded_rows",
                           "bit_identical")


def check_report(doc, errors, where):
    def err(msg):
        errors.append(f"{where}: {msg}")

    if not isinstance(doc, dict):
        err("top-level JSON value is not an object")
        return

    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            err(f"missing top-level key {key!r}")

    env = doc.get("env")
    if isinstance(env, dict):
        for key in REQUIRED_ENV_KEYS:
            if key not in env:
                err(f"env is missing {key!r}")
    elif env is not None:
        err("env is not an object")

    tables = doc.get("tables")
    if isinstance(tables, list):
        for i, table in enumerate(tables):
            if not isinstance(table, dict):
                err(f"tables[{i}] is not an object")
                continue
            for key in ("title", "headers", "rows"):
                if key not in table:
                    err(f"tables[{i}] is missing {key!r}")
            headers = table.get("headers", [])
            for j, row in enumerate(table.get("rows", [])):
                if isinstance(row, list) and isinstance(headers, list) and \
                        len(row) != len(headers):
                    err(f"tables[{i}].rows[{j}] has {len(row)} cells "
                        f"for {len(headers)} headers")
    elif tables is not None:
        err("tables is not an array")

    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for key in REQUIRED_METRIC_KEYS:
            if key not in metrics:
                err(f"metrics is missing {key!r}")
        for name, hist in (metrics.get("histograms") or {}).items():
            if not isinstance(hist, dict):
                err(f"metrics.histograms[{name!r}] is not an object")
                continue
            for key in REQUIRED_HISTOGRAM_KEYS:
                if key not in hist:
                    err(f"metrics.histograms[{name!r}] is missing {key!r}")
    elif metrics is not None:
        err("metrics is not an object")

    if doc.get("figure") == "fig3_runtime":
        modes = doc.get("modes")
        if not isinstance(modes, list) or not modes:
            err("fig3_runtime report has no 'modes' array")
        else:
            for i, mode in enumerate(modes):
                if not isinstance(mode, dict):
                    err(f"modes[{i}] is not an object")
                    continue
                for key in REQUIRED_MODE_KEYS:
                    if key not in mode:
                        err(f"modes[{i}] is missing {key!r}")
                lat = mode.get("solver_check_latency_us")
                if isinstance(lat, dict):
                    for key in ("count", "p50", "p90", "p99"):
                        if key not in lat:
                            err(f"modes[{i}].solver_check_latency_us "
                                f"is missing {key!r}")
                phases = mode.get("phase_seconds")
                if isinstance(phases, dict):
                    for key in ("lm_forward", "solver_check"):
                        if key not in phases:
                            err(f"modes[{i}].phase_seconds is missing {key!r}")
                cache = mode.get("cache")
                if isinstance(cache, dict):
                    for key in ("hits", "misses"):
                        if key not in cache:
                            err(f"modes[{i}].cache is missing {key!r}")
                plan = mode.get("plan")
                if isinstance(plan, dict):
                    for key in ("table_hits", "sliced_queries",
                                "sliced_rules"):
                        if key not in plan:
                            err(f"modes[{i}].plan is missing {key!r}")
        ablation = doc.get("cache_ablation")
        if not isinstance(ablation, dict):
            err("fig3_runtime report has no 'cache_ablation' object")
        else:
            for key in REQUIRED_CACHE_ABLATION_KEYS:
                if key not in ablation:
                    err(f"cache_ablation is missing {key!r}")
        plan_ablation = doc.get("plan_ablation")
        if not isinstance(plan_ablation, dict):
            err("fig3_runtime report has no 'plan_ablation' object")
        else:
            for key in REQUIRED_PLAN_ABLATION_KEYS:
                if key not in plan_ablation:
                    err(f"plan_ablation is missing {key!r}")
        backend_ablation = doc.get("backend_ablation")
        if isinstance(backend_ablation, dict):
            for key in REQUIRED_BACKEND_ABLATION_KEYS:
                if key not in backend_ablation:
                    err(f"backend_ablation is missing {key!r}")
            for block in ("subprocess", "degraded_backend"):
                stats = backend_ablation.get(block)
                if isinstance(stats, dict):
                    for key in REQUIRED_BACKEND_STATS_KEYS:
                        if key not in stats:
                            err(f"backend_ablation.{block} is missing {key!r}")
        elif backend_ablation is not None:
            err("backend_ablation is not an object")
        absint_ablation = doc.get("absint_ablation")
        if isinstance(absint_ablation, dict):
            for key in REQUIRED_ABSINT_ABLATION_KEYS:
                if key not in absint_ablation:
                    err(f"absint_ablation is missing {key!r}")
        elif absint_ablation is not None:
            err("absint_ablation is not an object")


def check_file(path):
    errors = []
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]
    check_report(doc, errors, str(path))
    return errors


def check_cache_ablation(path, slack=1.10):
    """Gate on the fig3 cache ablation: decodes must be bit-identical and the
    cached path must not be more than `slack`x slower than uncached (it is
    expected to be faster; the slack absorbs timer noise on tiny smoke runs).
    Returns a list of error strings (empty = pass)."""
    errors = check_file(path)
    if errors:
        return errors
    doc = json.loads(pathlib.Path(path).read_text())
    ablation = doc.get("cache_ablation") or {}
    errors = []
    if ablation.get("bit_identical") is not True:
        errors.append(f"{path}: cache on/off decodes are not bit-identical")
    on = float(ablation.get("ms_per_sample_on", 0.0))
    off = float(ablation.get("ms_per_sample_off", 0.0))
    if off <= 0.0:
        errors.append(f"{path}: uncached ms_per_sample is missing or zero")
    elif on > off * slack:
        errors.append(f"{path}: cached decode is {on:.3f} ms/sample vs "
                      f"{off:.3f} uncached (more than {slack:.2f}x slower)")
    if not errors:
        p_on = ablation.get("propagations_on", 0)
        p_off = ablation.get("propagations_off", 0)
        ratio = (p_off / p_on) if p_on else float("inf")
        speedup = (off / on) if on > 0 else float("inf")
        print(f"{path}: cache ablation ok — bit-identical, "
              f"{ratio:.1f}x fewer propagations, "
              f"{speedup:.2f}x faster per sample")
    return errors


def check_plan_ablation(path):
    """Gate on the fig3 plan ablation: decodes must be bit-identical with the
    plan on vs off, the plan must actually engage (table hits and sliced
    queries observed), and it must reduce total solver propagations over the
    workload. Returns a list of error strings (empty = pass)."""
    errors = check_file(path)
    if errors:
        return errors
    doc = json.loads(pathlib.Path(path).read_text())
    ablation = doc.get("plan_ablation") or {}
    errors = []
    if ablation.get("bit_identical") is not True:
        errors.append(f"{path}: plan on/off decodes are not bit-identical")
    if int(ablation.get("table_hits", 0)) <= 0:
        errors.append(f"{path}: plan never answered a verdict from its digit "
                      "tables (decode.plan.table_hits == 0)")
    if int(ablation.get("sliced_queries", 0)) <= 0:
        errors.append(f"{path}: plan never routed a query to a cluster slice "
                      "(decode.plan.sliced_queries == 0)")
    p_on = int(ablation.get("propagations_on", 0))
    p_off = int(ablation.get("propagations_off", 0))
    if p_off <= 0:
        errors.append(f"{path}: plan-off propagation count missing or zero")
    elif p_on >= p_off:
        errors.append(f"{path}: plan did not reduce solver propagations "
                      f"({p_on} with plan vs {p_off} without)")
    if not errors:
        frac = float(ablation.get("slice_rule_fraction", 0.0))
        print(f"{path}: plan ablation ok — bit-identical, "
              f"{p_off - p_on} fewer propagations, "
              f"{ablation['table_hits']} table hits, "
              f"{ablation['sliced_queries']} sliced queries "
              f"(mean {frac:.2f} of the rule set per slice)")
    return errors


def check_backend_ablation(path):
    """Gate on the fig3 backend ablation: the subprocess and degraded runs
    must decode bit-identically to the in-process run, and the degraded run
    must actually have exercised the fallback ladder. A missing report or a
    report that predates the backend layer is a clear skip (exit 0), never a
    traceback — baselines regenerate on their own cadence.
    Returns a list of error strings (empty = pass or skip)."""
    p = pathlib.Path(path)
    if not p.exists():
        print(f"{path}: no report to compare against; skipping backend gate")
        return []
    errors = check_file(path)
    if errors:
        return errors
    doc = json.loads(p.read_text())
    ablation = doc.get("backend_ablation")
    if not isinstance(ablation, dict):
        print(f"{path}: report predates the backend ablation; "
              "skipping backend gate")
        return []
    errors = []
    if ablation.get("bit_identical") is not True:
        errors.append(f"{path}: subprocess/degraded decodes are not "
                      "bit-identical to the in-process run")
    degraded = ablation.get("degraded_backend") or {}
    if int(degraded.get("degraded", 0)) <= 0:
        errors.append(f"{path}: degraded run never engaged the in-process "
                      "fallback (degraded_backend.degraded == 0)")
    # Once the primary is declared permanently unhealthy the failover routes
    # around it without touching it, so `degraded` can exceed `faults`; but a
    # degraded run with *no* recorded fault at all means the incident
    # accounting is broken.
    if int(degraded.get("degraded", 0)) > 0 \
            and int(degraded.get("faults", 0)) <= 0:
        errors.append(f"{path}: degraded run reports degraded checks but "
                      "zero backend faults — incident accounting is broken")
    if ablation.get("subprocess_available"):
        sub = ablation.get("subprocess") or {}
        if int(sub.get("checks", 0)) <= 0:
            errors.append(f"{path}: subprocess leg ran but served no checks")
    if not errors:
        where = (ablation.get("solver_path") or "unavailable") \
            if ablation.get("subprocess_available") else "skipped"
        print(f"{path}: backend ablation ok — bit-identical, "
              f"{degraded.get('degraded', 0)} checks degraded to fallback, "
              f"subprocess leg: {where}")
    return errors


def check_absint_ablation(path):
    """Gate on the fig3 absint ablation: decodes must be bit-identical with
    the abstract-interpretation prefilter on vs off (a refutation is a proof,
    so the prefilter may never change what gets decoded), the prefilter must
    actually refute something (prefilter_hits > 0), and it must reduce the
    number of solver checks over the workload. A missing FILE or a report
    that predates the absint layer is a clean skip (exit 0), never a
    traceback — baselines regenerate on their own cadence.
    Returns a list of error strings (empty = pass or skip)."""
    p = pathlib.Path(path)
    if not p.exists():
        print(f"{path}: no report to compare against; skipping absint gate")
        return []
    errors = check_file(path)
    if errors:
        return errors
    doc = json.loads(p.read_text())
    ablation = doc.get("absint_ablation")
    if not isinstance(ablation, dict):
        print(f"{path}: report predates the absint prefilter; "
              "skipping absint gate")
        return []
    errors = []
    if ablation.get("bit_identical") is not True:
        errors.append(f"{path}: absint on/off decodes are not bit-identical")
    hits = int(ablation.get("prefilter_hits", 0))
    checks = int(ablation.get("prefilter_checks", 0))
    if hits <= 0:
        errors.append(f"{path}: absint prefilter never refuted a probe "
                      "(decode.absint.prefilter_hits == 0)")
    if checks < hits:
        errors.append(f"{path}: absint prefilter accounting is broken "
                      f"({hits} hits out of {checks} checks)")
    s_on = int(ablation.get("solver_checks_on", 0))
    s_off = int(ablation.get("solver_checks_off", 0))
    if s_off <= 0:
        errors.append(f"{path}: absint-off solver check count missing or zero")
    elif s_on >= s_off:
        errors.append(f"{path}: absint prefilter did not reduce solver checks "
                      f"({s_on} with prefilter vs {s_off} without)")
    if not errors:
        print(f"{path}: absint ablation ok — bit-identical, prefilter "
              f"refuted {hits}/{checks} probes, solver checks "
              f"{s_off} -> {s_on}")
    return errors


def check_serve(path):
    """Gate on the serve throughput sweep (BENCH_8.json): every worker x
    batch configuration must decode bit-identically to the sequential
    reference with no degraded rows, and at least one multi-session
    configuration must have realized actual batching (mean width > 1).
    Throughput itself is reported, not gated — CI machines are too noisy for
    a speedup assertion. A missing FILE is a clean skip (exit 0), never a
    traceback — baselines regenerate on their own cadence.
    Returns a list of error strings (empty = pass or skip)."""
    p = pathlib.Path(path)
    if not p.exists():
        print(f"{path}: no report to compare against; skipping serve gate")
        return []
    errors = check_file(path)
    if errors:
        return errors
    doc = json.loads(p.read_text())
    serve = doc.get("serve")
    if not isinstance(serve, dict):
        print(f"{path}: report predates the serve runtime; "
              "skipping serve gate")
        return []
    errors = []
    for key in REQUIRED_SERVE_KEYS:
        if key not in serve:
            errors.append(f"{path}: serve is missing {key!r}")
    if serve.get("bit_identical") is not True:
        errors.append(f"{path}: serve decodes are not bit-identical to the "
                      "sequential reference")
    runs = serve.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append(f"{path}: serve has no 'runs' array")
        runs = []
    batched_width = 0.0
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            errors.append(f"{path}: serve.runs[{i}] is not an object")
            continue
        for key in REQUIRED_SERVE_RUN_KEYS:
            if key not in run:
                errors.append(f"{path}: serve.runs[{i}] is missing {key!r}")
        if run.get("bit_identical") is not True:
            errors.append(f"{path}: serve.runs[{i}] "
                          f"({run.get('workers')}x{run.get('batch')}) is not "
                          "bit-identical")
        if int(run.get("degraded_rows", 0)) != 0:
            errors.append(f"{path}: serve.runs[{i}] degraded "
                          f"{run['degraded_rows']} row(s)")
        if float(run.get("rows_per_sec", 0.0)) <= 0.0:
            errors.append(f"{path}: serve.runs[{i}] reports no throughput")
        if int(run.get("workers", 0)) * int(run.get("batch", 0)) > 1:
            batched_width = max(batched_width,
                                float(run.get("mean_batch_width", 0.0)))
    if runs and batched_width <= 1.0:
        errors.append(f"{path}: no multi-session configuration realized any "
                      f"batching (best mean width {batched_width:.2f})")
    if not errors:
        best = max((float(r.get("rows_per_sec", 0.0)) for r in runs),
                   default=0.0)
        seq = float(serve.get("seq_rows_per_sec", 0.0))
        print(f"{path}: serve sweep ok — {len(runs)} configs bit-identical, "
              f"best {best:.1f} rows/s vs {seq:.1f} sequential, "
              f"best mean batch width {batched_width:.2f}")
    return errors


def self_test():
    good = {
        "schema_version": 1,
        "figure": "fig3_runtime",
        "env": {"racks": 30, "windows_per_rack": 80, "test_racks": 5,
                "seed": 20250705, "use_transformer": True, "train_steps": 400},
        "modes": [{
            "name": "LeJIT (mined rules)", "samples": 40,
            "ms_per_sample": 12.5, "wall_clock_s": 0.5,
            "solver_check_latency_us":
                {"count": 900, "p50": 40.0, "p90": 90.0, "p99": 200.0},
            "phase_seconds": {"lm_forward": 0.2, "solver_check": 0.25,
                              "mask_build": 0.27, "sampling": 0.01},
            "lm_forwards": 400,
            "solver_propagations": 120000,
            "cache": {"hits": 500, "misses": 400},
            "plan": {"table_hits": 0, "sliced_queries": 0, "sliced_rules": 0},
            "split": {"lm_forward_frac": 0.44, "solver_check_frac": 0.56},
        }],
        "cache_ablation": {
            "bit_identical": True,
            "propagations_on": 120000, "propagations_off": 480000,
            "ms_per_sample_on": 12.5, "ms_per_sample_off": 20.0,
            "cache_hits": 500, "cache_misses": 400,
        },
        "plan_ablation": {
            "bit_identical": True,
            "propagations_on": 100000, "propagations_off": 120000,
            "ms_per_sample_on": 12.0, "ms_per_sample_off": 12.5,
            "table_hits": 240, "sliced_queries": 900,
            "slice_rule_fraction": 0.4, "compile_solver_checks": 6000,
        },
        "backend_ablation": {
            "subprocess_available": True, "solver_path": "/usr/bin/z3",
            "bit_identical": True,
            "ms_per_sample_inprocess": 12.5,
            "ms_per_sample_subprocess": 19.0,
            "ms_per_sample_degraded": 13.0,
            "subprocess": {"checks": 900, "faults": 0, "spawn_failures": 0,
                           "respawns": 0, "degraded": 0},
            "degraded_backend": {"checks": 900, "faults": 900,
                                 "spawn_failures": 4, "respawns": 0,
                                 "degraded": 900},
        },
        "absint_ablation": {
            "bit_identical": True,
            "prefilter_checks": 800, "prefilter_hits": 150,
            "solver_checks_on": 750, "solver_checks_off": 900,
            "propagations_on": 110000, "propagations_off": 120000,
            "ms_per_sample_on": 12.2, "ms_per_sample_off": 12.5,
        },
        "tables": [{"title": "t", "headers": ["a", "b"],
                    "rows": [["1", "2"]]}],
        "metrics": {"counters": {"smt.checks": 900}, "gauges": {},
                    "histograms": {"smt.check_latency_us": {
                        "count": 900, "sum": 1.0, "mean": 0.1, "max": 3.0,
                        "p50": 0.04, "p90": 0.09, "p99": 0.2}}},
    }
    errors = []
    check_report(good, errors, "self-test-good")
    if errors:
        print("self-test FAILED: known-good document rejected:",
              file=sys.stderr)
        for e in errors:
            print("  " + e, file=sys.stderr)
        return False

    bad_documents = [
        {},  # everything missing
        {**good, "env": {"racks": 1}},  # env incomplete
        {**good, "metrics": {"counters": {}}},  # metrics incomplete
        {**good, "modes": [{"name": "x"}]},  # mode incomplete
        {**good, "tables": [{"title": "t", "headers": ["a"],
                             "rows": [["1", "2"]]}]},  # ragged table
        {k: v for k, v in good.items()
         if k != "cache_ablation"},  # ablation block missing
        {**good, "cache_ablation": {"bit_identical": True}},  # incomplete
        {k: v for k, v in good.items()
         if k != "plan_ablation"},  # plan ablation missing
        {**good, "plan_ablation": {"bit_identical": True}},  # incomplete
        {**good, "modes": [{**good["modes"][0],
                            "plan": {"table_hits": 1}}]},  # plan incomplete
        {**good, "backend_ablation": {"bit_identical": True}},  # incomplete
        {**good, "backend_ablation": {
            **good["backend_ablation"],
            "degraded_backend": {"checks": 1}}},  # stats block incomplete
        {**good, "absint_ablation": {"bit_identical": True}},  # incomplete
    ]
    for i, bad in enumerate(bad_documents):
        errors = []
        check_report(bad, errors, f"self-test-bad-{i}")
        if not errors:
            print(f"self-test FAILED: known-bad document {i} accepted",
                  file=sys.stderr)
            return False

    # A report lacking the backend block (pre-backend baseline) must stay
    # valid, and --compare-backend against a missing file must be a clean
    # skip rather than a traceback.
    errors = []
    check_report({k: v for k, v in good.items() if k != "backend_ablation"},
                 errors, "self-test-no-backend-block")
    if errors:
        print("self-test FAILED: report without backend_ablation rejected",
              file=sys.stderr)
        return False
    if check_backend_ablation("/nonexistent/self-test/BENCH_7.json"):
        print("self-test FAILED: missing baseline did not skip cleanly",
              file=sys.stderr)
        return False
    if check_serve("/nonexistent/self-test/BENCH_8.json"):
        print("self-test FAILED: missing serve report did not skip cleanly",
              file=sys.stderr)
        return False
    # Same contract for the absint gate: a missing baseline and a report
    # that predates the block are both clean skips, never failures.
    if check_absint_ablation("/nonexistent/self-test/BENCH_10.json"):
        print("self-test FAILED: missing absint report did not skip cleanly",
              file=sys.stderr)
        return False
    errors = []
    check_report({k: v for k, v in good.items() if k != "absint_ablation"},
                 errors, "self-test-no-absint-block")
    if errors:
        print("self-test FAILED: report without absint_ablation rejected",
              file=sys.stderr)
        return False

    # The serve gate itself: a good sweep passes, a mismatched or width-less
    # one fails.
    import tempfile
    good_serve = {
        "schema_version": 1, "figure": "serve_throughput",
        "env": good["env"], "tables": [], "metrics": good["metrics"],
        "serve": {
            "rows": 48, "seq_rows_per_sec": 370.0, "bit_identical": True,
            "runs": [
                {"workers": 1, "batch": 1, "rows_per_sec": 400.0,
                 "speedup_vs_sequential": 1.08, "mean_batch_width": 1.0,
                 "batched_forwards": 375, "degraded_rows": 0,
                 "bit_identical": True},
                {"workers": 1, "batch": 4, "rows_per_sec": 420.0,
                 "speedup_vs_sequential": 1.13, "mean_batch_width": 3.2,
                 "batched_forwards": 116, "degraded_rows": 0,
                 "bit_identical": True},
            ],
        },
    }
    bad_serves = [
        {**good_serve, "serve": {**good_serve["serve"],
                                 "bit_identical": False}},
        {**good_serve, "serve": {**good_serve["serve"], "runs": [
            {**good_serve["serve"]["runs"][1], "degraded_rows": 2}]}},
        {**good_serve, "serve": {**good_serve["serve"], "runs": [
            {**good_serve["serve"]["runs"][1], "mean_batch_width": 1.0}]}},
    ]
    with tempfile.TemporaryDirectory() as tmp:
        p = pathlib.Path(tmp) / "BENCH_8.json"
        p.write_text(json.dumps(good_serve))
        if check_serve(p):
            print("self-test FAILED: known-good serve sweep rejected",
                  file=sys.stderr)
            return False
        for i, bad in enumerate(bad_serves):
            p.write_text(json.dumps(bad))
            if not check_serve(p):
                print(f"self-test FAILED: known-bad serve sweep {i} accepted",
                      file=sys.stderr)
                return False

    # The absint gate itself: the known-good document passes; a decode
    # mismatch, a prefilter that never fired, and a prefilter that failed to
    # shed any solver checks must each fail.
    bad_absints = [
        {**good["absint_ablation"], "bit_identical": False},
        {**good["absint_ablation"], "prefilter_hits": 0},
        {**good["absint_ablation"], "solver_checks_on": 900},
        {**good["absint_ablation"], "prefilter_hits": 1000},  # hits > checks
    ]
    with tempfile.TemporaryDirectory() as tmp:
        p = pathlib.Path(tmp) / "BENCH_10.json"
        p.write_text(json.dumps(good))
        if check_absint_ablation(p):
            print("self-test FAILED: known-good absint ablation rejected",
                  file=sys.stderr)
            return False
        for i, bad in enumerate(bad_absints):
            p.write_text(json.dumps({**good, "absint_ablation": bad}))
            if not check_absint_ablation(p):
                print(f"self-test FAILED: known-bad absint ablation {i} "
                      "accepted", file=sys.stderr)
                return False
    print("self-test passed")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="report files to validate")
    parser.add_argument("--scan", metavar="DIR",
                        help="also validate every BENCH_*.json under DIR")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's own sanity checks")
    parser.add_argument("--compare-cache", metavar="FILE",
                        help="validate FILE and fail unless its cache_ablation"
                             " shows bit-identical decodes with the cached"
                             " path no more than 10%% slower than uncached")
    parser.add_argument("--compare-plan", metavar="FILE",
                        help="validate FILE and fail unless its plan_ablation"
                             " shows bit-identical decodes, table hits and"
                             " sliced queries observed, and fewer solver"
                             " propagations with the plan on")
    parser.add_argument("--compare-serve", metavar="FILE",
                        help="validate FILE and fail unless its serve sweep"
                             " shows every worker x batch configuration"
                             " bit-identical to the sequential decode with no"
                             " degraded rows and realized batching; a missing"
                             " FILE or a report without the block is a clear"
                             " skip")
    parser.add_argument("--compare-absint", metavar="FILE",
                        help="validate FILE and fail unless its"
                             " absint_ablation shows bit-identical decodes,"
                             " prefilter hits observed, and fewer solver"
                             " checks with the prefilter on; a missing FILE"
                             " or a report without the block is a clear skip")
    parser.add_argument("--compare-backend", metavar="FILE",
                        help="validate FILE and fail unless its"
                             " backend_ablation shows subprocess/degraded"
                             " decodes bit-identical to in-process with the"
                             " fallback ladder engaged; a missing FILE or a"
                             " report without the block is a clear skip")
    args = parser.parse_args()

    ok = True
    if args.self_test:
        ok = self_test() and ok

    if args.compare_cache:
        errors = check_cache_ablation(args.compare_cache)
        for e in errors:
            print(e, file=sys.stderr)
        ok = not errors and ok

    if args.compare_plan:
        errors = check_plan_ablation(args.compare_plan)
        for e in errors:
            print(e, file=sys.stderr)
        ok = not errors and ok

    if args.compare_serve:
        errors = check_serve(args.compare_serve)
        for e in errors:
            print(e, file=sys.stderr)
        ok = not errors and ok

    if args.compare_absint:
        errors = check_absint_ablation(args.compare_absint)
        for e in errors:
            print(e, file=sys.stderr)
        ok = not errors and ok

    if args.compare_backend:
        errors = check_backend_ablation(args.compare_backend)
        for e in errors:
            print(e, file=sys.stderr)
        ok = not errors and ok

    files = [pathlib.Path(f) for f in args.files]
    if args.scan:
        files.extend(sorted(pathlib.Path(args.scan).rglob("BENCH_*.json")))
    if not files and not args.self_test and not args.compare_cache \
            and not args.compare_plan and not args.compare_serve \
            and not args.compare_absint and not args.compare_backend:
        parser.error("nothing to do: pass files, --scan, --compare-cache, "
                     "--compare-plan, --compare-serve, --compare-absint, "
                     "--compare-backend, or --self-test")

    for path in files:
        errors = check_file(path)
        if errors:
            ok = False
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: ok")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
