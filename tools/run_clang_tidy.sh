#!/bin/sh
# Run clang-tidy (config: .clang-tidy at the repo root) over every in-tree
# translation unit, using the compile_commands.json of an existing build.
#
#   usage: run_clang_tidy.sh [build-dir]    (default: ./build)
#
# Exit codes: 0 clean, 1 findings (or a TU failed to process), 77 when
# clang-tidy or compile_commands.json is unavailable — the lint_cxx ctest
# declares SKIP_RETURN_CODE 77, so missing tooling reports as SKIPPED, not
# as a pass or a failure.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no $BUILD_DIR/compile_commands.json" >&2
  echo "  (configure with cmake first; CMAKE_EXPORT_COMPILE_COMMANDS is on)" >&2
  exit 77
fi

# All in-tree sources that appear in the compile database (imported deps and
# generated files are excluded by construction).
FILES=$(find src tools tests bench examples -name '*.cpp' 2>/dev/null | sort)
[ -n "$FILES" ] || { echo "run_clang_tidy: no sources found" >&2; exit 77; }

STATUS=0
for f in $FILES; do
  clang-tidy --quiet -p "$BUILD_DIR" "$f" || STATUS=1
done
exit $STATUS
