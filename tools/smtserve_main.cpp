// lejit_smtserve — the bundled SMT-LIB2 reference server.
//
// Speaks the smtlib2.hpp dialect on stdin/stdout, answering with the
// in-process minismt. It exists so smt::SubprocessBackend, `lejit_cli
// smt-diff`, and the subprocess lifecycle tests have a real external solver
// to fork on machines where z3/cvc5 are not installed; with an external
// solver present, prefer it (`--smt-backend=auto` does).
//
// LEJIT_SMTSERVE_MAX_NODES caps the per-check search budget.
#include <iostream>

#include "smt/smtlib2.hpp"

int main() {
  std::ios::sync_with_stdio(false);
  return lejit::smt::smtlib2::run_server(std::cin, std::cout);
}
