#!/bin/sh
# End-to-end translation validation through the CLI (DESIGN.md §14).
#
# Usage: run_plan_verify.sh <lejit_cli> [rules-dir] [backend-mode]
#   backend-mode: minismt (default) — in-process re-proofs
#                 require-external  — re-prove through an out-of-process
#                 solver: z3/cvc5 from PATH, else the bundled lejit_smtserve
#                 next to the CLI, else exit 77 (ctest SKIPPED)
#
# Stages, for every rule set in rules-dir (*.rules; *.coarse.rules run
# under the coarse layout):
#   1. `plan --out` compiles an artifact (and must be active, exit 0)
#   2. `plan-verify` certifies the clean artifact (exit 0)
#   3. a tampered fingerprint is rejected (exit 1, the "rejected" code —
#      not 2, which would mean the verifier crashed on it)
#   4. a forged full-set verdict is rejected (exit 1)
#   5. recompiling the same set over its own artifact succeeds without
#      --force; compiling a *different* set over it refuses with exit 2
#      until --force is passed
set -u

CLI="${1:?usage: run_plan_verify.sh <lejit_cli> [rules-dir] [backend-mode]}"
RULES_DIR="${2:-$(dirname "$0")/../examples/rules}"
MODE="${3:-minismt}"

BACKEND="minismt"
if [ "${MODE}" = "require-external" ]; then
  if command -v z3 >/dev/null 2>&1; then
    BACKEND=$(command -v z3)
  elif command -v cvc5 >/dev/null 2>&1; then
    BACKEND=$(command -v cvc5)
  else
    SIBLING="$(dirname "${CLI}")/lejit_smtserve"
    if [ -x "${SIBLING}" ]; then
      BACKEND="${SIBLING}"
    else
      echo "run_plan_verify.sh: no external solver available; skipping" >&2
      exit 77
    fi
  fi
fi
echo "run_plan_verify.sh: re-proof backend: ${BACKEND}" >&2

TMP=$(mktemp -d) || exit 1
trap 'rm -rf "${TMP}"' EXIT
fail() { echo "run_plan_verify.sh: FAIL: $*" >&2; exit 1; }

SETS=0
for RULES in "${RULES_DIR}"/*.rules; do
  [ -e "${RULES}" ] || fail "no rule sets in ${RULES_DIR}"
  SETS=$((SETS + 1))
  NAME=$(basename "${RULES}")
  COARSE=""
  case "${NAME}" in *.coarse.rules) COARSE="--coarse" ;; esac
  PLAN="${TMP}/${NAME}.plan.json"

  "${CLI}" plan --rules "${RULES}" ${COARSE} --out "${PLAN}" \
    >/dev/null 2>&1 || fail "${NAME}: plan compile not active"

  "${CLI}" plan-verify --plan "${PLAN}" --rules "${RULES}" ${COARSE} \
    --smt-backend "${BACKEND}" >/dev/null 2>&1 \
    || fail "${NAME}: clean artifact was not certified"

  # Flip the leading fingerprint nibble: binding must break, exit 1.
  FIRST=$(sed -n 's/.*"fingerprint": *"\(.\).*/\1/p' "${PLAN}")
  REPL=0
  [ "${FIRST}" = "0" ] && REPL=1
  sed "s/\"fingerprint\": *\"./\"fingerprint\":\"${REPL}/" "${PLAN}" \
    > "${TMP}/tampered.json"
  "${CLI}" plan-verify --plan "${TMP}/tampered.json" --rules "${RULES}" \
    ${COARSE} --smt-backend "${BACKEND}" >/dev/null 2>&1
  [ $? -eq 1 ] || fail "${NAME}: tampered fingerprint not rejected with exit 1"

  # Forge the recorded full-set verdict (first "satisfiable" member in the
  # document is the global one): the re-proof must refute it, exit 1.
  sed 's/"satisfiable": *"sat"/"satisfiable":"unsat"/' "${PLAN}" \
    > "${TMP}/forged.json"
  "${CLI}" plan-verify --plan "${TMP}/forged.json" --rules "${RULES}" \
    ${COARSE} --smt-backend "${BACKEND}" >/dev/null 2>&1
  [ $? -eq 1 ] || fail "${NAME}: forged verdict not rejected with exit 1"

  # Overwrite guard: same set recompiles freely, a different set refuses
  # (exit 2) until --force.
  "${CLI}" plan --rules "${RULES}" ${COARSE} --out "${PLAN}" \
    >/dev/null 2>&1 || fail "${NAME}: same-set recompile refused"
  { cat "${RULES}"; echo "total >= 0"; } > "${TMP}/other.rules"
  "${CLI}" plan --rules "${TMP}/other.rules" ${COARSE} --out "${PLAN}" \
    >/dev/null 2>&1
  [ $? -eq 2 ] || fail "${NAME}: foreign overwrite not refused with exit 2"
  "${CLI}" plan --rules "${TMP}/other.rules" ${COARSE} --out "${PLAN}" \
    --force >/dev/null 2>&1 || fail "${NAME}: --force overwrite failed"

  echo "run_plan_verify.sh: ${NAME}: certified + 2 tampers rejected" >&2
done

[ "${SETS}" -gt 0 ] || fail "no rule sets in ${RULES_DIR}"
echo "run_plan_verify.sh: OK (${SETS} rule sets)" >&2
exit 0
