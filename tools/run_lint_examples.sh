#!/bin/sh
# Run `lejit_cli lint` over every checked-in example rule set and assert the
# documented exit-code contract: 0 = no errors (the examples must stay
# lint-clean), and 2 = usage/IO failure for a missing file. Files named
# *.coarse.rules are linted against the coarse layout.
#
# Usage: run_lint_examples.sh <lejit_cli> <rules-dir>
set -u

CLI="${1:?usage: run_lint_examples.sh <lejit_cli> <rules-dir>}"
DIR="${2:?usage: run_lint_examples.sh <lejit_cli> <rules-dir>}"

found=0
for rules in "${DIR}"/*.rules; do
  [ -e "${rules}" ] || continue
  found=1
  coarse=""
  case "${rules}" in *.coarse.rules) coarse="--coarse" ;; esac
  echo "run_lint_examples.sh: lint ${rules} ${coarse}" >&2
  "${CLI}" lint --rules "${rules}" ${coarse}
  code=$?
  if [ "${code}" -ne 0 ]; then
    echo "run_lint_examples.sh: FAIL: ${rules} exited ${code} (want 0)" >&2
    exit 1
  fi
  # The JSON report must be produced under the same contract.
  "${CLI}" lint --rules "${rules}" ${coarse} --json > /dev/null
  code=$?
  if [ "${code}" -ne 0 ]; then
    echo "run_lint_examples.sh: FAIL: ${rules} --json exited ${code}" >&2
    exit 1
  fi
done

if [ "${found}" -eq 0 ]; then
  echo "run_lint_examples.sh: FAIL: no *.rules files in ${DIR}" >&2
  exit 1
fi

# Usage/IO failures must exit 2, not 0/1 — callers distinguish "rule set has
# errors" from "could not even read it".
"${CLI}" lint --rules "${DIR}/no_such_file.rules" > /dev/null 2>&1
code=$?
if [ "${code}" -ne 2 ]; then
  echo "run_lint_examples.sh: FAIL: missing file exited ${code} (want 2)" >&2
  exit 1
fi

echo "run_lint_examples.sh: OK" >&2
exit 0
