#!/bin/sh
# Bench smoke test: run bench_fig3_runtime on a tiny --smoke configuration,
# validate the emitted JSON against the schema checker, and gate on the
# four ablations: cache (on/off decodes bit-identical; cached path no more
# than 10% slower than uncached), decode plan (on/off decodes bit-identical;
# table hits and sliced queries observed; fewer solver propagations), solver
# backend (subprocess/degraded decodes bit-identical to in-process; the
# degradation ladder engaged), and absint (prefilter on/off decodes
# bit-identical; prefilter hits observed; fewer solver checks).
#
# Usage: run_bench_smoke.sh BENCH_BINARY CHECKER_PY OUT_JSON [PYTHON3]
set -u
BENCH="$1"
CHECKER="$2"
OUT="$3"
PY="${4:-python3}"

STAGE=none
run() {
  STAGE="$1"
  shift
  echo "[bench_smoke] stage: $STAGE" >&2
  if ! "$@"; then
    echo "[bench_smoke] FAILED at stage: $STAGE" >&2
    exit 1
  fi
}

rm -f "$OUT"
run bench "$BENCH" --smoke --json "$OUT"
run json-exists test -s "$OUT"
run validate "$PY" "$CHECKER" "$OUT"
run compare-cache "$PY" "$CHECKER" --compare-cache "$OUT"
run compare-plan "$PY" "$CHECKER" --compare-plan "$OUT"
run compare-backend "$PY" "$CHECKER" --compare-backend "$OUT"
run compare-absint "$PY" "$CHECKER" --compare-absint "$OUT"
echo "[bench_smoke] all stages passed" >&2
