#include "fault/fault.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace lejit::fault {

std::string_view site_name(Site s) noexcept {
  switch (s) {
    case Site::kSolverCheck: return "solver_check";
    case Site::kLmForward: return "lm_forward";
    case Site::kBatchRow: return "batch_row";
    case Site::kSubprocessKill: return "subprocess_kill";
    case Site::kSubprocessHang: return "subprocess_hang";
    case Site::kSubprocessGarble: return "subprocess_garble";
    case Site::kCount: break;
  }
  return "?";
}

namespace {

// splitmix64 — a high-quality 64→64 mixer; decision k at a site is a pure
// function of (seed, site, k), independent of everything else in the process.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform_of(std::uint64_t seed, Site site, std::uint64_t k) noexcept {
  const std::uint64_t h =
      mix(seed ^ mix(static_cast<std::uint64_t>(site) + 1) ^ mix(k));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

obs::Counter& injected_counter(const char* what) {
  return obs::MetricsRegistry::instance().counter(std::string("fault.") + what);
}

}  // namespace

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

void Injector::arm(Plan plan) {
  disarm();
  plan_ = std::move(plan);
  for (auto& c : call_index_) c.store(0, std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
  unknowns_.store(0, std::memory_order_relaxed);
  throws_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
  row_faults_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void Injector::disarm() noexcept {
  armed_.store(false, std::memory_order_release);
}

bool Injector::on_call(Site site) {
  if (!armed()) return false;
  const auto i = static_cast<std::size_t>(site);
  const SiteConfig& cfg = plan_.sites[i];
  if (cfg.p_unknown <= 0.0 && cfg.p_throw <= 0.0 && cfg.p_delay <= 0.0)
    return false;

  const std::uint64_t k =
      call_index_[i].fetch_add(1, std::memory_order_relaxed);
  calls_.fetch_add(1, std::memory_order_relaxed);
  const double u = uniform_of(plan_.seed, site, k);

  if (u < cfg.p_unknown) {
    unknowns_.fetch_add(1, std::memory_order_relaxed);
    injected_counter("injected_unknowns").inc();
    return true;
  }
  if (u < cfg.p_unknown + cfg.p_throw) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    injected_counter("injected_throws").inc();
    throw InjectedFault(std::string("injected fault at ") +
                        std::string(site_name(site)) + " call #" +
                        std::to_string(k));
  }
  if (u < cfg.p_unknown + cfg.p_throw + cfg.p_delay) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    injected_counter("injected_delays").inc();
    if (cfg.delay_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.delay_us));
  }
  return false;
}

void Injector::on_batch_row(std::size_t row, int attempt) {
  if (!armed()) return;
  for (const auto& [r, attempts] : plan_.fail_rows) {
    if (r != row || attempt >= attempts) continue;
    row_faults_.fetch_add(1, std::memory_order_relaxed);
    injected_counter("injected_row_faults").inc();
    throw InjectedFault("injected fault at batch row " + std::to_string(row) +
                        " attempt " + std::to_string(attempt));
  }
}

Counts Injector::counts() const noexcept {
  Counts c;
  c.calls = calls_.load(std::memory_order_relaxed);
  c.unknowns = unknowns_.load(std::memory_order_relaxed);
  c.throws = throws_.load(std::memory_order_relaxed);
  c.delays = delays_.load(std::memory_order_relaxed);
  c.row_faults = row_faults_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace lejit::fault
