// Deterministic fault injection for resilience testing.
//
// The decode hot path has three places where the real world can hurt it: a
// solver check can come back inconclusive (budget/deadline exhaustion), an LM
// forward pass can fail or stall (a remote inference backend), and a whole
// batch row can die (a poisoned prompt, an OOM'd worker). The `Injector`
// simulates all three on demand so the resilience machinery — kUnknown
// policies, dead-end recovery, per-row isolation — can be exercised by
// ordinary ctest runs instead of waiting for production incidents.
//
// Design rules, mirroring `obs`:
//   1. Near-zero cost when disarmed: every hook reduces to one relaxed
//      atomic load. Production binaries carry the hooks; nothing happens
//      unless a test (or a CLI flag) arms a plan.
//   2. Deterministic given a seed. A decision for the k-th call at a site is
//      a pure hash of (seed, site, k), so a single-threaded run replays
//      bit-identically. Under a thread pool the per-site call order is
//      schedule-dependent, but the *rate* of injected faults is not — stress
//      tests assert on aggregate counts, which the injector also reports.
//   3. Scripted faults for targeted scenarios: "row 5 fails its first two
//      attempts" is expressed directly, independent of probabilities.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace lejit::fault {

// Thrown by armed hooks (and nothing else); catchable where a subsystem
// wants to distinguish injected faults from real ones.
class InjectedFault : public util::RuntimeError {
 public:
  using util::RuntimeError::RuntimeError;
};

// Hook sites. Extend here (and in site_name) as new subsystems grow hooks.
enum class Site : int {
  kSolverCheck = 0,  // smt::Solver::check_assuming → force kUnknown
  kLmForward,        // lm::LanguageModel::logits → throw / stall
  kBatchRow,         // core batch row attempt → throw (scripted only)
  // smt::SubprocessBackend wire faults. These are *fire* sites: p_unknown is
  // the probability the fault fires (see inject_fire), and the backend turns
  // a firing into the real failure path — SIGKILLing its child, simulating a
  // wedged read, or corrupting the answer — so tests exercise exactly the
  // code a crashed/hung/buggy external solver would.
  kSubprocessKill,    // kill the child under a live check (crash path)
  kSubprocessHang,    // child never answers (timeout path)
  kSubprocessGarble,  // child answers garbage (protocol-error path)
  kCount,
};

std::string_view site_name(Site s) noexcept;

// Per-site probabilistic behavior. Probabilities are evaluated in the order
// unknown → throw → delay against one uniform draw, so they partition: a
// call suffers at most one fault kind and p_unknown + p_throw + p_delay
// should stay <= 1.
struct SiteConfig {
  double p_unknown = 0.0;     // kSolverCheck only: report kUnknown
  double p_throw = 0.0;       // throw InjectedFault from the hook
  double p_delay = 0.0;       // stall the call for delay_us
  std::int64_t delay_us = 0;  // injected latency per delayed call
};

// A complete injection scenario.
struct Plan {
  std::uint64_t seed = 1;
  std::array<SiteConfig, static_cast<int>(Site::kCount)> sites{};

  // Scripted row faults: {row index, attempts}. The row's first `attempts`
  // generation attempts throw InjectedFault; attempt numbers past that
  // succeed. Use attempts > the batch's retry limit to force a degraded row.
  std::vector<std::pair<std::size_t, int>> fail_rows;

  SiteConfig& site(Site s) { return sites[static_cast<std::size_t>(s)]; }
  const SiteConfig& site(Site s) const {
    return sites[static_cast<std::size_t>(s)];
  }
};

// What the injector actually did — the ground truth stress tests compare
// observability counters against.
struct Counts {
  std::int64_t calls = 0;     // armed hook evaluations (probabilistic sites)
  std::int64_t unknowns = 0;  // forced kUnknown results
  std::int64_t throws = 0;    // InjectedFault thrown (probabilistic sites)
  std::int64_t delays = 0;    // stalled calls
  std::int64_t row_faults = 0;  // scripted batch-row throws
};

class Injector {
 public:
  static Injector& instance();

  // Install `plan` and start injecting. Counts are zeroed. Not reentrant
  // with in-flight hooks of a previous plan; arm/disarm from test setup, not
  // from worker threads.
  void arm(Plan plan);
  void disarm() noexcept;
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  // Probabilistic hook. Returns true when the call must degrade to
  // kUnknown; may sleep (delay) or throw InjectedFault instead. No-op
  // returning false when disarmed.
  bool on_call(Site site);

  // Scripted hook: throws InjectedFault iff `plan.fail_rows` schedules a
  // fault for this (row, attempt). Attempt numbers start at 0.
  void on_batch_row(std::size_t row, int attempt);

  Counts counts() const noexcept;

 private:
  Injector() = default;

  std::atomic<bool> armed_{false};
  Plan plan_;
  std::array<std::atomic<std::uint64_t>, static_cast<int>(Site::kCount)>
      call_index_{};
  std::atomic<std::int64_t> calls_{0};
  std::atomic<std::int64_t> unknowns_{0};
  std::atomic<std::int64_t> throws_{0};
  std::atomic<std::int64_t> delays_{0};
  std::atomic<std::int64_t> row_faults_{0};
};

// Arms `plan` for the current scope; disarms on destruction. The standard
// way for a test to bound the blast radius of an injection scenario.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { Injector::instance().arm(std::move(plan)); }
  ~ScopedPlan() { Injector::instance().disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

// Hot-path helpers: one relaxed load when disarmed.
inline bool inject_unknown(Site site) {
  Injector& i = Injector::instance();
  return i.armed() && i.on_call(site);
}
inline void inject(Site site) {
  Injector& i = Injector::instance();
  if (i.armed()) i.on_call(site);
}
// Generic "should this site's fault fire now?" — same mechanics as
// inject_unknown (the site's p_unknown is the firing probability), named for
// sites whose fault is not a kUnknown verdict (the subprocess kill/hang/
// garble sites).
inline bool inject_fire(Site site) { return inject_unknown(site); }

}  // namespace lejit::fault
