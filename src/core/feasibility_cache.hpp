// Memoized solver verdicts for the decode hot path (DESIGN.md §9).
//
// The guided decoder asks the solver the same shapes of question over and
// over: "can digit-prefix P of field F still complete?" (one per candidate
// character per step), "is exact value V feasible for F?" (terminators), and
// "is the pinned state satisfiable at all?" (prompt + kHull post-pin checks).
// Each answer is a pure function of the rule set (fixed per decoder) and the
// pins/bans layered on top of it, so verdicts can be reused across recovery
// replays and across rows whenever that layered state recurs.
//
// Keys carry a rolling order-sensitive fingerprint of every pin and ban the
// current attempt has asserted; a hit is only possible when the solver would
// see an identical problem. Entries record raw smt::CheckResult — including
// kUnknown — and the decoder maps cached kUnknowns through its UnknownPolicy
// exactly as it maps organic ones.
//
// A per-field Hull entry additionally caches the feasible interval (exact
// when computed by binary search, else a bounds-consistent over-approximation)
// plus a few known-feasible witness values, so most candidate checks resolve
// by pure interval arithmetic: a completion range that misses the hull is
// conclusively infeasible; one that contains a witness is conclusively
// feasible. Only inconclusive candidates reach the solver.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "smt/linexpr.hpp"
#include "smt/solver.hpp"

namespace lejit::core {

// Rolling fingerprint of the decoder's pin/ban state. Order-sensitive by
// design (cheap, and the decoder's assert order is deterministic); `tag`
// separates assertion kinds so a pin and a ban of the same value cannot
// collide. Seed with kPinFingerprintSeed at attempt start.
inline constexpr std::uint64_t kPinFingerprintSeed = 0x9e3779b97f4a7c15ull;
inline constexpr int kPinTagPin = 1;
inline constexpr int kPinTagBan = 2;
std::uint64_t mix_pin(std::uint64_t fp, int tag, int field, smt::Int value);

// What a cached verdict answered (same fingerprint, field, value, digits can
// legitimately be asked all three ways).
enum class QueryKind : std::uint8_t {
  kCompletion = 0,  // prefix_completion_formula(field, value/digits) sat?
  kExact = 1,       // field == value sat?
  kPinned = 2,      // current pinned state sat (no assumptions)?
};

class FeasibilityCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;   // generational clears
    std::int64_t hull_hits = 0;   // find_hull found an entry
    std::int64_t static_hits = 0; // … a lint-seeded static hull answered
  };

  struct Hull {
    smt::Interval bounds = smt::Interval::empty();
    // True when `bounds` is the exact feasible min/max (binary search), false
    // for a bounds-consistent over-approximation — still sound for refuting
    // completions that miss it entirely.
    bool exact = false;
    std::vector<smt::Int> witnesses;  // known-feasible values, deduped, capped

    void add_witness(smt::Int v);
    bool has_witness(smt::Int v) const;
  };

  explicit FeasibilityCache(std::size_t max_entries = std::size_t{1} << 18);

  // Verdict memo. lookup() counts a hit/miss in obs and local stats.
  std::optional<smt::CheckResult> lookup(QueryKind kind, std::uint64_t fp,
                                         int field, smt::Int value, int digits);
  void store(QueryKind kind, std::uint64_t fp, int field, smt::Int value,
             int digits, smt::CheckResult verdict);

  // Per-(fingerprint, field) hull memo. The returned copy is detached from
  // the cache — store_hull() writes back accumulated witnesses. At the
  // attempt-start fingerprint (kPinFingerprintSeed ⇔ no pins or bans
  // asserted) a miss falls back to the lint-seeded static hull, whose exact
  // bounds and witnesses are valid there.
  std::optional<Hull> find_hull(std::uint64_t fp, int field);
  void store_hull(std::uint64_t fp, int field, const Hull& hull);

  // Static per-field hulls computed by lint::analyze over the bare rule set
  // (index-aligned with the layout's fields). Their *bounds* over-approximate
  // the feasible set under any additional pins/bans — sound to intersect
  // into any fingerprint's hull — while exactness and witnesses only hold at
  // the seed fingerprint. Survive clear() and generational eviction: they
  // derive from the rule set, not from decode state.
  void seed_static_hulls(std::vector<Hull> hulls);
  // The seeded hull for `field`, or nullptr when none was seeded.
  const Hull* static_hull(int field) const;

  const Stats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept {
    return verdicts_.size() + hulls_.size();
  }
  void clear();

 private:
  struct Key {
    std::uint64_t fp = 0;
    smt::Int value = 0;
    std::int32_t field = 0;
    std::int32_t digits = 0;
    std::uint8_t kind = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct HullKey {
    std::uint64_t fp = 0;
    std::int32_t field = 0;
    bool operator==(const HullKey&) const = default;
  };
  struct HullKeyHash {
    std::size_t operator()(const HullKey& k) const noexcept;
  };

  void maybe_evict();

  std::size_t max_entries_;
  std::unordered_map<Key, smt::CheckResult, KeyHash> verdicts_;
  std::unordered_map<HullKey, Hull, HullKeyHash> hulls_;
  std::vector<Hull> static_hulls_;  // lint-seeded, per layout field
  Stats stats_;
};

}  // namespace lejit::core
