// Fleet-scale batch decoding.
//
// The paper's workload is 30K imputations over a rack fleet (§4.1); this
// driver runs such workloads across worker threads. Each worker owns its own
// GuidedDecoder (decoders hold solver state, and the transformer's KV cache
// makes even inference non-reentrant), created through a caller-supplied
// factory. Sampling is deterministic and *schedule-independent*: window i is
// always decoded with an RNG forked from (seed, i), so the results are
// bit-identical to a sequential run regardless of thread count.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "core/decoder.hpp"
#include "telemetry/schema.hpp"

namespace lejit::core {

struct BatchConfig {
  // 0 = one worker per hardware thread.
  int threads = 0;
  std::uint64_t seed = 1;

  // Per-row fault isolation. When a row's generate() throws, the row is
  // retried up to row_retries times (with exponential backoff starting at
  // retry_backoff_us); if every attempt throws, the row is reported as
  // degraded (FailReason::kFault, the exception text in fail_detail) and the
  // rest of the batch proceeds. Disable to restore fail-fast: the first
  // throwing row aborts the whole batch.
  bool isolate_rows = true;
  int row_retries = 1;
  std::int64_t retry_backoff_us = 0;
};

using DecoderFactory = std::function<std::unique_ptr<GuidedDecoder>()>;

// Deterministic per-row RNG: depends only on (seed, row, attempt), so results
// are schedule-independent. Attempt 0 reproduces the pre-isolation derivation
// exactly. Shared with the serve runtime (src/serve/), which must decode a
// given (seed, row) pair bit-identically to this batch driver.
util::Rng row_rng(std::uint64_t seed, std::size_t row, int attempt) noexcept;

// Microseconds to sleep before retry `attempt` (>= 1): retry_backoff_us
// doubled per prior attempt, with the exponent clamped and the result capped
// at 1 s — naive `base << (attempt - 1)` overflows long before attempt 64 and
// is undefined behavior from there on.
std::uint64_t retry_backoff_for_attempt(std::int64_t retry_backoff_us,
                                        int attempt) noexcept;

struct BatchReport {
  std::vector<DecodeResult> results;  // in input order
  std::size_t ok = 0;
  std::size_t infeasible_prompts = 0;
  std::size_t dead_ends = 0;
  // Rows whose every attempt ended in an exception (FailReason::kFault).
  std::size_t degraded_rows = 0;
  // Row attempts beyond the first, across the whole batch.
  std::size_t row_retries = 0;
  double wall_seconds = 0.0;
};

// Impute every window (prompt = its coarse prefix). `make_decoder` is called
// once per worker and must produce independent decoders over the same model
// and rule set.
BatchReport impute_batch(const DecoderFactory& make_decoder,
                         std::span<const telemetry::Window> windows,
                         const BatchConfig& config = {});

// Unconditional generation of `count` rows (the synthesis task).
BatchReport synthesize_batch(const DecoderFactory& make_decoder,
                             std::size_t count,
                             const BatchConfig& config = {});

}  // namespace lejit::core
