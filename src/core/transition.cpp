#include "core/transition.hpp"

#include "util/error.hpp"

namespace lejit::core {

int digits_for(Int v) {
  LEJIT_REQUIRE(v >= 0, "digits_for of negative value");
  int d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

smt::Formula prefix_completion_formula(smt::VarId v, const DigitPrefix& prefix,
                                       int max_digits) {
  LEJIT_REQUIRE(!prefix.empty(), "completion of empty prefix");
  LEJIT_REQUIRE(prefix.digits <= max_digits, "prefix longer than digit budget");

  using smt::LinExpr;
  std::vector<smt::Formula> cases;
  cases.push_back(smt::eq(LinExpr(v), LinExpr(prefix.value)));

  if (prefix.can_extend(max_digits)) {
    // Saturating arithmetic: a near-Int-limit prefix (see
    // DigitPrefix::extended) must clamp instead of overflowing; the clamped
    // range still lies above every declared domain, so the case is harmless.
    Int scale = 1;
    for (int m = 1; m <= max_digits - prefix.digits; ++m) {
      scale = smt::sat_mul(scale, 10);
      const Int lo = smt::sat_mul(prefix.value, scale);
      const Int hi = smt::sat_add(lo, scale - 1);
      cases.push_back(smt::between(LinExpr(v), LinExpr(lo), LinExpr(hi)));
    }
  }
  return smt::lor(std::move(cases));
}

bool prefix_syntactically_ok(const DigitPrefix& prefix, int max_digits) {
  return !prefix.empty() && prefix.digits <= max_digits;
}

bool completion_intersects(const DigitPrefix& prefix, int max_digits,
                           const smt::Interval& hull) {
  LEJIT_REQUIRE(!prefix.empty(), "completion of empty prefix");
  if (hull.is_empty()) return false;
  if (hull.contains(prefix.value)) return true;
  if (!prefix.can_extend(max_digits)) return false;
  Int scale = 1;
  for (int m = 1; m <= max_digits - prefix.digits; ++m) {
    scale = smt::sat_mul(scale, 10);
    const Int lo = smt::sat_mul(prefix.value, scale);
    const Int hi = smt::sat_add(lo, scale - 1);
    if (lo <= hull.hi && hull.lo <= hi) return true;
  }
  return false;
}

bool completion_contains(const DigitPrefix& prefix, int max_digits, Int value) {
  LEJIT_REQUIRE(!prefix.empty(), "completion of empty prefix");
  if (value == prefix.value) return true;
  if (!prefix.can_extend(max_digits)) return false;
  Int scale = 1;
  for (int m = 1; m <= max_digits - prefix.digits; ++m) {
    scale = smt::sat_mul(scale, 10);
    const Int lo = smt::sat_mul(prefix.value, scale);
    const Int hi = smt::sat_add(lo, scale - 1);
    if (lo <= value && value <= hi) return true;
  }
  return false;
}

}  // namespace lejit::core
