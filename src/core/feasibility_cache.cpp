#include "core/feasibility_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace lejit::core {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct CacheCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& hull_hits;
  obs::Counter& static_hits;
};

CacheCounters& counters() {
  auto& registry = obs::MetricsRegistry::instance();
  static CacheCounters c{
      registry.counter("decode.cache.hits"),
      registry.counter("decode.cache.misses"),
      registry.counter("decode.cache.evictions"),
      registry.counter("decode.cache.hull_hits"),
      registry.counter("decode.cache.static_hits"),
  };
  return c;
}

constexpr std::size_t kMaxWitnesses = 8;

}  // namespace

std::uint64_t mix_pin(std::uint64_t fp, int tag, int field, smt::Int value) {
  fp = mix64(fp ^ static_cast<std::uint64_t>(tag));
  fp = mix64(fp ^ static_cast<std::uint64_t>(field));
  fp = mix64(fp ^ static_cast<std::uint64_t>(value));
  return fp;
}

void FeasibilityCache::Hull::add_witness(smt::Int v) {
  if (witnesses.size() >= kMaxWitnesses || has_witness(v)) return;
  witnesses.push_back(v);
}

bool FeasibilityCache::Hull::has_witness(smt::Int v) const {
  return std::find(witnesses.begin(), witnesses.end(), v) != witnesses.end();
}

FeasibilityCache::FeasibilityCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(max_entries, 16)) {}

std::size_t FeasibilityCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.fp;
  h = mix64(h ^ static_cast<std::uint64_t>(k.value));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.field))
                 | (static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(k.digits))
                    << 32)));
  h = mix64(h ^ k.kind);
  return static_cast<std::size_t>(h);
}

std::size_t FeasibilityCache::HullKeyHash::operator()(
    const HullKey& k) const noexcept {
  return static_cast<std::size_t>(
      mix64(k.fp ^ static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(k.field))));
}

std::optional<smt::CheckResult> FeasibilityCache::lookup(QueryKind kind,
                                                         std::uint64_t fp,
                                                         int field,
                                                         smt::Int value,
                                                         int digits) {
  const Key key{fp, value, field, digits, static_cast<std::uint8_t>(kind)};
  const auto it = verdicts_.find(key);
  if (it == verdicts_.end()) {
    ++stats_.misses;
    if (obs::metrics_enabled()) counters().misses.inc();
    return std::nullopt;
  }
  ++stats_.hits;
  if (obs::metrics_enabled()) counters().hits.inc();
  return it->second;
}

void FeasibilityCache::store(QueryKind kind, std::uint64_t fp, int field,
                             smt::Int value, int digits,
                             smt::CheckResult verdict) {
  maybe_evict();
  const Key key{fp, value, field, digits, static_cast<std::uint8_t>(kind)};
  verdicts_[key] = verdict;
}

std::optional<FeasibilityCache::Hull> FeasibilityCache::find_hull(
    std::uint64_t fp, int field) {
  const auto it = hulls_.find(HullKey{fp, field});
  if (it == hulls_.end()) {
    // Lint-seeded hulls are computed over the bare rule set, so their
    // exactness and witnesses hold only where no pin or ban has been
    // asserted — exactly the attempt-start fingerprint.
    if (fp == kPinFingerprintSeed && static_hull(field) != nullptr) {
      ++stats_.hull_hits;
      ++stats_.static_hits;
      if (obs::metrics_enabled()) {
        counters().hull_hits.inc();
        counters().static_hits.inc();
      }
      return *static_hull(field);
    }
    return std::nullopt;
  }
  ++stats_.hull_hits;
  if (obs::metrics_enabled()) counters().hull_hits.inc();
  return it->second;
}

void FeasibilityCache::store_hull(std::uint64_t fp, int field,
                                  const Hull& hull) {
  maybe_evict();
  hulls_[HullKey{fp, field}] = hull;
}

void FeasibilityCache::seed_static_hulls(std::vector<Hull> hulls) {
  static_hulls_ = std::move(hulls);
}

const FeasibilityCache::Hull* FeasibilityCache::static_hull(int field) const {
  if (field < 0 || static_cast<std::size_t>(field) >= static_hulls_.size())
    return nullptr;
  return &static_hulls_[static_cast<std::size_t>(field)];
}

void FeasibilityCache::maybe_evict() {
  if (size() < max_entries_) return;
  // Generational clear: simple, O(1) amortized, and the decoder re-warms the
  // current field within a handful of checks. LRU bookkeeping on this path
  // would cost more than the occasional re-solve it saves.
  verdicts_.clear();
  hulls_.clear();
  ++stats_.evictions;
  if (obs::metrics_enabled()) counters().evictions.inc();
}

void FeasibilityCache::clear() {
  verdicts_.clear();
  hulls_.clear();
}

}  // namespace lejit::core
