#include "core/batch.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "fault/fault.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "telemetry/text.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace lejit::core {

util::Rng row_rng(std::uint64_t seed, std::size_t row, int attempt) noexcept {
  return util::Rng(seed ^ (0x9e3779b97f4a7c15ULL * (row + 1)) ^
                       (static_cast<std::uint64_t>(attempt) *
                        0xda942042e4dd58b5ULL),
                   2 * row + 1);
}

std::uint64_t retry_backoff_for_attempt(std::int64_t retry_backoff_us,
                                        int attempt) noexcept {
  if (retry_backoff_us <= 0 || attempt <= 0) return 0;
  constexpr std::uint64_t kMaxBackoffUs = 1'000'000;  // 1 s ceiling
  const auto base = static_cast<std::uint64_t>(retry_backoff_us);
  const int shift = std::min(attempt - 1, 63);
  // base << shift could overflow (and for shift >= 64 the naive expression
  // is UB outright), so compare against the ceiling by shifting right.
  if (base > (kMaxBackoffUs >> shift)) return kMaxBackoffUs;
  return base << shift;
}

namespace {

BatchReport run_batch(const DecoderFactory& make_decoder, std::size_t count,
                      const BatchConfig& config,
                      const std::function<std::string(std::size_t)>& prompt_of) {
  LEJIT_REQUIRE(make_decoder != nullptr, "null decoder factory");

  BatchReport report;
  report.results.resize(count);
  if (count == 0) return report;

  int threads = config.threads;
  if (threads <= 0)
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), count));

  util::Timer timer;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> degraded{0};
  // Every worker-level failure, each tagged with the row (or setup phase)
  // it happened in; all of them are surfaced in the thrown message.
  std::vector<std::string> failure_messages;
  std::mutex failure_mutex;

  const auto record_failure = [&](const std::string& where,
                                  const char* what) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    failed.store(true);
    failure_messages.push_back(where + ": " + what);
  };

  // Decode row i, absorbing exceptions when isolation is on: retry with
  // exponential backoff, then report the row degraded instead of taking the
  // batch down with it.
  const auto decode_row = [&](GuidedDecoder& decoder, std::size_t i) {
    const int max_attempts = 1 + std::max(0, config.row_retries);
    std::string last_error;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        ++retries;
        const std::uint64_t backoff_us =
            retry_backoff_for_attempt(config.retry_backoff_us, attempt);
        if (backoff_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<std::int64_t>(backoff_us)));
      }
      // Schedule-independent determinism: the RNG depends only on
      // (seed, i, attempt) — see row_rng.
      util::Rng rng = row_rng(config.seed, i, attempt);
      try {
        fault::Injector::instance().on_batch_row(i, attempt);
        report.results[i] = decoder.generate(rng, prompt_of(i));
        return;
      } catch (const std::exception& e) {
        if (!config.isolate_rows) throw;
        last_error = e.what();
        LEJIT_LOG_WARN("batch row " + std::to_string(i) + " attempt " +
                       std::to_string(attempt + 1) + "/" +
                       std::to_string(max_attempts) + " failed: " +
                       last_error);
      }
    }
    // All attempts threw: report a degraded row in place.
    DecodeResult& r = report.results[i];
    r = DecodeResult{};
    r.reason = FailReason::kFault;
    r.fail_detail = "row " + std::to_string(i) + " degraded after " +
                    std::to_string(max_attempts) + " attempt(s): " +
                    last_error;
    ++degraded;
    LEJIT_LOG_ERROR(r.fail_detail);
  };

  const auto worker = [&]() {
    std::unique_ptr<GuidedDecoder> decoder;
    try {
      decoder = make_decoder();
      LEJIT_REQUIRE(decoder != nullptr, "decoder factory returned null");
    } catch (const std::exception& e) {
      record_failure("worker setup", e.what());
      return;
    }
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count || failed.load()) break;
      try {
        decode_row(*decoder, i);
      } catch (const std::exception& e) {
        record_failure("row " + std::to_string(i), e.what());
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (failed.load()) {
    std::ostringstream msg;
    msg << "batch worker failed (" << failure_messages.size()
        << " failure(s))";
    for (const auto& m : failure_messages) msg << "; " << m;
    throw util::RuntimeError(msg.str());
  }

  report.wall_seconds = timer.elapsed_seconds();
  report.row_retries = retries.load();
  report.degraded_rows = degraded.load();
  for (const auto& r : report.results) {
    if (r.ok) ++report.ok;
    if (r.infeasible_prompt) ++report.infeasible_prompts;
    if (r.dead_end) ++report.dead_ends;
  }
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("batch.rows").add(static_cast<std::int64_t>(count));
    registry.counter("batch.row_retries")
        .add(static_cast<std::int64_t>(report.row_retries));
    registry.counter("batch.degraded_rows")
        .add(static_cast<std::int64_t>(report.degraded_rows));
  }
  return report;
}

}  // namespace

BatchReport impute_batch(const DecoderFactory& make_decoder,
                         std::span<const telemetry::Window> windows,
                         const BatchConfig& config) {
  return run_batch(make_decoder, windows.size(), config,
                   [&windows](std::size_t i) {
                     return telemetry::imputation_prompt(windows[i]);
                   });
}

BatchReport synthesize_batch(const DecoderFactory& make_decoder,
                             std::size_t count, const BatchConfig& config) {
  return run_batch(make_decoder, count, config,
                   [](std::size_t) { return std::string(); });
}

}  // namespace lejit::core
