#include "core/batch.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "telemetry/text.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace lejit::core {

namespace {

BatchReport run_batch(const DecoderFactory& make_decoder, std::size_t count,
                      const BatchConfig& config,
                      const std::function<std::string(std::size_t)>& prompt_of) {
  LEJIT_REQUIRE(make_decoder != nullptr, "null decoder factory");

  BatchReport report;
  report.results.resize(count);
  if (count == 0) return report;

  int threads = config.threads;
  if (threads <= 0)
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), count));

  util::Timer timer;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::string failure_message;
  std::mutex failure_mutex;

  const auto worker = [&]() {
    try {
      const std::unique_ptr<GuidedDecoder> decoder = make_decoder();
      LEJIT_REQUIRE(decoder != nullptr, "decoder factory returned null");
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count || failed.load()) break;
        // Schedule-independent determinism: RNG depends only on (seed, i).
        util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)),
                      2 * i + 1);
        report.results[i] = decoder->generate(rng, prompt_of(i));
      }
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      failed.store(true);
      if (failure_message.empty()) failure_message = e.what();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (failed.load())
    throw util::RuntimeError("batch worker failed: " + failure_message);

  report.wall_seconds = timer.elapsed_seconds();
  for (const auto& r : report.results) {
    if (r.ok) ++report.ok;
    if (r.infeasible_prompt) ++report.infeasible_prompts;
    if (r.dead_end) ++report.dead_ends;
  }
  return report;
}

}  // namespace

BatchReport impute_batch(const DecoderFactory& make_decoder,
                         std::span<const telemetry::Window> windows,
                         const BatchConfig& config) {
  return run_batch(make_decoder, windows.size(), config,
                   [&windows](std::size_t i) {
                     return telemetry::imputation_prompt(windows[i]);
                   });
}

BatchReport synthesize_batch(const DecoderFactory& make_decoder,
                             std::size_t count, const BatchConfig& config) {
  return run_batch(make_decoder, count, config,
                   [](std::size_t) { return std::string(); });
}

}  // namespace lejit::core
