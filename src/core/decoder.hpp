// LeJIT's guided decoder: an SMT solver interleaved into LM inference.
//
// This is the paper's core contribution (§3). Generation proceeds character
// by character through the row syntax. Before every token the decoder
// computes the set of tokens from which a rule-compliant completion of the
// whole row still exists — literal syntax positions force one character;
// digit positions are filtered with per-candidate solver look-ahead sat
// checks (transition.hpp builds the completion formula); a field can only be
// terminated if pinning its exact value keeps the rule set satisfiable. The
// LM's distribution is masked to that set and renormalized, so the LM keeps
// every choice that does not lead to a dead end — the paper's "minimally
// invasive" property, which we quantify in DecodeStats.
//
// Four guidance modes provide the paper's comparison axes:
//   kNone   — vanilla sampling (no structure, no rules),
//   kSyntax — grammar-constrained decoding only (§2.2's "constrained
//             decoding" strawman: digit-count legality, no arithmetic),
//   kHull   — interval-hull masking without exact look-ahead: each field is
//             constrained to [min,max] of its feasible set, but holes inside
//             the hull are invisible, so decoding can dead-end (the ablation
//             showing why LeJIT's per-prefix sat checks are necessary),
//   kFull   — LeJIT: exact solver look-ahead against the rule set.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include <cstdint>
#include <memory>
#include <vector>

#include "absint/absint.hpp"
#include "core/feasibility_cache.hpp"
#include "lint/lint.hpp"
#include "lm/lm.hpp"
#include "lm/sampler.hpp"
#include "lm/tokenizer.hpp"
#include "plan/plan.hpp"
#include "rules/rule.hpp"
#include "smt/backend.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"
#include "util/rng.hpp"

namespace lejit::core {

enum class GuidanceMode { kNone, kSyntax, kHull, kFull };

// What an inconclusive (kUnknown) solver check means to the decoder. Until
// this knob existed, an unknown silently read as infeasible — a slow check
// could strangle the mask down to nothing with no trace of why.
enum class UnknownPolicy {
  kInfeasible,  // conservative: the candidate is masked out
  kFeasible,    // optimistic: keep the candidate; dead-end recovery catches
                // the (rare) case where optimism was wrong
  kEscalate,    // retry the check with a multiplied node budget, then mask
                // the candidate out if it is still inconclusive
};

// Budgets, degradation, and recovery knobs. Defaults are fail-stop
// (retry_budget = 0) so the kHull-vs-kFull ablation semantics the paper
// measures are unchanged unless a caller opts in.
struct ResilienceConfig {
  UnknownPolicy on_unknown = UnknownPolicy::kEscalate;

  // Per-solver-call limits while masking (0 = SolverConfig default / none).
  std::int64_t check_max_nodes = 0;
  std::int64_t check_deadline_ms = 0;

  // Per-row ceilings across all attempts, owned by the decoder (0 = none).
  // Exhaustion aborts the row with FailReason::kBudgetExhausted.
  std::int64_t row_max_nodes = 0;
  std::int64_t row_deadline_ms = 0;

  // kEscalate: each retry multiplies the node budget by escalation_factor,
  // at most max_escalations times per check.
  int escalation_factor = 8;
  int max_escalations = 2;

  // Dead-end recovery: on a dead end or empty mask, rewind backtrack_chars
  // generated characters (further, if needed to reopen the failing field),
  // ban the value that pinned into a hole, and resample — up to retry_budget
  // times per row. 0 = fail-stop (the seed behavior).
  int retry_budget = 0;
  int backtrack_chars = 6;
  // After repeated kHull dead ends, restart the attempt under kFull exact
  // look-ahead instead of hull masking.
  bool escalate_guidance = true;
};

struct DecoderConfig {
  GuidanceMode mode = GuidanceMode::kFull;
  lm::SamplerConfig sampler{};
  // When only one character is legal (literal syntax), emit it without an LM
  // forward pass. Disable to measure pure-LM timing.
  bool skip_forced_literals = true;
  // Safety cap on generated tokens for unguided (kNone) decoding.
  int max_free_tokens = 512;
  // Configuration of the decoder-owned solver (node caps etc.).
  smt::SolverConfig solver{};
  // Which solver substrate answers the decode-time queries (DESIGN.md §12):
  // the in-process minismt (default), or an external SMT-LIB2 subprocess
  // with automatic degradation back to minismt. `backend.solver` is ignored —
  // the decoder installs `solver` (with `incremental = cache`) so the
  // in-process engine is configured identically on every path.
  smt::BackendConfig backend{};
  ResilienceConfig resilience{};
  // Reuse solver work across candidates, steps, and rows: incremental solver
  // scopes mirroring the syntax walk, per-candidate verdict memoization, and
  // interval-hull short-circuiting (DESIGN.md §9). Decoded text is
  // bit-identical either way for a fixed seed; off reproduces the seed's
  // re-solve-everything behavior (CLI: --no-solver-cache).
  bool cache = true;
  // Fail-fast static analysis at load time (DESIGN.md §10): run lint::analyze
  // over the rule set in the constructor and throw util::RuntimeError —
  // naming the conflict subset — if it reports errors, instead of paying for
  // the contradiction per token as dead-end churn. On a clean set the
  // analyzer's static field hulls seed the FeasibilityCache (when `cache` is
  // on), so load-time analysis also warms the decode hot path. Every hull
  // short-circuit agrees with what the solver would answer, so decoded text
  // stays bit-identical with or without the seeding.
  bool lint_on_load = false;
  lint::Config lint{};
  // Static decode plan (DESIGN.md §11). When set, the constructor validates
  // its fingerprint against the rule set + layout and throws
  // util::RuntimeError on a mismatch (a stale plan must never drive masks).
  // When `compile_plan` is set instead, the plan is compiled in the
  // constructor under `plan_config`. An active plan lets kFull decoding
  // answer digit/terminator feasibility from solver-verified tables
  // (decode.plan.table_hits) and route the remaining live queries to a
  // per-cluster solver carrying only the rules the current field can still
  // depend on (decode.plan.sliced_queries). Decoded text is bit-identical
  // with the plan on or off for a fixed seed.
  std::optional<plan::DecodePlan> plan{};
  bool compile_plan = false;
  plan::Config plan_config{};
  // Abstract-interpretation prefilter (DESIGN.md §16). When on, the
  // constructor runs absint::analyze over the rule set once; kFull decoding
  // keeps a per-attempt abstract state (refined by prompt pins and recovery
  // bans) and consults it before every completion/exact feasibility check.
  // The abstraction only ever refutes — and a refutation is a proof — so a
  // hit skips the FeasibilityCache and the solver entirely while decoded
  // text stays bit-identical for a fixed seed (ctest-gated). The analysis
  // intervals also tighten the cache's static hulls. CLI: --no-absint.
  bool absint = true;
};

struct DecodeStats {
  std::int64_t chars = 0;              // characters emitted
  std::int64_t lm_calls = 0;           // LM forward passes
  std::int64_t solver_checks = 0;      // sat checks spent on this row
  std::int64_t masked_steps = 0;       // LM steps with a non-trivial mask
  std::int64_t interventions = 0;      // steps where the mask pruned the argmax
  std::int64_t unknown_checks = 0;     // checks that came back inconclusive
  std::int64_t escalations = 0;        // budget-escalation retries spent
  double removed_mass = 0.0;           // Σ(1 − allowed probability mass)
  // Decode-plan effect (zero unless an active plan drove this row):
  std::int64_t plan_table_hits = 0;      // verdicts served by digit tables
  std::int64_t plan_sliced_queries = 0;  // verdicts routed to a cluster slice
  // Σ over sliced queries of the rules the slice asserted; divided by
  // (plan_sliced_queries · |rule set|) this is the mean fraction of the rule
  // set a sliced query dragged through the solver.
  std::int64_t plan_sliced_rules = 0;
  // Absint prefilter effect (zero unless DecoderConfig::absint drove kFull):
  std::int64_t absint_checks = 0;  // feasibility queries the prefilter saw
  std::int64_t absint_hits = 0;    // queries it refuted without solver/cache

  // Mean probability mass the mask removed per masked step (0 ⇒ the solver
  // never had to override the LM).
  double mean_removed_mass() const {
    return masked_steps == 0 ? 0.0
                             : removed_mass / static_cast<double>(masked_steps);
  }
};

// Machine-readable cause of a failed row. kNone on success; every !ok result
// from a guided mode carries a non-kNone reason (unguided kNone-mode rows may
// simply fail to parse, which is not a decoder failure).
enum class FailReason {
  kNone = 0,
  kInfeasiblePrompt,   // prompt contradicts the rule set (or was inconclusive)
  kDeadEnd,            // no rule-compliant continuation, retries exhausted
  kEmptyMask,          // no legal token at some step, retries exhausted
  kBudgetExhausted,    // per-row node/deadline ceiling hit
  kFault,              // an exception (e.g. injected fault) killed the row;
                       // assigned by the batch driver, not the decoder
};

std::string_view fail_reason_name(FailReason r) noexcept;

struct DecodeResult {
  bool ok = false;
  // True when the prompt's pinned values contradict the rule set (possible
  // for mined rules on unseen racks); no generation was attempted.
  bool infeasible_prompt = false;
  // kHull only: a completed value inside the hull landed in a hole of the
  // feasible set, leaving no rule-compliant continuation (after recovery, if
  // enabled). kFull with an exact-policy solver can never dead-end — that is
  // the point of exact look-ahead.
  bool dead_end = false;
  // Why the row failed, and a human-readable detail string.
  FailReason reason = FailReason::kNone;
  std::string fail_detail;
  // Dead-end recoveries performed (rewind + ban + resample). A row can
  // recover and still end ok = true.
  int recoveries = 0;
  // True when recovery restarted a kHull row under kFull exact look-ahead.
  bool guidance_escalated = false;
  // Solver checks this row that a failed external backend handed to the
  // in-process fallback (0 whenever the minismt backend serves directly).
  // Counted per row so callers can tell "bit-identical to the in-process
  // baseline" from "completed degraded"; the smt.backend.* obs counters
  // carry the process-wide totals.
  std::int64_t backend_degraded = 0;
  std::string text;  // full row text, prompt included (without trailing '\n')
  std::optional<telemetry::Window> window;
  DecodeStats stats;
};

class GuidedDecoder {
 public:
  // `model` and `tokenizer` must outlive the decoder. The tokenizer must
  // cover telemetry::row_alphabet().
  GuidedDecoder(const lm::LanguageModel& model,
                const lm::CharTokenizer& tokenizer,
                const telemetry::RowLayout& layout, rules::RuleSet rules,
                DecoderConfig config = {});

  // Generate one row. For imputation pass the coarse prefix (everything up
  // to and including '|') as `prompt`; for synthesis pass nothing.
  DecodeResult generate(util::Rng& rng, std::string_view prompt = {});

  // Cumulative solver statistics across all generate() calls, aggregated
  // over the main solver and any plan cluster solvers (including retired
  // ones from earlier prompt shapes).
  smt::SolverStats solver_stats() const;
  // Cumulative backend health statistics (degradations, respawns, faults),
  // aggregated like solver_stats(). All zeros under the minismt backend.
  smt::BackendStats backend_stats() const;
  // Cumulative feasibility-cache statistics (all zero when config.cache is
  // off); counted unconditionally, unlike the obs mirrors.
  const FeasibilityCache::Stats& cache_stats() const { return cache_.stats(); }
  const rules::RuleSet& rules() const { return rules_; }
  // The load-time lint report; engaged iff config.lint_on_load was set (and
  // the rule set passed — errors throw from the constructor).
  const std::optional<lint::Report>& lint_report() const {
    return lint_report_;
  }
  // The validated/compiled decode plan, if any.
  const std::optional<plan::DecodePlan>& decode_plan() const { return plan_; }

 private:
  struct Walk;  // syntax-walk state, defined in decoder.cpp

  // (Re)build the per-cluster sliced solvers for a prompt that pins exactly
  // the fields in `prompt_fields` (bitmask). A cluster's slice keeps only its
  // "live" rules — those referencing at least one non-pinned field; rules
  // whose every field is prompt-pinned are proven satisfied by the prompt
  // feasibility check and dropped. A cluster with no live rules gets a null
  // solver (nothing left to ask it).
  void ensure_sliced_solvers(std::uint64_t prompt_fields);

  const lm::LanguageModel& model_;
  const lm::CharTokenizer& tokenizer_;
  telemetry::RowLayout layout_;
  rules::RuleSet rules_;
  DecoderConfig config_;
  // The decode-time solver session, behind the pluggable backend interface.
  // MinismtBackend by default; config_.backend selects others.
  std::unique_ptr<smt::Backend> solver_;
  std::vector<smt::VarId> vars_;
  FeasibilityCache cache_;  // persists across generate() calls
  std::optional<lint::Report> lint_report_;

  // --- decode plan state (all empty/unused when plan_ is not engaged) ---
  std::optional<plan::DecodePlan> plan_;
  // True when plan_ is present, active(), the mode is kFull, and the layout
  // is small enough for the bitmask bookkeeping.
  bool plan_engaged_ = false;
  std::vector<std::uint64_t> rule_field_mask_;  // per rule: referenced fields
  // Per cluster: sliced solver (null = fully prompt-determined) and the
  // number of live rules it asserts. Persist across rows and rebuild only
  // when the prompt's pinned-field set changes.
  std::vector<std::unique_ptr<smt::Backend>> cluster_solvers_;
  std::vector<std::int64_t> cluster_live_rules_;
  std::uint64_t slice_prompt_mask_ = ~std::uint64_t{0};  // sentinel: unbuilt
  smt::SolverStats retired_cluster_stats_;  // stats of discarded slice solvers
  smt::BackendStats retired_cluster_backend_stats_;

  // --- absint prefilter state (config_.absint, DESIGN.md §16) ---
  // Rule-set fixpoint computed once at construction; each attempt copies it
  // into absint_state_ and refines with that attempt's pins and bans. One
  // global state serves both the full solver and plan cluster slices: rules
  // and pins only ever touch the fields they reference, so per-field the
  // state equals the refinement under that field's cluster alone.
  bool absint_on_ = false;
  std::vector<absint::AbsVal> absint_base_;
  std::vector<absint::AbsVal> absint_state_;
};

}  // namespace lejit::core
