// LeJIT's guided decoder: an SMT solver interleaved into LM inference.
//
// This is the paper's core contribution (§3). Generation proceeds character
// by character through the row syntax. Before every token the decoder
// computes the set of tokens from which a rule-compliant completion of the
// whole row still exists — literal syntax positions force one character;
// digit positions are filtered with per-candidate solver look-ahead sat
// checks (transition.hpp builds the completion formula); a field can only be
// terminated if pinning its exact value keeps the rule set satisfiable. The
// LM's distribution is masked to that set and renormalized, so the LM keeps
// every choice that does not lead to a dead end — the paper's "minimally
// invasive" property, which we quantify in DecodeStats.
//
// Four guidance modes provide the paper's comparison axes:
//   kNone   — vanilla sampling (no structure, no rules),
//   kSyntax — grammar-constrained decoding only (§2.2's "constrained
//             decoding" strawman: digit-count legality, no arithmetic),
//   kHull   — interval-hull masking without exact look-ahead: each field is
//             constrained to [min,max] of its feasible set, but holes inside
//             the hull are invisible, so decoding can dead-end (the ablation
//             showing why LeJIT's per-prefix sat checks are necessary),
//   kFull   — LeJIT: exact solver look-ahead against the rule set.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "lm/lm.hpp"
#include "lm/sampler.hpp"
#include "lm/tokenizer.hpp"
#include "rules/rule.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"
#include "util/rng.hpp"

namespace lejit::core {

enum class GuidanceMode { kNone, kSyntax, kHull, kFull };

struct DecoderConfig {
  GuidanceMode mode = GuidanceMode::kFull;
  lm::SamplerConfig sampler{};
  // When only one character is legal (literal syntax), emit it without an LM
  // forward pass. Disable to measure pure-LM timing.
  bool skip_forced_literals = true;
  // Safety cap on generated tokens for unguided (kNone) decoding.
  int max_free_tokens = 512;
};

struct DecodeStats {
  std::int64_t chars = 0;              // characters emitted
  std::int64_t lm_calls = 0;           // LM forward passes
  std::int64_t solver_checks = 0;      // sat checks spent on this row
  std::int64_t masked_steps = 0;       // LM steps with a non-trivial mask
  std::int64_t interventions = 0;      // steps where the mask pruned the argmax
  double removed_mass = 0.0;           // Σ(1 − allowed probability mass)

  // Mean probability mass the mask removed per masked step (0 ⇒ the solver
  // never had to override the LM).
  double mean_removed_mass() const {
    return masked_steps == 0 ? 0.0
                             : removed_mass / static_cast<double>(masked_steps);
  }
};

struct DecodeResult {
  bool ok = false;
  // True when the prompt's pinned values contradict the rule set (possible
  // for mined rules on unseen racks); no generation was attempted.
  bool infeasible_prompt = false;
  // kHull only: a completed value inside the hull landed in a hole of the
  // feasible set, leaving no rule-compliant continuation. kFull can never
  // dead-end — that is the point of exact look-ahead.
  bool dead_end = false;
  std::string text;  // full row text, prompt included (without trailing '\n')
  std::optional<telemetry::Window> window;
  DecodeStats stats;
};

class GuidedDecoder {
 public:
  // `model` and `tokenizer` must outlive the decoder. The tokenizer must
  // cover telemetry::row_alphabet().
  GuidedDecoder(const lm::LanguageModel& model,
                const lm::CharTokenizer& tokenizer,
                const telemetry::RowLayout& layout, rules::RuleSet rules,
                DecoderConfig config = {});

  // Generate one row. For imputation pass the coarse prefix (everything up
  // to and including '|') as `prompt`; for synthesis pass nothing.
  DecodeResult generate(util::Rng& rng, std::string_view prompt = {});

  // Cumulative solver statistics across all generate() calls.
  const smt::SolverStats& solver_stats() const { return solver_.stats(); }
  const rules::RuleSet& rules() const { return rules_; }

 private:
  struct Walk;  // syntax-walk state, defined in decoder.cpp

  const lm::LanguageModel& model_;
  const lm::CharTokenizer& tokenizer_;
  telemetry::RowLayout layout_;
  rules::RuleSet rules_;
  DecoderConfig config_;
  smt::Solver solver_;
  std::vector<smt::VarId> vars_;
};

}  // namespace lejit::core
