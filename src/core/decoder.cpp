#include "core/decoder.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>

#include "core/transition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lejit::core {

namespace {

// RAII guard: pops the solver scope opened for one row.
class ScopeGuard {
 public:
  explicit ScopeGuard(smt::Solver& solver) : solver_(solver) { solver_.push(); }
  ~ScopeGuard() { solver_.pop(); }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  smt::Solver& solver_;
};

// Folds the row's DecodeStats into the process-wide metrics when the result
// goes out of scope — one flush point for every return path of generate().
class StatsFlush {
 public:
  explicit StatsFlush(const DecodeResult& result) : result_(result) {}
  ~StatsFlush() {
    if (!obs::metrics_enabled()) return;
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_rows = registry.counter("decode.rows");
    static obs::Counter& c_chars = registry.counter("decode.chars");
    static obs::Counter& c_lm_calls = registry.counter("decode.lm_calls");
    static obs::Counter& c_interventions =
        registry.counter("decode.interventions");
    static obs::Counter& c_dead_ends = registry.counter("decode.dead_ends");
    static obs::Counter& c_infeasible =
        registry.counter("decode.infeasible_prompts");
    c_rows.inc();
    c_chars.add(result_.stats.chars);
    c_lm_calls.add(result_.stats.lm_calls);
    c_interventions.add(result_.stats.interventions);
    if (result_.dead_end) c_dead_ends.inc();
    if (result_.infeasible_prompt) c_infeasible.inc();
  }
  StatsFlush(const StatsFlush&) = delete;
  StatsFlush& operator=(const StatsFlush&) = delete;

 private:
  const DecodeResult& result_;
};

// Probability mass the mask removed at one step, in [0, 1].
obs::Histogram& removed_mass_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::instance().histogram(
      "decode.removed_mass", obs::HistogramOptions::linear(0.0, 1.0, 20));
  return h;
}

}  // namespace

// Position within the row syntax: literal prefix of field `field`, then its
// digits, ..., then the row suffix.
struct GuidedDecoder::Walk {
  int field = 0;
  std::size_t prefix_pos = 0;
  DigitPrefix digits{};
  std::size_t suffix_pos = 0;

  bool in_suffix(const telemetry::RowLayout& layout) const {
    return field >= layout.num_fields();
  }
  bool done(const telemetry::RowLayout& layout) const {
    return in_suffix(layout) && suffix_pos >= layout.suffix.size();
  }
  bool in_digits(const telemetry::RowLayout& layout) const {
    return !in_suffix(layout) &&
           prefix_pos >=
               layout.fields[static_cast<std::size_t>(field)].prefix.size();
  }
  // The literal character that terminates the current field's digits.
  char terminator(const telemetry::RowLayout& layout) const {
    if (field + 1 < layout.num_fields())
      return layout.fields[static_cast<std::size_t>(field) + 1].prefix.front();
    return layout.suffix.front();
  }
};

GuidedDecoder::GuidedDecoder(const lm::LanguageModel& model,
                             const lm::CharTokenizer& tokenizer,
                             const telemetry::RowLayout& layout,
                             rules::RuleSet rules, DecoderConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      layout_(layout),
      rules_(std::move(rules)),
      config_(config) {
  LEJIT_REQUIRE(model.vocab_size() == tokenizer.vocab_size(),
                "model and tokenizer vocabulary sizes differ");
  for (const char c : telemetry::row_alphabet())
    LEJIT_REQUIRE(tokenizer.has_char(c),
                  "tokenizer does not cover the row alphabet");
  for (const auto& f : layout_.fields)
    LEJIT_REQUIRE(!f.prefix.empty(), "layout field without prefix literal");
  LEJIT_REQUIRE(!layout_.suffix.empty(), "layout without row suffix");
  vars_ = rules::declare_fields(solver_, layout_);
  rules::assert_rules(solver_, rules_);
}

DecodeResult GuidedDecoder::generate(util::Rng& rng, std::string_view prompt) {
  DecodeResult result;
  const StatsFlush flush(result);
  const std::int64_t checks_before = solver_.stats().checks;

  // --- unguided mode: free-run the LM until a newline -----------------------
  if (config_.mode == GuidanceMode::kNone) {
    std::vector<int> context = tokenizer_.encode(prompt);
    std::string text(prompt);
    const auto newline = tokenizer_.newline_id();
    for (int step = 0; step < config_.max_free_tokens; ++step) {
      const std::vector<float> logits = [&] {
        const obs::Span span(obs::Phase::kLmForward);
        return model_.logits(context);
      }();
      ++result.stats.lm_calls;
      const int tok = [&] {
        const obs::Span span(obs::Phase::kSampling);
        return lm::sample_token(logits, config_.sampler, rng);
      }();
      if (newline && tok == *newline) break;
      context.push_back(tok);
      text.push_back(tokenizer_.decode_char(tok));
      ++result.stats.chars;
    }
    result.text = text;
    result.window = telemetry::parse_row(text, layout_);
    result.ok = result.window.has_value();
    result.stats.solver_checks = solver_.stats().checks - checks_before;
    return result;
  }

  // --- guided modes: walk the row syntax -------------------------------------
  const ScopeGuard scope(solver_);
  Walk walk;
  std::string text;
  std::vector<int> context;
  const int vocab = tokenizer_.vocab_size();

  const bool solver_guided = config_.mode == GuidanceMode::kFull ||
                             config_.mode == GuidanceMode::kHull;
  // Interval hull of the current field's feasible set (kHull mode only),
  // computed lazily when the field's digits begin and dropped when the
  // field completes.
  std::optional<smt::Interval> field_hull;
  // Set when a kHull field completion must be validated against the rules.
  bool pending_feasibility_check = false;

  // Pin a completed field value into the solver (solver-guided modes).
  const auto pin_field = [&](int field, Int value) {
    if (!solver_guided) return;
    solver_.add(smt::eq(smt::LinExpr(vars_[static_cast<std::size_t>(field)]),
                        smt::LinExpr(value)));
    if (config_.mode == GuidanceMode::kHull) pending_feasibility_check = true;
  };

  // Advance the walk over one legal character; pins fields as they complete.
  const auto advance = [&](char c) {
    if (walk.in_suffix(layout_)) {
      LEJIT_ASSERT(layout_.suffix[walk.suffix_pos] == c, "suffix mismatch");
      ++walk.suffix_pos;
      return;
    }
    const auto& spec = layout_.fields[static_cast<std::size_t>(walk.field)];
    if (walk.prefix_pos < spec.prefix.size()) {
      LEJIT_ASSERT(spec.prefix[walk.prefix_pos] == c, "prefix mismatch");
      ++walk.prefix_pos;
      return;
    }
    if (c >= '0' && c <= '9') {
      walk.digits = walk.digits.extended(c - '0');
      return;
    }
    // Any other character terminates the field.
    LEJIT_ASSERT(!walk.digits.empty(), "field terminated without digits");
    pin_field(walk.field, walk.digits.value);
    field_hull.reset();
    ++walk.field;
    walk.digits = DigitPrefix{};
    if (walk.field < layout_.num_fields()) {
      LEJIT_ASSERT(
          layout_.fields[static_cast<std::size_t>(walk.field)].prefix.front() ==
              c,
          "terminator does not open the next field");
      walk.prefix_pos = 1;
    } else {
      LEJIT_ASSERT(layout_.suffix.front() == c, "terminator is not the suffix");
      walk.suffix_pos = 1;
    }
  };

  // Consume the prompt (its values are given, not generated: no look-ahead).
  for (const char c : prompt) {
    LEJIT_REQUIRE(tokenizer_.has_char(c), "prompt character outside alphabet");
    advance(c);
    context.push_back(tokenizer_.encode_char(c));
    text.push_back(c);
  }
  pending_feasibility_check = false;  // the prompt check below covers it
  if (solver_guided && !prompt.empty()) {
    if (solver_.check() != smt::CheckResult::kSat) {
      result.infeasible_prompt = true;
      result.text = text;
      result.stats.solver_checks = solver_.stats().checks - checks_before;
      return result;
    }
  }

  // Compute the legal-character mask for the current walk state. Returns the
  // number of legal tokens.
  const auto mask_buf = std::make_unique<bool[]>(static_cast<std::size_t>(vocab));
  const std::span<bool> mask(mask_buf.get(), static_cast<std::size_t>(vocab));
  const auto compute_mask = [&]() -> int {
    std::fill(mask.begin(), mask.end(), false);
    int legal = 0;
    const auto allow = [&](char c) {
      mask[static_cast<std::size_t>(tokenizer_.encode_char(c))] = true;
      ++legal;
    };

    if (walk.in_suffix(layout_)) {
      allow(layout_.suffix[walk.suffix_pos]);
      return legal;
    }
    const auto& spec = layout_.fields[static_cast<std::size_t>(walk.field)];
    if (walk.prefix_pos < spec.prefix.size()) {
      allow(spec.prefix[walk.prefix_pos]);
      return legal;
    }

    const smt::VarId var = vars_[static_cast<std::size_t>(walk.field)];
    const int max_digits = digits_for(spec.max_value);

    if (config_.mode == GuidanceMode::kHull && !field_hull)
      field_hull = solver_.feasible_interval(var);

    // Digits that keep some completion reachable.
    for (int d = 0; d <= 9; ++d) {
      if (!walk.digits.empty() && !walk.digits.can_extend(max_digits)) break;
      const DigitPrefix next = walk.digits.extended(d);
      if (!prefix_syntactically_ok(next, max_digits)) continue;
      if (config_.mode == GuidanceMode::kFull) {
        const smt::Formula f =
            prefix_completion_formula(var, next, max_digits);
        if (solver_.check_assuming(std::span(&f, 1)) != smt::CheckResult::kSat)
          continue;
      } else if (config_.mode == GuidanceMode::kHull) {
        if (!completion_intersects(next, max_digits, *field_hull)) continue;
      }
      allow(static_cast<char>('0' + d));
    }
    // Terminating the field on its exact current value.
    if (!walk.digits.empty()) {
      bool can_end = true;
      if (config_.mode == GuidanceMode::kFull) {
        const smt::Formula f = smt::eq(smt::LinExpr(var),
                                       smt::LinExpr(walk.digits.value));
        can_end =
            solver_.check_assuming(std::span(&f, 1)) == smt::CheckResult::kSat;
      } else if (config_.mode == GuidanceMode::kHull) {
        can_end = field_hull->contains(walk.digits.value);
      }
      if (can_end) allow(walk.terminator(layout_));
    }
    return legal;
  };

  while (!walk.done(layout_)) {
    const int legal = [&] {
      const obs::Span span(obs::Phase::kMaskBuild);
      return compute_mask();
    }();
    if (legal == 0) {
      // Unreachable when look-ahead is sound; defensive fail-stop.
      LEJIT_LOG_WARN("guided decode hit an empty mask at char " +
                     std::to_string(result.stats.chars));
      result.text = text;
      result.stats.solver_checks = solver_.stats().checks - checks_before;
      return result;
    }

    char emitted = 0;
    if (legal == 1 && config_.skip_forced_literals) {
      const auto it = std::find(mask.begin(), mask.end(), true);
      emitted = tokenizer_.decode_char(
          static_cast<int>(it - mask.begin()));
    } else {
      const std::vector<float> logits = [&] {
        const obs::Span span(obs::Phase::kLmForward);
        return model_.logits(context);
      }();
      ++result.stats.lm_calls;
      ++result.stats.masked_steps;
      const double mass = lm::allowed_mass(logits, mask);
      result.stats.removed_mass += 1.0 - mass;
      removed_mass_histogram().observe(1.0 - mass);
      const auto argmax =
          std::max_element(logits.begin(), logits.end()) - logits.begin();
      if (!mask[static_cast<std::size_t>(argmax)]) ++result.stats.interventions;
      const int tok = [&] {
        const obs::Span span(obs::Phase::kSampling);
        return lm::sample_token(logits, config_.sampler, rng, mask);
      }();
      emitted = tokenizer_.decode_char(tok);
    }

    advance(emitted);
    context.push_back(tokenizer_.encode_char(emitted));
    text.push_back(emitted);
    ++result.stats.chars;

    // kHull: a value inside the hull may still sit in a hole of the
    // feasible set; detect the dead end right after pinning.
    if (pending_feasibility_check) {
      pending_feasibility_check = false;
      if (solver_.check() != smt::CheckResult::kSat) {
        result.dead_end = true;
        result.text = text;
        result.stats.solver_checks = solver_.stats().checks - checks_before;
        return result;
      }
    }
  }

  // Strip the trailing suffix from the visible text? Keep text as emitted but
  // without the newline for readability.
  std::string row = text;
  if (!row.empty() && row.back() == '\n') row.pop_back();
  result.text = row;
  result.window = telemetry::parse_row(row, layout_);
  result.ok = result.window.has_value();
  result.stats.solver_checks = solver_.stats().checks - checks_before;
  LEJIT_ASSERT(result.ok, "guided decode produced an unparsable row");
  return result;
}

}  // namespace lejit::core
