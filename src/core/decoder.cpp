#include "core/decoder.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>

#include "core/transition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lejit::core {

namespace {

// RAII guard: pops every solver scope opened during one row attempt — the
// attempt's own scope plus, when scope mirroring is on, one per pinned field.
class ScopeGuard {
 public:
  explicit ScopeGuard(smt::Backend& solver)
      : solver_(solver), mark_(solver.num_scopes()) {
    solver_.push();
  }
  ~ScopeGuard() {
    while (solver_.num_scopes() > mark_) solver_.pop();
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  smt::Backend& solver_;
  std::size_t mark_;
};

// Folds the row's DecodeStats into the process-wide metrics when the result
// goes out of scope — one flush point for every return path of generate().
class StatsFlush {
 public:
  StatsFlush(const DecodeResult& result, std::size_t num_rules)
      : result_(result), num_rules_(num_rules) {}
  ~StatsFlush() {
    if (!obs::metrics_enabled()) return;
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_rows = registry.counter("decode.rows");
    static obs::Counter& c_chars = registry.counter("decode.chars");
    static obs::Counter& c_lm_calls = registry.counter("decode.lm_calls");
    static obs::Counter& c_interventions =
        registry.counter("decode.interventions");
    static obs::Counter& c_dead_ends = registry.counter("decode.dead_ends");
    static obs::Counter& c_infeasible =
        registry.counter("decode.infeasible_prompts");
    static obs::Counter& c_unknowns = registry.counter("decode.unknowns");
    static obs::Counter& c_escalations =
        registry.counter("decode.escalations");
    static obs::Counter& c_recoveries = registry.counter("decode.recoveries");
    static obs::Counter& c_recovered =
        registry.counter("decode.recovered_rows");
    static obs::Counter& c_empty_mask = registry.counter("decode.empty_mask");
    static obs::Counter& c_budget =
        registry.counter("decode.budget_exhausted");
    static obs::Counter& c_guidance =
        registry.counter("decode.guidance_escalations");
    c_rows.inc();
    c_chars.add(result_.stats.chars);
    c_lm_calls.add(result_.stats.lm_calls);
    c_interventions.add(result_.stats.interventions);
    if (result_.dead_end) c_dead_ends.inc();
    if (result_.infeasible_prompt) c_infeasible.inc();
    c_unknowns.add(result_.stats.unknown_checks);
    c_escalations.add(result_.stats.escalations);
    c_recoveries.add(result_.recoveries);
    if (result_.ok && result_.recoveries > 0) c_recovered.inc();
    if (result_.reason == FailReason::kEmptyMask) c_empty_mask.inc();
    if (result_.reason == FailReason::kBudgetExhausted) c_budget.inc();
    if (result_.guidance_escalated) c_guidance.inc();
    static obs::Counter& c_table_hits =
        registry.counter("decode.plan.table_hits");
    static obs::Counter& c_sliced =
        registry.counter("decode.plan.sliced_queries");
    static obs::Counter& c_sliced_rules =
        registry.counter("decode.plan.sliced_rules");
    c_table_hits.add(result_.stats.plan_table_hits);
    c_sliced.add(result_.stats.plan_sliced_queries);
    c_sliced_rules.add(result_.stats.plan_sliced_rules);
    static obs::Counter& c_absint_checks =
        registry.counter("decode.absint.prefilter_checks");
    static obs::Counter& c_absint_hits =
        registry.counter("decode.absint.prefilter_hits");
    c_absint_checks.add(result_.stats.absint_checks);
    c_absint_hits.add(result_.stats.absint_hits);
    // Mean fraction of the rule set a sliced query asserted (vs. the full
    // set an unplanned query drags through propagation), cumulative.
    if (num_rules_ > 0 && c_sliced.value() > 0)
      registry.gauge("decode.plan.slice_rule_fraction")
          .set(static_cast<double>(c_sliced_rules.value()) /
               (static_cast<double>(c_sliced.value()) *
                static_cast<double>(num_rules_)));
  }
  StatsFlush(const StatsFlush&) = delete;
  StatsFlush& operator=(const StatsFlush&) = delete;

 private:
  const DecodeResult& result_;
  std::size_t num_rules_;
};

// Probability mass the mask removed at one step, in [0, 1].
obs::Histogram& removed_mass_histogram() {
  static obs::Histogram& h = obs::MetricsRegistry::instance().histogram(
      "decode.removed_mass", obs::HistogramOptions::linear(0.0, 1.0, 20));
  return h;
}

// Candidate feasibility answered by interval arithmetic / witnesses alone.
obs::Counter& hull_conclusive_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("decode.cache.hull_conclusive");
  return c;
}

}  // namespace

std::string_view fail_reason_name(FailReason r) noexcept {
  switch (r) {
    case FailReason::kNone: return "none";
    case FailReason::kInfeasiblePrompt: return "infeasible_prompt";
    case FailReason::kDeadEnd: return "dead_end";
    case FailReason::kEmptyMask: return "empty_mask";
    case FailReason::kBudgetExhausted: return "budget_exhausted";
    case FailReason::kFault: return "fault";
  }
  return "?";
}

// Position within the row syntax: literal prefix of field `field`, then its
// digits, ..., then the row suffix.
struct GuidedDecoder::Walk {
  int field = 0;
  std::size_t prefix_pos = 0;
  DigitPrefix digits{};
  std::size_t suffix_pos = 0;

  bool in_suffix(const telemetry::RowLayout& layout) const {
    return field >= layout.num_fields();
  }
  bool done(const telemetry::RowLayout& layout) const {
    return in_suffix(layout) && suffix_pos >= layout.suffix.size();
  }
  bool in_digits(const telemetry::RowLayout& layout) const {
    return !in_suffix(layout) &&
           prefix_pos >=
               layout.fields[static_cast<std::size_t>(field)].prefix.size();
  }
  // The literal character that terminates the current field's digits.
  char terminator(const telemetry::RowLayout& layout) const {
    if (field + 1 < layout.num_fields())
      return layout.fields[static_cast<std::size_t>(field) + 1].prefix.front();
    return layout.suffix.front();
  }
};

GuidedDecoder::GuidedDecoder(const lm::LanguageModel& model,
                             const lm::CharTokenizer& tokenizer,
                             const telemetry::RowLayout& layout,
                             rules::RuleSet rules, DecoderConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      layout_(layout),
      rules_(std::move(rules)),
      config_(config),
      solver_([&config] {
        // The feasibility cache and the solver's incremental base are one
        // feature: both reuse work across the walk's push/pop scopes, and
        // the cache's hull short-circuit reads the base's propagated bounds.
        smt::BackendConfig bc = config.backend;
        bc.solver = config.solver;
        bc.solver.incremental = config.cache;
        return smt::make_backend(bc);
      }()) {
  LEJIT_REQUIRE(model.vocab_size() == tokenizer.vocab_size(),
                "model and tokenizer vocabulary sizes differ");
  for (const char c : telemetry::row_alphabet())
    LEJIT_REQUIRE(tokenizer.has_char(c),
                  "tokenizer does not cover the row alphabet");
  for (const auto& f : layout_.fields)
    LEJIT_REQUIRE(!f.prefix.empty(), "layout field without prefix literal");
  LEJIT_REQUIRE(!layout_.suffix.empty(), "layout without row suffix");
  vars_ = rules::declare_fields(*solver_, layout_);
  rules::assert_rules(*solver_, rules_);

  // Abstract interpretation of the rule set (DESIGN.md §16): one load-time
  // fixpoint powers the kFull prefilter and tightens the cache's static
  // hulls. kHull masking itself is untouched — its hole-blind hull semantics
  // are the ablation under measure — but a kHull row can escalate into kFull
  // mid-batch, so the state is maintained for both solver-guided modes.
  if (config_.absint && (config_.mode == GuidanceMode::kFull ||
                         config_.mode == GuidanceMode::kHull)) {
    const absint::Analysis analysis = absint::analyze(rules_, layout_);
    absint_base_ = analysis.fields;
    absint_on_ = true;
  }

  if (config_.lint_on_load) {
    const obs::Span span(obs::Phase::kLint);
    lint::Report report = lint::analyze(rules_, layout_, config_.lint);
    if (!report.ok())
      throw util::RuntimeError("rule-set lint failed (lint_on_load):\n" +
                               lint::to_text(report));
    lint_report_ = std::move(report);
  }
  if (config_.cache && (absint_on_ || lint_report_)) {
    // Hand the static field hulls to the cache: lint's exact hulls and
    // witnesses serve the attempt-start fingerprint directly, absint's
    // fixpoint intervals tighten every fingerprint's propagated fallback
    // (intersecting can never shrink an exact hull — the abstraction
    // over-approximates the very feasible set that hull is the min/max of).
    const auto nf = static_cast<std::size_t>(layout_.num_fields());
    std::vector<FeasibilityCache::Hull> hulls(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      FeasibilityCache::Hull& entry = hulls[f];
      if (lint_report_ && f < lint_report_->hulls.size()) {
        const lint::FieldHull& h = lint_report_->hulls[f];
        entry.bounds = h.bounds;
        entry.exact = h.exact;
        for (const Int w : h.witnesses) entry.add_witness(w);
      } else {
        entry.bounds = {0, layout_.fields[f].max_value};
      }
      if (absint_on_)
        entry.bounds = intersect(entry.bounds, absint_base_[f].range);
    }
    cache_.seed_static_hulls(std::move(hulls));
  }

  if (config_.plan) {
    const std::uint64_t expected = plan::rule_set_fingerprint(rules_, layout_);
    if (config_.plan->fingerprint != expected)
      throw util::RuntimeError(
          "stale decode plan: its fingerprint does not match this rule set "
          "and layout (recompile with `lejit_cli plan`)");
    plan_ = std::move(config_.plan);
  } else if (config_.compile_plan) {
    plan_ = plan::compile(rules_, layout_, config_.plan_config);
  }
  if (plan_) {
    // The sliced hot path only engages for kFull look-ahead (the mode whose
    // per-candidate queries it accelerates) on layouts small enough for the
    // field bitmasks; everywhere else the plan rides along inert.
    plan_engaged_ = plan_->active() && config_.mode == GuidanceMode::kFull &&
                    layout_.num_fields() <= 64 &&
                    plan_->num_fields == layout_.num_fields() &&
                    plan_->field_cluster.size() ==
                        static_cast<std::size_t>(layout_.num_fields()) &&
                    plan_->num_rules == rules_.size();
    if (plan_engaged_) {
      rule_field_mask_.reserve(rules_.size());
      for (const rules::Rule& r : rules_.rules) {
        std::uint64_t m = 0;
        for (const int f : rules::referenced_fields(r.formula))
          if (f >= 0 && f < layout_.num_fields())
            m |= std::uint64_t{1} << static_cast<unsigned>(f);
        rule_field_mask_.push_back(m);
      }
    }
  }
}

smt::SolverStats GuidedDecoder::solver_stats() const {
  smt::SolverStats total = solver_->stats();
  total += retired_cluster_stats_;
  for (const auto& s : cluster_solvers_)
    if (s) total += s->stats();
  return total;
}

smt::BackendStats GuidedDecoder::backend_stats() const {
  smt::BackendStats total = solver_->backend_stats();
  total += retired_cluster_backend_stats_;
  for (const auto& s : cluster_solvers_)
    if (s) total += s->backend_stats();
  return total;
}

void GuidedDecoder::ensure_sliced_solvers(std::uint64_t prompt_fields) {
  if (slice_prompt_mask_ == prompt_fields) return;
  slice_prompt_mask_ = prompt_fields;
  for (const auto& s : cluster_solvers_) {
    if (!s) continue;
    retired_cluster_stats_ += s->stats();
    retired_cluster_backend_stats_ += s->backend_stats();
  }
  cluster_solvers_.clear();
  cluster_live_rules_.assign(plan_->clusters.size(), 0);
  smt::BackendConfig bc = config_.backend;
  bc.solver = config_.solver;
  bc.solver.incremental = config_.cache;
  for (const plan::Cluster& cluster : plan_->clusters) {
    // A rule whose every referenced field the prompt pins is fully decided
    // by the prompt values; the attempt's prompt feasibility check (run on
    // the full solver) proves it satisfied, so the slice can drop it.
    std::vector<std::size_t> live;
    for (const std::size_t r : cluster.rules)
      if ((rule_field_mask_[r] & ~prompt_fields) != 0) live.push_back(r);
    if (live.empty()) {
      cluster_solvers_.push_back(nullptr);
      continue;
    }
    std::unique_ptr<smt::Backend> solver = smt::make_backend(bc);
    // Same declaration order as the constructor, so VarIds align with vars_.
    (void)rules::declare_fields(*solver, layout_);
    for (const std::size_t r : live) solver->add(rules_.rules[r].formula);
    cluster_live_rules_[cluster_solvers_.size()] =
        static_cast<std::int64_t>(live.size());
    cluster_solvers_.push_back(std::move(solver));
  }
}

DecodeResult GuidedDecoder::generate(util::Rng& rng, std::string_view prompt) {
  DecodeResult result;
  const StatsFlush flush(result, rules_.size());
  // Per-row degradation accounting: stamp the delta of fallback-served
  // checks into the result on every return path (destroyed before `flush`,
  // so the metrics flush could read it if it ever needs to). A degraded row
  // that also failed says so in fail_detail.
  struct DegradedStamp {
    const GuidedDecoder& decoder;
    DecodeResult& r;
    std::int64_t before;
    ~DegradedStamp() {
      r.backend_degraded = decoder.backend_stats().degraded - before;
      if (r.backend_degraded > 0 && !r.ok) {
        if (!r.fail_detail.empty()) r.fail_detail += "; ";
        r.fail_detail += std::to_string(r.backend_degraded) +
                         " solver check(s) degraded to the in-process "
                         "fallback backend";
      }
    }
  } degraded_stamp{*this, result, backend_stats().degraded};
  const std::int64_t checks_before = solver_stats().checks;

  // --- unguided mode: free-run the LM until a newline -----------------------
  if (config_.mode == GuidanceMode::kNone) {
    std::vector<int> context = tokenizer_.encode(prompt);
    std::string text(prompt);
    const auto newline = tokenizer_.newline_id();
    for (int step = 0; step < config_.max_free_tokens; ++step) {
      const std::vector<float> logits = [&] {
        const obs::Span span(obs::Phase::kLmForward);
        return model_.logits(context);
      }();
      ++result.stats.lm_calls;
      const int tok = [&] {
        const obs::Span span(obs::Phase::kSampling);
        return lm::sample_token(logits, config_.sampler, rng);
      }();
      if (newline && tok == *newline) break;
      context.push_back(tok);
      text.push_back(tokenizer_.decode_char(tok));
      ++result.stats.chars;
    }
    result.text = text;
    result.window = telemetry::parse_row(text, layout_);
    result.ok = result.window.has_value();
    result.stats.solver_checks = solver_stats().checks - checks_before;
    return result;
  }

  // --- guided modes: walk the row syntax, with budgets and recovery ----------
  const ResilienceConfig& res = config_.resilience;
  const int vocab = tokenizer_.vocab_size();

  // Per-row ceilings, spanning every recovery attempt of this row.
  const std::int64_t row_deadline_ns =
      res.row_deadline_ms > 0
          ? obs::now_ns() + res.row_deadline_ms * 1'000'000
          : 0;
  const std::int64_t row_nodes_start = solver_stats().nodes;
  const auto row_budget_overrun = [&]() -> std::optional<std::string> {
    if (row_deadline_ns != 0 && obs::now_ns() >= row_deadline_ns)
      return "row deadline (" + std::to_string(res.row_deadline_ms) +
             " ms) exceeded";
    if (res.row_max_nodes > 0 &&
        solver_stats().nodes - row_nodes_start > res.row_max_nodes)
      return "row node budget (" + std::to_string(res.row_max_nodes) +
             ") exceeded";
    return std::nullopt;
  };

  // Budget for one solver call at escalation round `round` (0 = base): the
  // per-check node cap and deadline grow by escalation_factor per round, and
  // the per-row deadline caps everything.
  const auto check_budget = [&](int round) {
    std::int64_t factor = 1;
    for (int i = 0; i < round; ++i) factor *= res.escalation_factor;
    smt::Budget b;
    const std::int64_t base_nodes =
        res.check_max_nodes > 0 ? res.check_max_nodes
                                : config_.solver.max_nodes;
    b.max_nodes = base_nodes * factor;
    if (res.check_deadline_ms > 0)
      b.deadline_ns = obs::now_ns() + res.check_deadline_ms * factor * 1'000'000;
    if (row_deadline_ns != 0 &&
        (b.deadline_ns == 0 || row_deadline_ns < b.deadline_ns))
      b.deadline_ns = row_deadline_ns;
    return b;
  };

  // Caching applies to the solver-guided modes only; the fingerprint tracks
  // the pins/bans the current attempt has asserted (reset per attempt) so
  // cache keys are specific to the exact problem the solver would see.
  const bool use_cache =
      config_.cache && (config_.mode == GuidanceMode::kFull ||
                        config_.mode == GuidanceMode::kHull);
  std::uint64_t fp = kPinFingerprintSeed;

  // --- decode plan: prompt-shaped query slicing + digit tables (kFull) ------
  // A dry syntax walk over the prompt (no solver, no pins) finds the set of
  // fields the prompt will pin, which determines each cluster's "live" rule
  // slice for this row; the sliced solvers are rebuilt only when that set
  // changes across rows. A field whose digits begin inside the prompt is
  // remembered: its prompt-chosen prefix was never mask-validated, so table
  // always-bits (which quantify over validated prefixes only) must not serve
  // it.
  const bool plan_mode = plan_engaged_;
  std::uint64_t prompt_fields = 0;
  int prompt_partial_field = -1;
  if (plan_mode) {
    Walk pw;
    for (const char c : prompt) {
      if (pw.in_suffix(layout_)) {
        ++pw.suffix_pos;
        continue;
      }
      const auto& spec = layout_.fields[static_cast<std::size_t>(pw.field)];
      if (pw.prefix_pos < spec.prefix.size()) {
        ++pw.prefix_pos;
        continue;
      }
      if (c >= '0' && c <= '9') {
        pw.digits = pw.digits.extended(c - '0');
        continue;
      }
      prompt_fields |= std::uint64_t{1} << static_cast<unsigned>(pw.field);
      ++pw.field;
      pw.digits = DigitPrefix{};
      if (pw.field < layout_.num_fields())
        pw.prefix_pos = 1;
      else
        pw.suffix_pos = 1;
    }
    if (!pw.in_suffix(layout_) && pw.in_digits(layout_) && !pw.digits.empty())
      prompt_partial_field = pw.field;
    ensure_sliced_solvers(prompt_fields);
  }

  // How an inconclusive result reads once escalation is exhausted.
  const bool unknown_is_feasible = res.on_unknown == UnknownPolicy::kFeasible;

  // Policy-escalated satisfiability on an explicit solver (the full one or a
  // plan cluster slice), returning the final raw result so callers can cache
  // it. kUnknown here means escalation is already spent.
  const auto check_on = [&](smt::Backend& solver,
                            std::span<const smt::Formula> fs)
      -> smt::CheckResult {
    smt::CheckResult r = solver.check_assuming(fs, check_budget(0));
    for (int e = 1; r == smt::CheckResult::kUnknown; ++e) {
      ++result.stats.unknown_checks;
      if (res.on_unknown != UnknownPolicy::kEscalate || e > res.max_escalations)
        break;
      // An escalated retry gets an *enlarged* budget, so launching one after
      // the row deadline has already passed could overshoot the row budget
      // by a whole check. Re-check the deadline between rounds; check_budget
      // still caps each round's own deadline at the row deadline.
      if (row_deadline_ns != 0 && obs::now_ns() >= row_deadline_ns) break;
      ++result.stats.escalations;
      r = solver.check_assuming(fs, check_budget(e));
    }
    return r;
  };
  const auto check_under_policy = [&](std::span<const smt::Formula> fs) {
    return check_on(*solver_, fs);
  };

  // Policy-mediated satisfiability: kUnknown is escalated and/or mapped to
  // the configured meaning instead of silently reading as infeasible.
  const auto sat_on = [&](smt::Backend& solver,
                          std::span<const smt::Formula> fs) {
    const smt::CheckResult r = check_on(solver, fs);
    if (r == smt::CheckResult::kUnknown) return unknown_is_feasible;
    return r == smt::CheckResult::kSat;
  };
  const auto sat_under_policy = [&](std::span<const smt::Formula> fs) {
    return sat_on(*solver_, fs);
  };

  // Policy-mediated hull query (kHull mode). A conclusive hull — cached or
  // freshly computed — is the exact feasible range. When even the escalated
  // budget cannot pin it down, degrade to the static domain — a superset of
  // the true hull, so masking stays permissive and the post-pin feasibility
  // check (plus dead-end recovery) catches what slips through. Under
  // kInfeasible the field is refused outright instead. Degraded hulls are
  // never cached.
  const auto hull_under_policy = [&](smt::VarId var,
                                     int field) -> smt::Interval {
    if (use_cache) {
      if (const auto cached = cache_.find_hull(fp, field);
          cached && cached->exact)
        return cached->bounds;
    }
    std::optional<smt::Interval> h =
        solver_->try_feasible_interval(var, {}, check_budget(0));
    for (int e = 1; !h; ++e) {
      ++result.stats.unknown_checks;
      if (res.on_unknown != UnknownPolicy::kEscalate || e > res.max_escalations)
        break;
      // Same deadline re-check as check_on: no enlarged retry after the row
      // deadline already expired.
      if (row_deadline_ns != 0 && obs::now_ns() >= row_deadline_ns) break;
      ++result.stats.escalations;
      h = solver_->try_feasible_interval(var, {}, check_budget(e));
    }
    if (h) {
      if (use_cache) {
        FeasibilityCache::Hull entry;
        entry.bounds = *h;
        entry.exact = true;
        cache_.store_hull(fp, field, entry);
      }
      return *h;
    }
    if (obs::metrics_enabled())
      obs::MetricsRegistry::instance().counter("decode.hull_degraded").inc();
    return res.on_unknown == UnknownPolicy::kInfeasible ? smt::Interval::empty()
                                                        : solver_->bounds(var);
  };

  // Recovery state shared across attempts.
  GuidanceMode mode = config_.mode;
  std::string resume;  // generated chars to replay on retry (prompt excluded)
  std::vector<std::pair<int, Int>> banned;  // (field, value) dead-end bans

  enum class Outcome {
    kComplete,
    kInfeasiblePrompt,
    kDeadEnd,
    kEmptyMask,
    kRowBudget,
  };
  struct AttemptEnd {
    Outcome outcome;
    int dead_field = -1;  // field whose pin caused the dead end …
    Int dead_value = 0;   // … the value it pinned to …
    int dead_digits = 0;  // … and how many digit chars that value spent
    std::string note;
  };

  const auto mask_buf = std::make_unique<bool[]>(static_cast<std::size_t>(vocab));
  const std::span<bool> mask(mask_buf.get(), static_cast<std::size_t>(vocab));

  // One decode attempt under the current mode/resume/ban state. Writes
  // result.text (and, on completion, window/ok) before returning.
  const auto run_attempt = [&]() -> AttemptEnd {
    const ScopeGuard scope(*solver_);
    Walk walk;
    std::string text;
    std::vector<int> context;
    const bool solver_guided =
        mode == GuidanceMode::kFull || mode == GuidanceMode::kHull;
    // Interval hull of the current field's feasible set (kHull mode only),
    // computed lazily when the field's digits begin and dropped when the
    // field completes.
    std::optional<smt::Interval> field_hull;
    // kFull + cache: hull/witness state of the field currently being decoded,
    // loaded from the cross-row cache at field start and written back (with
    // any witnesses gathered from sat checks) when the field pins.
    std::optional<FeasibilityCache::Hull> full_hull;
    std::uint64_t full_hull_fp = 0;
    int full_hull_field = -1;
    // Set when a kHull field completion must be validated against the rules.
    bool pending_feasibility_check = false;
    // Most recently pinned field, for the dead-end ban/rewind decision.
    int last_field = -1;
    Int last_value = 0;
    int last_digits = 0;

    // --- per-attempt decode-plan state -----------------------------------
    // plan_attempt turns off for the whole attempt in the (organically
    // unreachable) case a dead-end ban lands on a field no sliced solver can
    // express: an unclustered field, or one in a fully prompt-determined
    // cluster — both can only pin values the solver already proved feasible.
    const std::size_t n_clusters = plan_mode ? plan_->clusters.size() : 0;
    bool plan_attempt = plan_mode && mode == GuidanceMode::kFull;
    if (plan_attempt)
      for (const auto& [bf, bv] : banned) {
        const int bc = plan_->field_cluster[static_cast<std::size_t>(bf)];
        if (bc < 0 || !cluster_solvers_[static_cast<std::size_t>(bc)]) {
          plan_attempt = false;
          break;
        }
      }
    // Per cluster: rolling pin/ban fingerprint (keys the sliced solver's
    // cache entries), dirty flag (any pin/ban this attempt — always-bits
    // from the tables are then off the table), and pinned-state
    // feasibility: 1 = satisfiable, 0 = not, -1 = stale (re-check lazily).
    std::vector<std::uint64_t> cfp;
    std::vector<signed char> cluster_state;
    std::vector<signed char> cluster_dirty;
    std::vector<std::unique_ptr<ScopeGuard>> cluster_scopes;
    if (plan_attempt) {
      cfp.assign(n_clusters, kPinFingerprintSeed);
      // An active plan proved every cluster satisfiable on its own.
      cluster_state.assign(n_clusters, 1);
      cluster_dirty.assign(n_clusters, 0);
      for (const auto& s : cluster_solvers_)
        if (s) cluster_scopes.push_back(std::make_unique<ScopeGuard>(*s));
    }
    // Pins replayed from the prompt or a recovery resume were not validated
    // against the current ban set, so they leave cluster states stale; pins
    // from live generation passed their exact-feasibility check this attempt
    // and keep the cluster provably satisfiable.
    bool replaying = true;

    // Fresh abstract state for this attempt: the load-time fixpoint, refined
    // below by this attempt's bans and (through pin_field) its pins. Learning
    // a formula may drive the state to all-bottom — that is the abstraction
    // proving rules ∧ pins ∧ bans unsat, so the prefilter refuting every
    // subsequent query matches what the solver would answer.
    if (absint_on_) absint_state_ = absint_base_;
    const auto absint_learn = [&](const smt::Formula& f) {
      if (!absint_on_) return;
      if (absint::refine(absint_state_, f))
        (void)absint::refine_all(absint_state_, rules_);
    };

    // Re-assert dead-end bans inside this attempt's scope. Each ban records a
    // pin the solver proved infeasible, so excluding it cannot remove a value
    // a compliant row needs (at worst it narrows diversity near the ban).
    fp = kPinFingerprintSeed;
    if (solver_guided)
      for (const auto& [field, value] : banned) {
        const smt::Formula ban_f =
            smt::ne(smt::LinExpr(vars_[static_cast<std::size_t>(field)]),
                    smt::LinExpr(value));
        solver_->add(ban_f);
        absint_learn(ban_f);
        fp = mix_pin(fp, kPinTagBan, field, value);
        if (plan_attempt) {
          const std::size_t c = static_cast<std::size_t>(
              plan_->field_cluster[static_cast<std::size_t>(field)]);
          cluster_solvers_[c]->add(ban_f);
          cfp[c] = mix_pin(cfp[c], kPinTagBan, field, value);
          cluster_dirty[c] = 1;
          cluster_state[c] = -1;
        }
      }

    // Pin a completed field value into the solver (solver-guided modes).
    const auto pin_field = [&](int field, Int value, int digits) {
      last_field = field;
      last_value = value;
      last_digits = digits;
      if (!solver_guided) return;
      if (use_cache) {
        // Persist the field's hull/witness state under its pre-pin
        // fingerprint so later attempts and rows reuse it.
        if (full_hull && full_hull_field == field) {
          cache_.store_hull(full_hull_fp, field, *full_hull);
          full_hull.reset();
          full_hull_field = -1;
        }
        // One solver scope per pin mirrors the walk: a recovery rewind pops
        // back to a saved base snapshot instead of re-propagating the rules.
        solver_->push();
        fp = mix_pin(fp, kPinTagPin, field, value);
      }
      const smt::Formula pin_f =
          smt::eq(smt::LinExpr(vars_[static_cast<std::size_t>(field)]),
                  smt::LinExpr(value));
      solver_->add(pin_f);
      absint_learn(pin_f);
      if (plan_attempt) {
        const int c = plan_->field_cluster[static_cast<std::size_t>(field)];
        if (c >= 0 && cluster_solvers_[static_cast<std::size_t>(c)]) {
          smt::Backend& cs = *cluster_solvers_[static_cast<std::size_t>(c)];
          if (use_cache) {
            cs.push();
            cfp[static_cast<std::size_t>(c)] =
                mix_pin(cfp[static_cast<std::size_t>(c)], kPinTagPin, field,
                        value);
          }
          cs.add(
              smt::eq(smt::LinExpr(vars_[static_cast<std::size_t>(field)]),
                      smt::LinExpr(value)));
          cluster_dirty[static_cast<std::size_t>(c)] = 1;
          cluster_state[static_cast<std::size_t>(c)] =
              replaying ? static_cast<signed char>(-1)
                        : static_cast<signed char>(1);
        }
        // c == -1 needs no mirroring: with no rule referencing the field, the
        // pin only restates a domain value every solver already admits.
      }
      if (mode == GuidanceMode::kHull) pending_feasibility_check = true;
    };

    // Satisfiability of the pinned state itself (prompt feasibility and the
    // kHull post-pin hole check), memoized on the fingerprint alone.
    const auto pinned_state_feasible = [&]() -> bool {
      if (!use_cache) return sat_under_policy({});
      if (const auto v =
              cache_.lookup(QueryKind::kPinned, fp, -1, 0, 0)) {
        if (*v == smt::CheckResult::kSat) return true;
        if (*v == smt::CheckResult::kUnsat) return false;
        ++result.stats.unknown_checks;
        return unknown_is_feasible;
      }
      const smt::CheckResult r = check_under_policy({});
      cache_.store(QueryKind::kPinned, fp, -1, 0, 0, r);
      if (r == smt::CheckResult::kUnknown) return unknown_is_feasible;
      return r == smt::CheckResult::kSat;
    };

    // Plan attempts: is cluster d's pinned state satisfiable? A sliced query
    // about one cluster answers the full-set verdict only when every *other*
    // cluster can still be satisfied around it (clusters are
    // variable-disjoint, so per-cluster models compose). States invalidated
    // by replayed pins or bans are re-checked here, memoized on the
    // cluster's own fingerprint under a key field that cannot collide with
    // real fields (>= 0) or the global pinned-state key (-1).
    const auto cluster_feasible = [&](std::size_t d) -> bool {
      if (cluster_state[d] == 1) return true;
      if (cluster_state[d] == 0) return false;
      smt::Backend* const cs = cluster_solvers_[d].get();
      bool ok = true;
      if (cs == nullptr) {
        // Fully prompt-determined cluster: its pins passed the prompt
        // feasibility check, and nothing since could have touched it.
      } else if (use_cache) {
        const int key_field = -(static_cast<int>(d) + 2);
        if (const auto v =
                cache_.lookup(QueryKind::kPinned, cfp[d], key_field, 0, 0)) {
          if (*v == smt::CheckResult::kUnknown) {
            ++result.stats.unknown_checks;
            ok = unknown_is_feasible;
          } else {
            ok = *v == smt::CheckResult::kSat;
          }
        } else {
          const smt::CheckResult r = check_on(*cs, {});
          cache_.store(QueryKind::kPinned, cfp[d], key_field, 0, 0, r);
          ok = r == smt::CheckResult::kSat ||
               (r == smt::CheckResult::kUnknown && unknown_is_feasible);
        }
      } else {
        const smt::CheckResult r = check_on(*cs, {});
        ok = r == smt::CheckResult::kSat ||
             (r == smt::CheckResult::kUnknown && unknown_is_feasible);
      }
      cluster_state[d] = ok ? 1 : 0;
      return ok;
    };

    // Advance the walk over one legal character; pins fields as they complete.
    const auto advance = [&](char c) {
      if (walk.in_suffix(layout_)) {
        LEJIT_ASSERT(layout_.suffix[walk.suffix_pos] == c, "suffix mismatch");
        ++walk.suffix_pos;
        return;
      }
      const auto& spec = layout_.fields[static_cast<std::size_t>(walk.field)];
      if (walk.prefix_pos < spec.prefix.size()) {
        LEJIT_ASSERT(spec.prefix[walk.prefix_pos] == c, "prefix mismatch");
        ++walk.prefix_pos;
        return;
      }
      if (c >= '0' && c <= '9') {
        walk.digits = walk.digits.extended(c - '0');
        return;
      }
      // Any other character terminates the field.
      LEJIT_ASSERT(!walk.digits.empty(), "field terminated without digits");
      pin_field(walk.field, walk.digits.value, walk.digits.digits);
      field_hull.reset();
      ++walk.field;
      walk.digits = DigitPrefix{};
      if (walk.field < layout_.num_fields()) {
        LEJIT_ASSERT(
            layout_.fields[static_cast<std::size_t>(walk.field)]
                    .prefix.front() == c,
            "terminator does not open the next field");
        walk.prefix_pos = 1;
      } else {
        LEJIT_ASSERT(layout_.suffix.front() == c,
                     "terminator is not the suffix");
        walk.suffix_pos = 1;
      }
    };

    // Consume the prompt (its values are given, not generated: no look-ahead).
    for (const char c : prompt) {
      LEJIT_REQUIRE(tokenizer_.has_char(c),
                    "prompt character outside alphabet");
      advance(c);
      context.push_back(tokenizer_.encode_char(c));
      text.push_back(c);
    }
    pending_feasibility_check = false;  // the prompt check below covers it
    if (solver_guided && !prompt.empty()) {
      if (!pinned_state_feasible()) {
        result.text = text;
        return {Outcome::kInfeasiblePrompt, -1, 0, 0,
                "prompt contradicts the rule set (or check stayed "
                "inconclusive under the kUnknown policy)"};
      }
      // Full rules ∧ bans ∧ prompt pins satisfiable ⇒ every cluster's slice
      // of that state is satisfiable (a full model restricts to each).
      if (plan_attempt)
        std::fill(cluster_state.begin(), cluster_state.end(),
                  static_cast<signed char>(1));
    }

    // Replay the part of a previous attempt that survived the rewind. Its
    // legality was established when it was first emitted, so no masking or
    // LM work is repeated; pins are re-asserted through advance().
    for (const char c : resume) {
      advance(c);
      context.push_back(tokenizer_.encode_char(c));
      text.push_back(c);
    }
    pending_feasibility_check = false;  // held before the rewind point
    replaying = false;  // pins from here on are mask-validated first

    // Compute the legal-character mask for the current walk state. Returns
    // the number of legal tokens.
    const auto compute_mask = [&]() -> int {
      std::fill(mask.begin(), mask.end(), false);
      int legal = 0;
      const auto allow = [&](char c) {
        mask[static_cast<std::size_t>(tokenizer_.encode_char(c))] = true;
        ++legal;
      };

      if (walk.in_suffix(layout_)) {
        allow(layout_.suffix[walk.suffix_pos]);
        return legal;
      }
      const auto& spec = layout_.fields[static_cast<std::size_t>(walk.field)];
      if (walk.prefix_pos < spec.prefix.size()) {
        allow(spec.prefix[walk.prefix_pos]);
        return legal;
      }

      const smt::VarId var = vars_[static_cast<std::size_t>(walk.field)];
      const int max_digits = digits_for(spec.max_value);

      // Decode-plan routing for this field (kFull plan attempts only):
      //   plan_cluster  the field's cluster (-1 = no rule references it;
      //                 -2 = plan off this attempt),
      //   qsolver/qfp   the solver and fingerprint answering live queries —
      //                 the cluster's sliced solver when one exists, else
      //                 the full solver,
      //   others_ok     every *other* cluster's pinned state is satisfiable;
      //                 when false, no completion of this field exists and
      //                 the whole digit section masks out (exactly what the
      //                 unsliced queries would conclude one by one),
      //   always_ok     table always-bits may answer — they describe
      //                 completability under the cluster rules *alone*, so
      //                 they need a pin/ban-free cluster, a prefix that was
      //                 mask-validated (not begun inside the prompt), and
      //                 others_ok.
      const int plan_cluster =
          plan_attempt
              ? plan_->field_cluster[static_cast<std::size_t>(walk.field)]
              : -2;
      const plan::DigitTable* const table =
          plan_attempt ? plan_->table_for(walk.field) : nullptr;
      smt::Backend* qsolver = solver_.get();
      std::uint64_t qfp = fp;
      bool others_ok = true;
      bool always_ok = false;
      if (plan_attempt) {
        for (std::size_t d = 0; d < n_clusters; ++d)
          if (static_cast<int>(d) != plan_cluster && !cluster_feasible(d)) {
            others_ok = false;
            break;
          }
        always_ok =
            others_ok && walk.field != prompt_partial_field &&
            (plan_cluster < 0 ||
             cluster_dirty[static_cast<std::size_t>(plan_cluster)] == 0);
        if (plan_cluster >= 0 &&
            cluster_solvers_[static_cast<std::size_t>(plan_cluster)]) {
          qsolver =
              cluster_solvers_[static_cast<std::size_t>(plan_cluster)].get();
          qfp = cfp[static_cast<std::size_t>(plan_cluster)];
        }
      }

      if (mode == GuidanceMode::kHull && !field_hull)
        field_hull = hull_under_policy(var, walk.field);

      // kFull + cache: establish hull/witness state for this field. A cached
      // exact hull (e.g. from a kHull pass at the same fingerprint) gives
      // conclusive answers in both directions; otherwise the solver base's
      // propagated bounds give free conclusive-infeasible answers and
      // witnesses accumulate from organic sat checks. Plan attempts key the
      // hull on the answering cluster's solver and fingerprint; unclustered
      // fields skip it (their queries are pure interval arithmetic already).
      if (mode == GuidanceMode::kFull && use_cache &&
          !(plan_attempt && plan_cluster == -1) &&
          (!full_hull || full_hull_field != walk.field)) {
        full_hull_fp = qfp;
        full_hull_field = walk.field;
        full_hull = cache_.find_hull(qfp, walk.field);
        if (!full_hull) {
          FeasibilityCache::Hull entry;
          entry.bounds = qsolver->propagated_bounds(var);
          // A lint-seeded static hull over-approximates the feasible set
          // under any pins/bans, so intersecting it in is sound and can be
          // tighter than bounds consistency (exact hulls see through
          // disjunction holes that propagation cannot).
          if (const FeasibilityCache::Hull* s = cache_.static_hull(walk.field))
            entry.bounds = intersect(entry.bounds, s->bounds);
          full_hull = std::move(entry);
        }
      }

      // Absint prefilter (DESIGN.md §16): consult this attempt's abstract
      // state before the cache and before any solver work. The abstraction
      // only ever refutes, and a refutation is a proof, so a hit masks out
      // exactly the candidates the solver would have rejected — decoded text
      // is bit-identical with the prefilter on or off. One global state
      // serves plan cluster slices too: rules and pins only touch the fields
      // they reference, so per-field the state already equals the refinement
      // under that field's cluster alone.
      const bool absint_live = absint_on_ && mode == GuidanceMode::kFull;
      const auto absint_refutes_completion = [&](const DigitPrefix& p) {
        if (!absint_live) return false;
        ++result.stats.absint_checks;
        if (absint::completion_admitted(
                absint_state_[static_cast<std::size_t>(walk.field)], p.value,
                p.digits, max_digits))
          return false;
        ++result.stats.absint_hits;
        return true;
      };
      const auto absint_refutes_value = [&](Int value) {
        if (!absint_live) return false;
        ++result.stats.absint_checks;
        if (absint::admits_value(
                absint_state_[static_cast<std::size_t>(walk.field)], value))
          return false;
        ++result.stats.absint_hits;
        return true;
      };

      // Candidate feasibility in kFull mode with caching: the absint
      // prefilter, then interval arithmetic, then the verdict memo, then the
      // solver. `exact` answers from the early tiers match what the solver
      // would say, so masks — and therefore decoded text — are bit-identical
      // to the uncached path.
      const auto cached_completion_feasible = [&](const DigitPrefix& p) {
        if (absint_refutes_completion(p)) return false;
        // Completions that miss the hull are infeasible (the hull is the
        // feasible set's interval over-approximation); ones containing a
        // known-feasible value are feasible.
        if (!completion_intersects(p, max_digits, full_hull->bounds)) {
          if (obs::metrics_enabled()) hull_conclusive_counter().inc();
          return false;
        }
        for (const Int w : full_hull->witnesses)
          if (completion_contains(p, max_digits, w)) {
            if (obs::metrics_enabled()) hull_conclusive_counter().inc();
            return true;
          }
        if (full_hull->exact &&
            (completion_contains(p, max_digits, full_hull->bounds.lo) ||
             completion_contains(p, max_digits, full_hull->bounds.hi))) {
          // Exact-hull endpoints are feasible by construction.
          if (obs::metrics_enabled()) hull_conclusive_counter().inc();
          return true;
        }
        if (const auto v = cache_.lookup(QueryKind::kCompletion, qfp,
                                         walk.field, p.value, p.digits)) {
          if (*v == smt::CheckResult::kSat) return true;
          if (*v == smt::CheckResult::kUnsat) return false;
          ++result.stats.unknown_checks;
          return unknown_is_feasible;
        }
        const smt::Formula f = prefix_completion_formula(var, p, max_digits);
        const smt::CheckResult r = check_on(*qsolver, std::span(&f, 1));
        cache_.store(QueryKind::kCompletion, qfp, walk.field, p.value,
                     p.digits, r);
        if (r == smt::CheckResult::kSat) {
          // Backends may lose the model (e.g. a degraded external check);
          // a missing witness is only a cache miss, never an error.
          if (const auto w = qsolver->model_value(var))
            full_hull->add_witness(*w);
          return true;
        }
        if (r == smt::CheckResult::kUnknown) return unknown_is_feasible;
        return false;
      };

      // Same tiers for pinning the field to its exact current value.
      const auto cached_exact_feasible = [&](Int value) {
        if (absint_refutes_value(value)) return false;
        if (!full_hull->bounds.contains(value)) {
          if (obs::metrics_enabled()) hull_conclusive_counter().inc();
          return false;
        }
        if (full_hull->has_witness(value) ||
            (full_hull->exact && (value == full_hull->bounds.lo ||
                                  value == full_hull->bounds.hi))) {
          if (obs::metrics_enabled()) hull_conclusive_counter().inc();
          return true;
        }
        if (const auto v = cache_.lookup(QueryKind::kExact, qfp, walk.field,
                                         value, 0)) {
          if (*v == smt::CheckResult::kSat) return true;
          if (*v == smt::CheckResult::kUnsat) return false;
          ++result.stats.unknown_checks;
          return unknown_is_feasible;
        }
        const smt::Formula f =
            smt::eq(smt::LinExpr(var), smt::LinExpr(value));
        const smt::CheckResult r = check_on(*qsolver, std::span(&f, 1));
        cache_.store(QueryKind::kExact, qfp, walk.field, value, 0, r);
        if (r == smt::CheckResult::kSat) {
          full_hull->add_witness(value);
          return true;
        }
        if (r == smt::CheckResult::kUnknown) return unknown_is_feasible;
        return false;
      };

      // Digits that keep some completion reachable.
      for (int d = 0; d <= 9; ++d) {
        if (!walk.digits.empty() && !walk.digits.can_extend(max_digits)) break;
        const DigitPrefix next = walk.digits.extended(d);
        if (!prefix_syntactically_ok(next, max_digits)) continue;
        if (mode == GuidanceMode::kFull) {
          if (plan_attempt) {
            if (!others_ok) continue;
            const int k = walk.digits.digits;
            if (table && table->row_verified(k)) {
              // never is monotone-sound under any pins/bans (they only
              // remove completions); always needs the clean-cluster gate.
              if (table->never_bit(k, d)) {
                ++result.stats.plan_table_hits;
                continue;
              }
              if (always_ok && table->always_bit(k, d)) {
                ++result.stats.plan_table_hits;
                allow(static_cast<char>('0' + d));
                continue;
              }
            }
            if (plan_cluster == -1) {
              // No rule references this field: completability against the
              // declared domain is the exact verdict, solver-free.
              if (!completion_intersects(
                      next, max_digits,
                      smt::Interval{0, spec.max_value}))
                continue;
            } else {
              ++result.stats.plan_sliced_queries;
              result.stats.plan_sliced_rules += cluster_live_rules_[
                  static_cast<std::size_t>(plan_cluster)];
              if (use_cache) {
                if (!cached_completion_feasible(next)) continue;
              } else {
                if (absint_refutes_completion(next)) continue;
                const smt::Formula f =
                    prefix_completion_formula(var, next, max_digits);
                if (!sat_on(*qsolver, std::span(&f, 1))) continue;
              }
            }
          } else if (use_cache) {
            if (!cached_completion_feasible(next)) continue;
          } else {
            if (absint_refutes_completion(next)) continue;
            const smt::Formula f =
                prefix_completion_formula(var, next, max_digits);
            if (!sat_under_policy(std::span(&f, 1))) continue;
          }
        } else if (mode == GuidanceMode::kHull) {
          if (!completion_intersects(next, max_digits, *field_hull)) continue;
        }
        allow(static_cast<char>('0' + d));
      }
      // Terminating the field on its exact current value.
      if (!walk.digits.empty()) {
        bool can_end = true;
        // A banned value must not be re-pinned, whichever mode is active
        // (kFull would also learn this from the asserted ban).
        for (const auto& [bf, bv] : banned) {
          if (bf == walk.field && bv == walk.digits.value) {
            can_end = false;
            break;
          }
        }
        if (can_end && mode == GuidanceMode::kFull) {
          if (plan_attempt) {
            if (!others_ok) {
              can_end = false;
            } else {
              const int k = walk.digits.digits;
              bool decided = false;
              if (table && table->row_verified(k)) {
                if (table->never_bit(k, plan::kTerminatorBit)) {
                  ++result.stats.plan_table_hits;
                  can_end = false;
                  decided = true;
                } else if (always_ok &&
                           table->always_bit(k, plan::kTerminatorBit)) {
                  ++result.stats.plan_table_hits;
                  decided = true;  // can_end stays true
                }
              }
              if (!decided) {
                if (plan_cluster == -1) {
                  // Unreferenced field: pinning to any in-domain value is
                  // exactly as satisfiable as the rest of the state, which
                  // others_ok just vouched for.
                  can_end = walk.digits.value <= spec.max_value;
                } else {
                  ++result.stats.plan_sliced_queries;
                  result.stats.plan_sliced_rules += cluster_live_rules_[
                      static_cast<std::size_t>(plan_cluster)];
                  if (use_cache) {
                    can_end = cached_exact_feasible(walk.digits.value);
                  } else if (absint_refutes_value(walk.digits.value)) {
                    can_end = false;
                  } else {
                    const smt::Formula f =
                        smt::eq(smt::LinExpr(var),
                                smt::LinExpr(walk.digits.value));
                    can_end = sat_on(*qsolver, std::span(&f, 1));
                  }
                }
              }
            }
          } else if (use_cache) {
            can_end = cached_exact_feasible(walk.digits.value);
          } else if (absint_refutes_value(walk.digits.value)) {
            can_end = false;
          } else {
            const smt::Formula f =
                smt::eq(smt::LinExpr(var), smt::LinExpr(walk.digits.value));
            can_end = sat_under_policy(std::span(&f, 1));
          }
        } else if (can_end && mode == GuidanceMode::kHull) {
          can_end = field_hull->contains(walk.digits.value);
        }
        if (can_end) allow(walk.terminator(layout_));
      }
      return legal;
    };

    while (!walk.done(layout_)) {
      if (auto overrun = row_budget_overrun()) {
        result.text = text;
        return {Outcome::kRowBudget, -1, 0, 0, std::move(*overrun)};
      }
      const int legal = [&] {
        const obs::Span span(obs::Phase::kMaskBuild);
        return compute_mask();
      }();
      if (legal == 0) {
        result.text = text;
        return {Outcome::kEmptyMask, -1, 0, 0,
                "empty mask at char " + std::to_string(text.size())};
      }

      char emitted = 0;
      if (legal == 1 && config_.skip_forced_literals) {
        const auto it = std::find(mask.begin(), mask.end(), true);
        emitted = tokenizer_.decode_char(static_cast<int>(it - mask.begin()));
      } else {
        const std::vector<float> logits = [&] {
          const obs::Span span(obs::Phase::kLmForward);
          return model_.logits(context);
        }();
        ++result.stats.lm_calls;
        ++result.stats.masked_steps;
        const double mass = lm::allowed_mass(logits, mask);
        result.stats.removed_mass += 1.0 - mass;
        const auto argmax =
            std::max_element(logits.begin(), logits.end()) - logits.begin();
        if (!mask[static_cast<std::size_t>(argmax)]) {
          ++result.stats.interventions;
          // Histogram only the steps where the mask actually intervened:
          // recording every masked step buries the distribution under a
          // mountain of ~zero-removal entries and makes its percentiles
          // meaningless. The scalar removed_mass sum above still covers all
          // masked steps (DecodeStats::mean_removed_mass depends on that).
          removed_mass_histogram().observe(1.0 - mass);
        }
        const int tok = [&] {
          const obs::Span span(obs::Phase::kSampling);
          return lm::sample_token(logits, config_.sampler, rng, mask);
        }();
        emitted = tokenizer_.decode_char(tok);
      }

      advance(emitted);
      context.push_back(tokenizer_.encode_char(emitted));
      text.push_back(emitted);
      ++result.stats.chars;

      // kHull: a value inside the hull may still sit in a hole of the
      // feasible set; detect the dead end right after pinning.
      if (pending_feasibility_check) {
        pending_feasibility_check = false;
        if (!pinned_state_feasible()) {
          result.text = text;
          return {Outcome::kDeadEnd, last_field, last_value, last_digits,
                  "dead end after pinning field #" +
                      std::to_string(last_field) + " (" +
                      layout_.fields[static_cast<std::size_t>(last_field)]
                          .name +
                      " = " + std::to_string(last_value) + ")"};
        }
      }
    }

    // Strip the trailing suffix from the visible text? Keep text as emitted
    // but without the newline for readability.
    std::string row = text;
    if (!row.empty() && row.back() == '\n') row.pop_back();
    result.text = row;
    result.window = telemetry::parse_row(row, layout_);
    result.ok = result.window.has_value();
    LEJIT_ASSERT(result.ok, "guided decode produced an unparsable row");
    return {Outcome::kComplete, -1, 0, 0, {}};
  };

  // The recovery loop: run attempts until one completes, a non-recoverable
  // outcome ends the row, or the retry budget runs dry.
  int attempts_left = res.retry_budget;
  while (true) {
    const AttemptEnd attempt = run_attempt();
    result.stats.solver_checks = solver_stats().checks - checks_before;

    switch (attempt.outcome) {
      case Outcome::kComplete:
        return result;
      case Outcome::kInfeasiblePrompt:
        result.infeasible_prompt = true;
        result.reason = FailReason::kInfeasiblePrompt;
        result.fail_detail = attempt.note;
        return result;
      case Outcome::kRowBudget:
        result.reason = FailReason::kBudgetExhausted;
        result.fail_detail = attempt.note;
        LEJIT_LOG_WARN("guided decode aborted: " + attempt.note);
        return result;
      case Outcome::kDeadEnd:
      case Outcome::kEmptyMask:
        break;  // recoverable, budget permitting
    }

    if (attempts_left <= 0) {
      if (attempt.outcome == Outcome::kDeadEnd) {
        result.dead_end = true;
        result.reason = FailReason::kDeadEnd;
      } else {
        result.reason = FailReason::kEmptyMask;
        LEJIT_LOG_WARN("guided decode hit an empty mask at char " +
                       std::to_string(result.stats.chars));
      }
      result.fail_detail = attempt.note;
      return result;
    }
    --attempts_left;
    ++result.recoveries;

    // Rewind: drop the last backtrack_chars generated characters — for a
    // dead end, at least the failing field's digits and terminator, so the
    // field reopens — then ban the failing pin and resample.
    const std::string full = result.text;
    std::size_t keep =
        full.size() > static_cast<std::size_t>(res.backtrack_chars)
            ? full.size() - static_cast<std::size_t>(res.backtrack_chars)
            : 0;
    if (attempt.outcome == Outcome::kDeadEnd) {
      const std::size_t field_start =
          full.size() - static_cast<std::size_t>(attempt.dead_digits) - 1;
      keep = std::min(keep, field_start);
      banned.emplace_back(attempt.dead_field, attempt.dead_value);
    }
    keep = std::max(keep, prompt.size());
    resume = full.substr(prompt.size(), keep - prompt.size());

    // Hull masking that keeps walking into holes is not worth saving: after
    // a second recovery, restart under exact look-ahead.
    if (mode == GuidanceMode::kHull && res.escalate_guidance &&
        result.recoveries >= 2) {
      mode = GuidanceMode::kFull;
      result.guidance_escalated = true;
    }
    LEJIT_LOG_DEBUG("dead-end recovery #" + std::to_string(result.recoveries) +
                    ": " + attempt.note + "; resuming from char " +
                    std::to_string(keep));
  }
}

}  // namespace lejit::core
