// Character-level transition system (paper §3, Fig. 2).
//
// LeJIT's decoder walks a row's syntax one character at a time. Inside a
// numeric field it tracks the digit prefix emitted so far; the set of legal
// next characters is derived from which *completions* of that prefix still
// admit a rule-compliant full row. This header holds the pure, solver-free
// pieces of that automaton: prefix arithmetic and the formula describing
// "the final value of this field extends the current prefix".
//
// Numbers are canonical decimal: no leading zeros ("0" is the only value
// starting with '0'), at most digits_for(max_value) digits.
#pragma once

#include <cstdint>

#include "smt/formula.hpp"
#include "smt/linexpr.hpp"

namespace lejit::core {

using Int = smt::Int;

// Number of decimal digits needed to write `v` (v >= 0; 0 has 1 digit).
int digits_for(Int v);

// State of one numeric field being emitted: `value` is the numeric value of
// the digits consumed so far, `digits` how many there are.
struct DigitPrefix {
  Int value = 0;
  int digits = 0;

  bool empty() const { return digits == 0; }
  // Appending another digit is syntactically legal iff the prefix is not the
  // lone canonical zero and the digit budget is not exhausted.
  bool can_extend(int max_digits) const {
    if (digits >= max_digits) return false;
    return !(digits == 1 && value == 0);
  }
  // Saturating: `value * 10 + digit` would overflow Int for digit strings
  // longer than any bounded field admits (possible in prompts, which are
  // consumed without a digit-budget check). A saturated prefix exceeds every
  // declared domain, so downstream feasibility checks reject it — the same
  // outcome an un-overflowed huge value would get, without the UB.
  DigitPrefix extended(int digit) const {
    return DigitPrefix{smt::sat_add(smt::sat_mul(value, 10), digit),
                       digits + 1};
  }
};

// Formula: variable `v` equals some canonical completion of `prefix`, i.e.
//   v == prefix                                   (terminate now), or
//   v ∈ [prefix·10^m, prefix·10^m + 10^m − 1]     for m = 1..max_digits−k.
// Precondition: !prefix.empty(). The caller conjoins this with the rule set
// via Solver::check_assuming — SAT ⇔ the prefix is still completable.
smt::Formula prefix_completion_formula(smt::VarId v, const DigitPrefix& prefix,
                                       int max_digits);

// Purely syntactic check used by the grammar-only baseline: can `prefix` be
// completed to some value in [0, 10^max_digits)? (No solver involved.)
bool prefix_syntactically_ok(const DigitPrefix& prefix, int max_digits);

// Does some canonical completion of `prefix` lie within `hull`? Used by the
// hull-only guidance mode (GuidanceMode::kHull): sound for convex feasible
// sets, blind to holes inside the hull. Precondition: !prefix.empty().
bool completion_intersects(const DigitPrefix& prefix, int max_digits,
                           const smt::Interval& hull);

// Is `value` itself a canonical completion of `prefix`? Exact (no hull
// convexity caveat): used by the decoder's feasibility cache to prove a
// prefix viable from a recorded witness without a solver call.
// Precondition: !prefix.empty().
bool completion_contains(const DigitPrefix& prefix, int max_digits, Int value);

}  // namespace lejit::core
