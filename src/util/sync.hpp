// Annotated synchronization primitives (thread_annotations.hpp).
//
// Thin wrappers over std::mutex / std::unique_lock / std::condition_variable
// that carry clang thread-safety capability attributes, since the standard
// types do not. Semantics and costs are exactly the standard primitives';
// only the static analysis surface is added.
//
// Condition waits are written as explicit predicate loops at the call site:
//
//   util::MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// rather than the predicate-lambda overload — clang analyzes a lambda body
// as a separate unannotated function, so guarded reads inside it would
// (spuriously) trip the analysis; the open-coded loop keeps every guarded
// access inside the annotated caller.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace lejit::util {

class LEJIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LEJIT_ACQUIRE() { mu_.lock(); }
  void unlock() LEJIT_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Scoped lock over a util::Mutex. Supports manual unlock()/lock() cycles
// (the Batcher releases the lock for the duration of a batched forward) —
// the destructor releases only if currently held, like std::unique_lock.
class LEJIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LEJIT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() LEJIT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() LEJIT_ACQUIRE() { lock_.lock(); }
  void unlock() LEJIT_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // Atomically releases `lock` for the wait and reacquires it before
  // returning; as far as the analysis is concerned the capability is held
  // across the call, which matches what the caller may assume on both
  // sides. Spurious wakeups are possible — always wait in a predicate loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

 private:
  std::condition_variable cv_;
};

}  // namespace lejit::util
