// Clang thread-safety analysis annotations, portable across compilers.
//
// Clang's -Wthread-safety is a compile-time race detector: lock-protected
// members are declared LEJIT_GUARDED_BY(mu), functions that assume a held
// lock LEJIT_REQUIRES(mu), and the analysis rejects any access path that
// does not provably hold the capability. The macros expand to GNU
// attributes under clang and to nothing elsewhere, so annotated headers
// stay valid C++ for GCC (which has no such analysis). The `clang` CMake
// preset / CI job builds with -Werror=thread-safety, making violations a
// build break.
//
// std::mutex is not an annotated capability type; use util::Mutex /
// util::MutexLock / util::CondVar from util/sync.hpp, which wrap the
// standard primitives with the capability attributes below.
#pragma once

#if defined(__clang__)
#define LEJIT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LEJIT_THREAD_ANNOTATION_(x)
#endif

// On a class: instances are capabilities (lockable objects).
#define LEJIT_CAPABILITY(x) LEJIT_THREAD_ANNOTATION_(capability(x))
// On a class: RAII object that acquires a capability for its lifetime.
#define LEJIT_SCOPED_CAPABILITY LEJIT_THREAD_ANNOTATION_(scoped_lockable)
// On a data member: may only be read/written while holding `x`.
#define LEJIT_GUARDED_BY(x) LEJIT_THREAD_ANNOTATION_(guarded_by(x))
// On a pointer member: the pointee is protected by `x`.
#define LEJIT_PT_GUARDED_BY(x) LEJIT_THREAD_ANNOTATION_(pt_guarded_by(x))
// On a function: callers must hold the capability (and still do after).
#define LEJIT_REQUIRES(...) \
  LEJIT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
// On a function: acquires/releases the capability.
#define LEJIT_ACQUIRE(...) \
  LEJIT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LEJIT_RELEASE(...) \
  LEJIT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LEJIT_TRY_ACQUIRE(...) \
  LEJIT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
// On a function: must be called WITHOUT the capability held.
#define LEJIT_EXCLUDES(...) LEJIT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// On a function returning a reference to a capability.
#define LEJIT_RETURN_CAPABILITY(x) LEJIT_THREAD_ANNOTATION_(lock_returned(x))
// Escape hatch for code the analysis cannot follow (e.g. a lock handed
// across a call boundary and dropped mid-function). Callers are still
// checked against the function's REQUIRES contract.
#define LEJIT_NO_THREAD_SAFETY_ANALYSIS \
  LEJIT_THREAD_ANNOTATION_(no_thread_safety_analysis)
