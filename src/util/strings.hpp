// Small string helpers shared across modules (parsing the row text format,
// table printing in the bench harnesses).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lejit::util {

// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Parse a non-negative decimal integer; nullopt on any non-digit content.
std::optional<std::int64_t> parse_int(std::string_view s);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Fixed-width left/right padding for table output.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

// Format a double with the given precision (no trailing-zero stripping).
std::string format_double(double v, int precision);

}  // namespace lejit::util
