// Forwarder: Timer moved to obs/timer.hpp so benches and observability spans
// share one clock. Kept so existing `#include "util/timer.hpp"` sites and the
// lejit::util::Timer spelling keep compiling.
#pragma once

#include "obs/timer.hpp"

namespace lejit::util {

using Timer = ::lejit::obs::Timer;

}  // namespace lejit::util
