#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace lejit::util {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace lejit::util
