// Error handling primitives.
//
// Following the C++ Core Guidelines (E.2, I.6): exceptions signal errors that
// callers cannot ignore; LEJIT_REQUIRE documents and enforces preconditions
// at API boundaries; LEJIT_ASSERT guards internal invariants and is compiled
// out of release builds only when explicitly requested.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lejit::util {

// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Thrown for recoverable runtime conditions (e.g. solver resource limits).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_assert(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace lejit::util

#define LEJIT_REQUIRE(expr, msg)                                             \
  do {                                                                       \
    if (!(expr))                                                             \
      ::lejit::util::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define LEJIT_ASSERT(expr, msg)                                             \
  do {                                                                      \
    if (!(expr))                                                            \
      ::lejit::util::detail::fail_assert(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Marks a branch the surrounding logic has proven impossible ([[noreturn]]).
#define LEJIT_UNREACHABLE(msg) \
  ::lejit::util::detail::fail_assert("unreachable", __FILE__, __LINE__, (msg))
