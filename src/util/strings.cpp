#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace lejit::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace lejit::util
