// Deterministic pseudo-random number generation for all stochastic components.
//
// Every experiment in this repository is seeded, so results are reproducible
// run-to-run. We use our own small PCG32 generator instead of <random>'s
// engines so that streams are stable across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace lejit::util {

// PCG32 (Melissa O'Neill, pcg-random.org, Apache-2.0 reference algorithm).
// 64-bit state, 32-bit output, period 2^64. Satisfies
// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint32_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u32(); }

  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  // Uniform integer in [lo, hi], inclusive. Unbiased (Lemire rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo >= hi) return lo;
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling on the top of the 64-bit space.
    const std::uint64_t limit = range * (UINT64_MAX / range);
    std::uint64_t draw = next_u64();
    while (draw >= limit) draw = next_u64();
    return lo + static_cast<std::int64_t>(draw % range);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Standard normal via Box–Muller (cached second value).
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  // Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  // Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  // Bernoulli trial.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Sample an index from unnormalized non-negative weights.
  // Weights summing to zero are an error (no valid choice).
  std::size_t categorical(std::span<const double> weights) noexcept;

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent generator (e.g. one per rack / per worker).
  Rng fork(std::uint64_t salt) noexcept {
    return Rng(next_u64() ^ salt, next_u64() | 1u);
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lejit::util
