#include "smt/diff.hpp"

#include <string>
#include <utility>
#include <vector>

#include "smt/smtlib2.hpp"
#include "util/rng.hpp"

namespace lejit::smt::diff {

namespace {

const char* verdict_name(CheckResult r) {
  switch (r) {
    case CheckResult::kSat: return "sat";
    case CheckResult::kUnsat: return "unsat";
    case CheckResult::kUnknown: return "unknown";
  }
  return "?";
}

// One randomized session: the problem shape mirrors what the decoder emits —
// bounded integer fields, linear-comparison rules with and/or structure,
// scoped pins (eq assertions under push), and check-assuming queries whose
// assumptions look like prefix-completion ranges and exact pins.
struct SessionGen {
  util::Rng& rng;
  std::vector<Interval> domains;

  LinExpr random_expr() {
    LinExpr e;
    const int terms = static_cast<int>(rng.uniform_int(1, 3));
    for (int t = 0; t < terms; ++t) {
      const int v = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(domains.size()) - 1));
      Int coeff = rng.uniform_int(-3, 3);
      if (coeff == 0) coeff = 1;
      e += coeff * LinExpr(VarId{v});
    }
    e += LinExpr(rng.uniform_int(-40, 40));
    return e;
  }

  Formula random_atom() {
    const LinExpr a = random_expr();
    const LinExpr b = random_expr();
    switch (rng.uniform_int(0, 5)) {
      case 0: return le(a, b);
      case 1: return lt(a, b);
      case 2: return ge(a, b);
      case 3: return gt(a, b);
      case 4: return eq(a, b);
      default: return ne(a, b);
    }
  }

  Formula random_formula(int depth) {
    if (depth <= 0 || rng.bernoulli(0.5)) {
      Formula f = random_atom();
      if (rng.bernoulli(0.15)) f = lnot(f);
      return f;
    }
    std::vector<Formula> fs;
    const int n = static_cast<int>(rng.uniform_int(2, 3));
    for (int i = 0; i < n; ++i) fs.push_back(random_formula(depth - 1));
    return rng.bernoulli(0.5) ? land(std::move(fs)) : lor(std::move(fs));
  }
};

}  // namespace

Report run(const BackendFactory& reference, const BackendFactory& candidate,
           const Config& config) {
  Report report;
  util::Rng rng(config.seed);

  while (report.compared < config.queries) {
    ++report.sessions;
    const std::unique_ptr<Backend> ref = reference();
    const std::unique_ptr<Backend> cand = candidate();

    // Transcript of the session in SMT-LIB2 — the repro a mismatch prints.
    std::string script;

    SessionGen gen{rng, {}};
    const int nv = static_cast<int>(rng.uniform_int(2, 5));
    for (int v = 0; v < nv; ++v) {
      const Int hi = rng.uniform_int(3, 60);
      gen.domains.push_back(Interval{0, hi});
      ref->add_var(smtlib2::var_name(v), 0, hi);
      cand->add_var(smtlib2::var_name(v), 0, hi);
      script += smtlib2::declare_lines(v, 0, hi);
      script += '\n';
    }
    const auto assert_both = [&](Formula f) {
      script += smtlib2::assert_line(f);
      script += '\n';
      ref->add(f);
      cand->add(std::move(f));
    };
    const int base = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < base; ++i) assert_both(gen.random_formula(2));

    const int ops = static_cast<int>(rng.uniform_int(4, 12));
    std::size_t depth = 0;
    for (int op = 0; op < ops && report.compared < config.queries; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.15 && depth < 3) {
        ref->push();
        cand->push();
        ++depth;
        script += "(push 1)\n";
        continue;
      }
      if (roll < 0.30 && depth > 0) {
        ref->pop();
        cand->pop();
        --depth;
        script += "(pop 1)\n";
        continue;
      }
      if (roll < 0.50) {
        // A pin-shaped assertion: field = value, like the decoder's walk.
        const int v = static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(nv) - 1));
        const Int hi = gen.domains[static_cast<std::size_t>(v)].hi;
        assert_both(eq(LinExpr(VarId{v}), LinExpr(rng.uniform_int(0, hi))));
        continue;
      }

      std::vector<Formula> assumptions;
      const int na = static_cast<int>(rng.uniform_int(0, 2));
      for (int a = 0; a < na; ++a)
        assumptions.push_back(gen.random_formula(1));
      script += "; check #" + std::to_string(report.checks) + " assuming:\n";
      for (const Formula& f : assumptions)
        script += ";   " + smtlib2::to_smtlib2(f) + "\n";

      ++report.checks;
      const CheckResult rv = ref->check_assuming(assumptions, config.budget);
      const CheckResult cv = cand->check_assuming(assumptions, config.budget);
      if (rv == CheckResult::kUnknown || cv == CheckResult::kUnknown) {
        ++report.unknowns;
        continue;
      }
      ++report.compared;
      if (rv == cv) continue;
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        report.first_mismatch =
            "verdict mismatch at seed " + std::to_string(config.seed) +
            ", session " + std::to_string(report.sessions) + ", check " +
            std::to_string(report.checks - 1) + ": " + std::string(ref->name()) +
            " says " + verdict_name(rv) + ", " + std::string(cand->name()) +
            " says " + verdict_name(cv) + "\nsession transcript:\n" + script;
      }
    }
  }
  return report;
}

std::string to_text(const Report& report) {
  std::string out = "smt-diff: " + std::to_string(report.compared) +
                    " verdicts compared across " +
                    std::to_string(report.sessions) + " sessions (" +
                    std::to_string(report.checks) + " checks, " +
                    std::to_string(report.unknowns) + " skipped as unknown): " +
                    std::to_string(report.mismatches) + " mismatches\n";
  if (!report.first_mismatch.empty()) {
    out += report.first_mismatch;
    out += '\n';
  }
  return out;
}

}  // namespace lejit::smt::diff
