#include "smt/formula.hpp"

#include <sstream>

namespace lejit::smt {

namespace {

// Constant-fold an atom whose expression has no variables.
Formula fold_constant_atom(AtomOp op, const LinExpr& expr) {
  const Int c = expr.constant();
  bool value = false;
  switch (op) {
    case AtomOp::kLe: value = c <= 0; break;
    case AtomOp::kEq: value = c == 0; break;
    case AtomOp::kNe: value = c != 0; break;
  }
  return value ? make_true() : make_false();
}

Formula make_atom(AtomOp op, LinExpr expr) {
  if (expr.is_constant()) return fold_constant_atom(op, expr);
  return std::make_shared<const FormulaNode>(op, std::move(expr));
}

}  // namespace

Formula make_true() {
  static const Formula t =
      std::make_shared<const FormulaNode>(FormulaKind::kTrue);
  return t;
}

Formula make_false() {
  static const Formula f =
      std::make_shared<const FormulaNode>(FormulaKind::kFalse);
  return f;
}

Formula le(const LinExpr& a, const LinExpr& b) { return make_atom(AtomOp::kLe, a - b); }
Formula lt(const LinExpr& a, const LinExpr& b) { return le(a + LinExpr(1), b); }
Formula ge(const LinExpr& a, const LinExpr& b) { return le(b, a); }
Formula gt(const LinExpr& a, const LinExpr& b) { return lt(b, a); }
Formula eq(const LinExpr& a, const LinExpr& b) { return make_atom(AtomOp::kEq, a - b); }
Formula ne(const LinExpr& a, const LinExpr& b) { return make_atom(AtomOp::kNe, a - b); }

Formula between(const LinExpr& x, const LinExpr& a, const LinExpr& b) {
  return land(le(a, x), le(x, b));
}

namespace {

Formula make_nary(FormulaKind kind, std::vector<Formula> fs) {
  LEJIT_ASSERT(kind == FormulaKind::kAnd || kind == FormulaKind::kOr,
               "make_nary expects a connective");
  const Formula absorbing =
      kind == FormulaKind::kAnd ? make_false() : make_true();
  const Formula identity =
      kind == FormulaKind::kAnd ? make_true() : make_false();
  std::vector<Formula> kept;
  kept.reserve(fs.size());
  for (auto& f : fs) {
    LEJIT_REQUIRE(f != nullptr, "null formula operand");
    if (f->kind() == absorbing->kind()) return absorbing;
    if (f->kind() == identity->kind()) continue;
    // Flatten nested connectives of the same kind.
    if (f->kind() == kind) {
      kept.insert(kept.end(), f->children().begin(), f->children().end());
    } else {
      kept.push_back(std::move(f));
    }
  }
  if (kept.empty()) return identity;
  if (kept.size() == 1) return kept.front();
  return std::make_shared<const FormulaNode>(kind, std::move(kept));
}

}  // namespace

Formula land(std::vector<Formula> fs) {
  return make_nary(FormulaKind::kAnd, std::move(fs));
}
Formula lor(std::vector<Formula> fs) {
  return make_nary(FormulaKind::kOr, std::move(fs));
}
Formula land(const Formula& a, const Formula& b) { return land(std::vector<Formula>{a, b}); }
Formula lor(const Formula& a, const Formula& b) { return lor(std::vector<Formula>{a, b}); }

Formula lnot(const Formula& f) {
  LEJIT_REQUIRE(f != nullptr, "null formula operand");
  switch (f->kind()) {
    case FormulaKind::kTrue: return make_false();
    case FormulaKind::kFalse: return make_true();
    case FormulaKind::kAtom: {
      const LinExpr& e = f->atom_expr();
      switch (f->atom_op()) {
        case AtomOp::kLe:
          // !(e <= 0)  ≡  e >= 1  ≡  -e + 1 <= 0
          return make_atom(AtomOp::kLe, LinExpr(1) - e);
        case AtomOp::kEq: return make_atom(AtomOp::kNe, e);
        case AtomOp::kNe: return make_atom(AtomOp::kEq, e);
      }
      LEJIT_UNREACHABLE("unreachable atom op");
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> negated;
      negated.reserve(f->children().size());
      for (const auto& c : f->children()) negated.push_back(lnot(c));
      return f->kind() == FormulaKind::kAnd ? lor(std::move(negated))
                                            : land(std::move(negated));
    }
  }
  LEJIT_UNREACHABLE("unreachable formula kind");
}

Formula implies(const Formula& a, const Formula& b) { return lor(lnot(a), b); }

Formula iff(const Formula& a, const Formula& b) {
  return land(implies(a, b), implies(b, a));
}

Formula max_ge(std::span<const VarId> vars, const LinExpr& rhs) {
  LEJIT_REQUIRE(!vars.empty(), "aggregate over empty variable set");
  std::vector<Formula> fs;
  fs.reserve(vars.size());
  for (const VarId v : vars) fs.push_back(ge(LinExpr(v), rhs));
  return lor(std::move(fs));
}

Formula max_le(std::span<const VarId> vars, const LinExpr& rhs) {
  LEJIT_REQUIRE(!vars.empty(), "aggregate over empty variable set");
  std::vector<Formula> fs;
  fs.reserve(vars.size());
  for (const VarId v : vars) fs.push_back(le(LinExpr(v), rhs));
  return land(std::move(fs));
}

Formula min_le(std::span<const VarId> vars, const LinExpr& rhs) {
  LEJIT_REQUIRE(!vars.empty(), "aggregate over empty variable set");
  std::vector<Formula> fs;
  fs.reserve(vars.size());
  for (const VarId v : vars) fs.push_back(le(LinExpr(v), rhs));
  return lor(std::move(fs));
}

Formula min_ge(std::span<const VarId> vars, const LinExpr& rhs) {
  LEJIT_REQUIRE(!vars.empty(), "aggregate over empty variable set");
  std::vector<Formula> fs;
  fs.reserve(vars.size());
  for (const VarId v : vars) fs.push_back(ge(LinExpr(v), rhs));
  return land(std::move(fs));
}

Formula abs_diff_le(const LinExpr& a, const LinExpr& b, const LinExpr& c) {
  return land(le(a - b, c), le(b - a, c));
}

bool FormulaNode::eval(const std::vector<Int>& assignment) const {
  switch (kind_) {
    case FormulaKind::kTrue: return true;
    case FormulaKind::kFalse: return false;
    case FormulaKind::kAtom: {
      const Int v = expr_.eval(assignment);
      switch (op_) {
        case AtomOp::kLe: return v <= 0;
        case AtomOp::kEq: return v == 0;
        case AtomOp::kNe: return v != 0;
      }
      LEJIT_UNREACHABLE("unreachable atom op");
    }
    case FormulaKind::kAnd:
      for (const auto& c : children_)
        if (!c->eval(assignment)) return false;
      return true;
    case FormulaKind::kOr:
      for (const auto& c : children_)
        if (c->eval(assignment)) return true;
      return false;
  }
  LEJIT_UNREACHABLE("unreachable formula kind");
}

std::string FormulaNode::to_string() const {
  switch (kind_) {
    case FormulaKind::kTrue: return "true";
    case FormulaKind::kFalse: return "false";
    case FormulaKind::kAtom: {
      const char* op = op_ == AtomOp::kLe ? " <= 0"
                       : op_ == AtomOp::kEq ? " == 0"
                                            : " != 0";
      return "(" + expr_.to_string() + op + ")";
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::ostringstream os;
      os << "(";
      const char* sep = kind_ == FormulaKind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i]->to_string();
      }
      os << ")";
      return os.str();
    }
  }
  LEJIT_UNREACHABLE("unreachable formula kind");
}

}  // namespace lejit::smt
