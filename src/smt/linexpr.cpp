#include "smt/linexpr.hpp"

#include <algorithm>
#include <sstream>

namespace lejit::smt {

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) {
              return a.first.index < b.first.index;
            });
  std::vector<std::pair<VarId, Int>> merged;
  merged.reserve(terms_.size());
  for (const auto& [v, c] : terms_) {
    if (!merged.empty() && merged.back().first == v) {
      merged.back().second = sat_add(merged.back().second, c);
    } else {
      merged.push_back({v, c});
    }
  }
  std::erase_if(merged, [](const auto& t) { return t.second == 0; });
  terms_ = std::move(merged);
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  constant_ = sat_add(constant_, rhs.constant_);
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  normalize();
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  constant_ = sat_add(constant_, -rhs.constant_);
  for (const auto& [v, c] : rhs.terms_) terms_.push_back({v, -c});
  normalize();
  return *this;
}

LinExpr& LinExpr::operator*=(Int k) {
  constant_ = sat_mul(constant_, k);
  for (auto& [v, c] : terms_) c = sat_mul(c, k);
  normalize();
  return *this;
}

Int LinExpr::eval(const std::vector<Int>& assignment) const {
  Int acc = constant_;
  for (const auto& [v, c] : terms_) {
    LEJIT_REQUIRE(v.index >= 0 &&
                      static_cast<std::size_t>(v.index) < assignment.size(),
                  "assignment does not cover all variables");
    acc = sat_add(acc, sat_mul(c, assignment[static_cast<std::size_t>(v.index)]));
  }
  return acc;
}

std::string LinExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [v, c] : terms_) {
    if (!first) os << (c >= 0 ? " + " : " - ");
    else if (c < 0) os << "-";
    first = false;
    const Int mag = c < 0 ? -c : c;
    if (mag != 1) os << mag << "*";
    os << "v" << v.index;
  }
  if (constant_ != 0 || first) {
    if (first) {
      os << constant_;
    } else {
      os << (constant_ >= 0 ? " + " : " - ")
         << (constant_ < 0 ? -constant_ : constant_);
    }
  }
  return os.str();
}

}  // namespace lejit::smt
