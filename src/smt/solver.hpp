// minismt: a small, complete decision procedure for quantifier-free linear
// integer arithmetic with boolean structure over bounded variable domains.
//
// This is the repository's substitute for Z3 (see DESIGN.md §3). The solved
// fragment — conjunctions/disjunctions/implications of linear comparisons,
// with min/max aggregates desugared by formula.hpp — is exactly what the
// paper's network rules compile to, and bounded domains make the procedure
// complete: interval (bounds-consistency) propagation interleaved with
// DPLL-style search over disjunctions and domain splits.
//
// The interface mirrors the incremental solver workflow LeJIT relies on:
// push/pop assertion scopes, sat checks under temporary assumptions, exact
// feasible-range queries for a variable, and branch-and-bound minimization
// (used by the post-hoc repair baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "smt/formula.hpp"
#include "smt/linexpr.hpp"

namespace lejit::smt {

namespace detail {
struct SearchNode;  // DFS search state, defined in solver.cpp
}

enum class CheckResult { kSat, kUnsat, kUnknown };

struct SolverConfig {
  // Search-node budget per check() call; exceeding it yields kUnknown.
  std::int64_t max_nodes = 500'000;
  // Cap on propagation sweeps per node (guards slow-convergence ping-pong
  // between mutually-constraining bounds; completeness is preserved because
  // search continues by splitting).
  int max_propagation_rounds = 4'000;
  // Reuse the propagated root across checks: the solver keeps a
  // bounds-consistent snapshot of the current assertion stack, folds new
  // assertions into it lazily, and each check_assuming only layers its
  // assumptions on a copy instead of re-asserting and re-propagating every
  // assertion from scratch. push() snapshots the base and pop() restores it,
  // so scoped retraction is O(copy). Answers (sat/unsat and exact feasible
  // intervals) are unchanged; node/propagation counts and which model is
  // reported may differ. Off by default so existing callers keep
  // byte-for-byte behavior; the guided decoder turns it on.
  bool incremental = false;
};

// Per-query resource budget, layered on top of SolverConfig. A zero field
// means "use the config default / no deadline"; a non-zero max_nodes
// *overrides* the config's per-check node cap (tighter or looser — budget
// escalation under a kUnknown policy relies on looser), and deadline_ns is
// an *absolute* monotonic timestamp (obs::now_ns()) past which search gives
// up. Either exhaustion yields kUnknown — the caller's kUnknown policy
// decides what that means.
struct Budget {
  std::int64_t max_nodes = 0;    // 0 = SolverConfig::max_nodes
  std::int64_t deadline_ns = 0;  // 0 = no deadline (absolute obs::now_ns())

  bool unlimited() const noexcept { return max_nodes == 0 && deadline_ns == 0; }
  // Budget expiring `ms` milliseconds from now.
  static Budget deadline_in_ms(std::int64_t ms);
};

struct SolverStats {
  std::int64_t checks = 0;        // number of check() calls
  std::int64_t nodes = 0;         // search nodes across all checks
  std::int64_t propagations = 0;  // domain-tightening events
  std::int64_t unknowns = 0;      // checks that gave up (any cause below)
  std::int64_t node_exhaustions = 0;      // … node budget ran out
  std::int64_t deadline_exhaustions = 0;  // … wall-clock deadline passed
  std::int64_t injected_unknowns = 0;     // … fault injection forced kUnknown
  std::int64_t base_rebuilds = 0;  // incremental: base rebuilt from scratch
  std::int64_t base_folds = 0;     // incremental: assertion suffix folded in

  // Aggregate stats across solvers (the plan-sliced decoder runs one solver
  // per rule cluster and reports their sum).
  SolverStats& operator+=(const SolverStats& o) {
    checks += o.checks;
    nodes += o.nodes;
    propagations += o.propagations;
    unknowns += o.unknowns;
    node_exhaustions += o.node_exhaustions;
    deadline_exhaustions += o.deadline_exhaustions;
    injected_unknowns += o.injected_unknowns;
    base_rebuilds += o.base_rebuilds;
    base_folds += o.base_folds;
    return *this;
  }
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {});
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  // --- problem construction --------------------------------------------------
  // Declare an integer variable with inclusive domain [lo, hi].
  VarId add_var(std::string name, Int lo, Int hi);
  int num_vars() const noexcept { return static_cast<int>(vars_.size()); }
  Interval bounds(VarId v) const;
  const std::string& name(VarId v) const;

  // Assert a formula in the current scope.
  void add(Formula f);
  // Scoped assertions: pop() retracts everything add()ed since the matching
  // push(). Variables are never retracted.
  void push();
  void pop();
  std::size_t num_scopes() const noexcept { return scopes_.size(); }
  std::size_t num_assertions() const noexcept { return assertions_.size(); }

  // --- queries -----------------------------------------------------------------
  CheckResult check() { return check_assuming({}); }
  CheckResult check(const Budget& budget) { return check_assuming({}, budget); }
  CheckResult check_assuming(std::span<const Formula> assumptions) {
    return check_assuming(assumptions, Budget{});
  }
  CheckResult check_assuming(std::span<const Formula> assumptions,
                             const Budget& budget);

  // Model of the last kSat check; values indexed by VarId::index.
  const std::vector<Int>& model() const;
  Int model_value(VarId v) const;

  // Bounds-consistent over-approximation of v's feasible values under the
  // current assertion stack — no search, just the incremental base's
  // propagated domain (empty ⇔ propagation already proved UNSAT). Falls back
  // to the declared domain when `incremental` is off. Sound for refutation:
  // a value outside this interval is definitely infeasible; a value inside
  // may still be infeasible (holes are invisible to bounds consistency).
  Interval propagated_bounds(VarId v);

  // Exact min/max of `v` over all models of the current assertions plus
  // `assumptions` (binary search on satisfiability). Empty interval ⇔ UNSAT.
  // Throws util::RuntimeError if the node budget is exhausted mid-query.
  Interval feasible_interval(VarId v, std::span<const Formula> assumptions = {});

  // Budgeted, non-throwing variant: nullopt when any underlying check gives
  // up (node budget, deadline, or injected fault) before the range is known.
  // The decoder's kUnknown policy turns a nullopt into degrade-or-retry.
  std::optional<Interval> try_feasible_interval(
      VarId v, std::span<const Formula> assumptions = {},
      const Budget& budget = {});

  // Find a model minimizing `cost` (binary search on the cost bound).
  // nullopt ⇔ UNSAT. Best-effort under the node budget: when a bound query
  // exhausts the budget it is treated as "no better solution found" and
  // `proven_optimal` is cleared — the returned model is still feasible and
  // no worse than any bound that *was* proven. Used by the post-hoc
  // nearest-repair baseline.
  struct MinimizeResult {
    std::vector<Int> model;
    Int cost = 0;
    bool proven_optimal = true;
  };
  std::optional<MinimizeResult> minimize(const LinExpr& cost);

  const SolverStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct VarDecl {
    std::string name;
    Int lo = 0;
    Int hi = 0;
  };

  CheckResult check_assuming_impl(std::span<const Formula> assumptions,
                                  const Budget& budget);
  CheckResult search(detail::SearchNode& node, std::int64_t& nodes_left,
                     std::int64_t deadline_ns);
  // Propagates `node` to fixpoint (or the round cap); false ⇔ conflict.
  // A non-zero deadline is re-checked once per sweep round; when it expires
  // mid-fixpoint, propagation stops early, *deadline_hit is set, and the
  // caller must give up with kUnknown (the node is sound but unfinished).
  bool propagate(detail::SearchNode& node, std::int64_t deadline_ns = 0,
                 bool* deadline_hit = nullptr);
  // Incremental mode: make base_ a propagated snapshot of the full current
  // assertion stack, rebuilding or folding the new suffix as needed.
  void ensure_base();

  struct BaseSnapshot;  // saved base state per scope, defined in solver.cpp

  SolverConfig config_;
  std::vector<VarDecl> vars_;
  std::vector<Formula> assertions_;
  std::vector<std::size_t> scopes_;  // assertion-stack marks
  std::vector<Int> model_;
  bool has_model_ = false;
  SolverStats stats_;

  // Incremental base (config_.incremental only): propagated root covering
  // assertions_[0, base_assertions_). base_saves_ parallels scopes_.
  std::unique_ptr<detail::SearchNode> base_;
  bool base_valid_ = false;
  std::size_t base_assertions_ = 0;
  std::vector<BaseSnapshot> base_saves_;
};

}  // namespace lejit::smt
