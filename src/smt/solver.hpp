// minismt: a small, complete decision procedure for quantifier-free linear
// integer arithmetic with boolean structure over bounded variable domains.
//
// This is the repository's substitute for Z3 (see DESIGN.md §3). The solved
// fragment — conjunctions/disjunctions/implications of linear comparisons,
// with min/max aggregates desugared by formula.hpp — is exactly what the
// paper's network rules compile to, and bounded domains make the procedure
// complete: interval (bounds-consistency) propagation interleaved with
// DPLL-style search over disjunctions and domain splits.
//
// The interface mirrors the incremental solver workflow LeJIT relies on:
// push/pop assertion scopes, sat checks under temporary assumptions, exact
// feasible-range queries for a variable, and branch-and-bound minimization
// (used by the post-hoc repair baseline).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "smt/formula.hpp"
#include "smt/linexpr.hpp"

namespace lejit::smt {

namespace detail {
struct SearchNode;  // DFS search state, defined in solver.cpp
}

enum class CheckResult { kSat, kUnsat, kUnknown };

struct SolverConfig {
  // Search-node budget per check() call; exceeding it yields kUnknown.
  std::int64_t max_nodes = 500'000;
  // Cap on propagation sweeps per node (guards slow-convergence ping-pong
  // between mutually-constraining bounds; completeness is preserved because
  // search continues by splitting).
  int max_propagation_rounds = 4'000;
};

struct SolverStats {
  std::int64_t checks = 0;        // number of check() calls
  std::int64_t nodes = 0;         // search nodes across all checks
  std::int64_t propagations = 0;  // domain-tightening events
  std::int64_t unknowns = 0;      // checks that exhausted the node budget
};

class Solver {
 public:
  explicit Solver(SolverConfig config = {}) : config_(config) {}

  // --- problem construction --------------------------------------------------
  // Declare an integer variable with inclusive domain [lo, hi].
  VarId add_var(std::string name, Int lo, Int hi);
  int num_vars() const noexcept { return static_cast<int>(vars_.size()); }
  Interval bounds(VarId v) const;
  const std::string& name(VarId v) const;

  // Assert a formula in the current scope.
  void add(Formula f);
  // Scoped assertions: pop() retracts everything add()ed since the matching
  // push(). Variables are never retracted.
  void push();
  void pop();
  std::size_t num_scopes() const noexcept { return scopes_.size(); }
  std::size_t num_assertions() const noexcept { return assertions_.size(); }

  // --- queries -----------------------------------------------------------------
  CheckResult check() { return check_assuming({}); }
  CheckResult check_assuming(std::span<const Formula> assumptions);

  // Model of the last kSat check; values indexed by VarId::index.
  const std::vector<Int>& model() const;
  Int model_value(VarId v) const;

  // Exact min/max of `v` over all models of the current assertions plus
  // `assumptions` (binary search on satisfiability). Empty interval ⇔ UNSAT.
  // Throws util::RuntimeError if the node budget is exhausted mid-query.
  Interval feasible_interval(VarId v, std::span<const Formula> assumptions = {});

  // Find a model minimizing `cost` (binary search on the cost bound).
  // nullopt ⇔ UNSAT. Best-effort under the node budget: when a bound query
  // exhausts the budget it is treated as "no better solution found" and
  // `proven_optimal` is cleared — the returned model is still feasible and
  // no worse than any bound that *was* proven. Used by the post-hoc
  // nearest-repair baseline.
  struct MinimizeResult {
    std::vector<Int> model;
    Int cost = 0;
    bool proven_optimal = true;
  };
  std::optional<MinimizeResult> minimize(const LinExpr& cost);

  const SolverStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct VarDecl {
    std::string name;
    Int lo = 0;
    Int hi = 0;
  };

  CheckResult check_assuming_impl(std::span<const Formula> assumptions);
  CheckResult search(detail::SearchNode& node, std::int64_t& budget);

  SolverConfig config_;
  std::vector<VarDecl> vars_;
  std::vector<Formula> assertions_;
  std::vector<std::size_t> scopes_;  // assertion-stack marks
  std::vector<Int> model_;
  bool has_model_ = false;
  SolverStats stats_;
};

}  // namespace lejit::smt
