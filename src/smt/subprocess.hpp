// Out-of-process SMT solving over pipes (DESIGN.md §12).
//
// SubprocessBackend forks one SMT-LIB2 solver child per session (z3, cvc5,
// or the bundled lejit_smtserve) and speaks the smtlib2.hpp dialect to it
// over a stdin/stdout pipe pair. Crash isolation is the whole point, so the
// wire handling is paranoid by design:
//
//   * Every blocking read polls in small slices against the effective
//     deadline (the caller's Budget deadline capped by check_timeout_ms), so
//     a wedged child can overshoot a budget by at most one poll interval.
//   * A timeout, child death, write failure, or unparseable answer SIGKILLs
//     the child and respawns it from a replay log of the session's state
//     lines (declarations, assertions, scope structure), with bounded
//     exponential backoff; after max_respawns restarts the backend declares
//     itself permanently unhealthy and FailoverBackend routes around it.
//   * A check lost to any of the above returns kUnknown and advances
//     backend_stats().faults — never throws, never blocks past the deadline.
//
// Deterministic chaos for tests: fault::Site::kSubprocessKill /
// kSubprocessHang / kSubprocessGarble kill the child under a live check,
// simulate a wedged child (timeout path), and corrupt the answer
// (protocol-error path) respectively.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "smt/backend.hpp"

namespace lejit::smt {

class SubprocessBackend final : public Backend {
 public:
  explicit SubprocessBackend(BackendConfig config);
  ~SubprocessBackend() override;
  SubprocessBackend(const SubprocessBackend&) = delete;
  SubprocessBackend& operator=(const SubprocessBackend&) = delete;

  std::string_view name() const noexcept override { return "subprocess"; }
  VarId add_var(std::string name, Int lo, Int hi) override;
  int num_vars() const noexcept override {
    return static_cast<int>(vars_.size());
  }
  Interval bounds(VarId v) const override;
  void add(Formula f) override;
  void push() override;
  void pop() override;
  std::size_t num_scopes() const noexcept override {
    return frames_.size() - 1;
  }
  CheckResult check_assuming(std::span<const Formula> assumptions,
                             const Budget& budget) override;
  std::optional<Int> model_value(VarId v) override;
  SolverStats stats() const override { return solver_stats_; }
  BackendStats backend_stats() const override { return stats_; }
  bool healthy() const noexcept override { return !permanently_failed_; }

  // The child pid, or -1 when no child is live. Tests use this to assert on
  // respawn behavior; production code has no business with it.
  pid_t child_pid() const noexcept { return child_pid_; }

 private:
  enum class ReadStatus { kOk, kTimeout, kEof, kError };
  enum class FaultKind { kTimeout, kCrash, kProtocol, kSpawn };

  struct VarDecl {
    std::string name;
    Int lo = 0;
    Int hi = 0;
  };

  // Record `line` in the replay log (current scope frame) and send it to the
  // live child, if any. State lines are exactly what a respawn re-issues.
  void state_line(std::string line);

  std::int64_t effective_deadline(const Budget& budget) const;
  CheckResult check_once(std::span<const Formula> assumptions,
                         std::int64_t deadline_ns, bool allow_retry);
  // Kill + respawn + bounded backoff; true when a fresh child is live and
  // the session state was replayed into it before `deadline_ns`.
  bool handle_failure(FaultKind kind, std::int64_t deadline_ns);

  void note_fault(FaultKind kind) noexcept;
  void register_failure() noexcept;
  void backoff_sleep(std::int64_t deadline_ns);
  bool ensure_child();
  bool spawn();
  void kill_child() noexcept;
  bool replay_session();

  bool send(std::string_view data);
  ReadStatus read_line(std::int64_t deadline_ns, std::string* out);
  ReadStatus read_sexpr(std::int64_t deadline_ns, std::string* out);
  ReadStatus fill_buffer(std::int64_t deadline_ns);

  BackendConfig config_;
  std::vector<VarDecl> vars_;
  // Replay log: frames_[0] is the base scope, each push opens a new frame,
  // pop discards one — so the log always equals the live session state.
  std::vector<std::vector<std::string>> frames_{1};

  pid_t child_pid_ = -1;
  int to_child_ = -1;    // our write end of the child's stdin
  int from_child_ = -1;  // our read end of the child's stdout
  std::string rx_buffer_;
  bool permanently_failed_ = false;
  bool spawned_once_ = false;
  int consecutive_failures_ = 0;
  int respawn_attempts_ = 0;

  std::vector<std::optional<Int>> model_;
  bool has_model_ = false;

  SolverStats solver_stats_;
  BackendStats stats_;
};

}  // namespace lejit::smt
