#include "smt/backend.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"
#include "smt/subprocess.hpp"
#include "util/error.hpp"

namespace lejit::smt {

namespace {

obs::Counter& backend_counter(const char* what) {
  return obs::MetricsRegistry::instance().counter(
      std::string("smt.backend.") + what);
}

}  // namespace

// Mirrors Solver::try_feasible_interval probe-for-probe, but on top of the
// virtual check_assuming/model_value so subprocess failover and deadline
// slicing apply to every probe. The only difference: a backend may fail to
// deliver a witness for a sat answer, in which case the search falls back to
// plain bisection bounds instead of witness narrowing (same result, more
// probes).
std::optional<Interval> Backend::try_feasible_interval(
    VarId v, std::span<const Formula> assumptions, const Budget& budget) {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  std::vector<Formula> assume(assumptions.begin(), assumptions.end());

  const CheckResult first = check_assuming(assume, budget);
  if (first == CheckResult::kUnsat) return Interval::empty();
  if (first == CheckResult::kUnknown) return std::nullopt;
  const std::optional<Int> witness = model_value(v);

  bool gave_up = false;
  const auto sat_with = [&](const Formula& extra) {
    assume.push_back(extra);
    const CheckResult r = check_assuming(assume, budget);
    assume.pop_back();
    if (r == CheckResult::kUnknown) gave_up = true;
    return r == CheckResult::kSat;
  };

  // Smallest feasible value in [bounds.lo, witness].
  Int lb = bounds(v).lo;
  Int ub = witness ? *witness : bounds(v).hi;
  while (lb < ub && !gave_up) {
    const Int mid = lb + (ub - lb) / 2;
    if (sat_with(le(LinExpr(v), LinExpr(mid)))) {
      const std::optional<Int> m = model_value(v);
      ub = std::min(mid, m ? *m : mid);
    } else {
      lb = mid + 1;
    }
  }
  const Int min_v = lb;

  // Largest feasible value in [witness, bounds.hi]; min_v is known feasible,
  // so it anchors the search when the first witness was lost.
  lb = witness ? *witness : min_v;
  ub = bounds(v).hi;
  while (lb < ub && !gave_up) {
    const Int mid = lb + (ub - lb + 1) / 2;
    if (sat_with(ge(LinExpr(v), LinExpr(mid)))) {
      const std::optional<Int> m = model_value(v);
      lb = std::max(mid, m ? *m : mid);
    } else {
      ub = mid - 1;
    }
  }
  if (gave_up) return std::nullopt;
  return Interval{min_v, lb};
}

// --- FailoverBackend --------------------------------------------------------

FailoverBackend::FailoverBackend(std::unique_ptr<Backend> primary,
                                 std::unique_ptr<Backend> fallback)
    : primary_(std::move(primary)), fallback_(std::move(fallback)) {
  LEJIT_REQUIRE(primary_ && fallback_, "failover needs two backends");
}

VarId FailoverBackend::add_var(std::string name, Int lo, Int hi) {
  const VarId v = fallback_->add_var(name, lo, hi);
  const VarId p = primary_->add_var(std::move(name), lo, hi);
  LEJIT_REQUIRE(v == p, "failover backends disagree on variable ids");
  return v;
}

void FailoverBackend::add(Formula f) {
  fallback_->add(f);
  primary_->add(std::move(f));
}

void FailoverBackend::push() {
  fallback_->push();
  primary_->push();
}

void FailoverBackend::pop() {
  fallback_->pop();
  primary_->pop();
}

bool FailoverBackend::primary_usable() const noexcept {
  return primary_->healthy();
}

void FailoverBackend::note_degraded() {
  ++degraded_;
  backend_counter("degraded").inc();
}

CheckResult FailoverBackend::check_assuming(
    std::span<const Formula> assumptions, const Budget& budget) {
  if (primary_usable()) {
    const std::int64_t faults_before = primary_->backend_stats().faults;
    const CheckResult r = primary_->check_assuming(assumptions, budget);
    if (primary_->backend_stats().faults == faults_before) {
      last_served_by_primary_ = true;
      return r;
    }
  }
  last_served_by_primary_ = false;
  note_degraded();
  return fallback_->check_assuming(assumptions, budget);
}

std::optional<Int> FailoverBackend::model_value(VarId v) {
  return last_served_by_primary_ ? primary_->model_value(v)
                                 : fallback_->model_value(v);
}

std::optional<Interval> FailoverBackend::try_feasible_interval(
    VarId v, std::span<const Formula> assumptions, const Budget& budget) {
  if (primary_usable()) {
    const std::int64_t faults_before = primary_->backend_stats().faults;
    const std::optional<Interval> r =
        primary_->try_feasible_interval(v, assumptions, budget);
    if (primary_->backend_stats().faults == faults_before) {
      last_served_by_primary_ = true;
      return r;
    }
  }
  last_served_by_primary_ = false;
  note_degraded();
  return fallback_->try_feasible_interval(v, assumptions, budget);
}

SolverStats FailoverBackend::stats() const {
  SolverStats s = primary_->stats();
  s += fallback_->stats();
  return s;
}

BackendStats FailoverBackend::backend_stats() const {
  BackendStats s = primary_->backend_stats();
  s += fallback_->backend_stats();
  s.degraded += degraded_;
  return s;
}

// --- factory & discovery ----------------------------------------------------

std::unique_ptr<Backend> make_backend(const BackendConfig& config) {
  if (config.kind == BackendKind::kMinismt)
    return std::make_unique<MinismtBackend>(config.solver);
  auto sub = std::make_unique<SubprocessBackend>(config);
  if (!config.degrade_to_minismt) return sub;
  return std::make_unique<FailoverBackend>(
      std::move(sub), std::make_unique<MinismtBackend>(config.solver));
}

namespace {

bool executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

std::string path_lookup(std::string_view name) {
  const char* path = std::getenv("PATH");
  if (path == nullptr) return {};
  std::string_view rest = path;
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string_view dir =
        colon == std::string_view::npos ? rest : rest.substr(0, colon);
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon + 1);
    if (dir.empty()) continue;
    std::string candidate = std::string(dir) + "/" + std::string(name);
    if (executable(candidate)) return candidate;
  }
  return {};
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string find_external_solver(std::string_view argv0) {
  if (const char* env = std::getenv("LEJIT_SMT_SOLVER"); env && *env != '\0')
    return env;
  if (std::string z3 = path_lookup("z3"); !z3.empty()) return z3;
  if (std::string cvc5 = path_lookup("cvc5"); !cvc5.empty()) return cvc5;
  if (const char* env = std::getenv("LEJIT_SMTSERVE");
      env && executable(env))
    return env;
  if (const std::size_t slash = argv0.rfind('/');
      slash != std::string_view::npos) {
    std::string sibling =
        std::string(argv0.substr(0, slash + 1)) + "lejit_smtserve";
    if (executable(sibling)) return sibling;
  }
  return {};
}

BackendConfig backend_config_from_spec(std::string_view spec,
                                       std::string_view argv0) {
  BackendConfig config;
  std::string path;
  if (spec.empty() || spec == "minismt") {
    return config;
  } else if (spec == "auto") {
    path = find_external_solver(argv0);
    if (path.empty()) return config;  // nothing external: stay in-process
  } else if (spec.starts_with("subprocess:")) {
    path = std::string(spec.substr(std::string_view("subprocess:").size()));
    LEJIT_REQUIRE(!path.empty(), "--smt-backend=subprocess: needs a path");
  } else if (spec.find('/') != std::string_view::npos) {
    path = std::string(spec);
  } else {
    throw util::RuntimeError("unknown --smt-backend spec: " +
                             std::string(spec));
  }
  config.kind = BackendKind::kSubprocess;
  config.solver_path = std::move(path);
  const std::string_view base = basename_of(config.solver_path);
  if (base.find("z3") != std::string_view::npos) {
    config.solver_args = {"-in"};
  } else if (base.find("cvc5") != std::string_view::npos) {
    config.solver_args = {"--incremental", "--lang", "smt2"};
  }
  return config;
}

}  // namespace lejit::smt
