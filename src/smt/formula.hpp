// Boolean structure over linear-arithmetic atoms.
//
// Formulas are immutable shared trees in negation normal form: negation is
// applied structurally at construction time (De Morgan on And/Or, atom
// flipping on comparisons), so the solver only ever sees True/False/Atom/
// And/Or nodes. Aggregate comparisons over variable sets (max/min) are
// desugared here into And/Or of linear atoms.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "smt/linexpr.hpp"

namespace lejit::smt {

enum class AtomOp {
  kLe,  // expr <= 0
  kEq,  // expr == 0
  kNe,  // expr != 0
};

enum class FormulaKind { kTrue, kFalse, kAtom, kAnd, kOr };

class FormulaNode;
using Formula = std::shared_ptr<const FormulaNode>;

// One node of an NNF formula tree. Construct via the free builders below
// (le/eq/land/lor/...), which maintain the NNF invariant and perform
// constant folding; the constructors are public only for those builders.
class FormulaNode {
 public:
  FormulaNode(FormulaKind kind) : kind_(kind) {}
  FormulaNode(AtomOp op, LinExpr expr)
      : kind_(FormulaKind::kAtom), op_(op), expr_(std::move(expr)) {}
  FormulaNode(FormulaKind kind, std::vector<Formula> children)
      : kind_(kind), children_(std::move(children)) {}

  FormulaKind kind() const noexcept { return kind_; }
  AtomOp atom_op() const noexcept { return op_; }
  const LinExpr& atom_expr() const noexcept { return expr_; }
  const std::vector<Formula>& children() const noexcept { return children_; }

  std::string to_string() const;

  // Evaluate under a full assignment (used by the rule checker and by
  // brute-force oracles in tests).
  bool eval(const std::vector<Int>& assignment) const;

 private:
  FormulaKind kind_;
  AtomOp op_ = AtomOp::kLe;
  LinExpr expr_;
  std::vector<Formula> children_;
};

Formula make_true();
Formula make_false();

// --- comparisons (all normalized to {<=0, ==0, !=0} atoms) -----------------
Formula le(const LinExpr& a, const LinExpr& b);  // a <= b
Formula lt(const LinExpr& a, const LinExpr& b);  // a <  b
Formula ge(const LinExpr& a, const LinExpr& b);  // a >= b
Formula gt(const LinExpr& a, const LinExpr& b);  // a >  b
Formula eq(const LinExpr& a, const LinExpr& b);  // a == b
Formula ne(const LinExpr& a, const LinExpr& b);  // a != b

// a <= x AND x <= b
Formula between(const LinExpr& x, const LinExpr& a, const LinExpr& b);

// --- connectives ------------------------------------------------------------
Formula land(std::vector<Formula> fs);
Formula lor(std::vector<Formula> fs);
Formula land(const Formula& a, const Formula& b);
Formula lor(const Formula& a, const Formula& b);
Formula lnot(const Formula& f);
Formula implies(const Formula& a, const Formula& b);
Formula iff(const Formula& a, const Formula& b);

// --- aggregates over variable sets -------------------------------------------
// max(vars) >= rhs  ≡  OR_i vars[i] >= rhs      (vars must be non-empty)
Formula max_ge(std::span<const VarId> vars, const LinExpr& rhs);
// max(vars) <= rhs  ≡  AND_i vars[i] <= rhs
Formula max_le(std::span<const VarId> vars, const LinExpr& rhs);
// min(vars) <= rhs  ≡  OR_i vars[i] <= rhs
Formula min_le(std::span<const VarId> vars, const LinExpr& rhs);
// min(vars) >= rhs  ≡  AND_i vars[i] >= rhs
Formula min_ge(std::span<const VarId> vars, const LinExpr& rhs);
// |a - b| <= c  ≡  (a - b <= c) AND (b - a <= c)
Formula abs_diff_le(const LinExpr& a, const LinExpr& b, const LinExpr& c);

}  // namespace lejit::smt
