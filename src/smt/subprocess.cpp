#include "smt/subprocess.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "smt/smtlib2.hpp"
#include "util/error.hpp"

namespace lejit::smt {

namespace {

// Poll granularity for deadline-sliced waits; the most a wedged child can
// make a check overshoot its deadline.
constexpr std::int64_t kPollSliceMs = 10;
// Fallback wall-clock cap when neither the Budget nor the config carries a
// deadline — a check must never be able to block forever.
constexpr std::int64_t kLastResortTimeoutMs = 60'000;
constexpr std::int64_t kMaxBackoffMs = 1'000;

obs::Counter& backend_counter(const char* what) {
  return obs::MetricsRegistry::instance().counter(
      std::string("smt.backend.") + what);
}

}  // namespace

SubprocessBackend::SubprocessBackend(BackendConfig config)
    : config_(std::move(config)) {
  // A dying child must surface as a write error, not a process-killing
  // SIGPIPE (the crash-isolation contract).
  static const bool sigpipe_ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;
}

SubprocessBackend::~SubprocessBackend() {
  if (child_pid_ > 0) send("(exit)\n");
  kill_child();
}

void SubprocessBackend::state_line(std::string line) {
  if (child_pid_ > 0 && !send(line + "\n")) {
    // The child died under a state write. Drop it now; the next check's
    // ensure_child() respawns and replays the full log, this line included.
    kill_child();
  }
  frames_.back().push_back(std::move(line));
}

VarId SubprocessBackend::add_var(std::string name, Int lo, Int hi) {
  const int index = static_cast<int>(vars_.size());
  vars_.push_back(VarDecl{std::move(name), lo, hi});
  state_line(smtlib2::declare_lines(index, lo, hi));
  return VarId{index};
}

Interval SubprocessBackend::bounds(VarId v) const {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  return {vars_[static_cast<std::size_t>(v.index)].lo,
          vars_[static_cast<std::size_t>(v.index)].hi};
}

void SubprocessBackend::add(Formula f) {
  LEJIT_REQUIRE(f != nullptr, "cannot assert null formula");
  state_line(smtlib2::assert_line(f));
  has_model_ = false;
}

void SubprocessBackend::push() {
  frames_.emplace_back();
  if (child_pid_ > 0 && !send("(push 1)\n")) kill_child();
}

void SubprocessBackend::pop() {
  LEJIT_REQUIRE(frames_.size() > 1, "pop without matching push");
  frames_.pop_back();
  has_model_ = false;
  if (child_pid_ > 0 && !send("(pop 1)\n")) kill_child();
}

std::optional<Int> SubprocessBackend::model_value(VarId v) {
  if (!has_model_ || v.index < 0 ||
      static_cast<std::size_t>(v.index) >= model_.size())
    return std::nullopt;
  return model_[static_cast<std::size_t>(v.index)];
}

std::int64_t SubprocessBackend::effective_deadline(
    const Budget& budget) const {
  const std::int64_t cap_ms =
      config_.check_timeout_ms > 0 ? config_.check_timeout_ms
                                   : kLastResortTimeoutMs;
  std::int64_t deadline = obs::now_ns() + cap_ms * 1'000'000;
  if (budget.deadline_ns != 0 && budget.deadline_ns < deadline)
    deadline = budget.deadline_ns;
  return deadline;
}

CheckResult SubprocessBackend::check_assuming(
    std::span<const Formula> assumptions, const Budget& budget) {
  ++solver_stats_.checks;
  ++stats_.checks;
  backend_counter("checks").inc();
  has_model_ = false;
  const CheckResult r =
      check_once(assumptions, effective_deadline(budget), /*allow_retry=*/true);
  if (r == CheckResult::kUnknown) ++solver_stats_.unknowns;
  return r;
}

CheckResult SubprocessBackend::check_once(
    std::span<const Formula> assumptions, std::int64_t deadline_ns,
    bool allow_retry) {
  if (!ensure_child()) {
    note_fault(FaultKind::kSpawn);
    return CheckResult::kUnknown;
  }

  // Deterministic chaos (no-ops unless a fault plan is armed): a SIGKILLed
  // child exercises the real crash-detection path, a "hang" skips straight
  // to the timeout path a non-answering child would reach, and "garble"
  // corrupts the answer to exercise the protocol-error path.
  if (fault::inject_fire(fault::Site::kSubprocessKill) && child_pid_ > 0)
    ::kill(child_pid_, SIGKILL);
  const bool injected_hang = fault::inject_fire(fault::Site::kSubprocessHang);
  const bool injected_garble =
      fault::inject_fire(fault::Site::kSubprocessGarble);

  const auto fail = [&](FaultKind kind) {
    const bool respawned = handle_failure(kind, deadline_ns);
    if (respawned && allow_retry && obs::now_ns() < deadline_ns)
      return check_once(assumptions, deadline_ns, /*allow_retry=*/false);
    return CheckResult::kUnknown;
  };

  std::string script = "(push 1)\n";
  for (const Formula& f : assumptions) {
    script += smtlib2::assert_line(f);
    script += '\n';
  }
  script += "(check-sat)\n";
  if (!send(script)) return fail(FaultKind::kCrash);

  std::string answer;
  ReadStatus rs =
      injected_hang ? ReadStatus::kTimeout : read_line(deadline_ns, &answer);
  if (rs == ReadStatus::kTimeout) return fail(FaultKind::kTimeout);
  if (rs != ReadStatus::kOk) return fail(FaultKind::kCrash);
  if (injected_garble) answer = "(sat";  // truncated — the classic garble

  CheckResult verdict;
  if (answer == "sat") {
    verdict = CheckResult::kSat;
  } else if (answer == "unsat") {
    verdict = CheckResult::kUnsat;
  } else if (answer == "unknown") {
    verdict = CheckResult::kUnknown;
  } else {
    return fail(FaultKind::kProtocol);
  }

  if (verdict == CheckResult::kSat && !vars_.empty()) {
    // Models evaporate at (pop), so fetch eagerly before closing the
    // assumption scope.
    std::string query = "(get-value (";
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (i != 0) query += ' ';
      query += smtlib2::var_name(static_cast<int>(i));
    }
    query += "))\n";
    if (!send(query)) return fail(FaultKind::kCrash);
    std::string reply;
    rs = read_sexpr(deadline_ns, &reply);
    if (rs == ReadStatus::kTimeout) return fail(FaultKind::kTimeout);
    if (rs != ReadStatus::kOk) return fail(FaultKind::kCrash);
    const auto pairs = smtlib2::parse_model(reply);
    if (!pairs) return fail(FaultKind::kProtocol);
    model_.assign(vars_.size(), std::nullopt);
    for (const auto& [index, value] : *pairs) {
      if (index >= 0 && static_cast<std::size_t>(index) < model_.size())
        model_[static_cast<std::size_t>(index)] = value;
    }
    has_model_ = true;
  }

  // The verdict is in hand; a failed scope close only costs the *session*
  // (killed here, respawned lazily), never the answer.
  if (!send("(pop 1)\n")) kill_child();
  consecutive_failures_ = 0;
  return verdict;
}

void SubprocessBackend::note_fault(FaultKind kind) noexcept {
  ++stats_.faults;
  switch (kind) {
    case FaultKind::kTimeout:
      ++stats_.timeouts;
      backend_counter("timeouts").inc();
      break;
    case FaultKind::kCrash:
      ++stats_.crashes;
      backend_counter("crashes").inc();
      break;
    case FaultKind::kProtocol:
      ++stats_.protocol_errors;
      backend_counter("protocol_errors").inc();
      break;
    case FaultKind::kSpawn:
      ++stats_.spawn_failures;
      backend_counter("spawn_failures").inc();
      break;
  }
}

void SubprocessBackend::register_failure() noexcept {
  ++consecutive_failures_;
  ++respawn_attempts_;
  if (respawn_attempts_ > config_.max_respawns) permanently_failed_ = true;
}

void SubprocessBackend::backoff_sleep(std::int64_t deadline_ns) {
  if (config_.retry_backoff_ms <= 0 || consecutive_failures_ <= 0) return;
  const int shift = std::min(consecutive_failures_ - 1, 6);
  const std::int64_t ms =
      std::min(config_.retry_backoff_ms << shift, kMaxBackoffMs);
  // Sliced sleep: even the backoff re-checks the deadline.
  const std::int64_t end = std::min(obs::now_ns() + ms * 1'000'000,
                                    deadline_ns);
  while (true) {
    const std::int64_t now = obs::now_ns();
    if (now >= end) return;
    const std::int64_t slice_ms =
        std::min(kPollSliceMs, (end - now) / 1'000'000 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice_ms));
  }
}

bool SubprocessBackend::handle_failure(FaultKind kind,
                                       std::int64_t deadline_ns) {
  kill_child();
  note_fault(kind);
  register_failure();
  if (permanently_failed_) return false;
  backoff_sleep(deadline_ns);
  if (!ensure_child()) {
    note_fault(FaultKind::kSpawn);
    return false;
  }
  return true;
}

bool SubprocessBackend::ensure_child() {
  if (child_pid_ > 0) return true;
  if (permanently_failed_) return false;
  if (spawn() && replay_session()) {
    if (spawned_once_) {
      ++stats_.respawns;
      backend_counter("respawns").inc();
    }
    spawned_once_ = true;
    return true;
  }
  kill_child();
  register_failure();
  return false;
}

bool SubprocessBackend::spawn() {
  if (config_.solver_path.empty() ||
      ::access(config_.solver_path.c_str(), X_OK) != 0)
    return false;

  int to_pipe[2] = {-1, -1};
  int from_pipe[2] = {-1, -1};
  if (::pipe(to_pipe) != 0) return false;
  if (::pipe(from_pipe) != 0) {
    ::close(to_pipe[0]);
    ::close(to_pipe[1]);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_pipe[0], to_pipe[1], from_pipe[0], from_pipe[1]})
      ::close(fd);
    return false;
  }
  if (pid == 0) {
    ::dup2(to_pipe[0], STDIN_FILENO);
    ::dup2(from_pipe[1], STDOUT_FILENO);
    for (const int fd : {to_pipe[0], to_pipe[1], from_pipe[0], from_pipe[1]})
      ::close(fd);
    ::signal(SIGPIPE, SIG_DFL);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(config_.solver_path.c_str()));
    for (const std::string& a : config_.solver_args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execvp(config_.solver_path.c_str(), argv.data());
    ::_exit(127);
  }

  ::close(to_pipe[0]);
  ::close(from_pipe[1]);
  to_child_ = to_pipe[1];
  from_child_ = from_pipe[0];
  ::fcntl(from_child_, F_SETFL, O_NONBLOCK);
  child_pid_ = pid;
  rx_buffer_.clear();
  return true;
}

void SubprocessBackend::kill_child() noexcept {
  if (child_pid_ > 0) {
    ::kill(child_pid_, SIGKILL);
    while (::waitpid(child_pid_, nullptr, 0) < 0 && errno == EINTR) {
    }
  }
  child_pid_ = -1;
  if (to_child_ >= 0) ::close(to_child_);
  if (from_child_ >= 0) ::close(from_child_);
  to_child_ = -1;
  from_child_ = -1;
  rx_buffer_.clear();
  has_model_ = false;
}

bool SubprocessBackend::replay_session() {
  std::string script =
      "(set-option :print-success false)\n"
      "(set-option :produce-models true)\n"
      "(set-logic QF_LIA)\n";
  std::int64_t restored = 0;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (i != 0) script += "(push 1)\n";
    for (const std::string& line : frames_[i]) {
      script += line;
      script += '\n';
      ++restored;
    }
  }
  if (!send(script)) return false;
  stats_.restored_lines += restored;
  backend_counter("restored_lines").add(restored);
  has_model_ = false;
  return true;
}

bool SubprocessBackend::send(std::string_view data) {
  if (to_child_ < 0) return false;
  while (!data.empty()) {
    const ssize_t n = ::write(to_child_, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

SubprocessBackend::ReadStatus SubprocessBackend::fill_buffer(
    std::int64_t deadline_ns) {
  const std::int64_t now = obs::now_ns();
  if (now >= deadline_ns) return ReadStatus::kTimeout;
  if (from_child_ < 0) return ReadStatus::kError;

  struct pollfd pfd {};
  pfd.fd = from_child_;
  pfd.events = POLLIN;
  const std::int64_t slice_ms =
      std::min(kPollSliceMs, (deadline_ns - now) / 1'000'000 + 1);
  const int pr = ::poll(&pfd, 1, static_cast<int>(slice_ms));
  if (pr < 0) return errno == EINTR ? ReadStatus::kOk : ReadStatus::kError;
  if (pr == 0) return ReadStatus::kOk;  // slice elapsed; caller re-checks

  char buf[4096];
  const ssize_t n = ::read(from_child_, buf, sizeof buf);
  if (n > 0) {
    rx_buffer_.append(buf, static_cast<std::size_t>(n));
    return ReadStatus::kOk;
  }
  if (n == 0) return ReadStatus::kEof;
  return (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
             ? ReadStatus::kOk
             : ReadStatus::kError;
}

SubprocessBackend::ReadStatus SubprocessBackend::read_line(
    std::int64_t deadline_ns, std::string* out) {
  while (true) {
    const std::size_t nl = rx_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rx_buffer_.substr(0, nl);
      rx_buffer_.erase(0, nl + 1);
      while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        line.pop_back();
      if (line.empty() || line == "success") continue;
      *out = std::move(line);
      return ReadStatus::kOk;
    }
    const ReadStatus rs = fill_buffer(deadline_ns);
    if (rs != ReadStatus::kOk) return rs;
  }
}

SubprocessBackend::ReadStatus SubprocessBackend::read_sexpr(
    std::int64_t deadline_ns, std::string* out) {
  while (true) {
    // Scan what we have: leading whitespace, then either a balanced
    // parenthesized expression or — protocol violation — a bare token, which
    // is surfaced as-is for the caller's parser to reject.
    std::size_t i = 0;
    while (i < rx_buffer_.size() &&
           std::isspace(static_cast<unsigned char>(rx_buffer_[i])))
      ++i;
    if (i < rx_buffer_.size() && rx_buffer_[i] != '(') {
      const std::size_t end = rx_buffer_.find('\n', i);
      if (end != std::string::npos) {
        *out = rx_buffer_.substr(i, end - i);
        rx_buffer_.erase(0, end + 1);
        return ReadStatus::kOk;
      }
    } else if (i < rx_buffer_.size()) {
      int depth = 0;
      for (std::size_t j = i; j < rx_buffer_.size(); ++j) {
        if (rx_buffer_[j] == '(') ++depth;
        if (rx_buffer_[j] == ')' && --depth == 0) {
          *out = rx_buffer_.substr(i, j + 1 - i);
          rx_buffer_.erase(0, j + 1);
          return ReadStatus::kOk;
        }
      }
    }
    const ReadStatus rs = fill_buffer(deadline_ns);
    if (rs != ReadStatus::kOk) return rs;
  }
}

}  // namespace lejit::smt
