#include "smt/smtlib2.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "smt/solver.hpp"
#include "util/error.hpp"

namespace lejit::smt::smtlib2 {

std::string var_name(int index) { return "x" + std::to_string(index); }

namespace {

void append_int(std::string& out, Int v) {
  if (v < 0) {
    out += "(- ";
    out += std::to_string(-v);
    out += ')';
  } else {
    out += std::to_string(v);
  }
}

}  // namespace

void append_linexpr(std::string& out, const LinExpr& e) {
  if (e.is_constant()) {
    append_int(out, e.constant());
    return;
  }
  const bool sum = e.terms().size() > 1 || e.constant() != 0;
  if (sum) out += "(+ ";
  bool first = true;
  for (const auto& [v, c] : e.terms()) {
    if (!first) out += ' ';
    first = false;
    if (c == 1) {
      out += var_name(v.index);
    } else {
      out += "(* ";
      append_int(out, c);
      out += ' ';
      out += var_name(v.index);
      out += ')';
    }
  }
  if (e.constant() != 0) {
    out += ' ';
    append_int(out, e.constant());
  }
  if (sum) out += ')';
}

void append_formula(std::string& out, const Formula& f) {
  LEJIT_REQUIRE(f != nullptr, "cannot emit null formula");
  switch (f->kind()) {
    case FormulaKind::kTrue:
      out += "true";
      return;
    case FormulaKind::kFalse:
      out += "false";
      return;
    case FormulaKind::kAtom: {
      const AtomOp op = f->atom_op();
      if (op == AtomOp::kNe) out += "(not ";
      out += (op == AtomOp::kLe) ? "(<= " : "(= ";
      append_linexpr(out, f->atom_expr());
      out += " 0)";
      if (op == AtomOp::kNe) out += ')';
      return;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      out += (f->kind() == FormulaKind::kAnd) ? "(and" : "(or";
      for (const Formula& c : f->children()) {
        out += ' ';
        append_formula(out, c);
      }
      out += ')';
      return;
    }
  }
  LEJIT_REQUIRE(false, "unreachable formula kind");
}

std::string to_smtlib2(const Formula& f) {
  std::string out;
  append_formula(out, f);
  return out;
}

std::string assert_line(const Formula& f) {
  std::string out = "(assert ";
  append_formula(out, f);
  out += ')';
  return out;
}

std::string declare_lines(int index, Int lo, Int hi) {
  const std::string x = var_name(index);
  std::string out = "(declare-const " + x + " Int)\n";
  out += "(assert (and (<= ";
  append_int(out, lo);
  out += ' ';
  out += x;
  out += ") (<= ";
  out += x;
  out += ' ';
  append_int(out, hi);
  out += ")))";
  return out;
}

// --- parsing ----------------------------------------------------------------

namespace {

void skip_ws(std::string_view text, std::size_t* pos) {
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == ';') {  // comment to end of line
      while (*pos < text.size() && text[*pos] != '\n') ++*pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++*pos;
    } else {
      break;
    }
  }
}

bool is_atom_char(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')' &&
         c != ';';
}

}  // namespace

std::optional<Sexpr> parse_sexpr(std::string_view text, std::size_t* pos) {
  skip_ws(text, pos);
  if (*pos >= text.size()) return std::nullopt;
  if (text[*pos] == ')') return std::nullopt;  // unbalanced
  if (text[*pos] == '(') {
    ++*pos;
    Sexpr node;
    node.list.reserve(2);
    while (true) {
      skip_ws(text, pos);
      if (*pos >= text.size()) return std::nullopt;  // truncated
      if (text[*pos] == ')') {
        ++*pos;
        return node;
      }
      std::optional<Sexpr> child = parse_sexpr(text, pos);
      if (!child) return std::nullopt;
      node.list.push_back(std::move(*child));
    }
  }
  if (text[*pos] == '"') {  // string literal: kept verbatim, quotes stripped
    Sexpr node;
    ++*pos;
    while (*pos < text.size() && text[*pos] != '"') node.atom += text[(*pos)++];
    if (*pos >= text.size()) return std::nullopt;
    ++*pos;
    if (node.atom.empty()) node.atom = " ";  // keep leaf-ness
    return node;
  }
  Sexpr node;
  while (*pos < text.size() && is_atom_char(text[*pos]))
    node.atom += text[(*pos)++];
  if (node.atom.empty()) return std::nullopt;
  return node;
}

namespace {

std::optional<Int> parse_int_sexpr(const Sexpr& s) {
  if (s.is_atom()) {
    Int v = 0;
    const char* b = s.atom.data();
    const char* e = b + s.atom.size();
    const auto [p, ec] = std::from_chars(b, e, v);
    if (ec != std::errc{} || p != e) return std::nullopt;
    return v;
  }
  // `(- 5)`
  if (s.list.size() == 2 && s.list[0].atom == "-") {
    const std::optional<Int> v = parse_int_sexpr(s.list[1]);
    if (!v) return std::nullopt;
    return -*v;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<std::pair<int, Int>>> parse_model(
    std::string_view text) {
  std::size_t pos = 0;
  const std::optional<Sexpr> root = parse_sexpr(text, &pos);
  if (!root || root->is_atom()) return std::nullopt;
  std::vector<std::pair<int, Int>> out;
  out.reserve(root->list.size());
  for (const Sexpr& pair : root->list) {
    if (pair.list.size() != 2 || !pair.list[0].is_atom()) return std::nullopt;
    const std::string& name = pair.list[0].atom;
    if (name.size() < 2 || name[0] != 'x') return std::nullopt;
    int index = -1;
    const auto [p, ec] =
        std::from_chars(name.data() + 1, name.data() + name.size(), index);
    if (ec != std::errc{} || p != name.data() + name.size()) return std::nullopt;
    const std::optional<Int> v = parse_int_sexpr(pair.list[1]);
    if (!v) return std::nullopt;
    out.emplace_back(index, *v);
  }
  return out;
}

// --- reference server --------------------------------------------------------

namespace {

// Server-side expression → LinExpr / Formula conversion. Failures return
// nullopt and surface as `(error ...)` answers, never exceptions: the server
// must survive malformed input (that is what the garble tests throw at it).

struct ServerState {
  Solver solver{SolverConfig{}};
  std::unordered_map<std::string, VarId> vars;
  std::vector<std::string> var_names;  // index-aligned with VarId
  bool has_model = false;
};

// Domain assigned to a declare-const before the client's own bounds
// assertion arrives. Wide enough for any rule domain, narrow enough that
// propagation keeps search tractable once the real bounds land.
constexpr Int kDefaultDomain = static_cast<Int>(1) << 40;

std::optional<LinExpr> to_linexpr(const Sexpr& s, const ServerState& st) {
  if (s.is_atom()) {
    if (const std::optional<Int> v = parse_int_sexpr(s)) return LinExpr(*v);
    const auto it = st.vars.find(s.atom);
    if (it == st.vars.end()) return std::nullopt;
    return LinExpr(it->second);
  }
  if (s.list.empty() || !s.list[0].is_atom()) return std::nullopt;
  const std::string& op = s.list[0].atom;
  if (op == "+") {
    LinExpr sum;
    for (std::size_t i = 1; i < s.list.size(); ++i) {
      const std::optional<LinExpr> e = to_linexpr(s.list[i], st);
      if (!e) return std::nullopt;
      sum += *e;
    }
    return sum;
  }
  if (op == "-") {
    if (s.list.size() < 2) return std::nullopt;
    std::optional<LinExpr> acc = to_linexpr(s.list[1], st);
    if (!acc) return std::nullopt;
    if (s.list.size() == 2) return -*acc;
    for (std::size_t i = 2; i < s.list.size(); ++i) {
      const std::optional<LinExpr> e = to_linexpr(s.list[i], st);
      if (!e) return std::nullopt;
      *acc -= *e;
    }
    return acc;
  }
  if (op == "*") {
    Int coeff = 1;
    std::optional<LinExpr> var_part;
    for (std::size_t i = 1; i < s.list.size(); ++i) {
      std::optional<LinExpr> e = to_linexpr(s.list[i], st);
      if (!e) return std::nullopt;
      if (e->is_constant()) {
        coeff = sat_mul(coeff, e->constant());
      } else if (!var_part) {
        var_part = std::move(*e);
      } else {
        return std::nullopt;  // nonlinear
      }
    }
    if (!var_part) return LinExpr(coeff);
    return coeff * *var_part;
  }
  return std::nullopt;
}

std::optional<Formula> to_formula(const Sexpr& s, const ServerState& st) {
  if (s.is_atom()) {
    if (s.atom == "true") return make_true();
    if (s.atom == "false") return make_false();
    return std::nullopt;
  }
  if (s.list.empty() || !s.list[0].is_atom()) return std::nullopt;
  const std::string& op = s.list[0].atom;

  if (op == "and" || op == "or") {
    std::vector<Formula> fs;
    fs.reserve(s.list.size() - 1);
    for (std::size_t i = 1; i < s.list.size(); ++i) {
      const std::optional<Formula> f = to_formula(s.list[i], st);
      if (!f) return std::nullopt;
      fs.push_back(*f);
    }
    return op == "and" ? land(std::move(fs)) : lor(std::move(fs));
  }
  if (op == "not") {
    if (s.list.size() != 2) return std::nullopt;
    const std::optional<Formula> f = to_formula(s.list[1], st);
    if (!f) return std::nullopt;
    return lnot(*f);
  }
  if (op == "=>") {
    if (s.list.size() != 3) return std::nullopt;
    const std::optional<Formula> a = to_formula(s.list[1], st);
    const std::optional<Formula> b = to_formula(s.list[2], st);
    if (!a || !b) return std::nullopt;
    return implies(*a, *b);
  }
  if (op == "<=" || op == "<" || op == ">=" || op == ">" || op == "=" ||
      op == "distinct") {
    if (s.list.size() < 3) return std::nullopt;
    std::vector<Formula> chain;
    for (std::size_t i = 1; i + 1 < s.list.size(); ++i) {
      const std::optional<LinExpr> a = to_linexpr(s.list[i], st);
      const std::optional<LinExpr> b = to_linexpr(s.list[i + 1], st);
      if (!a || !b) return std::nullopt;
      if (op == "<=") chain.push_back(le(*a, *b));
      else if (op == "<") chain.push_back(lt(*a, *b));
      else if (op == ">=") chain.push_back(ge(*a, *b));
      else if (op == ">") chain.push_back(gt(*a, *b));
      else if (op == "=") chain.push_back(eq(*a, *b));
      else chain.push_back(ne(*a, *b));
    }
    return land(std::move(chain));
  }
  return std::nullopt;
}

// Read one complete command s-expression from the stream (blocking).
// Returns false on EOF. Non-list garbage between commands is consumed one
// character at a time so a garbled client cannot wedge the loop.
bool read_command(std::istream& in, std::string* out) {
  out->clear();
  int depth = 0;
  bool in_comment = false;
  char c = 0;
  while (in.get(c)) {
    if (in_comment) {
      if (c == '\n') in_comment = false;
      continue;
    }
    if (depth == 0) {
      if (c == ';') {
        in_comment = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c != '(') {  // stray atom outside any command: swallow the word
        while (in.get(c) && !std::isspace(static_cast<unsigned char>(c)) &&
               c != '(') {
        }
        if (c == '(') in.unget();
        continue;
      }
    }
    out->push_back(c);
    if (c == '(') ++depth;
    if (c == ')' && --depth == 0) return true;
  }
  return false;
}

Budget server_budget() {
  Budget b;
  if (const char* env = std::getenv("LEJIT_SMTSERVE_MAX_NODES")) {
    const long long n = std::atoll(env);
    if (n > 0) b.max_nodes = n;
  }
  return b;
}

}  // namespace

int run_server(std::istream& in, std::ostream& out) {
  auto state = std::make_unique<ServerState>();
  const Budget budget = server_budget();

  const auto error = [&out](std::string_view msg) {
    out << "(error \"" << msg << "\")" << std::endl;
  };

  std::string raw;
  while (read_command(in, &raw)) {
    std::size_t pos = 0;
    const std::optional<Sexpr> cmd = parse_sexpr(raw, &pos);
    if (!cmd || cmd->list.empty() || !cmd->list[0].is_atom()) {
      error("malformed command");
      continue;
    }
    const std::string& head = cmd->list[0].atom;

    if (head == "set-logic" || head == "set-option" || head == "set-info")
      continue;
    if (head == "exit") return 0;
    if (head == "reset") {
      state = std::make_unique<ServerState>();
      continue;
    }
    if (head == "declare-const" || head == "declare-fun") {
      // (declare-const name Int) | (declare-fun name () Int)
      const std::size_t arity = head == "declare-const" ? 3 : 4;
      if (cmd->list.size() != arity || !cmd->list[1].is_atom()) {
        error("malformed declaration");
        continue;
      }
      if (cmd->list.back().atom != "Int") {
        error("only Int sorts are supported");
        continue;
      }
      const std::string& name = cmd->list[1].atom;
      if (state->vars.contains(name)) {
        error("duplicate declaration: " + name);
        continue;
      }
      const VarId v =
          state->solver.add_var(name, -kDefaultDomain, kDefaultDomain);
      state->vars.emplace(name, v);
      state->var_names.push_back(name);
      continue;
    }
    if (head == "assert") {
      if (cmd->list.size() != 2) {
        error("malformed assert");
        continue;
      }
      const std::optional<Formula> f = to_formula(cmd->list[1], *state);
      if (!f) {
        error("unsupported expression: " + raw);
        continue;
      }
      state->solver.add(*f);
      state->has_model = false;
      continue;
    }
    if (head == "push" || head == "pop") {
      long long n = 1;
      if (cmd->list.size() == 2) {
        const std::optional<Int> v = parse_int_sexpr(cmd->list[1]);
        if (!v || *v < 0) {
          error("malformed " + head);
          continue;
        }
        n = *v;
      }
      if (head == "pop" &&
          static_cast<std::size_t>(n) > state->solver.num_scopes()) {
        error("pop past the bottom of the stack");
        continue;
      }
      for (long long i = 0; i < n; ++i)
        head == "push" ? state->solver.push() : state->solver.pop();
      state->has_model = false;
      continue;
    }
    if (head == "check-sat") {
      const CheckResult r = state->solver.check(budget);
      state->has_model = r == CheckResult::kSat;
      out << (r == CheckResult::kSat
                  ? "sat"
                  : r == CheckResult::kUnsat ? "unsat" : "unknown")
          << std::endl;
      continue;
    }
    if (head == "get-value") {
      if (cmd->list.size() != 2 || cmd->list[1].is_atom()) {
        error("malformed get-value");
        continue;
      }
      if (!state->has_model) {
        error("no model available");
        continue;
      }
      std::string reply = "(";
      bool ok = true;
      for (const Sexpr& name : cmd->list[1].list) {
        const auto it =
            name.is_atom() ? state->vars.find(name.atom) : state->vars.end();
        if (it == state->vars.end()) {
          ok = false;
          break;
        }
        reply += '(';
        reply += name.atom;
        reply += ' ';
        append_int(reply, state->solver.model_value(it->second));
        reply += ')';
      }
      if (!ok) {
        error("unknown term in get-value");
        continue;
      }
      reply += ')';
      out << reply << std::endl;
      continue;
    }
    error("unsupported command: " + head);
  }
  return 0;
}

}  // namespace lejit::smt::smtlib2
