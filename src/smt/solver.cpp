#include "smt/solver.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace lejit::smt {

namespace {

// Floor/ceil division with positive divisor (C++ '/' truncates toward zero).
constexpr Int floor_div(Int a, Int b) noexcept {
  const Int q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}
constexpr Int ceil_div(Int a, Int b) noexcept {
  const Int q = a / b;
  return (a % b != 0 && ((a < 0) == (b < 0))) ? q + 1 : q;
}

enum class Tri { kFalse, kUnknown, kTrue };

}  // namespace

Budget Budget::deadline_in_ms(std::int64_t ms) {
  Budget b;
  b.deadline_ns = obs::now_ns() + ms * 1'000'000;
  return b;
}

// Search state for one DFS node: current domains plus the constraints that
// still have to be discharged. `atoms` hold must-be-true atomic formulas;
// `ors` hold disjunctions not yet satisfied. Entries are dropped once proved
// true (sound: domains only shrink along a branch, and truth of a formula
// under a box is monotone in box inclusion).
namespace detail {
struct SearchNode {
  std::vector<Int> lo;
  std::vector<Int> hi;
  std::vector<Formula> atoms;
  std::vector<Formula> ors;
  bool conflict = false;
};
}  // namespace detail

// Saved incremental-base state for one push() scope: restoring it on pop()
// makes scoped retraction O(node copy) instead of O(re-propagate everything).
struct Solver::BaseSnapshot {
  bool valid = false;
  std::size_t assertions = 0;
  std::unique_ptr<detail::SearchNode> node;  // set iff valid
};

Solver::Solver(SolverConfig config) : config_(config) {}
Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

namespace {

Interval expr_range(const LinExpr& e, const std::vector<Int>& lo,
                    const std::vector<Int>& hi) {
  Int emin = e.constant();
  Int emax = e.constant();
  for (const auto& [v, c] : e.terms()) {
    const auto i = static_cast<std::size_t>(v.index);
    if (c > 0) {
      emin = sat_add(emin, sat_mul(c, lo[i]));
      emax = sat_add(emax, sat_mul(c, hi[i]));
    } else {
      emin = sat_add(emin, sat_mul(c, hi[i]));
      emax = sat_add(emax, sat_mul(c, lo[i]));
    }
  }
  return {emin, emax};
}

Tri eval_atom(AtomOp op, const LinExpr& e, const std::vector<Int>& lo,
              const std::vector<Int>& hi) {
  const Interval r = expr_range(e, lo, hi);
  switch (op) {
    case AtomOp::kLe:
      if (r.hi <= 0) return Tri::kTrue;
      if (r.lo > 0) return Tri::kFalse;
      return Tri::kUnknown;
    case AtomOp::kEq:
      if (r.lo == 0 && r.hi == 0) return Tri::kTrue;
      if (r.lo > 0 || r.hi < 0) return Tri::kFalse;
      return Tri::kUnknown;
    case AtomOp::kNe:
      if (r.lo > 0 || r.hi < 0) return Tri::kTrue;
      if (r.lo == 0 && r.hi == 0) return Tri::kFalse;
      return Tri::kUnknown;
  }
  LEJIT_UNREACHABLE("unreachable atom op");
}

Tri eval_formula(const Formula& f, const std::vector<Int>& lo,
                 const std::vector<Int>& hi) {
  switch (f->kind()) {
    case FormulaKind::kTrue: return Tri::kTrue;
    case FormulaKind::kFalse: return Tri::kFalse;
    case FormulaKind::kAtom:
      return eval_atom(f->atom_op(), f->atom_expr(), lo, hi);
    case FormulaKind::kAnd: {
      bool unknown = false;
      for (const auto& c : f->children()) {
        const Tri t = eval_formula(c, lo, hi);
        if (t == Tri::kFalse) return Tri::kFalse;
        if (t == Tri::kUnknown) unknown = true;
      }
      return unknown ? Tri::kUnknown : Tri::kTrue;
    }
    case FormulaKind::kOr: {
      bool unknown = false;
      for (const auto& c : f->children()) {
        const Tri t = eval_formula(c, lo, hi);
        if (t == Tri::kTrue) return Tri::kTrue;
        if (t == Tri::kUnknown) unknown = true;
      }
      return unknown ? Tri::kUnknown : Tri::kFalse;
    }
  }
  LEJIT_UNREACHABLE("unreachable formula kind");
}

}  // namespace

VarId Solver::add_var(std::string name, Int lo, Int hi) {
  LEJIT_REQUIRE(lo <= hi, "variable domain must be non-empty: " + name);
  LEJIT_REQUIRE(-kIntInf / 2 < lo && hi < kIntInf / 2,
                "variable domain exceeds solver's safe integer range");
  vars_.push_back({std::move(name), lo, hi});
  return VarId{static_cast<int>(vars_.size()) - 1};
}

Interval Solver::bounds(VarId v) const {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  const auto& d = vars_[static_cast<std::size_t>(v.index)];
  return {d.lo, d.hi};
}

const std::string& Solver::name(VarId v) const {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  return vars_[static_cast<std::size_t>(v.index)].name;
}

void Solver::add(Formula f) {
  LEJIT_REQUIRE(f != nullptr, "null formula");
  assertions_.push_back(std::move(f));
}

void Solver::push() {
  scopes_.push_back(assertions_.size());
  if (config_.incremental) {
    BaseSnapshot snap;
    snap.valid = base_valid_ && base_ != nullptr;
    snap.assertions = base_assertions_;
    if (snap.valid) snap.node = std::make_unique<detail::SearchNode>(*base_);
    base_saves_.push_back(std::move(snap));
  }
}

void Solver::pop() {
  LEJIT_REQUIRE(!scopes_.empty(), "pop() without matching push()");
  assertions_.resize(scopes_.back());
  scopes_.pop_back();
  if (config_.incremental) {
    LEJIT_ASSERT(!base_saves_.empty(), "base snapshot stack out of sync");
    BaseSnapshot snap = std::move(base_saves_.back());
    base_saves_.pop_back();
    base_valid_ = snap.valid;
    base_assertions_ = snap.assertions;
    base_ = std::move(snap.node);
  }
}

const std::vector<Int>& Solver::model() const {
  LEJIT_REQUIRE(has_model_, "model() requires a preceding kSat check");
  return model_;
}

Int Solver::model_value(VarId v) const {
  LEJIT_REQUIRE(v.index >= 0 &&
                    static_cast<std::size_t>(v.index) < model().size(),
                "unknown variable");
  return model()[static_cast<std::size_t>(v.index)];
}

namespace {

// Assert `f` as true in `node`, unfolding Ands and immediately-decided Ors.
void assert_true(const Formula& f, detail::SearchNode& node);

void assert_or(const Formula& f, detail::SearchNode& node) {
  // Cheap pre-check so unit/true/false disjunctions never enter the list.
  const Formula* only_open = nullptr;
  int open = 0;
  for (const auto& c : f->children()) {
    const Tri t = eval_formula(c, node.lo, node.hi);
    if (t == Tri::kTrue) return;  // already satisfied
    if (t == Tri::kUnknown) {
      ++open;
      only_open = &c;
    }
  }
  if (open == 0) {
    node.conflict = true;
    return;
  }
  if (open == 1) {
    assert_true(*only_open, node);
    return;
  }
  node.ors.push_back(f);
}

void assert_true(const Formula& f, detail::SearchNode& node) {
  if (node.conflict) return;
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return;
    case FormulaKind::kFalse:
      node.conflict = true;
      return;
    case FormulaKind::kAtom:
      node.atoms.push_back(f);
      return;
    case FormulaKind::kAnd:
      for (const auto& c : f->children()) assert_true(c, node);
      return;
    case FormulaKind::kOr:
      assert_or(f, node);
      return;
  }
}

}  // namespace

namespace {

// Tighten domains so the atom `dir * expr ⟨<=⟩ 0` is bounds-consistent.
// Returns true if any domain changed; sets node.conflict on wipeout.
bool tighten_le(const LinExpr& e, Int dir, detail::SearchNode& node,
                std::int64_t& propagations) {
  // total_min = minimum possible value of dir*e under current domains.
  Int total_min = sat_mul(dir, e.constant());
  for (const auto& [v, c0] : e.terms()) {
    const Int c = sat_mul(dir, c0);
    const auto i = static_cast<std::size_t>(v.index);
    total_min = sat_add(total_min, c > 0 ? sat_mul(c, node.lo[i])
                                         : sat_mul(c, node.hi[i]));
  }
  if (total_min > 0) {
    node.conflict = true;
    return false;
  }
  bool changed = false;
  for (const auto& [v, c0] : e.terms()) {
    const Int c = sat_mul(dir, c0);
    const auto i = static_cast<std::size_t>(v.index);
    const Int own_min = c > 0 ? sat_mul(c, node.lo[i]) : sat_mul(c, node.hi[i]);
    const Int rest_min = sat_add(total_min, -own_min);
    // c * x_i <= -rest_min
    if (c > 0) {
      const Int ub = floor_div(-rest_min, c);
      if (ub < node.hi[i]) {
        node.hi[i] = ub;
        changed = true;
        ++propagations;
        if (node.hi[i] < node.lo[i]) {
          node.conflict = true;
          return changed;
        }
      }
    } else {
      const Int lb = ceil_div(rest_min, -c);
      if (lb > node.lo[i]) {
        node.lo[i] = lb;
        changed = true;
        ++propagations;
        if (node.hi[i] < node.lo[i]) {
          node.conflict = true;
          return changed;
        }
      }
    }
  }
  return changed;
}

// Prune domain-boundary values forbidden by `expr != 0` when exactly one
// variable is unfixed (weak but cheap; search completes the rest).
bool tighten_ne(const LinExpr& e, detail::SearchNode& node,
                std::int64_t& propagations) {
  Int fixed_sum = e.constant();
  std::size_t unfixed_index = 0;
  Int unfixed_coeff = 0;
  int unfixed = 0;
  for (const auto& [v, c] : e.terms()) {
    const auto i = static_cast<std::size_t>(v.index);
    if (node.lo[i] == node.hi[i]) {
      fixed_sum = sat_add(fixed_sum, sat_mul(c, node.lo[i]));
    } else {
      ++unfixed;
      unfixed_index = i;
      unfixed_coeff = c;
    }
  }
  if (unfixed == 0) {
    if (fixed_sum == 0) node.conflict = true;
    return false;
  }
  if (unfixed != 1) return false;
  // unfixed_coeff * x + fixed_sum != 0 → exclude x0 when it divides evenly.
  if ((-fixed_sum) % unfixed_coeff != 0) return false;
  const Int x0 = (-fixed_sum) / unfixed_coeff;
  bool changed = false;
  if (node.lo[unfixed_index] == x0) {
    ++node.lo[unfixed_index];
    changed = true;
    ++propagations;
  }
  if (node.hi[unfixed_index] == x0) {
    --node.hi[unfixed_index];
    changed = true;
    ++propagations;
  }
  if (node.lo[unfixed_index] > node.hi[unfixed_index]) node.conflict = true;
  return changed;
}

}  // namespace

// Bounds-consistency propagation to fixpoint (or the round cap). Shared by
// per-check search and incremental base preparation. Returns false iff the
// node became conflicting; proved-true constraints are dropped in place.
bool Solver::propagate(detail::SearchNode& node, std::int64_t deadline_ns,
                       bool* deadline_hit) {
  for (int round = 0; round < config_.max_propagation_rounds; ++round) {
    if (node.conflict) return false;
    // A single propagation fixpoint can run thousands of sweeps; a deadline
    // checked only between search nodes would be invisible for all of them
    // (the Budget contract says overshoot is bounded by one poll interval —
    // here, one sweep). One clock read per round is noise next to a sweep
    // over every open constraint.
    if (round != 0 && deadline_ns != 0 && obs::now_ns() >= deadline_ns) {
      if (deadline_hit != nullptr) *deadline_hit = true;
      return true;  // not a conflict — the caller converts this to kUnknown
    }
    bool changed = false;

    // Atoms: tighten; drop once definitely true.
    for (std::size_t i = 0; i < node.atoms.size();) {
      const Formula& a = node.atoms[i];
      const Tri t = eval_atom(a->atom_op(), a->atom_expr(), node.lo, node.hi);
      if (t == Tri::kFalse) {
        node.conflict = true;
        return false;
      }
      if (t == Tri::kTrue) {
        node.atoms[i] = node.atoms.back();
        node.atoms.pop_back();
        continue;
      }
      switch (a->atom_op()) {
        case AtomOp::kLe:
          changed |= tighten_le(a->atom_expr(), 1, node, stats_.propagations);
          break;
        case AtomOp::kEq:
          changed |= tighten_le(a->atom_expr(), 1, node, stats_.propagations);
          if (!node.conflict)
            changed |=
                tighten_le(a->atom_expr(), -1, node, stats_.propagations);
          break;
        case AtomOp::kNe:
          changed |= tighten_ne(a->atom_expr(), node, stats_.propagations);
          break;
      }
      if (node.conflict) return false;
      ++i;
    }

    // Disjunctions: drop satisfied ones, assert unit ones.
    for (std::size_t i = 0; i < node.ors.size();) {
      const Formula f = node.ors[i];
      const Formula* only_open = nullptr;
      int open = 0;
      bool satisfied = false;
      for (const auto& c : f->children()) {
        const Tri t = eval_formula(c, node.lo, node.hi);
        if (t == Tri::kTrue) {
          satisfied = true;
          break;
        }
        if (t == Tri::kUnknown) {
          ++open;
          only_open = &c;
        }
      }
      if (satisfied || open <= 1) {
        node.ors[i] = node.ors.back();
        node.ors.pop_back();
        if (!satisfied) {
          if (open == 0) {
            node.conflict = true;
            return false;
          }
          assert_true(*only_open, node);
          if (node.conflict) return false;
          changed = true;
        }
        continue;
      }
      ++i;
    }

    if (!changed) break;
  }
  return !node.conflict;
}

CheckResult Solver::search(detail::SearchNode& node, std::int64_t& nodes_left,
                           std::int64_t deadline_ns) {
  ++stats_.nodes;
  if (--nodes_left < 0) {
    ++stats_.node_exhaustions;
    return CheckResult::kUnknown;
  }
  // A node's real work (propagation sweeps over every open constraint) dwarfs
  // one steady-clock read, so the deadline is simply checked per node.
  if (deadline_ns != 0 && obs::now_ns() >= deadline_ns) {
    ++stats_.deadline_exhaustions;
    return CheckResult::kUnknown;
  }

  bool deadline_hit = false;
  if (!propagate(node, deadline_ns, &deadline_hit)) return CheckResult::kUnsat;
  if (deadline_hit) {
    ++stats_.deadline_exhaustions;
    return CheckResult::kUnknown;
  }

  // --- fully determined? -------------------------------------------------------
  if (node.atoms.empty() && node.ors.empty()) {
    // Every constraint is satisfied for any values in the remaining box;
    // pick the lower corner as the model.
    model_ = node.lo;
    has_model_ = true;
    return CheckResult::kSat;
  }

  // --- branch -------------------------------------------------------------------
  if (!node.ors.empty()) {
    // DPLL-style case split on the first open disjunct. The disjunction is
    // consumed here and strictly shrinks on the negative branch — this is
    // what guarantees termination even when the picked child's atoms stay
    // tri-valued Unknown under bounds consistency.
    const Formula f = node.ors.front();
    node.ors.front() = node.ors.back();
    node.ors.pop_back();

    Formula pick;
    std::vector<Formula> rest;
    rest.reserve(f->children().size());
    for (const auto& c : f->children()) {
      if (!pick && eval_formula(c, node.lo, node.hi) == Tri::kUnknown) {
        pick = c;
      } else {
        rest.push_back(c);
      }
    }
    LEJIT_ASSERT(pick != nullptr, "open disjunction with no open child");
    {
      detail::SearchNode child = node;
      assert_true(pick, child);
      const CheckResult r = search(child, nodes_left, deadline_ns);
      if (r != CheckResult::kUnsat) return r;
    }
    {
      detail::SearchNode child = std::move(node);
      assert_true(lnot(pick), child);
      assert_true(lor(std::move(rest)), child);
      return search(child, nodes_left, deadline_ns);
    }
  }

  // Domain split on a variable occurring in an open atom; prefer the
  // narrowest such domain so enumeration kicks in quickly.
  std::size_t best = SIZE_MAX;
  Int best_width = kIntInf;
  for (const auto& a : node.atoms) {
    for (const auto& [v, c] : a->atom_expr().terms()) {
      const auto i = static_cast<std::size_t>(v.index);
      const Int width = node.hi[i] - node.lo[i];
      if (width > 0 && width < best_width) {
        best_width = width;
        best = i;
      }
    }
  }
  LEJIT_ASSERT(best != SIZE_MAX, "open atom with all variables fixed");

  const Int mid = node.lo[best] + (node.hi[best] - node.lo[best]) / 2;
  {
    detail::SearchNode child = node;
    child.hi[best] = mid;
    const CheckResult r = search(child, nodes_left, deadline_ns);
    if (r != CheckResult::kUnsat) return r;
  }
  {
    detail::SearchNode child = std::move(node);
    child.lo[best] = mid + 1;
    return search(child, nodes_left, deadline_ns);
  }
}

CheckResult Solver::check_assuming(std::span<const Formula> assumptions,
                                   const Budget& budget) {
  if (!obs::metrics_enabled()) return check_assuming_impl(assumptions, budget);

  // Registered once; updates through the references are lock-free.
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& c_checks = registry.counter("smt.checks");
  static obs::Counter& c_nodes = registry.counter("smt.nodes");
  static obs::Counter& c_props = registry.counter("smt.propagations");
  static obs::Counter& c_unknowns = registry.counter("smt.unknowns");
  static obs::Counter& c_deadlines =
      registry.counter("smt.deadline_exhaustions");
  static obs::Histogram& h_latency =
      registry.histogram("smt.check_latency_us");

  const std::int64_t nodes_before = stats_.nodes;
  const std::int64_t props_before = stats_.propagations;
  const std::int64_t deadlines_before = stats_.deadline_exhaustions;
  const std::int64_t t0 = obs::now_ns();
  const obs::Span span(obs::Phase::kSolverCheck);
  const CheckResult r = check_assuming_impl(assumptions, budget);
  h_latency.observe(static_cast<double>(obs::now_ns() - t0) * 1e-3);
  c_checks.inc();
  c_nodes.add(stats_.nodes - nodes_before);
  c_props.add(stats_.propagations - props_before);
  c_deadlines.add(stats_.deadline_exhaustions - deadlines_before);
  if (r == CheckResult::kUnknown) c_unknowns.inc();
  return r;
}

// Make base_ a propagated snapshot of the full current assertion stack. A
// valid base only ever needs the new assertion suffix folded in (domains only
// shrink down an assertion stack, so the old fixpoint stays sound); it is
// rebuilt from scratch after pop-restores of a never-built scope or when
// add_var changed the domain vector underneath it.
void Solver::ensure_base() {
  if (base_valid_ && base_ != nullptr && base_->lo.size() == vars_.size() &&
      base_assertions_ <= assertions_.size()) {
    if (base_assertions_ == assertions_.size()) return;
    if (!base_->conflict) {
      for (std::size_t i = base_assertions_; i < assertions_.size(); ++i)
        assert_true(assertions_[i], *base_);
      if (!base_->conflict) propagate(*base_);
    }
    base_assertions_ = assertions_.size();
    ++stats_.base_folds;
    return;
  }
  base_ = std::make_unique<detail::SearchNode>();
  base_->lo.reserve(vars_.size());
  base_->hi.reserve(vars_.size());
  for (const auto& v : vars_) {
    base_->lo.push_back(v.lo);
    base_->hi.push_back(v.hi);
  }
  for (const auto& f : assertions_) assert_true(f, *base_);
  base_assertions_ = assertions_.size();
  base_valid_ = true;
  ++stats_.base_rebuilds;
  if (!base_->conflict) propagate(*base_);
}

Interval Solver::propagated_bounds(VarId v) {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  if (!config_.incremental) return bounds(v);
  ensure_base();
  if (base_->conflict) return Interval::empty();
  const auto i = static_cast<std::size_t>(v.index);
  return {base_->lo[i], base_->hi[i]};
}

CheckResult Solver::check_assuming_impl(std::span<const Formula> assumptions,
                                        const Budget& budget) {
  ++stats_.checks;
  has_model_ = false;

  // Fault injection: simulate an inconclusive check before spending any real
  // work, so injected and organic kUnknowns exercise the same caller paths.
  if (fault::inject_unknown(fault::Site::kSolverCheck)) {
    ++stats_.unknowns;
    ++stats_.injected_unknowns;
    return CheckResult::kUnknown;
  }

  detail::SearchNode root;
  if (config_.incremental) {
    ensure_base();
    root = *base_;  // rules already folded + propagated once per scope state
  } else {
    root.lo.reserve(vars_.size());
    root.hi.reserve(vars_.size());
    for (const auto& v : vars_) {
      root.lo.push_back(v.lo);
      root.hi.push_back(v.hi);
    }
    for (const auto& f : assertions_) assert_true(f, root);
  }
  for (const auto& f : assumptions) {
    LEJIT_REQUIRE(f != nullptr, "null assumption");
    assert_true(f, root);
  }
  if (root.conflict) return CheckResult::kUnsat;

  std::int64_t nodes_left =
      budget.max_nodes > 0 ? budget.max_nodes : config_.max_nodes;
  const CheckResult r = search(root, nodes_left, budget.deadline_ns);
  if (r == CheckResult::kUnknown) ++stats_.unknowns;
  return r;
}

Interval Solver::feasible_interval(VarId v,
                                   std::span<const Formula> assumptions) {
  const std::optional<Interval> r = try_feasible_interval(v, assumptions);
  if (!r)
    throw util::RuntimeError("solver budget exhausted in feasible_interval");
  return *r;
}

std::optional<Interval> Solver::try_feasible_interval(
    VarId v, std::span<const Formula> assumptions, const Budget& budget) {
  LEJIT_REQUIRE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  std::vector<Formula> assume(assumptions.begin(), assumptions.end());

  const CheckResult first = check_assuming(assume, budget);
  if (first == CheckResult::kUnsat) return Interval::empty();
  if (first == CheckResult::kUnknown) return std::nullopt;
  const Int witness = model_value(v);

  bool gave_up = false;
  const auto sat_with = [&](const Formula& extra) {
    assume.push_back(extra);
    const CheckResult r = check_assuming(assume, budget);
    assume.pop_back();
    if (r == CheckResult::kUnknown) gave_up = true;
    return r == CheckResult::kSat;
  };

  // Smallest feasible value in [bounds.lo, witness].
  Int lb = bounds(v).lo;
  Int ub = witness;
  while (lb < ub && !gave_up) {
    const Int mid = lb + (ub - lb) / 2;
    if (sat_with(le(LinExpr(v), LinExpr(mid)))) {
      ub = std::min(mid, model_value(v));
    } else {
      lb = mid + 1;
    }
  }
  const Int min_v = lb;

  // Largest feasible value in [witness, bounds.hi].
  lb = witness;
  ub = bounds(v).hi;
  while (lb < ub && !gave_up) {
    const Int mid = lb + (ub - lb + 1) / 2;
    if (sat_with(ge(LinExpr(v), LinExpr(mid)))) {
      lb = std::max(mid, model_value(v));
    } else {
      ub = mid - 1;
    }
  }
  if (gave_up) return std::nullopt;
  return Interval{min_v, lb};
}

std::optional<Solver::MinimizeResult> Solver::minimize(const LinExpr& cost) {
  const CheckResult first = check();
  if (first == CheckResult::kUnsat) return std::nullopt;
  if (first == CheckResult::kUnknown)
    throw util::RuntimeError("solver budget exhausted in minimize");

  MinimizeResult best;
  best.model = model_;
  best.cost = cost.eval(best.model);

  // Lower bound from the root box.
  std::vector<Int> los, his;
  for (const auto& v : vars_) {
    los.push_back(v.lo);
    his.push_back(v.hi);
  }
  Int lb = expr_range(cost, los, his).lo;

  while (lb < best.cost) {
    const Int mid = lb + (best.cost - lb) / 2;
    const Formula bound = le(cost, LinExpr(mid));
    const CheckResult r = check_assuming(std::span(&bound, 1));
    if (r == CheckResult::kSat) {
      best.model = model_;
      best.cost = cost.eval(best.model);
    } else {
      // kUnknown: could not prove a model at or below `mid` exists; continue
      // above it but remember optimality is no longer certified.
      if (r == CheckResult::kUnknown) best.proven_optimal = false;
      lb = mid + 1;
    }
  }
  model_ = best.model;
  has_model_ = true;
  return best;
}

}  // namespace lejit::smt
