// Pluggable solver backends (DESIGN.md §12).
//
// The guided decoder used to hold a concrete smt::Solver; every check was an
// in-process call into minismt, which made one buggy or wedged check a
// single point of failure for the whole decode. `Backend` abstracts the
// session the decoder actually needs — declare variables, assert formulas,
// push/pop scopes, budgeted check-assuming, model extraction — so the solver
// substrate can be swapped without the decoder noticing:
//
//   MinismtBackend     the default: forwards to the in-process solver,
//                      byte-for-byte the pre-abstraction behavior.
//   SubprocessBackend  an external SMT-LIB2 solver (z3/cvc5/lejit_smtserve)
//                      in a child process over pipes (subprocess.hpp).
//   FailoverBackend    subprocess primary + minismt fallback: a crashed,
//                      hung, or garbled external solver degrades to the
//                      in-process answer instead of stalling the row.
//
// Verdicts stay the existing kSat/kUnsat/kUnknown, and Budget deadlines are
// honored by every backend — including across the subprocess's blocking
// pipe reads, which poll in slices so a wedged child can overshoot a
// deadline by at most one poll interval.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "smt/formula.hpp"
#include "smt/linexpr.hpp"
#include "smt/solver.hpp"

namespace lejit::smt {

enum class BackendKind { kMinismt, kSubprocess };

// Health accounting a Backend keeps about *itself* (solver verdict counts
// live in SolverStats). `faults` is the load-bearing field: FailoverBackend
// detects "this check failed for backend reasons, not solver reasons" by the
// fault count advancing across the call, and each fine-grained cause below
// also feeds an `smt.backend.*` obs counter.
struct BackendStats {
  std::int64_t checks = 0;           // check_assuming calls served
  std::int64_t faults = 0;           // checks lost to any backend failure
  std::int64_t timeouts = 0;         // … wall-clock deadline on the wire
  std::int64_t crashes = 0;          // … child died or write hit EPIPE
  std::int64_t protocol_errors = 0;  // … unparseable / truncated answer
  std::int64_t spawn_failures = 0;   // … could not (re)start the child
  std::int64_t respawns = 0;         // successful child restarts
  std::int64_t restored_lines = 0;   // session lines replayed on respawn
  std::int64_t degraded = 0;         // checks answered by a fallback backend

  BackendStats& operator+=(const BackendStats& o) {
    checks += o.checks;
    faults += o.faults;
    timeouts += o.timeouts;
    crashes += o.crashes;
    protocol_errors += o.protocol_errors;
    spawn_failures += o.spawn_failures;
    respawns += o.respawns;
    restored_lines += o.restored_lines;
    degraded += o.degraded;
    return *this;
  }
};

struct BackendConfig {
  BackendKind kind = BackendKind::kMinismt;
  // The in-process engine: MinismtBackend's solver, and the failover
  // fallback under a subprocess primary.
  SolverConfig solver{};

  // kSubprocess only ------------------------------------------------------
  std::string solver_path;             // binary to exec
  std::vector<std::string> solver_args;  // empty = defaults for the binary
  // Wall-clock cap per check when the caller's Budget carries no deadline
  // (an external solver has no notion of minismt node budgets).
  std::int64_t check_timeout_ms = 2'000;
  // Child restarts allowed per session before the backend declares itself
  // permanently unhealthy; each respawn waits retry_backoff_ms doubled per
  // consecutive failure (capped, and always sliced against the deadline).
  int max_respawns = 3;
  std::int64_t retry_backoff_ms = 10;
  // Wrap the subprocess in a FailoverBackend over minismt (recommended; off
  // only in tests that probe the raw subprocess behavior).
  bool degrade_to_minismt = true;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string_view name() const noexcept = 0;

  // --- problem construction (mirrors smt::Solver) -----------------------
  virtual VarId add_var(std::string name, Int lo, Int hi) = 0;
  virtual int num_vars() const noexcept = 0;
  virtual Interval bounds(VarId v) const = 0;
  virtual void add(Formula f) = 0;
  virtual void push() = 0;
  virtual void pop() = 0;
  virtual std::size_t num_scopes() const noexcept = 0;

  // --- queries -----------------------------------------------------------
  virtual CheckResult check_assuming(std::span<const Formula> assumptions,
                                     const Budget& budget) = 0;
  CheckResult check(const Budget& budget = {}) {
    return check_assuming({}, budget);
  }

  // Witness value from the most recent kSat check; nullopt when no model is
  // available (no sat check yet, or the wire-level model reply was lost).
  // Callers must treat a missing witness as "no information", never as
  // infeasibility.
  virtual std::optional<Int> model_value(VarId v) = 0;

  // Sound over-approximation of v's feasible values under the current
  // assertions. Default: the declared domain (always sound). MinismtBackend
  // narrows it with the incremental base's propagated bounds.
  virtual Interval propagated_bounds(VarId v) { return bounds(v); }

  // Exact feasible [min, max] of v (empty ⇔ UNSAT), or nullopt when any
  // underlying check gives up. The default runs the same witness-narrowed
  // binary search as smt::Solver::try_feasible_interval on top of
  // check_assuming, so every probe inherits this backend's failover and
  // deadline behavior.
  virtual std::optional<Interval> try_feasible_interval(
      VarId v, std::span<const Formula> assumptions = {},
      const Budget& budget = {});

  // Solver-shaped statistics (subprocess backends synthesize check/unknown
  // counts and report zero nodes — external search effort is invisible).
  virtual SolverStats stats() const = 0;
  virtual BackendStats backend_stats() const { return {}; }

  // False once the backend can no longer serve checks (e.g. the subprocess
  // exhausted its respawn budget). FailoverBackend routes around it.
  virtual bool healthy() const noexcept { return true; }
};

// The in-process default: thin forwarding around smt::Solver.
class MinismtBackend final : public Backend {
 public:
  explicit MinismtBackend(SolverConfig config = {}) : solver_(config) {}

  std::string_view name() const noexcept override { return "minismt"; }
  VarId add_var(std::string name, Int lo, Int hi) override {
    return solver_.add_var(std::move(name), lo, hi);
  }
  int num_vars() const noexcept override { return solver_.num_vars(); }
  Interval bounds(VarId v) const override { return solver_.bounds(v); }
  void add(Formula f) override { solver_.add(std::move(f)); }
  void push() override { solver_.push(); }
  void pop() override { solver_.pop(); }
  std::size_t num_scopes() const noexcept override {
    return solver_.num_scopes();
  }
  CheckResult check_assuming(std::span<const Formula> assumptions,
                             const Budget& budget) override {
    last_sat_ = false;
    const CheckResult r = solver_.check_assuming(assumptions, budget);
    last_sat_ = r == CheckResult::kSat;
    return r;
  }
  std::optional<Int> model_value(VarId v) override {
    if (!last_sat_) return std::nullopt;
    return solver_.model_value(v);
  }
  Interval propagated_bounds(VarId v) override {
    return solver_.propagated_bounds(v);
  }
  std::optional<Interval> try_feasible_interval(
      VarId v, std::span<const Formula> assumptions,
      const Budget& budget) override {
    // Forward instead of using the generic search: identical probe order,
    // identical node accounting, byte-identical decoder behavior.
    const std::optional<Interval> r =
        solver_.try_feasible_interval(v, assumptions, budget);
    last_sat_ = r.has_value() && !r->is_empty();
    return r;
  }
  SolverStats stats() const override { return solver_.stats(); }

  Solver& solver() noexcept { return solver_; }

 private:
  Solver solver_;
  bool last_sat_ = false;
};

// The degradation ladder: a primary backend (in practice the subprocess)
// with an in-process fallback mirroring every state operation. Checks go to
// the primary; when a check fails *for backend reasons* — the primary's
// fault counter advanced during the call, or it is permanently unhealthy —
// the same check is answered by the fallback and counted in
// `backend_stats().degraded` / the `smt.backend.degraded` obs counter. A
// genuine kUnknown verdict (budget exhaustion) is not a fault and is
// returned as-is: degradation is about availability, not verdict quality.
class FailoverBackend final : public Backend {
 public:
  FailoverBackend(std::unique_ptr<Backend> primary,
                  std::unique_ptr<Backend> fallback);

  std::string_view name() const noexcept override { return "failover"; }
  VarId add_var(std::string name, Int lo, Int hi) override;
  int num_vars() const noexcept override { return fallback_->num_vars(); }
  Interval bounds(VarId v) const override { return fallback_->bounds(v); }
  void add(Formula f) override;
  void push() override;
  void pop() override;
  std::size_t num_scopes() const noexcept override {
    return fallback_->num_scopes();
  }
  CheckResult check_assuming(std::span<const Formula> assumptions,
                             const Budget& budget) override;
  std::optional<Int> model_value(VarId v) override;
  // Propagation is an in-process notion; the fallback mirrors the full
  // assertion stack, so its (sound) bounds serve both routes.
  Interval propagated_bounds(VarId v) override {
    return fallback_->propagated_bounds(v);
  }
  std::optional<Interval> try_feasible_interval(
      VarId v, std::span<const Formula> assumptions,
      const Budget& budget) override;
  SolverStats stats() const override;
  BackendStats backend_stats() const override;

  Backend& primary() noexcept { return *primary_; }
  Backend& fallback() noexcept { return *fallback_; }

 private:
  bool primary_usable() const noexcept;
  void note_degraded();

  std::unique_ptr<Backend> primary_;
  std::unique_ptr<Backend> fallback_;
  bool last_served_by_primary_ = false;
  std::int64_t degraded_ = 0;
};

// Build a backend per `config`: kMinismt → MinismtBackend; kSubprocess →
// SubprocessBackend, wrapped in a FailoverBackend over minismt unless
// degrade_to_minismt is off.
std::unique_ptr<Backend> make_backend(const BackendConfig& config);

// Locate an external SMT-LIB2 solver binary: $LEJIT_SMT_SOLVER, then z3 and
// cvc5 on $PATH, then $LEJIT_SMTSERVE, then a `lejit_smtserve` next to
// `argv0`. Empty string when nothing is found.
std::string find_external_solver(std::string_view argv0 = {});

// Parse a `--smt-backend` spec: "minismt" (or ""), "auto" (external solver
// if find_external_solver succeeds, else minismt), "subprocess:<path>", or a
// bare path to a solver binary. Throws util::RuntimeError on anything else.
// The returned config carries default solver_args for recognized binaries
// (z3, cvc5).
BackendConfig backend_config_from_spec(std::string_view spec,
                                       std::string_view argv0 = {});

}  // namespace lejit::smt
