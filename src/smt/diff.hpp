// Differential verdict testing for solver backends (DESIGN.md §12).
//
// Replays randomized rule-set sessions — variable declarations, asserted
// formulas, push/pop scopes, check-assuming queries shaped like the guided
// decoder's — through two backends built fresh per session, and compares
// every verdict. Both backends are sound and complete on the fuzzed
// fragment (bounded QF_LIA), so any kSat/kUnsat disagreement is a bug in
// one of them; a kUnknown on either side (budget exhaustion, subprocess
// fault without failover) skips the comparison and is counted instead.
//
// Used by `lejit_cli smt-diff` and the smt_backend fuzz test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "smt/backend.hpp"

namespace lejit::smt::diff {

struct Config {
  // Stop once this many verdict pairs have been compared (kUnknown-skipped
  // checks do not count toward it).
  std::int64_t queries = 1000;
  std::uint64_t seed = 1;
  // Per-check budget handed to both backends. Defaults let minismt run to
  // its configured node cap — ample for the small fuzzed domains.
  Budget budget{};
};

struct Report {
  std::int64_t sessions = 0;   // randomized sessions replayed
  std::int64_t checks = 0;     // check_assuming pairs issued
  std::int64_t compared = 0;   // … with two definite verdicts
  std::int64_t unknowns = 0;   // … skipped because a side answered kUnknown
  std::int64_t mismatches = 0;
  // Human-readable repro of the first disagreement (seed, session, op
  // index, the SMT-LIB2 session text, and both verdicts); empty when clean.
  std::string first_mismatch;

  bool ok() const noexcept { return mismatches == 0; }
};

// Constructs a fresh, empty backend for one session. Called once per session
// per side so state cannot leak across sessions.
using BackendFactory = std::function<std::unique_ptr<Backend>()>;

// Run the differential fuzz loop: `reference` is trusted (in practice
// MinismtBackend), `candidate` is under test (in practice a raw
// SubprocessBackend with failover disabled, so its genuine verdicts are
// compared rather than the fallback's).
Report run(const BackendFactory& reference, const BackendFactory& candidate,
           const Config& config);

std::string to_text(const Report& report);

}  // namespace lejit::smt::diff
