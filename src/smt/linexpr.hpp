// Linear integer expressions and intervals — the terms minismt reasons over.
//
// minismt decides quantifier-free linear integer arithmetic with boolean
// structure over *bounded* variable domains. Every atom is normalized to
// `LinExpr ⋈ 0` with ⋈ ∈ {<=, ==, !=}; richer comparisons and aggregates
// (min/max over variables) are desugared in formula.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace lejit::smt {

using Int = std::int64_t;

// Saturation bound for interval arithmetic. Domains and coefficients used by
// the rule compiler stay far below this, so saturation never changes
// satisfiability; it only prevents overflow UB inside the solver.
inline constexpr Int kIntInf = static_cast<Int>(1) << 60;

constexpr Int sat_add(Int a, Int b) noexcept {
  if (a > 0 && b > kIntInf - a) return kIntInf;
  if (a < 0 && b < -kIntInf - a) return -kIntInf;
  const Int s = a + b;
  if (s > kIntInf) return kIntInf;
  if (s < -kIntInf) return -kIntInf;
  return s;
}

constexpr Int sat_mul(Int a, Int b) noexcept {
  if (a == 0 || b == 0) return 0;
  // |a|,|b| <= 2^60 so the comparison itself cannot overflow in __int128.
  const __int128 p = static_cast<__int128>(a) * b;
  if (p > kIntInf) return kIntInf;
  if (p < -kIntInf) return -kIntInf;
  return static_cast<Int>(p);
}

// Integer variable handle. Valid only for the Solver that created it.
struct VarId {
  int index = -1;
  friend bool operator==(VarId, VarId) = default;
};

// Closed integer interval [lo, hi]; empty iff lo > hi.
struct Interval {
  Int lo = 0;
  Int hi = -1;

  static Interval empty() noexcept { return {0, -1}; }
  bool is_empty() const noexcept { return lo > hi; }
  bool contains(Int v) const noexcept { return lo <= v && v <= hi; }
  bool is_singleton() const noexcept { return lo == hi; }
  // Number of integers in the interval, saturated.
  Int width() const noexcept {
    return is_empty() ? 0 : sat_add(hi - lo, 1);
  }
  friend bool operator==(const Interval&, const Interval&) = default;

  // Intersection of two intervals (empty when they are disjoint).
  friend Interval intersect(const Interval& a, const Interval& b) noexcept {
    return {a.lo > b.lo ? a.lo : b.lo, a.hi < b.hi ? a.hi : b.hi};
  }
};

// sum(coeff_i * var_i) + constant, with terms sorted by variable index and
// zero coefficients removed (class invariant, maintained by normalize()).
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(Int constant) : constant_(constant) {}
  /*implicit*/ LinExpr(VarId v) { terms_.push_back({v, 1}); }

  static LinExpr term(Int coeff, VarId v) {
    LinExpr e;
    if (coeff != 0) e.terms_.push_back({v, coeff});
    return e;
  }

  const std::vector<std::pair<VarId, Int>>& terms() const noexcept {
    return terms_;
  }
  Int constant() const noexcept { return constant_; }
  bool is_constant() const noexcept { return terms_.empty(); }

  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator*=(Int k);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(Int k, LinExpr e) { return e *= k; }
  friend LinExpr operator-(LinExpr e) { return e *= -1; }

  // Evaluate under a full assignment indexed by VarId::index.
  Int eval(const std::vector<Int>& assignment) const;

  std::string to_string() const;

 private:
  void normalize();

  std::vector<std::pair<VarId, Int>> terms_;
  Int constant_ = 0;
};

}  // namespace lejit::smt
