// SMT-LIB2 text protocol: the dialect LeJIT speaks to external solvers.
//
// The emitted subset is deliberately closed and tiny (DESIGN.md §12):
// QF_LIA over integer constants declared as `x<i>`, with every formula a
// composition of `and`/`or`/`not`/`<=`/`=` over `(+ (* c x) ... k)` linear
// sums — exactly the image of smt::Formula under to_smtlib2(). Any solver
// that answers `sat`/`unsat`/`unknown` to `(check-sat)` and valuation pairs
// to `(get-value ...)` can sit on the other end: z3, cvc5, or the bundled
// `lejit_smtserve` reference server, which runs this module's parser over
// the in-process minismt and exists so the subprocess plumbing is testable
// on machines without an external solver.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "smt/formula.hpp"
#include "smt/linexpr.hpp"

namespace lejit::smt::smtlib2 {

// Canonical wire name for the variable with VarId::index == index.
std::string var_name(int index);

// `(+ (* c x0) ... k)`, negative literals as `(- n)`.
void append_linexpr(std::string& out, const LinExpr& e);

// NNF formula → one s-expression (kNe becomes `(not (= e 0))`).
void append_formula(std::string& out, const Formula& f);
std::string to_smtlib2(const Formula& f);

// `(assert <formula>)`.
std::string assert_line(const Formula& f);

// `(declare-const x<i> Int)` plus the `[lo, hi]` domain assertion,
// newline-separated. Bounded domains are part of the dialect: minismt's
// completeness depends on them, and the emitter always sends them.
std::string declare_lines(int index, Int lo, Int hi);

// --- s-expression parsing (answers and the server's command loop) ----------

struct Sexpr {
  std::string atom;         // non-empty iff leaf
  std::vector<Sexpr> list;  // children iff non-leaf
  bool is_atom() const noexcept { return list.empty() && !atom.empty(); }
};

// Parse one s-expression starting at (*pos), advancing *pos past it.
// Returns nullopt on malformed input or when only whitespace remains.
std::optional<Sexpr> parse_sexpr(std::string_view text, std::size_t* pos);

// Parse a `(get-value ...)` answer — `((x0 3) (x1 (- 2)))` — into
// (VarId::index, value) pairs. nullopt on anything malformed.
std::optional<std::vector<std::pair<int, Int>>> parse_model(
    std::string_view text);

// The `lejit_smtserve` loop: read commands from `in`, answer on `out`,
// return the process exit code. Understands declare-const/declare-fun,
// assert, push/pop, check-sat, get-value, reset, exit; set-logic/set-option/
// set-info are accepted and ignored. Unknown or malformed commands answer
// `(error "...")` and the loop continues — a client bug must not wedge the
// server. LEJIT_SMTSERVE_MAX_NODES caps the per-check search budget.
int run_server(std::istream& in, std::ostream& out);

}  // namespace lejit::smt::smtlib2
