#include "plan/plan.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "core/transition.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace lejit::plan {

namespace {

// FNV-1a, 64-bit. The fingerprint only guards against *accidental* reuse of
// a plan against the wrong rule set or schema (an edited rule file, a layout
// with different domains); it is not a cryptographic commitment.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix_bytes(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  // Separator so {"ab","c"} and {"a","bc"} hash differently.
  h ^= 0xff;
  h *= kFnvPrime;
}

void mix_int(std::uint64_t& h, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

const char* check_result_name(smt::CheckResult r) {
  switch (r) {
    case smt::CheckResult::kSat: return "sat";
    case smt::CheckResult::kUnsat: return "unsat";
    case smt::CheckResult::kUnknown: return "unknown";
  }
  return "unknown";
}

smt::CheckResult check_result_from_name(const std::string& s) {
  if (s == "sat") return smt::CheckResult::kSat;
  if (s == "unsat") return smt::CheckResult::kUnsat;
  if (s == "unknown") return smt::CheckResult::kUnknown;
  throw util::RuntimeError("plan: bad CheckResult name '" + s + "'");
}

// Disjoint-set forest over field indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(b)] = a;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::uint64_t rule_set_fingerprint(const rules::RuleSet& set,
                                   const telemetry::RowLayout& layout) {
  std::uint64_t h = kFnvOffset;
  mix_int(h, static_cast<std::int64_t>(layout.fields.size()));
  for (const auto& f : layout.fields) {
    mix_bytes(h, f.prefix);
    mix_bytes(h, f.name);
    mix_int(h, f.max_value);
    mix_int(h, f.is_fine ? 1 : 0);
  }
  mix_bytes(h, layout.suffix);
  mix_int(h, static_cast<std::int64_t>(set.size()));
  for (const auto& r : set.rules) {
    mix_bytes(h, r.description);
    // The description alone is not authoritative (hand-built rules may carry
    // free-form text); the formula's normalized print pins the semantics.
    mix_bytes(h, r.formula != nullptr ? r.formula->to_string() : "<null>");
  }
  return h;
}

DecodePlan partition(const rules::RuleSet& set,
                     const telemetry::RowLayout& layout) {
  DecodePlan plan;
  plan.fingerprint = rule_set_fingerprint(set, layout);
  plan.num_fields = layout.num_fields();
  plan.num_rules = set.size();
  plan.field_cluster.assign(static_cast<std::size_t>(plan.num_fields), -1);

  std::vector<std::vector<int>> rule_fields(set.size());
  UnionFind uf(plan.num_fields);
  for (std::size_t i = 0; i < set.size(); ++i) {
    rule_fields[i] = rules::referenced_fields(set.rules[i].formula);
    // Drop references outside the layout (defensive: such a rule cannot be
    // asserted against this layout anyway; lint flags it separately).
    std::erase_if(rule_fields[i], [&](int f) {
      return f < 0 || f >= plan.num_fields;
    });
    if (rule_fields[i].empty()) {
      plan.constant_rules.push_back(i);
      continue;
    }
    for (std::size_t j = 1; j < rule_fields[i].size(); ++j)
      uf.unite(rule_fields[i][0], rule_fields[i][j]);
  }

  // One cluster per disjoint-set root that owns at least one rule, numbered
  // in order of first appearance by field index (deterministic).
  std::vector<int> root_cluster(static_cast<std::size_t>(plan.num_fields), -1);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (rule_fields[i].empty()) continue;
    const int root = uf.find(rule_fields[i][0]);
    if (root_cluster[static_cast<std::size_t>(root)] < 0) {
      root_cluster[static_cast<std::size_t>(root)] =
          static_cast<int>(plan.clusters.size());
      plan.clusters.emplace_back();
    }
  }
  // Deterministic renumbering: sort clusters by their smallest field.
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (rule_fields[i].empty()) continue;
    const int c = root_cluster[static_cast<std::size_t>(uf.find(rule_fields[i][0]))];
    plan.clusters[static_cast<std::size_t>(c)].rules.push_back(i);
    for (const int f : rule_fields[i]) {
      auto& fs = plan.clusters[static_cast<std::size_t>(c)].fields;
      fs.push_back(f);
    }
  }
  for (auto& c : plan.clusters) {
    std::sort(c.fields.begin(), c.fields.end());
    c.fields.erase(std::unique(c.fields.begin(), c.fields.end()),
                   c.fields.end());
  }
  std::sort(plan.clusters.begin(), plan.clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.fields.front() < b.fields.front();
            });
  for (std::size_t c = 0; c < plan.clusters.size(); ++c)
    for (const int f : plan.clusters[c].fields)
      plan.field_cluster[static_cast<std::size_t>(f)] = static_cast<int>(c);
  return plan;
}

namespace {

// Shared state for the solver-backed compilation passes.
struct CompileCtx {
  const Config& config;
  std::int64_t deadline_ns = 0;  // absolute; 0 = none
  std::int64_t checks = 0;

  smt::Budget budget() const {
    smt::Budget b;
    b.max_nodes = config.check_max_nodes;
    b.deadline_ns = deadline_ns;
    return b;
  }
  bool expired() const {
    if (deadline_ns == 0) return false;
    // Reuse Budget's clock instead of taking an obs dependency here.
    return smt::Budget::deadline_in_ms(0).deadline_ns >= deadline_ns;
  }
};

smt::CheckResult check_conjunction(smt::Solver& solver,
                                   std::vector<smt::Formula> fs,
                                   CompileCtx& ctx) {
  ++ctx.checks;
  return solver.check_assuming(fs, ctx.budget());
}

// Enumerate completable digit prefixes of `var` level by level and record the
// universally-valid digit/terminator decisions. `solver` holds the field's
// cluster rules (or nothing for an unclustered field) as assertions.
DigitTable build_table(smt::Solver& solver, smt::VarId var, smt::Int max_value,
                       CompileCtx& ctx) {
  DigitTable table;
  const int m = core::digits_for(max_value);
  table.max_digits = m;
  table.always.assign(static_cast<std::size_t>(m) + 1, 0);
  table.never.assign(static_cast<std::size_t>(m) + 1, 0);
  table.verified.assign(static_cast<std::size_t>(m) + 1, 0);

  std::vector<core::DigitPrefix> level = {core::DigitPrefix{}};  // P_0
  bool complete = true;
  for (int k = 0; k <= m; ++k) {
    if (!complete || ctx.expired()) return table;  // rows k.. stay unverified
    bool unknown = false;
    std::uint16_t always = 0;
    std::uint16_t never = 0;

    if (k >= 1) {
      std::size_t sat = 0;
      for (const auto& p : level) {
        const auto res = check_conjunction(
            solver, {smt::eq(smt::LinExpr(var), smt::LinExpr(p.value))}, ctx);
        if (res == smt::CheckResult::kUnknown) {
          unknown = true;
          break;
        }
        if (res == smt::CheckResult::kSat) ++sat;
      }
      if (!unknown && !level.empty()) {
        if (sat == level.size()) always |= 1u << kTerminatorBit;
        if (sat == 0) never |= 1u << kTerminatorBit;
      }
    }

    std::vector<core::DigitPrefix> next_level;
    if (!unknown && k < m) {
      for (int d = 0; d <= 9 && !unknown; ++d) {
        std::size_t extendable = 0;
        std::size_t sat = 0;
        for (const auto& p : level) {
          if (!p.can_extend(m)) continue;
          const core::DigitPrefix np = p.extended(d);
          if (!core::prefix_syntactically_ok(np, m)) continue;
          ++extendable;
          const auto res = check_conjunction(
              solver, {core::prefix_completion_formula(var, np, m)}, ctx);
          if (res == smt::CheckResult::kUnknown) {
            unknown = true;
            break;
          }
          if (res == smt::CheckResult::kSat) {
            ++sat;
            next_level.push_back(np);
          }
        }
        if (unknown) break;
        // Bits are only set on witness: a vacuous "always" (no extendable
        // prefix at all) must not license a digit.
        if (extendable > 0 && sat == extendable) always |= 1u << d;
        if (extendable > 0 && sat == 0) never |= 1u << d;
      }
    }

    if (unknown) return table;  // rows k.. stay unverified
    table.always[static_cast<std::size_t>(k)] = always;
    table.never[static_cast<std::size_t>(k)] = never;
    table.verified[static_cast<std::size_t>(k)] = 1;
    if (static_cast<int>(next_level.size()) > ctx.config.max_prefixes_per_field)
      complete = false;  // P_{k+1} would be truncated; stop claiming anything
    level = std::move(next_level);
  }
  return table;
}

}  // namespace

DecodePlan compile(const rules::RuleSet& set,
                   const telemetry::RowLayout& layout, const Config& config) {
  DecodePlan plan = partition(set, layout);
  CompileCtx ctx{config};
  if (config.deadline_ms > 0)
    ctx.deadline_ns = smt::Budget::deadline_in_ms(config.deadline_ms).deadline_ns;

  // --- satisfiability + plan-vs-full-set equivalence -----------------------
  // One probe solver, everything via assumptions: cluster checks and the
  // full-set check run over identical variable declarations.
  smt::Solver probe;
  const std::vector<smt::VarId> vars = rules::declare_fields(probe, layout);
  (void)vars;

  bool all_conclusive = true;
  bool clusters_sat = true;
  for (auto& cluster : plan.clusters) {
    std::vector<smt::Formula> fs;
    fs.reserve(cluster.rules.size());
    for (const std::size_t r : cluster.rules)
      fs.push_back(set.rules[r].formula);
    cluster.satisfiable = check_conjunction(probe, std::move(fs), ctx);
    if (cluster.satisfiable == smt::CheckResult::kUnknown)
      all_conclusive = false;
    if (cluster.satisfiable != smt::CheckResult::kSat) clusters_sat = false;
  }
  bool constants_sat = true;
  for (const std::size_t r : plan.constant_rules) {
    const auto& f = set.rules[r].formula;
    if (f == nullptr || f->kind() == smt::FormulaKind::kFalse)
      constants_sat = false;
  }

  {
    std::vector<smt::Formula> fs;
    fs.reserve(set.size());
    for (const auto& r : set.rules)
      if (r.formula != nullptr) fs.push_back(r.formula);
    plan.satisfiable = check_conjunction(probe, std::move(fs), ctx);
  }
  if (plan.satisfiable == smt::CheckResult::kUnknown) all_conclusive = false;

  if (config.verify_partition && all_conclusive) {
    // Variable-disjointness makes this an equivalence, not an implication:
    // the full set must be satisfiable exactly when every cluster (and every
    // constant rule) is. A mismatch would mean the dependency graph missed a
    // coupling — the plan is then marked unsound and never engaged.
    const bool expected_sat = clusters_sat && constants_sat;
    plan.partition_verified =
        (plan.satisfiable == smt::CheckResult::kSat) == expected_sat;
  }

  // --- digit-mask tables ---------------------------------------------------
  if (config.build_tables && plan.satisfiable == smt::CheckResult::kSat) {
    plan.tables.resize(static_cast<std::size_t>(plan.num_fields));
    // One solver per cluster, rules asserted once; incremental mode keeps
    // the per-check cost at "fold the assumption", which is what makes the
    // (prefix × digit) enumeration affordable at compile time.
    smt::SolverConfig sc;
    sc.max_nodes = config.check_max_nodes;
    sc.incremental = true;
    std::vector<std::unique_ptr<smt::Solver>> cluster_solvers;
    cluster_solvers.reserve(plan.clusters.size() + 1);
    for (const auto& cluster : plan.clusters) {
      auto s = std::make_unique<smt::Solver>(sc);
      rules::declare_fields(*s, layout);
      for (const std::size_t r : cluster.rules) s->add(set.rules[r].formula);
      cluster_solvers.push_back(std::move(s));
    }
    // Shared rule-free solver for fields no rule references: their tables
    // encode pure domain structure.
    auto domain_solver = std::make_unique<smt::Solver>(sc);
    rules::declare_fields(*domain_solver, layout);

    for (int f = 0; f < plan.num_fields; ++f) {
      const int c = plan.field_cluster[static_cast<std::size_t>(f)];
      smt::Solver& solver =
          c >= 0 ? *cluster_solvers[static_cast<std::size_t>(c)]
                 : *domain_solver;
      plan.tables[static_cast<std::size_t>(f)] = build_table(
          solver, smt::VarId{f},
          layout.fields[static_cast<std::size_t>(f)].max_value, ctx);
    }
  }

  plan.solver_checks = ctx.checks;
  return plan;
}

// --- serialization -----------------------------------------------------------

namespace {

constexpr int kSchemaVersion = 1;

std::string fingerprint_to_hex(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

std::uint64_t fingerprint_from_hex(const std::string& s) {
  if (s.empty() || s.size() > 16)
    throw util::RuntimeError("plan: bad fingerprint '" + s + "'");
  char* end = nullptr;
  const std::uint64_t fp = std::strtoull(s.c_str(), &end, 16);
  if (end != s.c_str() + s.size())
    throw util::RuntimeError("plan: bad fingerprint '" + s + "'");
  return fp;
}

template <typename T>
void write_int_array(obs::JsonWriter& w, std::string_view key,
                     const std::vector<T>& xs) {
  w.key(key).begin_array();
  for (const T x : xs) w.value(static_cast<std::int64_t>(x));
  w.end_array();
}

std::vector<std::int64_t> read_int_array(const obs::JsonValue& v) {
  std::vector<std::int64_t> out;
  out.reserve(v.as_array().size());
  for (const auto& x : v.as_array()) out.push_back(x.as_int());
  return out;
}

std::int64_t checked_int(std::int64_t v, std::int64_t lo, std::int64_t hi,
                         const char* what) {
  if (v < lo || v > hi)
    throw util::RuntimeError(std::string("plan: ") + what + " out of range: " +
                             std::to_string(v));
  return v;
}

}  // namespace

std::string to_json(const DecodePlan& plan) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kSchemaVersion);
  w.key("fingerprint").value(fingerprint_to_hex(plan.fingerprint));
  w.key("num_fields").value(plan.num_fields);
  w.key("num_rules").value(static_cast<std::int64_t>(plan.num_rules));
  w.key("satisfiable").value(check_result_name(plan.satisfiable));
  w.key("partition_verified").value(plan.partition_verified);
  w.key("solver_checks").value(plan.solver_checks);
  write_int_array(w, "field_cluster", plan.field_cluster);
  write_int_array(w, "constant_rules", plan.constant_rules);
  w.key("clusters").begin_array();
  for (const auto& c : plan.clusters) {
    w.begin_object();
    write_int_array(w, "rules", c.rules);
    write_int_array(w, "fields", c.fields);
    w.key("satisfiable").value(check_result_name(c.satisfiable));
    w.end_object();
  }
  w.end_array();
  w.key("tables").begin_array();
  for (std::size_t f = 0; f < plan.tables.size(); ++f) {
    const DigitTable& t = plan.tables[f];
    w.begin_object();
    w.key("field").value(static_cast<std::int64_t>(f));
    w.key("max_digits").value(t.max_digits);
    write_int_array(w, "always", t.always);
    write_int_array(w, "never", t.never);
    write_int_array(w, "verified", t.verified);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

DecodePlan from_json(std::string_view text) {
  const obs::JsonValue doc = obs::parse_json(text);
  const std::int64_t version = doc.get("schema_version").as_int();
  if (version != kSchemaVersion)
    throw util::RuntimeError("plan: unsupported schema_version " +
                             std::to_string(version));

  DecodePlan plan;
  plan.fingerprint = fingerprint_from_hex(doc.get("fingerprint").as_string());
  plan.num_fields = static_cast<int>(
      checked_int(doc.get("num_fields").as_int(), 0, 1 << 20, "num_fields"));
  plan.num_rules = static_cast<std::size_t>(checked_int(
      doc.get("num_rules").as_int(), 0, 1 << 28, "num_rules"));
  plan.satisfiable =
      check_result_from_name(doc.get("satisfiable").as_string());
  plan.partition_verified = doc.get("partition_verified").as_bool();
  plan.solver_checks = doc.get("solver_checks").as_int();

  for (const auto& c : doc.get("clusters").as_array()) {
    Cluster cluster;
    for (const std::int64_t r : read_int_array(c.get("rules")))
      cluster.rules.push_back(static_cast<std::size_t>(checked_int(
          r, 0, static_cast<std::int64_t>(plan.num_rules) - 1, "cluster rule")));
    for (const std::int64_t f : read_int_array(c.get("fields")))
      cluster.fields.push_back(static_cast<int>(
          checked_int(f, 0, plan.num_fields - 1, "cluster field")));
    cluster.satisfiable =
        check_result_from_name(c.get("satisfiable").as_string());
    if (cluster.rules.empty() || cluster.fields.empty())
      throw util::RuntimeError("plan: empty cluster");
    plan.clusters.push_back(std::move(cluster));
  }

  const auto field_cluster = read_int_array(doc.get("field_cluster"));
  if (static_cast<int>(field_cluster.size()) != plan.num_fields)
    throw util::RuntimeError("plan: field_cluster size mismatch");
  for (const std::int64_t c : field_cluster)
    plan.field_cluster.push_back(static_cast<int>(checked_int(
        c, -1, static_cast<std::int64_t>(plan.clusters.size()) - 1,
        "field_cluster entry")));

  for (const std::int64_t r : read_int_array(doc.get("constant_rules")))
    plan.constant_rules.push_back(static_cast<std::size_t>(checked_int(
        r, 0, static_cast<std::int64_t>(plan.num_rules) - 1, "constant rule")));

  const auto& tables = doc.get("tables").as_array();
  if (!tables.empty() && static_cast<int>(tables.size()) != plan.num_fields)
    throw util::RuntimeError("plan: tables size mismatch");
  for (std::size_t f = 0; f < tables.size(); ++f) {
    const auto& t = tables[f];
    if (t.get("field").as_int() != static_cast<std::int64_t>(f))
      throw util::RuntimeError("plan: tables out of field order");
    DigitTable table;
    table.max_digits = static_cast<int>(
        checked_int(t.get("max_digits").as_int(), 0, 18, "max_digits"));
    const std::size_t rows = static_cast<std::size_t>(table.max_digits) + 1;
    for (const std::int64_t x : read_int_array(t.get("always")))
      table.always.push_back(static_cast<std::uint16_t>(
          checked_int(x, 0, 0x7ff, "table 'always' row")));
    for (const std::int64_t x : read_int_array(t.get("never")))
      table.never.push_back(static_cast<std::uint16_t>(
          checked_int(x, 0, 0x7ff, "table 'never' row")));
    for (const std::int64_t x : read_int_array(t.get("verified")))
      table.verified.push_back(
          static_cast<std::uint8_t>(checked_int(x, 0, 1, "table 'verified' row")));
    if (table.always.size() != rows || table.never.size() != rows ||
        table.verified.size() != rows)
      throw util::RuntimeError("plan: table row count mismatch");
    // A row may never claim a digit both universally admissible and
    // universally inadmissible.
    for (std::size_t k = 0; k < rows; ++k)
      if ((table.always[k] & table.never[k]) != 0)
        throw util::RuntimeError("plan: table row claims always AND never");
    plan.tables.push_back(std::move(table));
  }
  return plan;
}

std::string to_text(const DecodePlan& plan, const rules::RuleSet& set,
                    const telemetry::RowLayout& layout) {
  std::string out;
  out += "decode plan " + fingerprint_to_hex(plan.fingerprint) + ": " +
         std::to_string(plan.num_rules) + " rules, " +
         std::to_string(plan.num_fields) + " fields, " +
         std::to_string(plan.clusters.size()) + " clusters; full set " +
         check_result_name(plan.satisfiable) + ", partition " +
         (plan.partition_verified ? "verified" : "UNVERIFIED") + ", " +
         std::to_string(plan.solver_checks) + " compile checks\n";
  const auto field_name = [&](int f) -> std::string {
    if (f >= 0 && f < layout.num_fields())
      return layout.fields[static_cast<std::size_t>(f)].name;
    return "#" + std::to_string(f);
  };
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const Cluster& cluster = plan.clusters[c];
    out += "  cluster " + std::to_string(c) + " [" +
           check_result_name(cluster.satisfiable) + "]: " +
           std::to_string(cluster.rules.size()) + " rules over {";
    for (std::size_t i = 0; i < cluster.fields.size(); ++i) {
      if (i > 0) out += ", ";
      out += field_name(cluster.fields[i]);
    }
    out += "}\n";
    for (const std::size_t r : cluster.rules) {
      if (r < set.size()) {
        out += "    rule " + std::to_string(r) + ": " +
               set.rules[r].description + "\n";
      }
    }
  }
  if (!plan.constant_rules.empty()) {
    out += "  constant rules (no field references):";
    for (const std::size_t r : plan.constant_rules)
      out += " " + std::to_string(r);
    out += "\n";
  }
  for (int f = 0; f < plan.num_fields; ++f) {
    const int c = plan.field_cluster[static_cast<std::size_t>(f)];
    out += "  field " + field_name(f) + ": ";
    out += c >= 0 ? "cluster " + std::to_string(c)
                  : std::string("unclustered (no rule references it)");
    if (const DigitTable* t = plan.table_for(f)) {
      int rows = 0;
      for (const auto v : t->verified) rows += v != 0 ? 1 : 0;
      out += ", table " + std::to_string(rows) + "/" +
             std::to_string(t->verified.size()) + " rows verified";
    }
    out += "\n";
  }
  return out;
}

DecodePlan merge_clusters(DecodePlan plan, std::size_t a, std::size_t b) {
  LEJIT_REQUIRE(a != b && a < plan.clusters.size() && b < plan.clusters.size(),
                "merge_clusters: bad cluster indices");
  if (a > b) std::swap(a, b);
  Cluster& dst = plan.clusters[a];
  Cluster& src = plan.clusters[b];
  dst.rules.insert(dst.rules.end(), src.rules.begin(), src.rules.end());
  std::sort(dst.rules.begin(), dst.rules.end());
  dst.fields.insert(dst.fields.end(), src.fields.begin(), src.fields.end());
  std::sort(dst.fields.begin(), dst.fields.end());
  // Conjunction of variable-disjoint conjunctions: sat iff both sat.
  if (dst.satisfiable == smt::CheckResult::kUnsat ||
      src.satisfiable == smt::CheckResult::kUnsat) {
    dst.satisfiable = smt::CheckResult::kUnsat;
  } else if (dst.satisfiable == smt::CheckResult::kUnknown ||
             src.satisfiable == smt::CheckResult::kUnknown) {
    dst.satisfiable = smt::CheckResult::kUnknown;
  }
  plan.clusters.erase(plan.clusters.begin() + static_cast<std::ptrdiff_t>(b));
  for (auto& c : plan.field_cluster) {
    if (c == static_cast<int>(b)) c = static_cast<int>(a);
    else if (c > static_cast<int>(b)) --c;
  }
  return plan;
}

}  // namespace lejit::plan
