#include "plan/verify.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

#include "absint/absint.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan.hpp"
#include "util/error.hpp"

namespace lejit::plan::verify {

namespace {

// --- independent fingerprint -------------------------------------------------
// Deliberately NOT a call into plan::rule_set_fingerprint: the whole point of
// the certificate is that a bug in the compiler's implementation surfaces as
// a mismatch here. Same published FNV-1a definition, separate code.

struct Fnv1a64 {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  void str(std::string_view s) {
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
    byte(0xff);  // separator, so {"ab","c"} != {"a","bc"}
  }
  void integer(std::int64_t v) {
    for (int i = 0; i < 8; ++i)
      byte(static_cast<std::uint8_t>(
          static_cast<std::uint64_t>(v) >> (8 * i)));
  }
};

// --- independent AST walk ----------------------------------------------------
// The compiler goes through rules::referenced_fields; the verifier walks the
// Formula tree itself so the two derivations share no traversal code.

void collect_fields(const smt::Formula& f, std::vector<bool>& seen) {
  if (f == nullptr) return;
  switch (f->kind()) {
    case smt::FormulaKind::kAtom:
      for (const auto& [var, coeff] : f->atom_expr().terms()) {
        (void)coeff;  // LinExpr invariant: no zero-coefficient terms
        if (var.index >= 0 &&
            var.index < static_cast<int>(seen.size()))
          seen[static_cast<std::size_t>(var.index)] = true;
      }
      break;
    case smt::FormulaKind::kAnd:
    case smt::FormulaKind::kOr:
      for (const auto& child : f->children()) collect_fields(child, seen);
      break;
    case smt::FormulaKind::kTrue:
    case smt::FormulaKind::kFalse:
      break;
  }
}

std::vector<int> rule_fields(const smt::Formula& f, int num_fields) {
  std::vector<bool> seen(static_cast<std::size_t>(num_fields), false);
  collect_fields(f, seen);
  std::vector<int> out;
  for (int i = 0; i < num_fields; ++i)
    if (seen[static_cast<std::size_t>(i)]) out.push_back(i);
  return out;
}

// --- independent partition ---------------------------------------------------
// Flood fill over the bipartite rule–field graph (the compiler uses a
// union-find over fields). Canonical form matches compile()'s: clusters
// ordered by smallest member field, rules ascending, fields sorted unique.

struct DerivedCluster {
  std::vector<std::size_t> rules;
  std::vector<int> fields;
};

struct DerivedPartition {
  std::vector<std::vector<int>> per_rule_fields;
  std::vector<std::size_t> constant_rules;
  std::vector<DerivedCluster> clusters;
  std::vector<int> field_cluster;  // -1 = no rule touches the field
};

DerivedPartition derive_partition(const rules::RuleSet& set, int num_fields) {
  DerivedPartition out;
  out.per_rule_fields.resize(set.size());
  out.field_cluster.assign(static_cast<std::size_t>(num_fields), -1);

  std::vector<std::vector<std::size_t>> field_rules(
      static_cast<std::size_t>(num_fields));
  for (std::size_t r = 0; r < set.size(); ++r) {
    out.per_rule_fields[r] = rule_fields(set.rules[r].formula, num_fields);
    if (out.per_rule_fields[r].empty()) {
      out.constant_rules.push_back(r);
      continue;
    }
    for (const int f : out.per_rule_fields[r])
      field_rules[static_cast<std::size_t>(f)].push_back(r);
  }

  std::vector<bool> rule_done(set.size(), false);
  std::vector<bool> field_done(static_cast<std::size_t>(num_fields), false);
  for (std::size_t seed = 0; seed < set.size(); ++seed) {
    if (rule_done[seed] || out.per_rule_fields[seed].empty()) continue;
    DerivedCluster cluster;
    std::deque<std::size_t> frontier{seed};
    rule_done[seed] = true;
    while (!frontier.empty()) {
      const std::size_t r = frontier.front();
      frontier.pop_front();
      cluster.rules.push_back(r);
      for (const int f : out.per_rule_fields[r]) {
        if (field_done[static_cast<std::size_t>(f)]) continue;
        field_done[static_cast<std::size_t>(f)] = true;
        cluster.fields.push_back(f);
        for (const std::size_t r2 : field_rules[static_cast<std::size_t>(f)]) {
          if (rule_done[r2]) continue;
          rule_done[r2] = true;
          frontier.push_back(r2);
        }
      }
    }
    std::sort(cluster.rules.begin(), cluster.rules.end());
    std::sort(cluster.fields.begin(), cluster.fields.end());
    out.clusters.push_back(std::move(cluster));
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const DerivedCluster& a, const DerivedCluster& b) {
              return a.fields.front() < b.fields.front();
            });
  for (std::size_t c = 0; c < out.clusters.size(); ++c)
    for (const int f : out.clusters[c].fields)
      out.field_cluster[static_cast<std::size_t>(f)] = static_cast<int>(c);
  return out;
}

// --- independent transition arithmetic --------------------------------------
// Local reimplementations of the digit-prefix helpers the compiler takes
// from core/transition.hpp, so the table re-derivation shares none of the
// code whose output it certifies. Saturation uses the smt arithmetic rails
// (the domains reject anything clamped, same as core).

struct Prefix {
  smt::Int value = 0;
  int digits = 0;
};

int decimal_digits(smt::Int v) {
  int d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

bool prefix_can_extend(const Prefix& p, int max_digits) {
  // The canonical "0" admits no extension (no leading zeros).
  return p.digits < max_digits && !(p.digits == 1 && p.value == 0);
}

// v equals some canonical decimal completion of `p` using at most
// `max_digits` digits: terminate now, or append 1..max_digits-p.digits more.
smt::Formula completion_formula(smt::VarId var, const Prefix& p,
                                int max_digits) {
  std::vector<smt::Formula> cases;
  cases.push_back(smt::eq(smt::LinExpr(var), smt::LinExpr(p.value)));
  if (prefix_can_extend(p, max_digits)) {
    smt::Int scale = 1;
    for (int more = 1; more <= max_digits - p.digits; ++more) {
      scale = smt::sat_mul(scale, 10);
      const smt::Int lo = smt::sat_mul(p.value, scale);
      cases.push_back(smt::between(smt::LinExpr(var), smt::LinExpr(lo),
                                   smt::LinExpr(smt::sat_add(lo, scale - 1))));
    }
  }
  return smt::lor(std::move(cases));
}

// --- findings ----------------------------------------------------------------

struct Ctx {
  const Config& config;
  Certificate& cert;
  std::int64_t deadline_ns = 0;

  smt::Budget budget() const {
    smt::Budget b;
    b.max_nodes = config.check_max_nodes;
    b.deadline_ns = deadline_ns;
    return b;
  }
  bool expired() const {
    if (deadline_ns == 0) return false;
    return smt::Budget::deadline_in_ms(0).deadline_ns >= deadline_ns;
  }

  Finding& report(Code code, std::string message) {
    Finding f;
    f.code = code;
    f.severity = code_severity(code);
    f.message = std::move(message);
    cert.findings.push_back(std::move(f));
    return cert.findings.back();
  }
};

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string mask_hex(std::uint16_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

const char* verdict_name(smt::CheckResult r) {
  switch (r) {
    case smt::CheckResult::kSat: return "sat";
    case smt::CheckResult::kUnsat: return "unsat";
    case smt::CheckResult::kUnknown: return "unknown";
  }
  return "unknown";
}

template <typename T>
std::string index_list(const std::vector<T>& xs) {
  std::string out = "{";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(xs[i]);
  }
  return out + "}";
}

std::string field_label(const telemetry::RowLayout& layout, int f) {
  std::string out = "field #" + std::to_string(f);
  if (f >= 0 && f < layout.num_fields()) {
    out += " '";
    out += layout.fields[static_cast<std::size_t>(f)].name;
    out += "'";
  }
  return out;
}

// --- pass 1: fingerprint -----------------------------------------------------

bool check_fingerprint(Ctx& ctx, const DecodePlan& plan,
                       const rules::RuleSet& set,
                       const telemetry::RowLayout& layout) {
  ctx.cert.expected_fingerprint = expected_fingerprint(set, layout);
  if (plan.fingerprint == ctx.cert.expected_fingerprint) return true;
  ctx.report(Code::kFingerprintMismatch,
             "artifact fingerprint " + hex16(plan.fingerprint) +
                 " does not bind to this rule set and layout (expected " +
                 hex16(ctx.cert.expected_fingerprint) +
                 "); refusing to certify claims against foreign inputs");
  return false;
}

// --- pass 2: structural invariants ------------------------------------------

bool check_structure(Ctx& ctx, const DecodePlan& plan,
                     const rules::RuleSet& set,
                     const telemetry::RowLayout& layout) {
  bool ok = true;
  const auto fail = [&](std::string message) {
    ctx.report(Code::kStructure, std::move(message));
    ok = false;
  };

  if (plan.num_fields != layout.num_fields())
    fail("artifact num_fields " + std::to_string(plan.num_fields) +
         " != layout fields " + std::to_string(layout.num_fields()));
  if (plan.num_rules != set.size())
    fail("artifact num_rules " + std::to_string(plan.num_rules) +
         " != rule set size " + std::to_string(set.size()));
  if (static_cast<int>(plan.field_cluster.size()) != plan.num_fields)
    fail("field_cluster has " + std::to_string(plan.field_cluster.size()) +
         " entries for " + std::to_string(plan.num_fields) + " fields");
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const Cluster& cluster = plan.clusters[c];
    if (cluster.rules.empty() || cluster.fields.empty())
      fail("cluster " + std::to_string(c) + " is empty");
    for (const std::size_t r : cluster.rules)
      if (r >= plan.num_rules)
        fail("cluster " + std::to_string(c) + " references rule " +
             std::to_string(r) + " out of range");
    for (const int f : cluster.fields)
      if (f < 0 || f >= plan.num_fields)
        fail("cluster " + std::to_string(c) + " references field " +
             std::to_string(f) + " out of range");
  }
  for (const std::size_t r : plan.constant_rules)
    if (r >= plan.num_rules)
      fail("constant rule " + std::to_string(r) + " out of range");
  for (const int c : plan.field_cluster)
    if (c < -1 || c >= static_cast<int>(plan.clusters.size()))
      fail("field_cluster entry " + std::to_string(c) + " out of range");

  if (!plan.tables.empty() &&
      static_cast<int>(plan.tables.size()) != plan.num_fields)
    fail("artifact carries " + std::to_string(plan.tables.size()) +
         " tables for " + std::to_string(plan.num_fields) + " fields");
  if (!plan.tables.empty() && plan.satisfiable != smt::CheckResult::kSat)
    fail("artifact carries digit tables but records the rule set as " +
         std::string(verdict_name(plan.satisfiable)) +
         "; compile only emits tables for a satisfiable set");

  const bool sized_ok = plan.num_fields == layout.num_fields();
  for (std::size_t f = 0; f < plan.tables.size(); ++f) {
    const DigitTable& t = plan.tables[f];
    const std::string where =
        field_label(layout, static_cast<int>(f)) + " digit table";
    if (sized_ok) {
      const int m = decimal_digits(
          layout.fields[f].max_value);
      if (t.max_digits != m) {
        fail(where + ": max_digits " + std::to_string(t.max_digits) +
             " but the field domain needs " + std::to_string(m));
        continue;
      }
    }
    const std::size_t rows = static_cast<std::size_t>(t.max_digits) + 1;
    if (t.always.size() != rows || t.never.size() != rows ||
        t.verified.size() != rows) {
      fail(where + ": row arrays do not all have " + std::to_string(rows) +
           " rows");
      continue;
    }
    constexpr std::uint16_t kAllBits = (1u << (kTerminatorBit + 1)) - 1;
    constexpr std::uint16_t kDigitBits = (1u << kTerminatorBit) - 1;
    constexpr std::uint16_t kTermBit = 1u << kTerminatorBit;
    bool suffix_unverified = false;
    for (std::size_t k = 0; k < rows; ++k) {
      const std::uint16_t a = t.always[k];
      const std::uint16_t n = t.never[k];
      const std::string row = where + " row " + std::to_string(k);
      if ((a & ~kAllBits) != 0 || (n & ~kAllBits) != 0)
        fail(row + ": bits beyond kTerminatorBit are set");
      if ((a & n) != 0)
        fail(row + ": claims a decision both always and never admissible");
      if (k == 0 && ((a | n) & kTermBit) != 0)
        fail(row + ": terminator claim on the empty prefix");
      if (k + 1 == rows && ((a | n) & kDigitBits) != 0)
        fail(row + ": digit claims past the digit budget");
      if (t.verified[k] > 1)
        fail(row + ": verified flag is not 0/1");
      if (t.verified[k] == 0) {
        suffix_unverified = true;
        if ((a | n) != 0) {
          ctx.report(Code::kVerifiedAccounting,
                     row + ": unverified row carries claims")
              .field = static_cast<int>(f);
          ctx.cert.findings.back().row = static_cast<int>(k);
          ok = false;
        }
      } else if (suffix_unverified) {
        ctx.report(Code::kVerifiedAccounting,
                   row + ": verified row after an unverified one (verified "
                         "rows must form a contiguous prefix)")
            .field = static_cast<int>(f);
        ctx.cert.findings.back().row = static_cast<int>(k);
        ok = false;
      }
    }
  }
  return ok;
}

// --- pass 3: partition -------------------------------------------------------

bool check_partition(Ctx& ctx, const DecodePlan& plan,
                     const DerivedPartition& derived) {
  bool ok = true;
  const auto sorted = [](auto v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  if (sorted(plan.constant_rules) != derived.constant_rules) {
    ctx.report(Code::kPartitionMismatch,
               "constant rules " + index_list(plan.constant_rules) +
                   " != re-derived " + index_list(derived.constant_rules));
    ok = false;
  }
  if (plan.clusters.size() != derived.clusters.size()) {
    ctx.report(Code::kPartitionMismatch,
               "artifact has " + std::to_string(plan.clusters.size()) +
                   " clusters, re-derivation from the rule ASTs gives " +
                   std::to_string(derived.clusters.size()));
    return false;
  }
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const Cluster& got = plan.clusters[c];
    const DerivedCluster& want = derived.clusters[c];
    if (sorted(got.rules) != want.rules) {
      ctx.report(Code::kPartitionMismatch,
                 "cluster " + std::to_string(c) + " rules " +
                     index_list(got.rules) + " != re-derived " +
                     index_list(want.rules))
          .cluster = static_cast<int>(c);
      ok = false;
    }
    if (sorted(got.fields) != want.fields) {
      ctx.report(Code::kPartitionMismatch,
                 "cluster " + std::to_string(c) + " fields " +
                     index_list(got.fields) + " != re-derived " +
                     index_list(want.fields))
          .cluster = static_cast<int>(c);
      ok = false;
    }
  }
  if (plan.field_cluster != derived.field_cluster) {
    ctx.report(Code::kPartitionMismatch,
               "field_cluster map " + index_list(plan.field_cluster) +
                   " != re-derived " + index_list(derived.field_cluster));
    ok = false;
  }
  return ok;
}

// --- pass 4: satisfiability verdicts + equivalence ---------------------------

bool constants_satisfiable(const DecodePlan& plan, const rules::RuleSet& set) {
  for (const std::size_t r : plan.constant_rules) {
    const auto& f = set.rules[r].formula;
    if (f == nullptr || f->kind() == smt::FormulaKind::kFalse) return false;
  }
  return true;
}

void check_verdicts(Ctx& ctx, smt::Backend& backend, const DecodePlan& plan,
                    const rules::RuleSet& set) {
  bool reproved_conclusive = true;
  bool reproved_clusters_sat = true;
  for (std::size_t c = 0; c < plan.clusters.size(); ++c) {
    const Cluster& cluster = plan.clusters[c];
    std::vector<smt::Formula> fs;
    fs.reserve(cluster.rules.size());
    for (const std::size_t r : cluster.rules)
      fs.push_back(set.rules[r].formula);
    ++ctx.cert.solver_checks;
    ++ctx.cert.clusters_checked;
    const smt::CheckResult res = backend.check_assuming(fs, ctx.budget());
    if (res != smt::CheckResult::kSat) reproved_clusters_sat = false;
    if (res == smt::CheckResult::kUnknown) {
      reproved_conclusive = false;
      ctx.report(Code::kInconclusive,
                 "cluster " + std::to_string(c) +
                     " satisfiability re-proof exhausted its budget "
                     "(recorded " +
                     verdict_name(cluster.satisfiable) + ")")
          .cluster = static_cast<int>(c);
    } else if (cluster.satisfiable != smt::CheckResult::kUnknown &&
               cluster.satisfiable != res) {
      ctx.report(Code::kClusterVerdict,
                 "cluster " + std::to_string(c) + " recorded as " +
                     verdict_name(cluster.satisfiable) + ", re-proof says " +
                     verdict_name(res))
          .cluster = static_cast<int>(c);
    }
  }

  {
    std::vector<smt::Formula> fs;
    fs.reserve(set.size());
    for (const auto& r : set.rules)
      if (r.formula != nullptr) fs.push_back(r.formula);
    ++ctx.cert.solver_checks;
    ctx.cert.full_set = backend.check_assuming(fs, ctx.budget());
  }
  if (ctx.cert.full_set == smt::CheckResult::kUnknown) {
    reproved_conclusive = false;
    ctx.report(Code::kInconclusive,
               "full-set satisfiability re-proof exhausted its budget "
               "(recorded " +
                   std::string(verdict_name(plan.satisfiable)) + ")");
  } else if (plan.satisfiable != smt::CheckResult::kUnknown &&
             plan.satisfiable != ctx.cert.full_set) {
    ctx.report(Code::kFullSetVerdict,
               "full rule set recorded as " +
                   std::string(verdict_name(plan.satisfiable)) +
                   ", re-proof says " + verdict_name(ctx.cert.full_set));
  }

  const bool constants_sat = constants_satisfiable(plan, set);
  if (plan.partition_verified) {
    // The artifact claims slice-vs-full-set equivalence was established.
    // That requires every recorded verdict to be conclusive and mutually
    // consistent …
    bool recorded_conclusive = plan.satisfiable != smt::CheckResult::kUnknown;
    bool recorded_clusters_sat = true;
    for (const Cluster& c : plan.clusters) {
      if (c.satisfiable == smt::CheckResult::kUnknown)
        recorded_conclusive = false;
      if (c.satisfiable != smt::CheckResult::kSat)
        recorded_clusters_sat = false;
    }
    if (!recorded_conclusive) {
      ctx.report(Code::kEquivalence,
                 "partition_verified claimed although a recorded verdict is "
                 "unknown — compile never certifies an inconclusive "
                 "partition");
    } else if ((plan.satisfiable == smt::CheckResult::kSat) !=
               (recorded_clusters_sat && constants_sat)) {
      ctx.report(Code::kEquivalence,
                 "partition_verified claimed but the recorded verdicts "
                 "already contradict slice-vs-full-set equivalence");
    }
  }
  // … and the equivalence must hold for the *re-proved* verdicts too. This
  // is the actual soundness statement behind plan-sliced decode queries.
  if (reproved_conclusive &&
      (ctx.cert.full_set == smt::CheckResult::kSat) !=
          (reproved_clusters_sat && constants_sat)) {
    ctx.report(Code::kEquivalence,
               "re-proved verdicts violate slice-vs-full-set equivalence: "
               "full set " +
                   std::string(verdict_name(ctx.cert.full_set)) +
                   " but clusters+constants " +
                   ((reproved_clusters_sat && constants_sat) ? "sat"
                                                             : "unsat"));
  }
}

// --- pass 5: digit tables ----------------------------------------------------

void check_table(Ctx& ctx, smt::Backend& backend, const DecodePlan& plan,
                 const rules::RuleSet& set,
                 const telemetry::RowLayout& layout, int f) {
  const DigitTable& t = plan.tables[static_cast<std::size_t>(f)];
  const int m = t.max_digits;
  int verified_rows = 0;
  for (const std::uint8_t v : t.verified) verified_rows += v;
  if (verified_rows == 0) return;

  if (ctx.config.sample_field_stride > 1 &&
      f % ctx.config.sample_field_stride != 0) {
    ctx.cert.table_rows_skipped += verified_rows;
    return;
  }

  // Scope the field's cluster rules (or nothing, for a rule-free field whose
  // table is pure domain structure).
  const int c = plan.field_cluster[static_cast<std::size_t>(f)];
  backend.push();
  if (c >= 0)
    for (const std::size_t r :
         plan.clusters[static_cast<std::size_t>(c)].rules)
      backend.add(set.rules[r].formula);

  const smt::VarId var{f};
  constexpr std::uint16_t kTermBit = 1u << kTerminatorBit;
  std::vector<Prefix> level = {Prefix{}};  // P_0: the empty prefix
  for (int k = 0; k <= m; ++k) {
    if (t.verified[static_cast<std::size_t>(k)] == 0) break;
    const int rows_left = verified_rows - k;
    if (ctx.config.max_rows_per_field > 0 &&
        k >= ctx.config.max_rows_per_field) {
      ctx.cert.table_rows_skipped += rows_left;
      break;
    }
    if (ctx.expired()) {
      ctx.cert.table_rows_inconclusive += rows_left;
      ctx.report(Code::kInconclusive,
                 field_label(layout, f) + " digit table rows " +
                     std::to_string(k) + ".. not re-proved: deadline expired")
          .field = f;
      break;
    }

    bool unknown = false;
    std::uint16_t always = 0;
    std::uint16_t never = 0;
    if (k >= 1 && !level.empty()) {
      std::size_t sat = 0;
      for (const Prefix& p : level) {
        ++ctx.cert.solver_checks;
        const smt::Formula stop =
            smt::eq(smt::LinExpr(var), smt::LinExpr(p.value));
        const smt::CheckResult res =
            backend.check_assuming({&stop, 1}, ctx.budget());
        if (res == smt::CheckResult::kUnknown) {
          unknown = true;
          break;
        }
        if (res == smt::CheckResult::kSat) ++sat;
      }
      if (!unknown) {
        if (sat == level.size()) always |= kTermBit;
        if (sat == 0) never |= kTermBit;
      }
    }

    std::vector<Prefix> next_level;
    if (!unknown && k < m) {
      for (int d = 0; d <= 9 && !unknown; ++d) {
        std::size_t extendable = 0;
        std::size_t sat = 0;
        for (const Prefix& p : level) {
          if (!prefix_can_extend(p, m)) continue;
          const Prefix np{smt::sat_add(smt::sat_mul(p.value, 10), d),
                          p.digits + 1};
          ++extendable;
          ++ctx.cert.solver_checks;
          const smt::Formula complete = completion_formula(var, np, m);
          const smt::CheckResult res =
              backend.check_assuming({&complete, 1}, ctx.budget());
          if (res == smt::CheckResult::kUnknown) {
            unknown = true;
            break;
          }
          if (res == smt::CheckResult::kSat) {
            ++sat;
            next_level.push_back(np);
          }
        }
        if (extendable > 0 && sat == extendable) always |= 1u << d;
        if (extendable > 0 && sat == 0) never |= 1u << d;
      }
    }

    if (unknown) {
      ctx.cert.table_rows_inconclusive += rows_left;
      ctx.report(Code::kInconclusive,
                 field_label(layout, f) + " digit table rows " +
                     std::to_string(k) +
                     ".. not re-proved: a completion check exhausted its "
                     "budget")
          .field = f;
      break;
    }

    ++ctx.cert.table_rows_checked;
    if (always != t.always[static_cast<std::size_t>(k)] ||
        never != t.never[static_cast<std::size_t>(k)]) {
      Finding& finding = ctx.report(
          Code::kTableMismatch,
          field_label(layout, f) + " digit table row " + std::to_string(k) +
              ": artifact claims always=" +
              mask_hex(t.always[static_cast<std::size_t>(k)]) + " never=" +
              mask_hex(t.never[static_cast<std::size_t>(k)]) +
              ", re-derivation proves always=" + mask_hex(always) +
              " never=" + mask_hex(never));
      finding.field = f;
      finding.row = k;
    }

    if (static_cast<int>(next_level.size()) >
        ctx.config.max_prefixes_per_field) {
      const int deeper = rows_left - 1;
      if (deeper > 0) {
        ctx.cert.table_rows_inconclusive += deeper;
        ctx.report(Code::kInconclusive,
                   field_label(layout, f) + " digit table rows " +
                       std::to_string(k + 1) +
                       ".. not re-proved: prefix frontier exceeds "
                       "max_prefixes_per_field " +
                       std::to_string(ctx.config.max_prefixes_per_field))
            .field = f;
      }
      break;
    }
    level = std::move(next_level);
  }
  backend.pop();
}

// --- pass 6: abstract containment --------------------------------------------
// A third, solver-free reading of the digit tables (DESIGN.md §16.3). Every
// always bit in a verified row is a universal claim: *all* length-k prefixes
// the table's own always-chain spells out can be extended by that digit (or
// terminated) into a cluster-feasible value. lejit::absint computes a sound
// over-approximation of that cluster-feasible set, so any chained prefix the
// abstraction refutes is a completion the table promises but the rule set
// forbids — a miscompilation, reported as E_ABSINT_CONTAINMENT. Because the
// abstraction only ever refutes with a proof, a correct table can never be
// rejected here. The pass shares no code with plan::compile or with the
// solver re-derivation above (check_table), and runs even when check_tables
// is off.
void check_absint_containment(Ctx& ctx, const DecodePlan& plan,
                              const rules::RuleSet& set,
                              const telemetry::RowLayout& layout) {
  // One analysis per cluster, scoped exactly like check_table's backend
  // push: a table only ever claims *cluster*-completability, and auditing it
  // against the full-set abstraction could false-reject a correct table
  // whenever some unrelated cluster is infeasible (all-bottom state).
  std::vector<absint::Analysis> by_cluster;
  by_cluster.reserve(plan.clusters.size());
  for (const Cluster& c : plan.clusters) {
    rules::RuleSet slice;
    for (const std::size_t r : c.rules) slice.rules.push_back(set.rules[r]);
    by_cluster.push_back(absint::analyze(slice, layout));
  }

  constexpr std::uint16_t kTermBit = 1u << kTerminatorBit;
  for (std::size_t fi = 0; fi < plan.tables.size(); ++fi) {
    const int f = static_cast<int>(fi);
    const DigitTable& t = plan.tables[fi];
    const int m = t.max_digits;
    const int c = plan.field_cluster[fi];
    // Rule-free fields have domain-only tables; their feasible set is the
    // whole declared domain, which top() represents exactly.
    const absint::AbsVal a =
        c >= 0 ? by_cluster[static_cast<std::size_t>(c)].field(f)
               : absint::AbsVal::top(0, layout.fields[fi].max_value);

    std::vector<Prefix> level = {Prefix{}};  // T_0: the empty prefix
    for (int k = 0; k <= m && !level.empty(); ++k) {
      if (t.verified[static_cast<std::size_t>(k)] == 0) break;
      if (ctx.expired()) {
        ctx.report(Code::kInconclusive,
                   field_label(layout, f) + " containment audit rows " +
                       std::to_string(k) + ".. not checked: deadline expired")
            .field = f;
        break;
      }

      if (k >= 1 && (t.always[static_cast<std::size_t>(k)] & kTermBit) != 0) {
        for (const Prefix& p : level) {
          ++ctx.cert.absint_prefixes_checked;
          if (absint::admits_value(a, p.value)) continue;
          Finding& finding = ctx.report(
              Code::kAbsintContainment,
              field_label(layout, f) + " digit table row " +
                  std::to_string(k) + ": always-bit chain claims " +
                  std::to_string(p.value) +
                  " is a feasible terminated value, but the abstract "
                  "interpretation proves it violates the cluster's rules");
          finding.field = f;
          finding.row = k;
        }
      }

      std::vector<Prefix> next_level;
      if (k < m) {
        for (int d = 0; d <= 9; ++d) {
          if (!t.always_bit(k, d)) continue;
          for (const Prefix& p : level) {
            if (!prefix_can_extend(p, m)) continue;
            const Prefix np{smt::sat_add(smt::sat_mul(p.value, 10), d),
                            p.digits + 1};
            ++ctx.cert.absint_prefixes_checked;
            if (absint::completion_admitted(a, np.value, np.digits, m)) {
              next_level.push_back(np);
              continue;
            }
            Finding& finding = ctx.report(
                Code::kAbsintContainment,
                field_label(layout, f) + " digit table row " +
                    std::to_string(k) + ": always-bit chain claims prefix " +
                    std::to_string(np.value) + " (" +
                    std::to_string(np.digits) +
                    " digits) is completable, but the abstract "
                    "interpretation proves no completion satisfies the "
                    "cluster's rules");
            finding.field = f;
            finding.row = k;
          }
        }
      }

      if (static_cast<int>(next_level.size()) >
          ctx.config.max_prefixes_per_field) {
        ctx.report(Code::kInconclusive,
                   field_label(layout, f) + " containment audit rows " +
                       std::to_string(k + 1) +
                       ".. not checked: always-chain frontier exceeds "
                       "max_prefixes_per_field " +
                       std::to_string(ctx.config.max_prefixes_per_field))
            .field = f;
        break;
      }
      level = std::move(next_level);
    }
  }
}

}  // namespace

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string_view code_name(Code c) noexcept {
  switch (c) {
    case Code::kFingerprintMismatch: return "E_FINGERPRINT";
    case Code::kStructure: return "E_STRUCTURE";
    case Code::kPartitionMismatch: return "E_PARTITION";
    case Code::kClusterVerdict: return "E_CLUSTER_VERDICT";
    case Code::kFullSetVerdict: return "E_FULLSET_VERDICT";
    case Code::kEquivalence: return "E_EQUIVALENCE";
    case Code::kTableMismatch: return "E_TABLE";
    case Code::kVerifiedAccounting: return "E_VERIFIED_ACCOUNTING";
    case Code::kAbsintContainment: return "E_ABSINT_CONTAINMENT";
    case Code::kInconclusive: return "W_INCONCLUSIVE";
    case Code::kSampled: return "I_SAMPLED";
  }
  return "?";
}

Severity code_severity(Code c) noexcept {
  switch (c) {
    case Code::kInconclusive: return Severity::kWarning;
    case Code::kSampled: return Severity::kInfo;
    default: return Severity::kError;
  }
}

std::size_t Certificate::count(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == s) ++n;
  return n;
}

bool Certificate::complete() const {
  return ok() && table_rows_skipped == 0 && table_rows_inconclusive == 0 &&
         count(Severity::kWarning) == 0;
}

std::uint64_t expected_fingerprint(const rules::RuleSet& set,
                                   const telemetry::RowLayout& layout) {
  Fnv1a64 fnv;
  fnv.integer(static_cast<std::int64_t>(layout.fields.size()));
  for (const auto& f : layout.fields) {
    fnv.str(f.prefix);
    fnv.str(f.name);
    fnv.integer(f.max_value);
    fnv.integer(f.is_fine ? 1 : 0);
  }
  fnv.str(layout.suffix);
  fnv.integer(static_cast<std::int64_t>(set.size()));
  for (const auto& r : set.rules) {
    fnv.str(r.description);
    fnv.str(r.formula != nullptr ? r.formula->to_string() : "<null>");
  }
  return fnv.h;
}

Certificate run(const DecodePlan& plan, const rules::RuleSet& set,
                const telemetry::RowLayout& layout, const Config& config) {
  const obs::Span span(obs::Phase::kPlanVerify);
  Certificate cert;
  Ctx ctx{config, cert};
  if (config.deadline_ms > 0)
    ctx.deadline_ns =
        smt::Budget::deadline_in_ms(config.deadline_ms).deadline_ns;

  // Cheap self-contained passes first: an artifact that is not even bound
  // to these inputs, or is structurally malformed, is rejected without
  // spending solver budget on meaningless re-proofs.
  const bool bound = check_fingerprint(ctx, plan, set, layout);
  const bool shaped = check_structure(ctx, plan, set, layout);
  bool partition_ok = false;
  if (bound && shaped) {
    const DerivedPartition derived = derive_partition(set, plan.num_fields);
    partition_ok = check_partition(ctx, plan, derived);
  }

  if (partition_ok) {
    const std::unique_ptr<smt::Backend> backend =
        smt::make_backend(config.backend);
    cert.backend_name = backend->name();
    for (const auto& f : layout.fields)
      backend->add_var(f.name, 0, f.max_value);
    check_verdicts(ctx, *backend, plan, set);
    if (config.check_tables)
      for (std::size_t f = 0; f < plan.tables.size(); ++f)
        check_table(ctx, *backend, plan, set, layout, static_cast<int>(f));
    if (cert.table_rows_skipped > 0)
      ctx.report(Code::kSampled,
                 std::to_string(cert.table_rows_skipped) +
                     " verified table rows skipped by sampling "
                     "configuration; this certificate is partial");
    // Pass 6 needs no backend and no table re-derivation — it is the
    // independent third reading, deliberately not gated on check_tables.
    if (config.check_absint)
      check_absint_containment(ctx, plan, set, layout);
  }

  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_runs = registry.counter("plan.verify.runs");
    static obs::Counter& c_checks = registry.counter("plan.verify.checks");
    static obs::Counter& c_rows =
        registry.counter("plan.verify.rows_checked");
    static obs::Counter& c_errors = registry.counter("plan.verify.errors");
    static obs::Counter& c_warnings =
        registry.counter("plan.verify.warnings");
    static obs::Counter& c_rejected =
        registry.counter("plan.verify.rejected");
    c_runs.inc();
    c_checks.add(cert.solver_checks);
    c_rows.add(cert.table_rows_checked);
    c_errors.add(static_cast<std::int64_t>(cert.errors()));
    c_warnings.add(static_cast<std::int64_t>(cert.warnings()));
    if (!cert.ok()) c_rejected.inc();
  }
  return cert;
}

std::string to_text(const Certificate& cert) {
  std::string out;
  for (const Finding& f : cert.findings) {
    out += severity_name(f.severity);
    out += " ";
    out += code_name(f.code);
    out += ": ";
    out += f.message;
    out += "\n";
  }
  out += "plan-verify: ";
  out += cert.ok() ? (cert.complete() ? "CERTIFIED (complete)"
                                      : "CERTIFIED (partial)")
                   : "REJECTED";
  out += " — " + std::to_string(cert.errors()) + " errors, " +
         std::to_string(cert.warnings()) + " warnings; " +
         std::to_string(cert.solver_checks) + " re-proof checks via " +
         (cert.backend_name.empty() ? "(no backend)" : cert.backend_name) +
         "; " + std::to_string(cert.table_rows_checked) +
         " table rows re-derived (" +
         std::to_string(cert.table_rows_skipped) + " skipped, " +
         std::to_string(cert.table_rows_inconclusive) + " inconclusive); " +
         std::to_string(cert.absint_prefixes_checked) +
         " abstract containment checks\n";
  return out;
}

std::string to_json(const Certificate& cert) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("ok").value(cert.ok());
  w.key("complete").value(cert.complete());
  w.key("expected_fingerprint").value(hex16(cert.expected_fingerprint));
  w.key("full_set").value(verdict_name(cert.full_set));
  w.key("backend").value(cert.backend_name);
  w.key("errors").value(static_cast<std::int64_t>(cert.errors()));
  w.key("warnings").value(static_cast<std::int64_t>(cert.warnings()));
  w.key("solver_checks").value(cert.solver_checks);
  w.key("clusters_checked").value(cert.clusters_checked);
  w.key("table_rows_checked").value(cert.table_rows_checked);
  w.key("table_rows_skipped").value(cert.table_rows_skipped);
  w.key("table_rows_inconclusive").value(cert.table_rows_inconclusive);
  w.key("absint_prefixes_checked").value(cert.absint_prefixes_checked);
  w.key("findings").begin_array();
  for (const Finding& f : cert.findings) {
    w.begin_object();
    w.key("severity").value(severity_name(f.severity));
    w.key("code").value(code_name(f.code));
    w.key("message").value(f.message);
    if (f.cluster >= 0) w.key("cluster").value(f.cluster);
    if (f.field >= 0) w.key("field").value(f.field);
    if (f.row >= 0) w.key("row").value(f.row);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace lejit::plan::verify
