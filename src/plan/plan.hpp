// lejit::plan — the static decode-plan compiler (DESIGN.md §11).
//
// PR 3/PR 4 made the decoder's solver queries incremental and cache-warmed,
// but every query still drags the entire rule set through propagation even
// when the field being decoded is logically independent of most rules. This
// module runs once per rule set, before any decode, and compiles everything
// about the hot path that does not depend on row values:
//
//   1. Rule–field dependency graph + partitioning. Two rules are connected
//      iff they share a referenced field; connected components ("clusters")
//      are variable-disjoint, so the conjunction of all rules is satisfiable
//      iff every cluster is satisfiable on its own. The decoder exploits
//      this by asserting only the cluster touching the field being decoded
//      (query slicing). Soundness is not assumed: compile() *checks* the
//      plan-vs-full-set equivalence under an smt::Budget and records the
//      outcome in `partition_verified` — the decoder falls back to the
//      unsliced path whenever the check was inconclusive or failed.
//
//   2. Digit-mask tables. Abstract interpretation over the char-level
//      transition system (core/transition.hpp): for each field, the sets of
//      digit prefixes that remain completable under the field's cluster
//      rules are enumerated breadth-first, position by position, and each
//      (position, digit) entry is solver-verified — a sat witness proves a
//      digit universally admissible, exhaustive refutation proves it
//      universally inadmissible. Matching decode steps skip the solver
//      entirely; entries whose verification exhausted the budget are marked
//      unverified and fall back to a live query (kUnknown → conservative).
//
//   3. A serialized artifact (to_json/from_json) bound to the rule set +
//      layout by fingerprint, so a plan compiled offline (`lejit_cli plan`)
//      can be loaded by DecoderConfig::plan — and a stale plan (rules or
//      schema changed since compilation) is rejected instead of silently
//      producing wrong masks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.hpp"
#include "smt/solver.hpp"
#include "telemetry/text.hpp"

namespace lejit::plan {

// Bit index of the field-terminator entry in a DigitTable row (bits 0–9 are
// the digits themselves).
inline constexpr int kTerminatorBit = 10;

struct Config {
  // Search-node budget per solver check during compilation; exhaustion marks
  // the affected table positions unverified (never wrong masks — just fewer
  // precompiled answers).
  std::int64_t check_max_nodes = 200'000;
  // Wall-clock ceiling over the whole compilation (0 = none).
  std::int64_t deadline_ms = 0;
  // Cap on the completable-prefix frontier per field; beyond it the deeper
  // table positions are left unverified.
  int max_prefixes_per_field = 4096;
  bool build_tables = true;
  // Run the plan-vs-full-set equivalence check (sets partition_verified).
  bool verify_partition = true;
};

// One connected component of the rule–field dependency graph.
struct Cluster {
  std::vector<std::size_t> rules;  // rule indices, ascending
  std::vector<int> fields;         // field indices, ascending
  // Satisfiability of this cluster's rules alone over the field domains.
  smt::CheckResult satisfiable = smt::CheckResult::kUnknown;
};

// Solver-verified admissible-digit table for one field. Row k describes the
// set P_k of length-k digit prefixes that are completable under the field's
// cluster rules with no pins asserted (P_0 = {empty prefix}):
//   always[k] bit d  — appending d keeps EVERY p ∈ P_k completable (among
//                      syntactically legal extensions). Sound to allow
//                      without a solver only while the cluster has no
//                      pins/bans this attempt: pins shrink the feasible set.
//   never[k] bit d   — appending d keeps NO p ∈ P_k completable. Sound to
//                      mask out under ANY pins/bans (monotone: constraints
//                      only remove completions).
//   bit kTerminatorBit — same two readings for terminating a length-k
//                      prefix on its exact value (rows k >= 1 only).
// verified[k] is false when any check at row k was inconclusive or the
// prefix frontier was capped — the row then makes no claim.
struct DigitTable {
  int max_digits = 0;
  std::vector<std::uint16_t> always;   // size max_digits + 1
  std::vector<std::uint16_t> never;    // size max_digits + 1
  std::vector<std::uint8_t> verified;  // size max_digits + 1

  bool row_verified(int k) const {
    return k >= 0 && k < static_cast<int>(verified.size()) &&
           verified[static_cast<std::size_t>(k)] != 0;
  }
  bool always_bit(int k, int bit) const {
    return (always[static_cast<std::size_t>(k)] >> bit & 1u) != 0;
  }
  bool never_bit(int k, int bit) const {
    return (never[static_cast<std::size_t>(k)] >> bit & 1u) != 0;
  }
};

struct DecodePlan {
  std::uint64_t fingerprint = 0;  // rule_set_fingerprint at compile time
  int num_fields = 0;
  std::size_t num_rules = 0;

  std::vector<Cluster> clusters;
  // Rules referencing no field at all (formulas folded to constants).
  std::vector<std::size_t> constant_rules;
  // Per layout field: index into `clusters`, or -1 when no rule touches it.
  std::vector<int> field_cluster;
  // Per layout field, index-aligned; empty when tables were not built.
  std::vector<DigitTable> tables;

  // Satisfiability of the full rule set over the domains.
  smt::CheckResult satisfiable = smt::CheckResult::kUnknown;
  // True iff the equivalence check proved full-set satisfiability equal to
  // the AND of per-cluster satisfiability (and every check was conclusive).
  bool partition_verified = false;
  std::int64_t solver_checks = 0;  // checks spent compiling

  // Whether the decoder may engage sliced queries and table lookups. The
  // kSat requirement is part of soundness: slicing answers queries about one
  // cluster assuming the others can be satisfied around it.
  bool active() const {
    return partition_verified && satisfiable == smt::CheckResult::kSat;
  }
  const DigitTable* table_for(int field) const {
    if (field < 0 || static_cast<std::size_t>(field) >= tables.size())
      return nullptr;
    return &tables[static_cast<std::size_t>(field)];
  }
};

// Order-sensitive fingerprint of (rule set, layout): covers every rule's
// textual form plus every field's name/domain/prefix and the row suffix.
// Plans are valid only against the exact pair they were compiled for.
std::uint64_t rule_set_fingerprint(const rules::RuleSet& set,
                                   const telemetry::RowLayout& layout);

// The solver-free part of compilation: dependency graph + connected
// components only (satisfiable/partition_verified left kUnknown/false, no
// tables). Used by lint for partition diagnostics without paying for
// verification. Rules with null or constant formulas land in
// constant_rules.
DecodePlan partition(const rules::RuleSet& set,
                     const telemetry::RowLayout& layout);

// Full compilation: partition + per-cluster and full-set satisfiability +
// equivalence verification + digit-mask tables. Never throws on bad rule
// sets (an UNSAT set compiles to an inactive plan).
DecodePlan compile(const rules::RuleSet& set,
                   const telemetry::RowLayout& layout,
                   const Config& config = {});

// Serialized artifact. The fingerprint travels as a hex string — it does
// not survive a round-trip through a JSON double. from_json throws
// util::RuntimeError on malformed or structurally inconsistent input.
std::string to_json(const DecodePlan& plan);
DecodePlan from_json(std::string_view text);

// Human-readable summary (cluster membership, table coverage), with field
// and rule names resolved against the inputs the plan was compiled from.
std::string to_text(const DecodePlan& plan, const rules::RuleSet& set,
                    const telemetry::RowLayout& layout);

// Merge clusters a and b of `plan` into one (test/validation helper for the
// partition-soundness property: a coarser partition must never change
// decode verdicts). Tables are kept — a table compiled against a sub-cluster
// stays sound under the merged cluster's rules. Table-building budgets are
// not re-spent. Indices must be distinct and in range.
DecodePlan merge_clusters(DecodePlan plan, std::size_t a, std::size_t b);

}  // namespace lejit::plan
