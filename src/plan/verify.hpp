// lejit::plan::verify — independent translation validation of decode plans
// (DESIGN.md §14).
//
// plan::compile() verifies its own output: the minismt session that builds
// the admissible-digit tables is the minismt session that certifies them, so
// a shared miscompile+misverify bug ships silently into every decode. This
// module is the correctness backstop: it takes a *serialized* plan artifact
// plus the rule set and layout it claims to describe, and re-proves every
// claim in the artifact without calling any of compile()'s verification
// code —
//
//   fingerprint   an independent reimplementation of the rule-set
//                 fingerprint (a drift between the two implementations is a
//                 loud E_FINGERPRINT, never silent acceptance);
//   structure     bit ranges, kTerminatorBit rows, table shapes, and
//                 unverified-entry accounting are pure arithmetic checks;
//   partition     the rule–field dependency partition is re-derived from
//                 the Rule ASTs by flood fill over the bipartite rule–field
//                 graph (compile uses union-find) and compared as sets;
//   verdicts      per-cluster and full-set satisfiability, and the
//                 slice-vs-full-set equivalence claim behind
//                 `partition_verified`, are re-proved through the pluggable
//                 smt::Backend seam — CI points it at z3/lejit_smtserve
//                 out of process, dev runs use minismt in process;
//   tables        every verified (field, row) claim is re-derived from its
//                 own prefix-level enumeration (an independently built
//                 completion formula, not core::prefix_completion_formula)
//                 and must match the artifact bit for bit;
//   containment   a third, solver-free audit (DESIGN.md §16.3): the digit
//                 prefixes spelled out by each table's always-bit chains
//                 must all be admitted by the abstract interpreter's
//                 over-approximation of the feasible set (lejit::absint).
//                 The abstraction only refutes with proofs, so an escapee
//                 is a miscompilation certificate (E_ABSINT_CONTAINMENT)
//                 and a correct table can never be rejected — independent
//                 of both plan::compile and the solver re-derivation above.
//
// The result is a machine-readable certificate: findings with stable codes,
// text/JSON rendering, and an ok() verdict wired to the exit-code contract
// of `lejit_cli plan-verify` (0 = certified, 1 = rejected, 2 = usage/IO),
// mirroring `lejit_cli lint`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rules/rule.hpp"
#include "smt/backend.hpp"
#include "telemetry/text.hpp"

namespace lejit::plan {

struct DecodePlan;

namespace verify {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

enum class Code {
  kFingerprintMismatch,  // E_FINGERPRINT: artifact bound to different inputs
  kStructure,            // E_STRUCTURE: shape/bit-range/index invariants
  kPartitionMismatch,    // E_PARTITION: clusters ≠ re-derived partition
  kClusterVerdict,       // E_CLUSTER_VERDICT: recorded cluster sat refuted
  kFullSetVerdict,       // E_FULLSET_VERDICT: recorded global sat refuted
  kEquivalence,          // E_EQUIVALENCE: partition_verified claim unsound
  kTableMismatch,        // E_TABLE: digit/terminator claim refuted
  kVerifiedAccounting,   // E_VERIFIED_ACCOUNTING: verified-row bookkeeping
  kAbsintContainment,    // E_ABSINT_CONTAINMENT: a table's always-bit chain
                         // claims a prefix the abstract interpretation
                         // proves uncompletable
  kInconclusive,         // W_INCONCLUSIVE: a re-proof exhausted its budget
  kSampled,              // I_SAMPLED: configured sampling skipped claims
};

std::string_view severity_name(Severity s) noexcept;
std::string_view code_name(Code c) noexcept;
Severity code_severity(Code c) noexcept;

struct Finding {
  Code code = Code::kInconclusive;
  Severity severity = Severity::kInfo;
  std::string message;  // self-contained: names the cluster/field/row
  int cluster = -1;     // offending cluster index, or -1
  int field = -1;       // offending layout field, or -1
  int row = -1;         // offending digit-table row (prefix length), or -1
};

struct Config {
  // Search-node budget per solver re-proof; exhaustion yields a
  // W_INCONCLUSIVE finding instead of a verdict.
  std::int64_t check_max_nodes = 200'000;
  // Wall-clock ceiling over the whole verification (0 = none). Checks
  // started after the deadline resolve as inconclusive.
  std::int64_t deadline_ms = 0;
  // Frontier cap for the verifier's own prefix-level enumeration. Rows the
  // cap makes unreachable are reported inconclusive, not wrong.
  int max_prefixes_per_field = 4096;
  // Sampling knobs for the table pass (default: re-prove everything).
  // Fields with index % sample_field_stride != 0 are skipped entirely, and
  // per field only rows 0..max_rows_per_field-1 are re-derived (0 = all).
  // Any skip is recorded as an I_SAMPLED finding, so a sampled certificate
  // is visibly weaker than a full one.
  int sample_field_stride = 1;
  int max_rows_per_field = 0;
  bool check_tables = true;
  // Solver-free abstract containment audit of the digit tables (see header
  // comment). Independent of check_tables: it still runs — and still
  // rejects miscompiled tables — when the solver re-derivation is off.
  bool check_absint = true;
  // Solver substrate for every re-proof (minismt, or an out-of-process
  // z3/cvc5/lejit_smtserve via the subprocess backend).
  smt::BackendConfig backend{};
};

// The certificate report for one artifact.
struct Certificate {
  std::vector<Finding> findings;
  // Fingerprint this verifier derived from (set, layout) — what the
  // artifact's fingerprint was compared against.
  std::uint64_t expected_fingerprint = 0;
  // Re-proved global verdict (kUnknown when the budget ran out).
  smt::CheckResult full_set = smt::CheckResult::kUnknown;
  std::int64_t solver_checks = 0;     // re-proof checks issued
  std::int64_t clusters_checked = 0;  // cluster verdicts re-proved
  std::int64_t table_rows_checked = 0;
  std::int64_t table_rows_skipped = 0;       // by sampling configuration
  std::int64_t table_rows_inconclusive = 0;  // budget/frontier exhaustion
  std::int64_t absint_prefixes_checked = 0;  // containment-audit prefixes
  std::string backend_name;  // smt::Backend that served the re-proofs

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  // Certified: no claim in the artifact was refuted. Warnings (inconclusive
  // re-proofs) and sampling gaps do not reject the artifact, but see
  // complete().
  bool ok() const { return errors() == 0; }
  // Every claim was re-proved: ok() and nothing skipped or inconclusive.
  bool complete() const;
};

// Independent reimplementation of plan::rule_set_fingerprint. Exposed so
// tests can pin the two implementations against each other — at runtime a
// divergence surfaces as E_FINGERPRINT on every artifact, never as silent
// acceptance.
std::uint64_t expected_fingerprint(const rules::RuleSet& set,
                                   const telemetry::RowLayout& layout);

// Re-prove every claim of `plan` against (set, layout) under `config`.
// Never throws on a bad artifact: refuted or malformed claims become error
// findings in the certificate.
Certificate run(const DecodePlan& plan, const rules::RuleSet& set,
                const telemetry::RowLayout& layout, const Config& config = {});

std::string to_text(const Certificate& cert);
std::string to_json(const Certificate& cert);

}  // namespace verify
}  // namespace lejit::plan
