// lejit::absint — sound abstract interpretation over rule sets (DESIGN.md §16).
//
// PRs 3/5/7 pushed solver work down to ~18% of decode time, but every
// remaining feasibility check still bottoms out in SMT. This module computes,
// once per rule set, a sound over-approximation of each field's feasible
// values under the conjunction of all rules — and keeps it cheap to refine as
// the decoder pins fields. The decoder, the linter, and the plan verifier all
// consume the same engine:
//
//   decode   abstract-infeasible ⇒ truly infeasible ⇒ skip the solver check
//            entirely (a refutation-only prefilter: it never *proves*
//            feasibility, so a complete backend gives bit-identical masks).
//   lint     solver-free findings (constant/congruent fields, restricted
//            last digits, tightened overflow magnitudes) and an absint
//            prefilter for dead-rule detection that stops burning smt::Budget.
//   verify   a third, independent containment pass over compiled digit
//            tables: every table-claimed-admissible prefix must fall inside
//            the abstract over-approximation (an escapee is a miscompilation).
//
// The domain is a reduced product of three lattices per field:
//
//   interval    [lo, hi]                   (smt::Interval; empty ⇔ bottom)
//   congruence  v ≡ rem (mod m), m ≥ 1     (m == 1 ⇔ top)
//   known-bits  (v & mask) == value        (mask == 0 ⇔ top)
//
// Soundness argument (the only property anything relies on): the analysis
// starts from the declared field domains (a correct over-approximation) and
// every step is either a meet with information implied by a rule, or a join
// over the branches of a disjunction — both keep γ(state) ⊇ {feasible rows}.
// Iteration to a fixpoint is *descending*, so stopping after any bounded
// number of rounds (`Config::max_iterations`, our stand-in for widening) is
// trivially sound: an early stop only leaves the state coarser. Bottom
// (empty interval) therefore proves genuine infeasibility. The direction is
// enforced end-to-end by a differential fuzz harness (absint/diff.hpp,
// `lejit_cli absint-diff`): whenever the abstraction refutes, a real SMT
// backend must answer unsat.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rules/rule.hpp"
#include "smt/formula.hpp"
#include "smt/linexpr.hpp"
#include "telemetry/text.hpp"

namespace lejit::absint {

using smt::Int;
using smt::Interval;

// Bits 0..kValueBits-1 participate in the known-bits domain; field domains
// are non-negative and bounded by smt::kIntInf < 2^62, so 62 bits cover
// every representable value.
inline constexpr int kValueBits = 62;
inline constexpr std::uint64_t kValueMask = (std::uint64_t{1} << kValueBits) - 1;

// v ≡ rem (mod mod). Invariant: mod ≥ 1 and 0 ≤ rem < mod; mod == 1 is top.
struct Congruence {
  Int mod = 1;
  Int rem = 0;

  bool is_top() const noexcept { return mod <= 1; }
  bool admits(Int v) const noexcept;
  bool operator==(const Congruence&) const = default;
};

// (v & mask) == value on the low kValueBits. Invariant: value ⊆ mask ⊆
// kValueMask; mask == 0 is top. Only meaningful for non-negative values —
// every field domain here is.
struct KnownBits {
  std::uint64_t mask = 0;
  std::uint64_t value = 0;

  bool is_top() const noexcept { return mask == 0; }
  bool admits(Int v) const noexcept {
    return v >= 0 && (static_cast<std::uint64_t>(v) & mask) == value;
  }
  bool operator==(const KnownBits&) const = default;
};

// One field's abstract value: the reduced product of the three components.
// γ(a) = {v : range.contains(v) ∧ cong.admits(v) ∧ bits.admits(v)}.
// Bottom is canonically represented by an empty interval.
struct AbsVal {
  Interval range{0, -1};  // empty ⇒ bottom
  Congruence cong{};
  KnownBits bits{};

  bool is_bottom() const noexcept { return range.is_empty(); }
  bool admits(Int v) const noexcept {
    return range.contains(v) && cong.admits(v) && bits.admits(v);
  }
  static AbsVal top(Int lo, Int hi);
  static AbsVal bottom() { return AbsVal{}; }
  bool operator==(const AbsVal&) const = default;
};

struct Config {
  // Descending-refinement rounds over the rule set. Any bound is sound
  // (see the soundness argument above); more rounds buy precision on
  // chained cross-field constraints.
  int max_iterations = 6;
  // Congruence moduli are dropped to top beyond this cap so lcm chains
  // cannot blow up. Capping is sound (top over-approximates).
  Int max_modulus = Int{1} << 20;
  // TEST ONLY: deliberately break the ≤ transfer function by one (claims
  // infeasibility of feasible endpoints). Exists so the absint-diff fuzz
  // harness can demonstrate it catches an unsound domain; never set outside
  // the mutation tests / `lejit_cli absint-diff --inject-unsound`.
  bool test_unsound_tighten = false;
};

// --- lattice operations ------------------------------------------------------

// Meet (conjunction). Empty/contradictory results collapse to bottom.
AbsVal meet(const AbsVal& a, const AbsVal& b, const Config& config = {});
// Join (disjunction hull). Never bottom unless both inputs are.
AbsVal join(const AbsVal& a, const AbsVal& b);

// Re-establish the reduced-product invariants: each component tightens the
// others (congruence/bits shave interval endpoints, interval endpoints fix
// high bits, low contiguous known bits induce a power-of-two congruence, …)
// until stable or provably empty. Always a descending operation.
void normalize(AbsVal& a, const Config& config = {});

// --- queries -----------------------------------------------------------------

// Does γ(a) intersect [lo, hi]? A `false` answer is a proof of emptiness;
// `true` may be imprecise (each component is consulted separately).
bool interval_admitted(const AbsVal& a, Int lo, Int hi);

// Does γ(a) admit the exact value v?
inline bool admits_value(const AbsVal& a, Int v) { return a.admits(v); }

// Does γ(a) intersect the canonical-decimal completion set of the digit
// prefix (value, digits) — i.e. {value} ∪ [value·10^m, value·10^m + 10^m − 1]
// for m = 1..max_digits−digits (no extensions of the lone "0" prefix,
// mirroring core::DigitPrefix::can_extend)? digits == 0 is the empty prefix,
// whose completions are every canonical value: admitted iff a is non-bottom.
// `false` is a proof that no completion is feasible.
bool completion_admitted(const AbsVal& a, Int value, int digits,
                         int max_digits);

// Smallest v ≥ lo with bits.admits(v), or nullopt when none exists below
// 2^kValueBits. Exact (not an approximation) — refutations built on it are
// proofs. Exposed for tests.
std::optional<Int> least_match_at_least(Int lo, const KnownBits& bits);
// Largest v ≤ hi with bits.admits(v), or nullopt. Exact; exposed for tests.
std::optional<Int> greatest_match_at_most(Int hi, const KnownBits& bits);

// --- analysis ----------------------------------------------------------------

// Refine `state` (one AbsVal per layout field, smt::VarId{i} ↔ state[i]) with
// one NNF formula: atoms tighten the referenced fields (interval propagation
// for ≤, interval + congruence propagation for =, endpoint shaving for ≠),
// conjunctions fold, disjunctions join the refinements of per-branch copies.
// Returns false — and leaves every field bottom — when the formula is
// abstractly unsatisfiable against `state` (a proof of real unsatisfiability).
bool refine(std::vector<AbsVal>& state, const smt::Formula& f,
            const Config& config = {});

// Refine with every rule of `set`, iterating to a fixpoint or the round cap.
// Returns false iff the conjunction is abstractly (hence really) infeasible.
bool refine_all(std::vector<AbsVal>& state, const rules::RuleSet& set,
                const Config& config = {});

// Top state for a layout: per field [0, max_value], components top, reduced.
std::vector<AbsVal> top_state(const telemetry::RowLayout& layout,
                              const Config& config = {});

struct Analysis {
  std::vector<AbsVal> fields;  // fixpoint state, index-aligned with layout
  bool infeasible = false;     // bottom reached ⇒ rule set UNSAT over domains
  int iterations = 0;          // refinement rounds actually run
  bool converged = false;      // reached a fixpoint before the round cap

  const AbsVal& field(int i) const {
    return fields[static_cast<std::size_t>(i)];
  }
};

// The whole pipeline: top_state + refine_all. Never throws on bad rule sets
// (an UNSAT set analyzes to `infeasible` with every field bottom).
Analysis analyze(const rules::RuleSet& set, const telemetry::RowLayout& layout,
                 const Config& config = {});

}  // namespace lejit::absint
