#include "absint/diff.hpp"

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include "smt/smtlib2.hpp"

namespace lejit::absint::diff {
namespace {

using smt::Formula;
using smt::Int;
using smt::LinExpr;
using smt::VarId;

int decimal_digits(Int v) {
  int d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

struct SessionGen {
  std::mt19937_64& rng;
  std::vector<Int> maxima;  // per-field domain maxima

  Int uniform(Int lo, Int hi) {
    return std::uniform_int_distribution<Int>(lo, hi)(rng);
  }

  LinExpr random_expr() {
    const int nterms = static_cast<int>(uniform(1, 3));
    LinExpr e;
    for (int i = 0; i < nterms; ++i) {
      Int coeff = uniform(-3, 3);
      if (coeff == 0) coeff = 1;
      const int var = static_cast<int>(
          uniform(0, static_cast<Int>(maxima.size()) - 1));
      e += smt::LinExpr::term(coeff, VarId{var});
    }
    e += LinExpr(uniform(-40, 40));
    return e;
  }

  Formula random_atom() {
    const LinExpr a = random_expr();
    const LinExpr b = random_expr();
    switch (uniform(0, 5)) {
      case 0: return smt::le(a, b);
      case 1: return smt::lt(a, b);
      case 2: return smt::ge(a, b);
      case 3: return smt::gt(a, b);
      case 4: return smt::eq(a, b);
      default: return smt::ne(a, b);
    }
  }

  Formula random_formula(int depth) {
    if (depth <= 0 || uniform(0, 99) < 50) return random_atom();
    const int n = static_cast<int>(uniform(2, 3));
    std::vector<Formula> children;
    children.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) children.push_back(random_formula(depth - 1));
    return uniform(0, 1) == 0 ? smt::land(std::move(children))
                              : smt::lor(std::move(children));
  }
};

// The canonical completion set of prefix (value, digits) as a formula —
// {value} ∪ [value·10^m, value·10^m + 10^m − 1], no extensions of "0" —
// the concrete counterpart of absint::completion_admitted. Built locally so
// the harness shares no code with core::prefix_completion_formula (the diff
// must not inherit a bug from the code path it guards).
Formula completion_formula(VarId var, Int value, int digits, int max_digits) {
  std::vector<Formula> cases;
  cases.push_back(smt::eq(LinExpr(var), LinExpr(value)));
  if (value != 0) {
    Int scale = 1;
    for (int m = 1; m <= max_digits - digits; ++m) {
      scale *= 10;
      cases.push_back(smt::between(LinExpr(var), LinExpr(value * scale),
                                   LinExpr(value * scale + scale - 1)));
    }
  }
  return smt::lor(std::move(cases));
}

struct Mismatch {
  std::string what;  // human description of the refuted query
  Formula query;     // the formula the backend answered sat
};

}  // namespace

Report run(const Config& config, const BackendFactory& make_backend) {
  Report report;
  std::mt19937_64 rng(config.seed);

  while (report.queries < config.queries) {
    ++report.sessions;
    const std::int64_t session = report.sessions;

    // --- generate a session: layout + rules -------------------------------
    SessionGen gen{rng, {}};
    const int nv = static_cast<int>(gen.uniform(2, 4));
    telemetry::RowLayout layout;
    std::string script;
    for (int i = 0; i < nv; ++i) {
      static constexpr Int kMaxChoices[] = {9, 60, 99, 999, 4999};
      const Int max_value =
          kMaxChoices[static_cast<std::size_t>(gen.uniform(0, 4))];
      telemetry::FieldSpec spec;
      spec.name = "f" + std::to_string(i);
      spec.max_value = max_value;
      layout.fields.push_back(spec);
      gen.maxima.push_back(max_value);
      script += smt::smtlib2::declare_lines(i, 0, max_value) + "\n";
    }
    rules::RuleSet set;
    const int nrules = static_cast<int>(gen.uniform(1, 4));
    for (int i = 0; i < nrules; ++i) {
      rules::Rule rule;
      rule.description = "fuzz rule " + std::to_string(i);
      rule.formula = gen.random_formula(2);
      script += smt::smtlib2::assert_line(rule.formula) + "\n";
      set.rules.push_back(std::move(rule));
    }

    const Analysis analysis = analyze(set, layout, config.domain);
    std::unique_ptr<smt::Backend> backend = make_backend();
    rules::declare_fields(*backend, layout);
    rules::assert_rules(*backend, set);

    // Confirm one refutation against the backend; returns false on mismatch.
    const auto confirm = [&](const Mismatch& m) {
      ++report.refutations;
      const smt::CheckResult r =
          backend->check_assuming({&m.query, 1}, config.budget);
      if (r == smt::CheckResult::kUnknown) {
        ++report.unknowns;
        return true;
      }
      if (r == smt::CheckResult::kUnsat) {
        ++report.compared;
        return true;
      }
      ++report.mismatches;
      if (report.first_mismatch.empty()) {
        std::ostringstream out;
        out << "soundness mismatch: " << m.what << " (seed " << config.seed
            << ", session " << session << ", query " << report.queries
            << "): abstract-infeasible but " << backend->name()
            << " answered sat\n; repro transcript:\n"
            << script << "(push)\n"
            << smt::smtlib2::assert_line(m.query) << "\n(check-sat)\n";
        report.first_mismatch = out.str();
      }
      return false;
    };

    // --- abstractly-infeasible rule set: backend must agree ---------------
    if (analysis.infeasible) {
      ++report.queries;
      Mismatch m{"whole rule set", smt::make_true()};
      if (!confirm(m)) return report;
      continue;
    }

    // --- pins: refine the state, mirror the assertion ---------------------
    std::vector<AbsVal> state = analysis.fields;
    const int npins = static_cast<int>(gen.uniform(0, 2));
    bool pinned_bottom = false;
    for (int p = 0; p < npins && !pinned_bottom; ++p) {
      const int field = static_cast<int>(gen.uniform(0, nv - 1));
      const Int value = gen.uniform(0, gen.maxima[static_cast<std::size_t>(field)]);
      const Formula pin = smt::eq(LinExpr(VarId{field}), LinExpr(value));
      backend->add(pin);
      script += smt::smtlib2::assert_line(pin) + "\n";
      if (!refine(state, pin, config.domain) ||
          !refine_all(state, set, config.domain)) {
        pinned_bottom = true;
      }
    }
    if (pinned_bottom) {
      // The pinned session is abstractly infeasible as a whole.
      ++report.queries;
      Mismatch m{"pinned session", smt::make_true()};
      if (!confirm(m)) return report;
      continue;
    }

    // --- per-session queries ----------------------------------------------
    const int nqueries = static_cast<int>(gen.uniform(4, 10));
    for (int q = 0; q < nqueries && report.queries < config.queries; ++q) {
      ++report.queries;
      const int field = static_cast<int>(gen.uniform(0, nv - 1));
      const Int max_value = gen.maxima[static_cast<std::size_t>(field)];
      const int max_digits = decimal_digits(max_value);
      const AbsVal& a = state[static_cast<std::size_t>(field)];
      const VarId var{field};

      switch (gen.uniform(0, 2)) {
        case 0: {  // digit-prefix completion
          const int digits = static_cast<int>(gen.uniform(1, max_digits));
          Int value = gen.uniform(1, 9);
          for (int d = 1; d < digits; ++d) value = value * 10 + gen.uniform(0, 9);
          if (digits == 1 && gen.uniform(0, 9) == 0) value = 0;
          if (completion_admitted(a, value, digits, max_digits)) break;
          std::ostringstream what;
          what << "completion of prefix " << value << " (" << digits
               << " digits) for field " << field;
          Mismatch m{what.str(),
                     completion_formula(var, value, digits, max_digits)};
          if (!confirm(m)) return report;
          break;
        }
        case 1: {  // exact value
          const Int value = gen.uniform(0, max_value);
          if (admits_value(a, value)) break;
          Mismatch m{"value " + std::to_string(value) + " for field " +
                         std::to_string(field),
                     smt::eq(LinExpr(var), LinExpr(value))};
          if (!confirm(m)) return report;
          break;
        }
        default: {  // interval
          Int lo = gen.uniform(0, max_value);
          Int hi = gen.uniform(0, max_value);
          if (lo > hi) std::swap(lo, hi);
          if (interval_admitted(a, lo, hi)) break;
          std::ostringstream what;
          what << "interval [" << lo << ", " << hi << "] for field " << field;
          Mismatch m{what.str(),
                     smt::between(LinExpr(var), LinExpr(lo), LinExpr(hi))};
          if (!confirm(m)) return report;
          break;
        }
      }
    }
  }
  return report;
}

std::string to_text(const Report& report) {
  std::ostringstream out;
  out << "absint-diff: " << report.sessions << " sessions, " << report.queries
      << " queries, " << report.refutations << " refutations ("
      << report.compared << " confirmed unsat, " << report.unknowns
      << " unknown), " << report.mismatches << " mismatches\n";
  if (!report.first_mismatch.empty()) out << report.first_mismatch;
  if (report.mismatches == 0 && report.refutations == 0) {
    out << "VACUOUS: no refutation was ever produced — the harness proved "
           "nothing\n";
  }
  return out.str();
}

}  // namespace lejit::absint::diff
