// Differential soundness testing for the abstract interpreter (DESIGN.md
// §16.4), in the style of smt::diff: absint's only load-bearing promise is
// that a refutation is a proof, so this harness generates randomized rule
// sets, pins, and digit-prefix/value/interval queries, and whenever the
// abstraction refutes, a real smt::Backend must answer unsat. A sat answer
// is a soundness bug; the first one is reported with a self-contained
// SMT-LIB2 transcript reproducing the exact session (declares, rule asserts,
// pins, and the offending query), plus the seed/session/query coordinates.
//
// The harness's own teeth are proven by `Config::domain.test_unsound_tighten`
// (a deliberately broken ≤ transfer function): with it set, the run must
// find a mismatch — `lejit_cli absint-diff --inject-unsound --expect-mismatch`
// gates exactly that in CI.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "absint/absint.hpp"
#include "smt/backend.hpp"

namespace lejit::absint::diff {

struct Config {
  // Total abstract queries across all generated sessions.
  int queries = 1000;
  std::uint64_t seed = 1;
  // Budget per backend check (0/0 = the backend's own defaults).
  smt::Budget budget{};
  // Domain configuration under test (set test_unsound_tighten to prove the
  // harness catches a broken transfer function).
  absint::Config domain{};
};

struct Report {
  std::int64_t sessions = 0;     // rule-set sessions generated
  std::int64_t queries = 0;      // abstract queries asked
  std::int64_t refutations = 0;  // queries the abstraction refuted
  std::int64_t compared = 0;     // refutations confirmed unsat by the backend
  std::int64_t unknowns = 0;     // backend gave up: skipped, not compared
  std::int64_t mismatches = 0;   // abstract-refuted but backend-sat
  std::string first_mismatch;    // repro: coordinates + SMT-LIB2 transcript

  // A vacuous run (no refutation ever produced) proves nothing and is
  // reported as failure so harness rot cannot hide.
  bool ok() const { return mismatches == 0 && refutations > 0; }
};

// Fresh backend per session (mirrors smt::diff::BackendFactory).
using BackendFactory = std::function<std::unique_ptr<smt::Backend>()>;

Report run(const Config& config, const BackendFactory& make_backend);

std::string to_text(const Report& report);

}  // namespace lejit::absint::diff
