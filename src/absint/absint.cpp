#include "absint/absint.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

namespace lejit::absint {
namespace {

using I128 = __int128;

// Saturation sentinel for intermediate __int128 arithmetic: anything whose
// magnitude reaches kIntInf carries no usable information (the declared
// domains are far smaller), so bound computations that overshoot simply
// decline to tighten.
constexpr I128 kBig = static_cast<I128>(smt::kIntInf);

Int floor_div(I128 a, I128 b) {
  // b != 0; exact floor for either sign of a/b. Quotients here are bounded
  // by the (already range-checked) numerator, so the cast is safe.
  I128 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return static_cast<Int>(q);
}

Int ceil_div(I128 a, I128 b) {
  I128 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return static_cast<Int>(q);
}

// Euclidean remainder in [0, m).
Int pos_mod(I128 v, Int m) {
  I128 r = v % static_cast<I128>(m);
  if (r < 0) r += m;
  return static_cast<Int>(r);
}

Int gcd_int(Int a, Int b) { return std::gcd(a, b); }

// Modular inverse of a (mod m), m ≥ 1, gcd(a, m) == 1.
Int mod_inverse(Int a, Int m) {
  if (m == 1) return 0;
  Int r0 = m, r1 = pos_mod(a, m);
  Int t0 = 0, t1 = 1;
  while (r1 != 0) {
    const Int q = r0 / r1;
    const Int r2 = r0 - q * r1;
    const Int t2 = t0 - q * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  return pos_mod(t0, m);
}

void set_bottom(AbsVal& a) { a = AbsVal::bottom(); }

// Scatter the low popcount(free_mask) bits of `packed` into the set
// positions of `free_mask`, low position first (software PDEP). Strictly
// monotone in `packed`, which is what the binary searches below rely on.
std::uint64_t deposit_bits(std::uint64_t packed, std::uint64_t free_mask) {
  std::uint64_t out = 0;
  while (free_mask != 0) {
    const std::uint64_t bit = free_mask & (~free_mask + 1);
    if ((packed & 1u) != 0) out |= bit;
    packed >>= 1;
    free_mask &= free_mask - 1;
  }
  return out;
}

}  // namespace

bool Congruence::admits(Int v) const noexcept {
  if (mod <= 1) return true;
  return pos_mod(v, mod) == rem;
}

AbsVal AbsVal::top(Int lo, Int hi) {
  AbsVal a;
  a.range = Interval{lo, hi};
  return a;
}

std::optional<Int> least_match_at_least(Int lo, const KnownBits& bits) {
  if (lo < 0) lo = 0;
  const std::uint64_t free = ~bits.mask & kValueMask;
  const int k = std::popcount(free);
  const std::uint64_t target = static_cast<std::uint64_t>(lo);
  // Values with free bits packed: v(f) = bits.value | deposit(f, free) is
  // strictly increasing in f, so binary-search the least f with v(f) ≥ lo.
  std::uint64_t fl = 0;
  std::uint64_t fh = (k >= 64) ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << k) - 1;
  if ((bits.value | deposit_bits(fh, free)) < target) return std::nullopt;
  while (fl < fh) {
    const std::uint64_t mid = fl + (fh - fl) / 2;
    if ((bits.value | deposit_bits(mid, free)) >= target) {
      fh = mid;
    } else {
      fl = mid + 1;
    }
  }
  return static_cast<Int>(bits.value | deposit_bits(fl, free));
}

std::optional<Int> greatest_match_at_most(Int hi, const KnownBits& bits) {
  if (hi < 0) return std::nullopt;
  const std::uint64_t free = ~bits.mask & kValueMask;
  const int k = std::popcount(free);
  const std::uint64_t target = static_cast<std::uint64_t>(hi);
  if (bits.value > target) return std::nullopt;
  std::uint64_t fl = 0;
  std::uint64_t fh = (k >= 64) ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << k) - 1;
  while (fl < fh) {
    const std::uint64_t mid = fh - (fh - fl) / 2;  // bias up
    if ((bits.value | deposit_bits(mid, free)) <= target) {
      fl = mid;
    } else {
      fh = mid - 1;
    }
  }
  return static_cast<Int>(bits.value | deposit_bits(fl, free));
}

namespace {

// Meet of two congruences via CRT. nullopt ⇒ contradiction (bottom). When
// the combined modulus would exceed `cap`, fall back to the finer input —
// either input alone over-approximates the meet, so this stays sound.
std::optional<Congruence> meet_cong(const Congruence& a, const Congruence& b,
                                    Int cap) {
  if (a.is_top()) return b;
  if (b.is_top()) return a;
  const Int g = gcd_int(a.mod, b.mod);
  if (pos_mod(static_cast<I128>(a.rem) - b.rem, g) != 0) return std::nullopt;
  const I128 lcm = static_cast<I128>(a.mod) / g * b.mod;
  if (lcm > static_cast<I128>(cap)) return a.mod >= b.mod ? a : b;
  const Int m = static_cast<Int>(lcm);
  // r ≡ a.rem (mod a.mod), r ≡ b.rem (mod b.mod):
  //   r = a.rem + a.mod * t, with t ≡ (b.rem − a.rem)/g · inv(a.mod/g)
  //   (mod b.mod/g).
  const Int diff = pos_mod(static_cast<I128>(b.rem) - a.rem, b.mod);
  const Int m2 = b.mod / g;
  const Int t = pos_mod(static_cast<I128>(diff / g) *
                            mod_inverse(pos_mod(a.mod / g, m2), m2),
                        m2);
  const Int r = pos_mod(static_cast<I128>(a.rem) +
                            static_cast<I128>(a.mod) * t,
                        m);
  return Congruence{m, r};
}

Congruence join_cong(const Congruence& a, const Congruence& b) {
  if (a.is_top() || b.is_top()) return Congruence{};
  Int g = gcd_int(a.mod, b.mod);
  g = gcd_int(g, std::abs(a.rem - b.rem));
  if (g <= 1) return Congruence{};
  return Congruence{g, pos_mod(a.rem, g)};
}

// nullopt ⇒ conflicting required bits (bottom).
std::optional<KnownBits> meet_bits(const KnownBits& a, const KnownBits& b) {
  if (((a.value ^ b.value) & a.mask & b.mask) != 0) return std::nullopt;
  KnownBits r;
  r.mask = a.mask | b.mask;
  r.value = a.value | b.value;
  return r;
}

KnownBits join_bits(const KnownBits& a, const KnownBits& b) {
  KnownBits r;
  r.mask = a.mask & b.mask & ~(a.value ^ b.value);
  r.value = a.value & r.mask;
  return r;
}

}  // namespace

void normalize(AbsVal& a, const Config& config) {
  // Each pass only meets components with consequences of the others, so the
  // loop is descending; three rounds reach the mutual fixpoint for this
  // product in practice, and stopping early would still be sound.
  for (int round = 0; round < 3; ++round) {
    if (a.is_bottom()) {
      set_bottom(a);
      return;
    }
    AbsVal before = a;

    // Congruence shaves interval endpoints.
    if (!a.cong.is_top()) {
      a.range.lo += pos_mod(static_cast<I128>(a.cong.rem) - a.range.lo,
                            a.cong.mod);
      a.range.hi -= pos_mod(static_cast<I128>(a.range.hi) - a.cong.rem,
                            a.cong.mod);
      if (a.range.is_empty()) {
        set_bottom(a);
        return;
      }
    }

    // Known bits shave interval endpoints (exactly).
    if (!a.bits.is_top()) {
      const auto lo = least_match_at_least(a.range.lo, a.bits);
      if (!lo || *lo > a.range.hi) {
        set_bottom(a);
        return;
      }
      const auto hi = greatest_match_at_most(a.range.hi, a.bits);
      if (!hi || *hi < *lo) {
        set_bottom(a);
        return;
      }
      a.range = Interval{*lo, *hi};
    }

    // Interval endpoints fix the high bits: every v in [lo, hi] shares the
    // bits above the highest position where lo and hi differ (lo ≥ 0 here).
    if (a.range.lo >= 0) {
      const auto ulo = static_cast<std::uint64_t>(a.range.lo);
      const auto uhi = static_cast<std::uint64_t>(a.range.hi);
      const std::uint64_t diff = ulo ^ uhi;
      const std::uint64_t common =
          diff == 0 ? kValueMask
                    : (kValueMask & ~((std::uint64_t{2} << (63 - std::countl_zero(diff))) - 1));
      const auto merged = meet_bits(a.bits, KnownBits{common, ulo & common});
      if (!merged) {
        set_bottom(a);
        return;
      }
      a.bits = *merged;
    }

    // Low contiguous known bits induce a power-of-two congruence.
    const int low = std::countr_one(a.bits.mask);
    if (low > 0) {
      const int k = std::min(low, kValueBits - 1);
      const Int m = Int{1} << k;
      if (m <= config.max_modulus) {
        const auto merged = meet_cong(
            a.cong,
            Congruence{m, static_cast<Int>(a.bits.value &
                                           (static_cast<std::uint64_t>(m) - 1))},
            config.max_modulus);
        if (!merged) {
          set_bottom(a);
          return;
        }
        a.cong = *merged;
      }
    }

    // A power-of-two congruence fixes the low bits.
    if (!a.cong.is_top() && std::has_single_bit(static_cast<std::uint64_t>(a.cong.mod))) {
      const auto m = static_cast<std::uint64_t>(a.cong.mod);
      const auto merged =
          meet_bits(a.bits, KnownBits{m - 1, static_cast<std::uint64_t>(a.cong.rem)});
      if (!merged) {
        set_bottom(a);
        return;
      }
      a.bits = *merged;
    }

    if (a == before) return;
  }
}

AbsVal meet(const AbsVal& a, const AbsVal& b, const Config& config) {
  if (a.is_bottom() || b.is_bottom()) return AbsVal::bottom();
  AbsVal r;
  r.range = intersect(a.range, b.range);
  const auto cong = meet_cong(a.cong, b.cong, config.max_modulus);
  const auto bits = meet_bits(a.bits, b.bits);
  if (r.range.is_empty() || !cong || !bits) return AbsVal::bottom();
  r.cong = *cong;
  r.bits = *bits;
  normalize(r, config);
  return r;
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  AbsVal r;
  r.range = Interval{std::min(a.range.lo, b.range.lo),
                     std::max(a.range.hi, b.range.hi)};
  r.cong = join_cong(a.cong, b.cong);
  r.bits = join_bits(a.bits, b.bits);
  return r;
}

bool interval_admitted(const AbsVal& a, Int lo, Int hi) {
  if (a.is_bottom()) return false;
  lo = std::max(lo, a.range.lo);
  hi = std::min(hi, a.range.hi);
  if (lo > hi) return false;
  if (!a.cong.is_top()) {
    // Least v ≥ lo with v ≡ rem (mod m); compare against hi.
    const I128 first =
        static_cast<I128>(lo) +
        pos_mod(static_cast<I128>(a.cong.rem) - lo, a.cong.mod);
    if (first > static_cast<I128>(hi)) return false;
  }
  if (!a.bits.is_top()) {
    const auto first = least_match_at_least(lo, a.bits);
    if (!first || *first > hi) return false;
  }
  return true;
}

bool completion_admitted(const AbsVal& a, Int value, int digits,
                         int max_digits) {
  if (a.is_bottom()) return false;
  if (digits <= 0) return true;  // empty prefix: every canonical value
  if (admits_value(a, value)) return true;
  if (value == 0) return false;  // "0" cannot extend (canonical form)
  I128 scale = 1;
  for (int m = 1; m <= max_digits - digits; ++m) {
    scale *= 10;
    if (scale > kBig) break;
    const I128 lo = static_cast<I128>(value) * scale;
    const I128 hi = lo + scale - 1;
    if (lo > kBig) break;
    if (interval_admitted(a, static_cast<Int>(lo),
                          static_cast<Int>(std::min(hi, kBig)))) {
      return true;
    }
  }
  return false;
}

namespace {

// --- atom transfer functions -------------------------------------------------

std::size_t idx(smt::VarId v) { return static_cast<std::size_t>(v.index); }

// expr ≤ 0: for each term, bound it by the extreme values of the others.
bool refine_le(std::vector<AbsVal>& state, const smt::LinExpr& expr,
               const Config& config) {
  const auto& terms = expr.terms();
  if (terms.empty()) return expr.constant() <= 0;
  // min/max of each term over its interval.
  std::vector<I128> tmin(terms.size());
  std::vector<I128> tmax(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const AbsVal& v = state[idx(terms[i].first)];
    if (v.is_bottom()) return false;
    const I128 c = terms[i].second;
    const I128 x1 = c * v.range.lo;
    const I128 x2 = c * v.range.hi;
    tmin[i] = std::min(x1, x2);
    tmax[i] = std::max(x1, x2);
  }
  I128 sum_min = expr.constant();
  for (const I128 m : tmin) sum_min += m;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    AbsVal& v = state[idx(terms[i].first)];
    const Int c = terms[i].second;
    // c·x ≤ −constant − Σ_{j≠i} min(term_j) = −(sum_min − tmin[i]).
    const I128 rhs = tmin[i] - sum_min;
    if (rhs >= kBig || rhs <= -kBig) continue;  // no usable information
    if (c > 0) {
      Int bound = floor_div(rhs, c);
      if (config.test_unsound_tighten) --bound;  // TEST ONLY: broken domain
      if (bound < v.range.hi) {
        v.range.hi = bound;
        normalize(v, config);
        if (v.is_bottom()) return false;
      }
    } else {
      Int bound = ceil_div(rhs, c);
      if (config.test_unsound_tighten) ++bound;  // TEST ONLY: broken domain
      if (bound > v.range.lo) {
        v.range.lo = bound;
        normalize(v, config);
        if (v.is_bottom()) return false;
      }
    }
  }
  return true;
}

// expr == 0, congruence direction: each variable's residue is determined by
// the others modulo the gcd of their term moduli (a term c·x with x ≡ r
// (mod m) is determined mod |c|·m; a singleton term is exact — modulus 0).
bool refine_eq_congruence(std::vector<AbsVal>& state, const smt::LinExpr& expr,
                          const Config& config) {
  const auto& terms = expr.terms();
  for (std::size_t i = 0; i < terms.size(); ++i) {
    AbsVal& target = state[idx(terms[i].first)];
    const Int ci = terms[i].second;
    Int g = 0;  // gcd identity: 0 means "exactly determined so far"
    I128 rhs = -static_cast<I128>(expr.constant());
    bool usable = true;
    for (std::size_t j = 0; j < terms.size(); ++j) {
      if (j == i) continue;
      const AbsVal& v = state[idx(terms[j].first)];
      const Int cj = terms[j].second;
      if (v.range.is_singleton()) {
        rhs -= static_cast<I128>(cj) * v.range.lo;
        continue;
      }
      const I128 mj = static_cast<I128>(std::abs(cj)) * v.cong.mod;
      if (mj > static_cast<I128>(config.max_modulus)) {
        usable = false;
        break;
      }
      g = gcd_int(g, static_cast<Int>(mj));
      rhs -= static_cast<I128>(cj) * v.cong.rem;
    }
    if (!usable) continue;
    if (g == 0) {
      // ci · x == rhs exactly.
      if (rhs % ci != 0) return false;
      const I128 x = rhs / ci;
      if (x < target.range.lo || x > target.range.hi) return false;
      target.range = Interval{static_cast<Int>(x), static_cast<Int>(x)};
      normalize(target, config);
      if (target.is_bottom()) return false;
      continue;
    }
    if (g == 1) continue;
    // ci · x ≡ rhs (mod g).
    const Int r = pos_mod(rhs, g);
    const Int d = gcd_int(std::abs(ci), g);
    if (r % d != 0) return false;  // no solution at all: proof of UNSAT
    const Int m2 = g / d;
    if (m2 <= 1) continue;
    const Int a = pos_mod(ci / d, m2);
    const Int x_rem = pos_mod(static_cast<I128>(r / d) * mod_inverse(a, m2), m2);
    const auto merged =
        meet_cong(target.cong, Congruence{m2, x_rem}, config.max_modulus);
    if (!merged) return false;
    target.cong = *merged;
    normalize(target, config);
    if (target.is_bottom()) return false;
  }
  return true;
}

// expr != 0: with every variable but one pinned to a singleton, the atom
// reduces to x ≠ v — shave v off the endpoints. Otherwise no information.
bool refine_ne(std::vector<AbsVal>& state, const smt::LinExpr& expr,
               const Config& config) {
  const auto& terms = expr.terms();
  I128 c = expr.constant();
  AbsVal* target = nullptr;
  Int coeff = 0;
  for (const auto& [var, cf] : terms) {
    AbsVal& v = state[idx(var)];
    if (v.is_bottom()) return false;
    if (v.range.is_singleton()) {
      c += static_cast<I128>(cf) * v.range.lo;
      continue;
    }
    if (target != nullptr) return true;  // ≥ 2 free vars: no information
    target = &v;
    coeff = cf;
  }
  if (target == nullptr) return c != 0;  // fully constant atom
  if (c % coeff != 0) return true;       // excluded value not an integer
  const I128 banned = -c / coeff;
  if (banned < target->range.lo || banned > target->range.hi) return true;
  if (target->range.is_singleton()) return false;  // == banned: contradiction
  if (banned == static_cast<I128>(target->range.lo)) {
    ++target->range.lo;
    normalize(*target, config);
    return !target->is_bottom();
  }
  if (banned == static_cast<I128>(target->range.hi)) {
    --target->range.hi;
    normalize(*target, config);
    return !target->is_bottom();
  }
  return true;
}

bool refine_atom(std::vector<AbsVal>& state, smt::AtomOp op,
                 const smt::LinExpr& expr, const Config& config) {
  switch (op) {
    case smt::AtomOp::kLe:
      return refine_le(state, expr, config);
    case smt::AtomOp::kEq: {
      if (!refine_le(state, expr, config)) return false;
      smt::LinExpr neg = expr;
      neg *= -1;
      if (!refine_le(state, neg, config)) return false;
      return refine_eq_congruence(state, expr, config);
    }
    case smt::AtomOp::kNe:
      return refine_ne(state, expr, config);
  }
  return true;
}

bool refine_node(std::vector<AbsVal>& state, const smt::FormulaNode& node,
                 const Config& config) {
  switch (node.kind()) {
    case smt::FormulaKind::kTrue:
      return true;
    case smt::FormulaKind::kFalse:
      return false;
    case smt::FormulaKind::kAtom:
      return refine_atom(state, node.atom_op(), node.atom_expr(), config);
    case smt::FormulaKind::kAnd:
      for (const auto& child : node.children()) {
        if (!child) continue;
        if (!refine_node(state, *child, config)) return false;
      }
      return true;
    case smt::FormulaKind::kOr: {
      // Refine a copy per branch and join the survivors; all branches
      // bottom ⇒ the disjunction is abstractly unsatisfiable.
      bool any = false;
      std::vector<AbsVal> joined;
      for (const auto& child : node.children()) {
        if (!child) continue;
        std::vector<AbsVal> branch = state;
        if (!refine_node(branch, *child, config)) continue;
        if (!any) {
          joined = std::move(branch);
          any = true;
        } else {
          for (std::size_t i = 0; i < joined.size(); ++i) {
            joined[i] = join(joined[i], branch[i]);
          }
        }
      }
      if (!any) return false;
      state = std::move(joined);
      return true;
    }
  }
  return true;
}

}  // namespace

bool refine(std::vector<AbsVal>& state, const smt::Formula& f,
            const Config& config) {
  if (!f) return true;  // null formula: no constraint
  // A formula referencing a variable outside the state (e.g. a fine-field
  // rule analyzed against a coarse layout — lint reports it as
  // E_FIELD_MISMATCH) cannot be interpreted here; skipping the refinement
  // entirely is the sound answer (no constraint learned).
  for (const int v : rules::referenced_fields(f))
    if (v < 0 || static_cast<std::size_t>(v) >= state.size()) return true;
  if (refine_node(state, *f, config)) return true;
  for (AbsVal& v : state) set_bottom(v);
  return false;
}

bool refine_all(std::vector<AbsVal>& state, const rules::RuleSet& set,
                const Config& config) {
  for (int iter = 0; iter < std::max(1, config.max_iterations); ++iter) {
    const std::vector<AbsVal> before = state;
    for (const rules::Rule& rule : set.rules) {
      if (!refine(state, rule.formula, config)) return false;
    }
    if (state == before) return true;
  }
  return true;
}

std::vector<AbsVal> top_state(const telemetry::RowLayout& layout,
                              const Config& config) {
  std::vector<AbsVal> state;
  state.reserve(layout.fields.size());
  for (const telemetry::FieldSpec& spec : layout.fields) {
    AbsVal a = AbsVal::top(0, spec.max_value);
    normalize(a, config);
    state.push_back(a);
  }
  return state;
}

Analysis analyze(const rules::RuleSet& set, const telemetry::RowLayout& layout,
                 const Config& config) {
  Analysis out;
  out.fields = top_state(layout, config);
  const int cap = std::max(1, config.max_iterations);
  for (out.iterations = 0; out.iterations < cap; ++out.iterations) {
    const std::vector<AbsVal> before = out.fields;
    for (const rules::Rule& rule : set.rules) {
      if (!refine(out.fields, rule.formula, config)) {
        out.infeasible = true;
        out.converged = true;
        return out;
      }
    }
    if (out.fields == before) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace lejit::absint
