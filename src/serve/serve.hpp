// lejit::serve — the long-lived batched decode service (DESIGN.md §13).
//
// Turns the one-shot decode workflow into a serving runtime: a bounded
// request queue feeds `workers` independent batch groups, each group holds
// `batch` pool-allocated DecodeSessions decoding rows concurrently, and the
// sessions of a group fuse their LM forwards into cross-row batched matmuls
// through a Batcher rendezvous. The expensive immutable state — model
// weights, tokenizer, compiled decode plan, static lint hulls, backend
// configuration — is loaded once and shared read-only by every session;
// each session owns only its cheap per-row state (decoder walk + feasibility
// cache, solver scopes, RNG, private KV cache).
//
// Determinism contract: row i of a run() call is decoded with the RNG
// derived from (seed, i) by core::row_rng — exactly the batch driver's
// derivation — and the batched forward is bit-identical per session to the
// sequential one, so serve output for a fixed (seed, prompts) pair is
// bit-identical to a sequential per-row decode, independent of worker
// count, batch width, queue order, and thread scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/decoder.hpp"
#include "lm/tokenizer.hpp"
#include "lm/transformer.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"

namespace lejit::serve {

struct ServeConfig {
  // Independent batch groups; each gets its own Batcher and `batch`
  // sessions, so the total decode concurrency is workers * batch.
  int workers = 1;
  // Sessions per group = target width of each batched LM forward.
  int batch = 4;
  // Admission queue bound: submissions beyond this backpressure the caller.
  std::size_t queue_capacity = 1024;
  // Row RNG seed (core::row_rng derivation, shared with core/batch).
  std::uint64_t seed = 1;
};

struct ServeStats {
  std::uint64_t rows = 0;            // rows decoded across all run() calls
  std::uint64_t degraded_rows = 0;   // rows whose generate() threw (kFault)
  std::uint64_t batched_forwards = 0;   // Transformer::logits_batch calls
  std::uint64_t forwarded_contexts = 0; // Σ batch width over those calls

  // Realized batching: contexts served per weight-matrix sweep.
  double mean_batch_width() const {
    return batched_forwards == 0
               ? 0.0
               : static_cast<double>(forwarded_contexts) /
                     static_cast<double>(batched_forwards);
  }
};

// One pooled decode session: a GuidedDecoder whose LM calls are routed
// through the group's Batcher with a session-private KV cache. Sessions are
// allocated once at server start and reused for every row they pull off the
// queue — per-row cost is just the decoder's walk reset, not solver or model
// setup.
class DecodeSession {
 public:
  DecodeSession(Batcher& batcher, const lm::Transformer& model,
                const lm::CharTokenizer& tokenizer,
                const telemetry::RowLayout& layout, rules::RuleSet rules,
                const core::DecoderConfig& config);

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  core::DecodeResult decode(util::Rng& rng, std::string_view prompt) {
    return decoder_.generate(rng, prompt);
  }

  // Called after a decode threw: discards the session's KV prefix so the
  // fault cannot leak an inconsistent cache into the next row.
  void reset_lm_cache() noexcept { model_.reset_cache(); }

 private:
  // LanguageModel proxy: blocks in the Batcher until the group's batched
  // forward serves this session's context.
  class BatchedModel final : public lm::LanguageModel {
   public:
    BatchedModel(Batcher& batcher, const lm::Transformer& model)
        : batcher_(batcher), vocab_(model.vocab_size()) {}
    int vocab_size() const override { return vocab_; }
    std::vector<float> logits(std::span<const int> context) const override {
      return batcher_.forward(context, cache_);
    }
    // Drop the cached prefix. A forward that threw mid-update can leave the
    // cache's recorded ids ahead of its written K/V rows; clearing forces a
    // full recompute on the next row instead of reusing a poisoned prefix.
    void reset_cache() noexcept { cache_.clear(); }

   private:
    Batcher& batcher_;
    int vocab_;
    mutable lm::KvCache cache_;
  };

  BatchedModel model_;  // must outlive decoder_ (declared first)
  core::GuidedDecoder decoder_;
};

class Server {
 public:
  // Shares `model` and `tokenizer` (borrowed; must outlive the server)
  // across all sessions. When `decoder_config.compile_plan` is set, the plan
  // is compiled ONCE here and handed to every session, instead of once per
  // session. Construction builds all workers * batch sessions and starts
  // their threads.
  Server(const lm::Transformer& model, const lm::CharTokenizer& tokenizer,
         const telemetry::RowLayout& layout, rules::RuleSet rules,
         core::DecoderConfig decoder_config, ServeConfig config);
  ~Server();  // closes the queue and joins all session threads

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Decode one row per prompt (empty prompt = synthesis) and return results
  // in input order. Synchronous; may be called repeatedly — sessions, caches
  // and plan survive across calls. Rows are numbered from 0 per call, so a
  // run() with the same (seed, prompts) always returns the same rows.
  // A row whose decode throws is reported degraded (FailReason::kFault)
  // rather than taking the run down.
  std::vector<core::DecodeResult> run(std::span<const std::string> prompts);

  ServeStats stats() const;
  const ServeConfig& config() const noexcept { return config_; }

 private:
  struct RunState;
  struct Job {
    std::size_t row = 0;
    // Shared, not borrowed: the session thread's copy keeps the run's
    // prompts and condition variable alive through the final
    // deliver()/notify_all even after run() has already returned — or
    // unwound early on a concurrently closed queue.
    std::shared_ptr<RunState> run;
  };
  struct Group {
    explicit Group(const lm::Transformer& model) : batcher(model) {}
    Batcher batcher;
    std::vector<std::unique_ptr<DecodeSession>> sessions;
  };

  void session_main(Group& group, DecodeSession& session);

  ServeConfig config_;
  BoundedQueue<Job> queue_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> degraded_rows_{0};
};

}  // namespace lejit::serve
