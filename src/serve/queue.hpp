// Bounded MPMC request queue for the serve runtime (DESIGN.md §13).
//
// Deliberately minimal: a mutex + two condition variables around a deque.
// The queue is the service's admission control — push() blocks when the
// queue is full, so a producer submitting faster than the worker pool can
// decode is backpressured instead of growing memory without bound. close()
// wakes everyone; pop() then drains the remaining items before reporting
// end-of-stream, so no accepted request is ever dropped.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/error.hpp"
#include "util/sync.hpp"

namespace lejit::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LEJIT_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  // Blocks while the queue is full. Returns false (dropping the item) if the
  // queue was closed before space became available.
  bool push(T item) {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. Returns std::nullopt only once the
  // queue is closed AND fully drained.
  std::optional<T> pop() {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    const util::MutexLock lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    const util::MutexLock lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable util::Mutex mu_;
  util::CondVar not_full_, not_empty_;
  std::deque<T> items_ LEJIT_GUARDED_BY(mu_);
  std::size_t capacity_;  // immutable after construction
  bool closed_ LEJIT_GUARDED_BY(mu_) = false;
};

}  // namespace lejit::serve
