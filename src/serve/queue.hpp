// Bounded MPMC request queue for the serve runtime (DESIGN.md §13).
//
// Deliberately minimal: a mutex + two condition variables around a deque.
// The queue is the service's admission control — push() blocks when the
// queue is full, so a producer submitting faster than the worker pool can
// decode is backpressured instead of growing memory without bound. close()
// wakes everyone; pop() then drains the remaining items before reporting
// end-of-stream, so no accepted request is ever dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace lejit::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LEJIT_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  // Blocks while the queue is full. Returns false (dropping the item) if the
  // queue was closed before space became available.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. Returns std::nullopt only once the
  // queue is closed AND fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace lejit::serve
