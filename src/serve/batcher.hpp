// Cross-session batched LM forwards via a leader/follower rendezvous
// (DESIGN.md §13).
//
// One Batcher serves one worker group of decode sessions. Sessions register
// at row boundaries (activate/deactivate) and call forward() whenever their
// decoder needs next-token logits. A forward() call blocks until every
// *active* session of the group is blocked in forward() too; the last
// arrival — or a session leaving the group mid-wait — becomes the leader and
// runs one Transformer::logits_batch() over all pending contexts, then wakes
// the group. Sessions between LM calls (solver work, sampling) simply have
// not arrived yet; the rendezvous waits for them, which is what aligns the
// group's decode loops into shared matmul sweeps.
//
// Determinism: logits_batch() is bit-identical per session to the sequential
// forward regardless of batch composition, so the rendezvous changes *when*
// logits are computed, never their values — decoded text is independent of
// group size, arrival order, and scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "lm/transformer.hpp"

namespace lejit::serve {

class Batcher {
 public:
  explicit Batcher(const lm::Transformer& model) : model_(model) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // Row boundaries: a session counts toward the rendezvous only between
  // activate() and deactivate(). deactivate() fires the pending batch if the
  // leaving session was the last straggler the group was waiting for.
  void activate();
  void deactivate();

  // Blocking batched forward for one session (must be active). `cache` is
  // the session's private KV cache.
  std::vector<float> forward(std::span<const int> context, lm::KvCache& cache);

  // Lifetime totals, for ServeStats.
  void snapshot(std::uint64_t& forwards, std::uint64_t& contexts) const;

 private:
  struct Pending {
    std::vector<int> context;
    lm::KvCache* cache = nullptr;
    std::vector<float> out;
    bool done = false;
  };

  // Precondition: mu_ held, waiting_ non-empty. Runs the batched forward and
  // completes every pending request.
  void fire_locked();

  const lm::Transformer& model_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  std::vector<Pending*> waiting_;
  std::uint64_t forwards_ = 0;
  std::uint64_t contexts_ = 0;
};

}  // namespace lejit::serve
