// Cross-session batched LM forwards via a leader/follower rendezvous
// (DESIGN.md §13).
//
// One Batcher serves one worker group of decode sessions. Sessions register
// at row boundaries (activate/deactivate) and call forward() whenever their
// decoder needs next-token logits. A forward() call blocks until every
// *active* session of the group is blocked in forward() too; the last
// arrival — or a session leaving the group mid-wait — becomes the leader and
// runs one Transformer::logits_batch() over all pending contexts, then wakes
// the group. Sessions between LM calls (solver work, sampling) simply have
// not arrived yet; the rendezvous waits for them, which is what aligns the
// group's decode loops into shared matmul sweeps.
//
// Determinism: logits_batch() is bit-identical per session to the sequential
// forward regardless of batch composition, so the rendezvous changes *when*
// logits are computed, never their values — decoded text is independent of
// group size, arrival order, and scheduling.
#pragma once

#include <cstdint>
#include <exception>
#include <span>
#include <vector>

#include "lm/transformer.hpp"
#include "util/sync.hpp"

namespace lejit::serve {

class Batcher {
 public:
  explicit Batcher(const lm::Transformer& model) : model_(model) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // Row boundaries: a session counts toward the rendezvous only between
  // activate() and deactivate(). deactivate() fires the pending batch if the
  // leaving session was the last straggler the group was waiting for.
  void activate();
  void deactivate();

  // Blocking batched forward for one session (must be active). `cache` is
  // the session's private KV cache. If the round's logits_batch() throws,
  // every session of the round rethrows that exception here — the round
  // always completes, one way or the other, so a failing forward degrades
  // the affected rows instead of wedging the group.
  std::vector<float> forward(std::span<const int> context, lm::KvCache& cache);

  // Lifetime totals, for ServeStats.
  void snapshot(std::uint64_t& forwards, std::uint64_t& contexts) const;

 private:
  struct Pending {
    std::vector<int> context;
    lm::KvCache* cache = nullptr;
    std::vector<float> out;
    std::exception_ptr error;  // set instead of `out` when the round threw
    bool done = false;
  };

  // Precondition: `lock` holds mu_, waiting_ non-empty. Completes every
  // pending request of the current round — with logits, or with the
  // exception_ptr of a throwing forward. Never throws itself; the lock is
  // released for the duration of the compute and reacquired to publish.
  // (The mid-function release through a caller-owned lock is beyond the
  // thread-safety analysis, so the body is exempted; callers are still
  // checked against the REQUIRES contract.)
  void fire(util::MutexLock& lock)
      LEJIT_REQUIRES(mu_) LEJIT_NO_THREAD_SAFETY_ANALYSIS;

  const lm::Transformer& model_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  int active_ LEJIT_GUARDED_BY(mu_) = 0;
  std::vector<Pending*> waiting_ LEJIT_GUARDED_BY(mu_);
  std::uint64_t forwards_ LEJIT_GUARDED_BY(mu_) = 0;
  std::uint64_t contexts_ LEJIT_GUARDED_BY(mu_) = 0;
};

}  // namespace lejit::serve
