#include "serve/serve.hpp"

#include <exception>

#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace lejit::serve {

DecodeSession::DecodeSession(Batcher& batcher, const lm::Transformer& model,
                             const lm::CharTokenizer& tokenizer,
                             const telemetry::RowLayout& layout,
                             rules::RuleSet rules,
                             const core::DecoderConfig& config)
    : model_(batcher, model),
      decoder_(model_, tokenizer, layout, std::move(rules), config) {}

// One synchronous run() call: owned prompt copies, results slots, plus a
// countdown latch the session threads decrement as rows finish. The prompts
// live here — not in the caller's span — so Jobs stay self-contained even
// if run() unwinds before the rows drain (e.g. push on a closed queue).
struct Server::RunState {
  std::vector<std::string> prompts;  // immutable once jobs are queued
  util::Mutex mu;
  util::CondVar done_cv;
  std::vector<core::DecodeResult> results LEJIT_GUARDED_BY(mu);
  std::size_t remaining LEJIT_GUARDED_BY(mu) = 0;

  // Safe only because the caller's Job holds a shared_ptr to this state:
  // once remaining hits 0, run() may wake and return at any point, so the
  // notify below must not be the last reference's race against destruction.
  void deliver(std::size_t row, core::DecodeResult result) {
    util::MutexLock lock(mu);
    results[row] = std::move(result);
    if (--remaining == 0) {
      lock.unlock();
      done_cv.notify_all();
    }
  }
};

Server::Server(const lm::Transformer& model,
               const lm::CharTokenizer& tokenizer,
               const telemetry::RowLayout& layout, rules::RuleSet rules,
               core::DecoderConfig decoder_config, ServeConfig config)
    : config_(config), queue_(config.queue_capacity) {
  LEJIT_REQUIRE(config_.workers > 0, "serve: workers must be positive");
  LEJIT_REQUIRE(config_.batch > 0, "serve: batch must be positive");

  // Compile the decode plan once and share the artifact, instead of letting
  // every session's decoder constructor redo the identical compile.
  if (decoder_config.compile_plan && !decoder_config.plan) {
    decoder_config.plan =
        plan::compile(rules, layout, decoder_config.plan_config);
    decoder_config.compile_plan = false;
  }

  groups_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    auto group = std::make_unique<Group>(model);
    group->sessions.reserve(static_cast<std::size_t>(config_.batch));
    for (int b = 0; b < config_.batch; ++b)
      group->sessions.push_back(std::make_unique<DecodeSession>(
          group->batcher, model, tokenizer, layout, rules, decoder_config));
    groups_.push_back(std::move(group));
  }

  // Threads start only after every session constructed, so a throwing
  // constructor leaves nothing to join.
  threads_.reserve(
      static_cast<std::size_t>(config_.workers * config_.batch));
  for (auto& group : groups_)
    for (auto& session : group->sessions)
      threads_.emplace_back(
          [this, &group, &session] { session_main(*group, *session); });
}

Server::~Server() {
  queue_.close();
  for (auto& t : threads_) t.join();
}

void Server::session_main(Group& group, DecodeSession& session) {
  while (auto job = queue_.pop()) {
    group.batcher.activate();
    core::DecodeResult result;
    try {
      // Same (seed, row) → RNG derivation as the offline batch driver.
      // Serve does not retry rows (no attempt loop), so attempt is 0.
      util::Rng rng = core::row_rng(config_.seed, job->row, 0);
      result = session.decode(rng, job->run->prompts[job->row]);
    } catch (const std::exception& e) {
      result = core::DecodeResult{};
      result.reason = core::FailReason::kFault;
      result.fail_detail = "serve row " + std::to_string(job->row) +
                           " degraded: " + e.what();
      // The throw may have interrupted a KV-cache update mid-write; drop the
      // cached prefix so the fault stays confined to this row.
      session.reset_lm_cache();
      degraded_rows_.fetch_add(1, std::memory_order_relaxed);
    }
    // Leave the rendezvous before delivering: the group must never wait on a
    // session that is done with its row.
    group.batcher.deactivate();
    rows_.fetch_add(1, std::memory_order_relaxed);
    job->run->deliver(job->row, std::move(result));
  }
}

std::vector<core::DecodeResult> Server::run(
    std::span<const std::string> prompts) {
  if (prompts.empty()) return {};
  auto state = std::make_shared<RunState>();
  state->prompts.assign(prompts.begin(), prompts.end());
  {
    // No session thread can see the state before its job is queued, but the
    // guarded members are initialized under the lock anyway — uncontended,
    // and it keeps the thread-safety analysis exact.
    const util::MutexLock lock(state->mu);
    state->results.resize(prompts.size());
    state->remaining = prompts.size();
  }

  util::Timer timer;
  for (std::size_t i = 0; i < state->prompts.size(); ++i) {
    const bool accepted = queue_.push(Job{i, state});
    LEJIT_REQUIRE(accepted, "serve: run() on a closed server");
  }
  std::vector<core::DecodeResult> results;
  {
    util::MutexLock lock(state->mu);
    while (state->remaining != 0) state->done_cv.wait(lock);
    results = std::move(state->results);
  }

  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_rows = registry.counter("serve.rows");
    static obs::Histogram& h_latency = registry.histogram(
        "serve.run_latency_us", obs::HistogramOptions::latency_us());
    c_rows.add(static_cast<std::int64_t>(prompts.size()));
    h_latency.observe(timer.elapsed_seconds() * 1e6);
  }
  return results;
}

ServeStats Server::stats() const {
  ServeStats stats;
  stats.rows = rows_.load(std::memory_order_relaxed);
  stats.degraded_rows = degraded_rows_.load(std::memory_order_relaxed);
  for (const auto& group : groups_) {
    std::uint64_t forwards = 0, contexts = 0;
    group->batcher.snapshot(forwards, contexts);
    stats.batched_forwards += forwards;
    stats.forwarded_contexts += contexts;
  }
  return stats;
}

}  // namespace lejit::serve
