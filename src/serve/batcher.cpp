#include "serve/batcher.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace lejit::serve {

void Batcher::activate() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++active_;
}

void Batcher::deactivate() {
  const std::lock_guard<std::mutex> lock(mu_);
  LEJIT_ASSERT(active_ > 0, "deactivate without matching activate");
  --active_;
  // The group may have been waiting only for us: fire for the others.
  if (!waiting_.empty() && static_cast<int>(waiting_.size()) == active_)
    fire_locked();
}

std::vector<float> Batcher::forward(std::span<const int> context,
                                    lm::KvCache& cache) {
  std::unique_lock<std::mutex> lock(mu_);
  Pending pending;
  pending.context.assign(context.begin(), context.end());
  pending.cache = &cache;
  waiting_.push_back(&pending);
  LEJIT_ASSERT(static_cast<int>(waiting_.size()) <= active_,
               "forward() from a session that never activated");
  if (static_cast<int>(waiting_.size()) == active_)
    fire_locked();  // we are the last arrival: lead this round
  else
    cv_.wait(lock, [&pending] { return pending.done; });
  return std::move(pending.out);
}

void Batcher::fire_locked() {
  std::vector<std::vector<int>> contexts;
  std::vector<lm::KvCache*> caches;
  contexts.reserve(waiting_.size());
  caches.reserve(waiting_.size());
  for (Pending* p : waiting_) {
    contexts.push_back(std::move(p->context));
    caches.push_back(p->cache);
  }

  std::vector<std::vector<float>> outs = model_.logits_batch(contexts, caches);

  ++forwards_;
  contexts_ += waiting_.size();
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::instance();
    static obs::Counter& c_forwards = registry.counter("serve.batch.forwards");
    static obs::Histogram& h_width = registry.histogram(
        "serve.batch.width", obs::HistogramOptions::linear(0.0, 32.0, 32));
    c_forwards.inc();
    h_width.observe(static_cast<double>(waiting_.size()));
  }

  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    waiting_[i]->out = std::move(outs[i]);
    waiting_[i]->done = true;
  }
  waiting_.clear();
  cv_.notify_all();
}

void Batcher::snapshot(std::uint64_t& forwards, std::uint64_t& contexts) const {
  const std::lock_guard<std::mutex> lock(mu_);
  forwards = forwards_;
  contexts = contexts_;
}

}  // namespace lejit::serve
