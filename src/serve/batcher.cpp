#include "serve/batcher.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace lejit::serve {

void Batcher::activate() {
  const util::MutexLock lock(mu_);
  ++active_;
}

void Batcher::deactivate() {
  util::MutexLock lock(mu_);
  LEJIT_ASSERT(active_ > 0, "deactivate without matching activate");
  --active_;
  // The group may have been waiting only for us: fire for the others. A
  // failing forward is routed to the waiting sessions' forward() calls, so
  // nothing throws out of this row-boundary bookkeeping (which runs outside
  // session_main's per-row try/catch).
  if (!waiting_.empty() && static_cast<int>(waiting_.size()) == active_)
    fire(lock);
}

std::vector<float> Batcher::forward(std::span<const int> context,
                                    lm::KvCache& cache) {
  util::MutexLock lock(mu_);
  // Validate before registering: a throwing assert must not leave a dangling
  // Pending* in waiting_ for a later fire() to dereference.
  LEJIT_ASSERT(static_cast<int>(waiting_.size()) < active_,
               "forward() from a session that never activated");
  Pending pending;
  pending.context.assign(context.begin(), context.end());
  pending.cache = &cache;
  waiting_.push_back(&pending);
  if (static_cast<int>(waiting_.size()) == active_)
    fire(lock);  // we are the last arrival: lead this round
  else
    while (!pending.done) cv_.wait(lock);
  if (pending.error) std::rethrow_exception(pending.error);
  return std::move(pending.out);
}

void Batcher::fire(util::MutexLock& lock) {
  // Take over this round's requests. Arrivals during the unlocked compute
  // below open the next round; they can never complete it early, because
  // every member of this round still counts in active_ until its forward()
  // returns, so waiting_ cannot reach active_ again before we publish.
  std::vector<Pending*> round;
  round.swap(waiting_);

  std::vector<std::vector<int>> contexts;
  std::vector<lm::KvCache*> caches;
  contexts.reserve(round.size());
  caches.reserve(round.size());
  for (Pending* p : round) {
    contexts.push_back(std::move(p->context));
    caches.push_back(p->cache);
  }

  // Compute without mu_ so activate()/deactivate()/snapshot() — finished
  // sessions and Server::stats() — stay responsive during the forward,
  // which dominates serve wall time.
  lock.unlock();
  std::vector<std::vector<float>> outs;
  std::exception_ptr error;
  try {
    outs = model_.logits_batch(contexts, caches);
  } catch (...) {
    // The round must still complete: publish the exception to every member
    // so each rethrows from forward() and degrades its own row, instead of
    // followers waiting forever on stack-allocated Pendings the leader's
    // unwind would destroy.
    error = std::current_exception();
  }
  lock.lock();

  if (!error) {
    ++forwards_;
    contexts_ += round.size();
    if (obs::metrics_enabled()) {
      auto& registry = obs::MetricsRegistry::instance();
      static obs::Counter& c_forwards = registry.counter("serve.batch.forwards");
      static obs::Histogram& h_width = registry.histogram(
          "serve.batch.width", obs::HistogramOptions::linear(0.0, 32.0, 32));
      c_forwards.inc();
      h_width.observe(static_cast<double>(round.size()));
    }
  }

  for (std::size_t i = 0; i < round.size(); ++i) {
    if (error)
      round[i]->error = error;
    else
      round[i]->out = std::move(outs[i]);
    round[i]->done = true;
  }
  cv_.notify_all();
}

void Batcher::snapshot(std::uint64_t& forwards, std::uint64_t& contexts) const {
  const util::MutexLock lock(mu_);
  forwards = forwards_;
  contexts = contexts_;
}

}  // namespace lejit::serve
